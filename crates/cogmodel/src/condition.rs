//! Scheduler activation conditions (§2.2).
//!
//! PsyNeuLink nodes declare conditions describing when they are ready to run
//! — every pass, every N passes, only after another node has run a number of
//! times, and so on. The scheduler consults these each pass (Listing 1 in
//! the paper); the back-and-forth between this logic and node execution is
//! one of the overheads model-wide compilation removes (§6.2).

/// When a mechanism is ready to execute within a trial.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Run in every pass.
    Always,
    /// Run only in passes whose index is a multiple of `n` (0-based: runs in
    /// pass 0, n, 2n, …).
    EveryNPasses(u64),
    /// Run only once another node has executed at least `n` times this
    /// trial.
    AfterNCalls {
        /// Index of the other node in the composition.
        node: usize,
        /// Required number of executions.
        n: u64,
    },
    /// Run only until this node itself has executed `n` times this trial.
    AtMostNCalls(u64),
    /// Never run (used to disable nodes in ablations).
    Never,
}

impl Condition {
    /// Decide readiness given the current pass index, this node's execution
    /// count this trial, and all nodes' execution counts this trial.
    pub fn is_ready(&self, pass: u64, own_calls: u64, all_calls: &[u64]) -> bool {
        match self {
            Condition::Always => true,
            Condition::EveryNPasses(n) => *n != 0 && pass.is_multiple_of(*n),
            Condition::AfterNCalls { node, n } => {
                all_calls.get(*node).copied().unwrap_or(0) >= *n
            }
            Condition::AtMostNCalls(n) => own_calls < *n,
            Condition::Never => false,
        }
    }
}

/// When a trial is over (the inner `while not end_of_trial` of Listing 1).
#[derive(Debug, Clone, PartialEq)]
pub enum TrialEndSpec {
    /// Stop after a fixed number of passes.
    AfterNPasses(u64),
    /// Stop once the absolute value of element 0 of the given node's output
    /// port reaches `threshold` (evidence-accumulation models), or after
    /// `max_passes` as a safety bound.
    Threshold {
        /// Node whose output is monitored.
        node: usize,
        /// Output port of that node.
        port: usize,
        /// Decision threshold on `|value|`.
        threshold: f64,
        /// Upper bound on passes even if the threshold is never crossed.
        max_passes: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_and_never() {
        assert!(Condition::Always.is_ready(0, 0, &[]));
        assert!(Condition::Always.is_ready(10, 5, &[1, 2]));
        assert!(!Condition::Never.is_ready(0, 0, &[]));
    }

    #[test]
    fn every_n_passes() {
        let c = Condition::EveryNPasses(3);
        assert!(c.is_ready(0, 0, &[]));
        assert!(!c.is_ready(1, 0, &[]));
        assert!(!c.is_ready(2, 0, &[]));
        assert!(c.is_ready(3, 0, &[]));
        assert!(!Condition::EveryNPasses(0).is_ready(0, 0, &[]));
    }

    #[test]
    fn after_n_calls_of_other_node() {
        let c = Condition::AfterNCalls { node: 1, n: 2 };
        assert!(!c.is_ready(5, 0, &[9, 1]));
        assert!(c.is_ready(5, 0, &[0, 2]));
        assert!(!c.is_ready(5, 0, &[0]));
    }

    #[test]
    fn at_most_n_calls() {
        let c = Condition::AtMostNCalls(2);
        assert!(c.is_ready(0, 0, &[]));
        assert!(c.is_ready(1, 1, &[]));
        assert!(!c.is_ready(2, 2, &[]));
    }
}
