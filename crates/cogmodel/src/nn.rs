//! A miniature feed-forward neural-network substrate standing in for the
//! PyTorch components of heterogeneous models (the Multitasking model of
//! §5 feeds a PyTorch network's output into a PsyNeuLink LCA).
//!
//! Only the forward pass is needed inside a cognitive model run, and Distill
//! lowers it through exactly the same path as native mechanisms — that is
//! the point the paper makes about cross-framework optimization (§3.4.2).
//! Weights are generated deterministically from a seed so baseline and
//! compiled runs agree bit-for-bit.

use crate::functions::dense_layer;
use crate::mechanism::Mechanism;
use distill_pyvm::SplitMix64;

/// Specification of a fully connected network: layer widths from input to
/// output, e.g. `[4, 8, 3]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpSpec {
    /// Layer widths, input first.
    pub widths: Vec<usize>,
    /// Whether hidden layers use a logistic activation (otherwise tanh).
    pub logistic: bool,
    /// Seed for the deterministic weight initialization.
    pub seed: u64,
}

impl MlpSpec {
    /// Create a spec.
    pub fn new(widths: Vec<usize>, logistic: bool, seed: u64) -> MlpSpec {
        assert!(widths.len() >= 2, "an MLP needs at least input and output widths");
        MlpSpec {
            widths,
            logistic,
            seed,
        }
    }

    /// Number of layers (weight matrices).
    pub fn n_layers(&self) -> usize {
        self.widths.len() - 1
    }

    /// Total number of trainable parameters.
    pub fn n_params(&self) -> usize {
        self.widths
            .windows(2)
            .map(|w| w[0] * w[1] + w[1])
            .sum()
    }
}

/// Deterministic Xavier-style weight initialization.
fn init_weights(rng: &mut SplitMix64, n_in: usize, n_out: usize) -> (Vec<f64>, Vec<f64>) {
    let scale = (6.0 / (n_in + n_out) as f64).sqrt();
    let weights = (0..n_in * n_out)
        .map(|_| (rng.uniform() * 2.0 - 1.0) * scale)
        .collect();
    let bias = (0..n_out).map(|_| (rng.uniform() * 2.0 - 1.0) * 0.1).collect();
    (weights, bias)
}

/// Build the chain of PyTorch-tagged mechanisms implementing the network's
/// forward pass. The mechanisms must be connected in order (output port 0 of
/// layer `k` to input port 0 of layer `k+1`) by the composition.
pub fn build_mlp(name_prefix: &str, spec: &MlpSpec) -> Vec<Mechanism> {
    let mut rng = SplitMix64::new(spec.seed);
    let mut layers = Vec::with_capacity(spec.n_layers());
    for (k, w) in spec.widths.windows(2).enumerate() {
        let (weights, bias) = init_weights(&mut rng, w[0], w[1]);
        let is_last = k == spec.n_layers() - 1;
        layers.push(dense_layer(
            &format!("{name_prefix}_fc{k}"),
            w[0],
            w[1],
            weights,
            bias,
            // Hidden layers follow the spec; the output layer is logistic so
            // downstream evidence accumulators receive values in (0, 1).
            if is_last { true } else { spec.logistic },
        ));
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::Framework;

    #[test]
    fn spec_accounting() {
        let spec = MlpSpec::new(vec![4, 8, 3], false, 7);
        assert_eq!(spec.n_layers(), 2);
        assert_eq!(spec.n_params(), 4 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn build_produces_connected_shapes() {
        let spec = MlpSpec::new(vec![4, 8, 3], false, 7);
        let layers = build_mlp("net", &spec);
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].input_sizes, vec![4]);
        assert_eq!(layers[0].output_sizes, vec![8]);
        assert_eq!(layers[1].input_sizes, vec![8]);
        assert_eq!(layers[1].output_sizes, vec![3]);
        assert!(layers.iter().all(|l| l.framework == Framework::PyTorch));
    }

    #[test]
    fn weights_are_deterministic_per_seed() {
        let spec = MlpSpec::new(vec![3, 3], false, 42);
        let a = build_mlp("a", &spec);
        let b = build_mlp("b", &spec);
        assert_eq!(a[0].param("weights"), b[0].param("weights"));
        let other = build_mlp("c", &MlpSpec::new(vec![3, 3], false, 43));
        assert_ne!(a[0].param("weights"), other[0].param("weights"));
    }

    #[test]
    #[should_panic]
    fn single_width_spec_is_rejected() {
        MlpSpec::new(vec![4], false, 1);
    }
}
