//! `distill-cogmodel` — a PsyNeuLink-like cognitive modeling framework.
//!
//! The paper's frontend is PsyNeuLink: models are computational graphs whose
//! nodes ("mechanisms") process signals arriving over projections, scheduled
//! by activation conditions, optionally under the control of an optimizing
//! controller that grid-searches control-signal allocations (§2.1–2.2).
//! This crate rebuilds that substrate:
//!
//! * [`mechanism`] — mechanisms with input/output ports, read-only
//!   parameters, read-write state, an activation [`condition`] and a scalar
//!   [computation](mechanism::NodeComputation) written in the
//!   [`distill_pyvm::Expr`] language.
//! * [`functions`] — the framework's function library (Linear, Logistic,
//!   drift-diffusion and leaky-competing integrators, Gaussian observers,
//!   dense neural-network layers); constructors specialize the templates to
//!   the shapes they are instantiated with (§3.4.1).
//! * [`composition`] — the model graph: nodes, projections (feedforward and
//!   feedback), designated inputs/outputs, an optional grid-search
//!   [`controller`], trial-termination conditions, and the sanitization run
//!   (§2.2) that discovers every type and shape Distill later relies on.
//! * [`runner`] — the baseline execution engine: the scheduler loop of
//!   Listing 1 interpreted over dynamic values in one of the four §5
//!   environments (CPython / Pyston / PyPy / PyPy-nojit).
//! * [`nn`] — a small dense neural-network builder tagged as coming from
//!   PyTorch, used by the Multitasking model to exercise cross-framework
//!   compilation.

pub mod composition;
pub mod condition;
pub mod controller;
pub mod functions;
pub mod mechanism;
pub mod nn;
pub mod runner;

pub use composition::{Composition, Projection, ShapeInfo, TrialEnd};
pub use condition::Condition;
pub use controller::{ControlSignal, Controller};
pub use mechanism::{Framework, Mechanism, NodeComputation};
pub use runner::{BaselineRunner, RunError, RunOutcome, RunResult};
