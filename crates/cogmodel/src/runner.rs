//! The baseline execution engine: PsyNeuLink's scheduler loop (Listing 1 of
//! the paper) interpreted over dynamic values in one of the four §5
//! environments.
//!
//! The structure deliberately mirrors the paper's description: an outer
//! trial loop reading one input per trial, an inner pass loop that asks
//! every node's activation condition whether it is ready and then executes
//! the ready nodes, a double-buffered current/previous output store, and —
//! when the model has an optimizing controller — an exhaustive grid search
//! over control allocations at the start of every trial. Execution switches
//! between this scheduling logic and the node computations on every single
//! node execution, which is precisely the overhead whole-model compilation
//! eliminates (§6.2).

use crate::composition::{Composition, CompositionError, Projection};
use crate::condition::TrialEndSpec;
use crate::mechanism::Framework;
use distill_pyvm::{DynValue, EvalContext, ExecMode, Interpreter, PyVmError, SplitMix64};
use std::collections::HashMap;
use std::fmt;

/// One trial's external input: one vector per input node, in
/// `Composition::input_nodes` order.
pub type TrialInput = Vec<Vec<f64>>;

/// Why a baseline run stopped without producing results.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The composition itself is malformed.
    Model(CompositionError),
    /// The dynamic interpreter failed (missing names, type errors).
    Vm(PyVmError),
    /// The environment cannot run a component of this framework
    /// ("PyTorch not supported" annotations in Fig. 4).
    UnsupportedFramework {
        /// The offending framework.
        framework: &'static str,
        /// The execution environment.
        mode: ExecMode,
    },
    /// The simulated tracing JIT ran out of memory ("Out of Memory"
    /// annotations in Fig. 4).
    OutOfMemory {
        /// Bytes of trace metadata at the point of failure.
        needed_bytes: usize,
    },
    /// The run exceeded its execution budget ("Python did not finish"
    /// annotation in Fig. 5a/5c).
    DidNotFinish {
        /// The configured budget in expression evaluations.
        budget: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Model(e) => write!(f, "{e}"),
            RunError::Vm(e) => write!(f, "{e}"),
            RunError::UnsupportedFramework { framework, mode } => {
                write!(f, "{mode} does not support {framework}")
            }
            RunError::OutOfMemory { needed_bytes } => {
                write!(f, "out of memory ({needed_bytes} bytes of trace metadata)")
            }
            RunError::DidNotFinish { budget } => {
                write!(f, "did not finish within {budget} expression evaluations")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<CompositionError> for RunError {
    fn from(e: CompositionError) -> Self {
        RunError::Model(e)
    }
}

impl From<PyVmError> for RunError {
    fn from(e: PyVmError) -> Self {
        match e {
            PyVmError::OutOfMemory { needed_bytes, .. } => RunError::OutOfMemory { needed_bytes },
            other => RunError::Vm(other),
        }
    }
}

/// The outcome of a run attempt, preserving the paper's figure annotations.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The run completed.
    Completed(RunResult),
    /// The run failed in a way Fig. 4 / Fig. 5 annotates.
    Failed(RunError),
}

/// Results of a completed baseline run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Per trial, the concatenated output-node values at trial end.
    pub outputs: Vec<Vec<f64>>,
    /// Per trial, how many passes the scheduler executed.
    pub passes: Vec<u64>,
    /// Total node executions across the run.
    pub node_executions: u64,
    /// Total controller grid evaluations across the run.
    pub controller_evaluations: u64,
    /// Total expression-node evaluations performed by the interpreter.
    pub expr_evaluations: u64,
}

/// The baseline runner for one execution environment.
#[derive(Debug, Clone)]
pub struct BaselineRunner {
    /// Which §5 environment to simulate.
    pub mode: ExecMode,
    /// Model-level seed: node PRNG streams and controller evaluation streams
    /// derive from it, identically to the compiled path.
    pub seed: u64,
    /// Optional budget on expression evaluations; exceeding it aborts the
    /// run with [`RunError::DidNotFinish`].
    pub eval_budget: Option<u64>,
    /// Optional override of the PyPy trace memory budget.
    pub trace_budget_bytes: Option<usize>,
}

impl BaselineRunner {
    /// A runner for the given mode with the default seed and no budget.
    pub fn new(mode: ExecMode) -> BaselineRunner {
        BaselineRunner {
            mode,
            seed: 0xD15_711,
            eval_budget: None,
            trace_budget_bytes: None,
        }
    }

    /// Set the model seed.
    pub fn with_seed(mut self, seed: u64) -> BaselineRunner {
        self.seed = seed;
        self
    }

    /// Set the execution budget.
    pub fn with_eval_budget(mut self, budget: u64) -> BaselineRunner {
        self.eval_budget = Some(budget);
        self
    }

    /// Run `trials` trials of the model, cycling through `inputs`.
    ///
    /// # Errors
    /// Returns a [`RunError`] on malformed models, unsupported frameworks,
    /// simulated out-of-memory, exceeded budgets or interpreter failures.
    pub fn run(
        &self,
        model: &Composition,
        inputs: &[TrialInput],
        trials: usize,
    ) -> Result<RunResult, RunError> {
        model.validate()?;
        if model.uses_framework(Framework::PyTorch) && !self.mode.supports_pytorch() {
            return Err(RunError::UnsupportedFramework {
                framework: "PyTorch",
                mode: self.mode,
            });
        }
        if inputs.is_empty() {
            return Err(RunError::Model(CompositionError(
                "no trial inputs provided".into(),
            )));
        }

        let mut interp = Interpreter::new(self.mode);
        if let Some(b) = self.trace_budget_bytes {
            interp.trace_budget_bytes = b;
        }
        let topo = model.topological_order()?;
        let incoming = model.incoming();

        // Mutable copies of parameter dictionaries (the controller writes
        // chosen allocations into them) and of state dictionaries.
        let mut params: Vec<DynValue> = model.mechanisms.iter().map(|m| m.params_dict()).collect();
        let init_state: Vec<DynValue> = model.mechanisms.iter().map(|m| m.state_dict()).collect();
        let mut state = init_state.clone();

        // One PRNG stream per node, derived at the start of every trial from
        // `(seed, trial, node)` so trials are independent random-access
        // units (compiled drivers rely on this to shard the trial space).
        // The placeholder states are overwritten before any draw.
        let mut node_rngs: Vec<SplitMix64> = vec![SplitMix64::new(0); model.mechanisms.len()];

        let shapes: Vec<Vec<usize>> = model
            .mechanisms
            .iter()
            .map(|m| m.output_sizes.clone())
            .collect();
        let zero_buffers = || -> Vec<Vec<Vec<f64>>> {
            shapes
                .iter()
                .map(|ports| ports.iter().map(|&s| vec![0.0; s]).collect())
                .collect()
        };

        let mut result = RunResult {
            outputs: Vec::with_capacity(trials),
            passes: Vec::with_capacity(trials),
            node_executions: 0,
            controller_evaluations: 0,
            expr_evaluations: 0,
        };

        for trial in 0..trials {
            let input = &inputs[trial % inputs.len()];
            if model.reset_state_each_trial {
                state = init_state.clone();
            }
            for (node, rng) in node_rngs.iter_mut().enumerate() {
                *rng = SplitMix64::trial_node_stream(self.seed, trial as u64, node as u64);
            }
            let mut prev = zero_buffers();
            let mut cur = zero_buffers();
            let mut calls = vec![0u64; model.mechanisms.len()];

            // ---- controller grid search (start of trial) ------------------
            if let Some(ctrl) = &model.controller {
                let grid = ctrl.grid_size();
                let mut reservoir =
                    crate::controller::ReservoirArgmin::new(self.seed ^ trial as u64);
                for g in 0..grid {
                    let allocation = ctrl.allocation(g);
                    // Streams are indexed by grid point (not by trial), so a
                    // given evaluation draws the same numbers in every trial
                    // and in every backend (§3.6 reproducibility).
                    let objective = self.evaluate_allocation(
                        model,
                        &topo,
                        &incoming,
                        &params,
                        &init_state,
                        input,
                        &allocation,
                        ctrl,
                        g as u64,
                        &mut interp,
                    )?;
                    let cost = ctrl.total_cost(objective, &allocation);
                    reservoir.offer(g, cost);
                    result.controller_evaluations += 1;
                    self.check_budget(&interp, &result)?;
                }
                // Commit the winning allocation to the live parameters.
                let best = ctrl.allocation(reservoir.best_index());
                for (sig, level) in ctrl.signals.iter().zip(&best) {
                    apply_allocation(&mut params[sig.node], &sig.param, sig.index, *level);
                }
            }

            // ---- pass loop -----------------------------------------------
            let mut pass: u64 = 0;
            loop {
                let mut executed: Vec<bool> = vec![false; model.mechanisms.len()];
                for &node in &topo {
                    let m = &model.mechanisms[node];
                    if !m.condition.is_ready(pass, calls[node], &calls) {
                        continue;
                    }
                    let node_inputs = gather_inputs(
                        model, &incoming, node, input, &prev, &cur, &executed,
                    );
                    self.execute_node(
                        model,
                        node,
                        &node_inputs,
                        &params[node],
                        &mut state[node],
                        &mut node_rngs[node],
                        &mut cur,
                        &mut interp,
                    )?;
                    calls[node] += 1;
                    executed[node] = true;
                    result.node_executions += 1;
                }
                pass += 1;
                self.check_budget(&interp, &result)?;

                let done = match &model.trial_end {
                    TrialEndSpec::AfterNPasses(n) => pass >= *n,
                    TrialEndSpec::Threshold {
                        node,
                        port,
                        threshold,
                        max_passes,
                    } => {
                        let v = cur[*node][*port].first().copied().unwrap_or(0.0);
                        v.abs() >= *threshold || pass >= *max_passes
                    }
                };
                prev = cur.clone();
                if done {
                    break;
                }
            }

            // ---- record trial output -------------------------------------
            let mut out = Vec::new();
            for &o in &model.output_nodes {
                out.extend_from_slice(&cur[o][0]);
            }
            result.outputs.push(out);
            result.passes.push(pass);
        }
        result.expr_evaluations = interp.stats().ops;
        Ok(result)
    }

    /// Run the model attempt for `model.run(...)` but fold failures into a
    /// [`RunOutcome`] instead of an `Err`, which is how the figure harness
    /// records "OOM" / "not supported" / "did not finish" annotations.
    pub fn run_outcome(
        &self,
        model: &Composition,
        inputs: &[TrialInput],
        trials: usize,
    ) -> RunOutcome {
        match self.run(model, inputs, trials) {
            Ok(r) => RunOutcome::Completed(r),
            Err(e) => RunOutcome::Failed(e),
        }
    }

    fn check_budget(&self, interp: &Interpreter, result: &RunResult) -> Result<(), RunError> {
        let _ = result;
        if let Some(budget) = self.eval_budget {
            if interp.stats().ops > budget {
                return Err(RunError::DidNotFinish { budget });
            }
        }
        Ok(())
    }

    /// Evaluate one controller allocation: a single pass over all nodes on
    /// scratch state, with the allocation applied and an evaluation-specific
    /// PRNG stream (§3.6), returning the objective node's output.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_allocation(
        &self,
        model: &Composition,
        topo: &[usize],
        incoming: &HashMap<(usize, usize), Vec<Projection>>,
        params: &[DynValue],
        init_state: &[DynValue],
        input: &TrialInput,
        allocation: &[f64],
        ctrl: &crate::controller::Controller,
        eval_index: u64,
        interp: &mut Interpreter,
    ) -> Result<f64, RunError> {
        // Thread-local copies of the read-write structures (§3.3, §3.6).
        let mut scratch_params: Vec<DynValue> = params.to_vec();
        for (sig, level) in ctrl.signals.iter().zip(allocation) {
            apply_allocation(&mut scratch_params[sig.node], &sig.param, sig.index, *level);
        }
        let mut scratch_state: Vec<DynValue> = init_state.to_vec();
        let mut rng = SplitMix64::stream_for(ctrl.seed, eval_index);

        let shapes: Vec<Vec<usize>> = model
            .mechanisms
            .iter()
            .map(|m| m.output_sizes.clone())
            .collect();
        let prev: Vec<Vec<Vec<f64>>> = shapes
            .iter()
            .map(|ports| ports.iter().map(|&s| vec![0.0; s]).collect())
            .collect();
        let mut cur = prev.clone();
        let mut executed = vec![false; model.mechanisms.len()];

        for &node in topo {
            let node_inputs = gather_inputs(model, incoming, node, input, &prev, &cur, &executed);
            self.execute_node(
                model,
                node,
                &node_inputs,
                &scratch_params[node],
                &mut scratch_state[node],
                &mut rng,
                &mut cur,
                interp,
            )?;
            executed[node] = true;
        }
        Ok(cur[ctrl.objective_node][ctrl.objective_port]
            .first()
            .copied()
            .unwrap_or(0.0))
    }

    /// Execute one node: evaluate each output element and then the state
    /// updates, writing results into the current-pass buffer.
    #[allow(clippy::too_many_arguments)]
    fn execute_node(
        &self,
        model: &Composition,
        node: usize,
        node_inputs: &[DynValue],
        params: &DynValue,
        state: &mut DynValue,
        rng: &mut SplitMix64,
        cur: &mut [Vec<Vec<f64>>],
        interp: &mut Interpreter,
    ) -> Result<(), RunError> {
        let m = &model.mechanisms[node];
        for (port, exprs) in m.computation.outputs.iter().enumerate() {
            for (elem, e) in exprs.iter().enumerate() {
                let mut ctx = EvalContext {
                    inputs: node_inputs,
                    params,
                    state,
                    rng,
                    cache_key: Some((node, port * 1024 + elem)),
                };
                let v = interp.eval(e, &mut ctx)?;
                cur[node][port][elem] = v;
            }
        }
        // State updates read pre-update state, then commit.
        let mut pending = Vec::with_capacity(m.computation.state_updates.len());
        for (name, index, e) in &m.computation.state_updates {
            let mut ctx = EvalContext {
                inputs: node_inputs,
                params,
                state,
                rng,
                cache_key: Some((node, 1 << 20)),
            };
            let v = interp.eval(e, &mut ctx)?;
            pending.push((name.clone(), *index, v));
        }
        for (name, index, v) in pending {
            let mut ctx = EvalContext {
                inputs: node_inputs,
                params,
                state,
                rng,
                cache_key: None,
            };
            interp.store_state(&mut ctx, &name, index, v)?;
        }
        Ok(())
    }
}

/// Write a control allocation level into a node's parameter dictionary.
fn apply_allocation(params: &mut DynValue, name: &str, index: usize, level: f64) {
    if let Some(entry) = params.get_mut(name) {
        if let Some(slot) = entry.index_mut(index) {
            *slot = DynValue::Float(level);
        } else if index == 0 {
            *entry = DynValue::Float(level);
        }
    }
}

/// Assemble a node's boxed input port values from external inputs and
/// incoming projections (feed-forward edges read the current pass when the
/// source already executed, feedback edges always read the previous pass).
fn gather_inputs(
    model: &Composition,
    incoming: &HashMap<(usize, usize), Vec<Projection>>,
    node: usize,
    external: &TrialInput,
    prev: &[Vec<Vec<f64>>],
    cur: &[Vec<Vec<f64>>],
    executed: &[bool],
) -> Vec<DynValue> {
    let m = &model.mechanisms[node];
    let mut ports: Vec<Vec<f64>> = m.input_sizes.iter().map(|&s| vec![0.0; s]).collect();
    // External trial input lands on input port 0 of designated input nodes.
    if let Some(pos) = model.input_nodes.iter().position(|&i| i == node) {
        if let (Some(port0), Some(ext)) = (ports.get_mut(0), external.get(pos)) {
            for (dst, src) in port0.iter_mut().zip(ext) {
                *dst = *src;
            }
        }
    }
    for (port_idx, port) in ports.iter_mut().enumerate() {
        if let Some(projs) = incoming.get(&(node, port_idx)) {
            for p in projs {
                let source = if p.feedback || !executed[p.from_node] {
                    &prev[p.from_node][p.from_port]
                } else {
                    &cur[p.from_node][p.from_port]
                };
                for (i, v) in source.iter().enumerate() {
                    if let Some(slot) = port.get_mut(p.to_offset + i) {
                        *slot = *v;
                    }
                }
            }
        }
    }
    ports.into_iter().map(|p| DynValue::vector(&p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composition::Composition;
    use crate::condition::TrialEndSpec;
    use crate::controller::{ControlSignal, Controller};
    use crate::functions::{ddm_integrator, gaussian_observer, identity, linear, logistic};
    use crate::nn::{build_mlp, MlpSpec};

    fn chain_model() -> Composition {
        let mut c = Composition::new("chain");
        let a = c.add(identity("in", 2));
        let b = c.add(linear("double", 2, 2.0, 0.0));
        let d = c.add(logistic("squash", 2, 1.0, 0.0));
        c.connect(a, 0, b, 0, 0);
        c.connect(b, 0, d, 0, 0);
        c.input_nodes = vec![a];
        c.output_nodes = vec![d];
        c
    }

    #[test]
    fn feedforward_chain_computes_expected_values() {
        let model = chain_model();
        let runner = BaselineRunner::new(ExecMode::CPython);
        let r = runner
            .run(&model, &[vec![vec![0.0, 1.0]]], 1)
            .expect("run succeeds");
        assert_eq!(r.outputs.len(), 1);
        let out = &r.outputs[0];
        // logistic(2*0) = 0.5, logistic(2*1) = 1/(1+e^-2)
        assert!((out[0] - 0.5).abs() < 1e-12);
        assert!((out[1] - 1.0 / (1.0 + (-2.0f64).exp())).abs() < 1e-12);
        assert_eq!(r.passes, vec![1]);
        assert_eq!(r.node_executions, 3);
    }

    #[test]
    fn all_modes_agree_on_deterministic_models() {
        let model = chain_model();
        let inputs = vec![vec![vec![0.3, -0.7]]];
        let reference = BaselineRunner::new(ExecMode::CPython)
            .run(&model, &inputs, 2)
            .unwrap();
        for mode in [ExecMode::Pyston, ExecMode::PyPy, ExecMode::PyPyNoJit] {
            let r = BaselineRunner::new(mode).run(&model, &inputs, 2).unwrap();
            assert_eq!(r.outputs, reference.outputs, "mode {mode}");
        }
    }

    #[test]
    fn ddm_trial_ends_at_threshold() {
        let mut c = Composition::new("ddm");
        let stim = c.add(identity("stim", 1));
        let ddm = c.add(ddm_integrator("ddm", 1.0, 0.0, 0.125, 0.0));
        c.connect(stim, 0, ddm, 0, 0);
        c.input_nodes = vec![stim];
        c.output_nodes = vec![ddm];
        c.reset_state_each_trial = true;
        c.trial_end = TrialEndSpec::Threshold {
            node: ddm,
            port: 0,
            threshold: 1.0,
            max_passes: 1000,
        };
        let runner = BaselineRunner::new(ExecMode::CPython);
        let r = runner.run(&c, &[vec![vec![1.0]]], 1).unwrap();
        // rate*stim*dt = 0.125 per pass (exactly representable), threshold
        // 1.0 → 8 passes.
        assert_eq!(r.passes, vec![8]);
        assert!((r.outputs[0][0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn controller_grid_search_picks_low_cost_allocation() {
        // An observer whose noise shrinks with attention feeds an objective
        // that rewards accurate observation; with zero attention cost, the
        // controller should pick the highest attention level.
        let mut c = Composition::new("ctrl");
        let stim = c.add(identity("stim", 1));
        let obs = c.add(gaussian_observer("obs", 1, 1.0, 0.99));
        // Objective: negative squared error between observation and truth.
        let err = {
            use distill_pyvm::Expr as E;
            let diff = E::sub(E::input_elem(0, 0), E::input_elem(1, 0));
            crate::mechanism::Mechanism::new(
                "objective",
                crate::mechanism::NodeComputation::scalar(E::Neg(Box::new(E::mul(
                    diff.clone(),
                    diff,
                )))),
            )
            .with_inputs(vec![1, 1])
        };
        let obj = c.add(err);
        c.connect(stim, 0, obs, 0, 0);
        c.connect(obs, 0, obj, 0, 0);
        c.connect(stim, 0, obj, 1, 0);
        c.input_nodes = vec![stim];
        c.output_nodes = vec![obj];
        c.controller = Some(Controller {
            signals: vec![ControlSignal {
                node: obs,
                param: "attention".into(),
                index: 0,
                levels: vec![0.0, 0.5, 1.0],
                cost_coeff: 0.0,
            }],
            objective_node: obj,
            objective_port: 0,
            seed: 3,
        });
        let runner = BaselineRunner::new(ExecMode::CPython);
        let r = runner.run(&c, &[vec![vec![2.0]]], 1).unwrap();
        assert_eq!(r.controller_evaluations, 3);
        // With attention = 1.0 the observation noise is tiny, so the final
        // objective (squared error) should be near zero.
        assert!(r.outputs[0][0] > -0.1, "objective {}", r.outputs[0][0]);
    }

    #[test]
    fn pytorch_models_rejected_by_jit_modes() {
        let mut c = Composition::new("nn");
        let input = c.add(identity("in", 2));
        let layers = build_mlp("net", &MlpSpec::new(vec![2, 2], false, 1));
        let l0 = c.add(layers[0].clone());
        c.connect(input, 0, l0, 0, 0);
        c.input_nodes = vec![input];
        c.output_nodes = vec![l0];
        for mode in [ExecMode::Pyston, ExecMode::PyPy, ExecMode::PyPyNoJit] {
            let err = BaselineRunner::new(mode)
                .run(&c, &[vec![vec![0.1, 0.2]]], 1)
                .unwrap_err();
            assert!(matches!(err, RunError::UnsupportedFramework { .. }), "{mode}");
        }
        assert!(BaselineRunner::new(ExecMode::CPython)
            .run(&c, &[vec![vec![0.1, 0.2]]], 1)
            .is_ok());
    }

    #[test]
    fn eval_budget_reproduces_did_not_finish() {
        let model = chain_model();
        let runner = BaselineRunner::new(ExecMode::CPython).with_eval_budget(10);
        let err = runner
            .run(&model, &[vec![vec![0.0, 1.0]]], 100)
            .unwrap_err();
        assert!(matches!(err, RunError::DidNotFinish { .. }));
    }

    #[test]
    fn pypy_oom_reproduced_on_long_runs() {
        let model = chain_model();
        let mut runner = BaselineRunner::new(ExecMode::PyPy);
        runner.trace_budget_bytes = Some(50_000);
        let err = runner
            .run(&model, &[vec![vec![0.0, 1.0]]], 1000)
            .unwrap_err();
        assert!(matches!(err, RunError::OutOfMemory { .. }), "{err}");
        // CPython completes the same workload.
        assert!(BaselineRunner::new(ExecMode::CPython)
            .run(&model, &[vec![vec![0.0, 1.0]]], 1000)
            .is_ok());
    }

    #[test]
    fn run_outcome_wraps_failures() {
        let model = chain_model();
        let runner = BaselineRunner::new(ExecMode::CPython).with_eval_budget(1);
        match runner.run_outcome(&model, &[vec![vec![0.0, 1.0]]], 10) {
            RunOutcome::Failed(RunError::DidNotFinish { .. }) => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn recurrent_feedback_uses_previous_pass_values() {
        use distill_pyvm::Expr as E;
        // Two nodes that copy each other's previous output; seeded by an
        // external input on the first node for pass 0 only.
        let mut c = Composition::new("pingpong");
        let a = c.add(
            crate::mechanism::Mechanism::new(
                "a",
                crate::mechanism::NodeComputation::scalar(E::add(
                    E::input_elem(0, 0),
                    E::input_elem(0, 1),
                )),
            )
            .with_inputs(vec![2]),
        );
        let b = c.add(
            crate::mechanism::Mechanism::new(
                "b",
                crate::mechanism::NodeComputation::scalar(E::input(0)),
            )
            .with_inputs(vec![1]),
        );
        c.connect(a, 0, b, 0, 0);
        c.connect_feedback(b, 0, a, 0, 1);
        c.input_nodes = vec![a];
        c.output_nodes = vec![a, b];
        c.trial_end = TrialEndSpec::AfterNPasses(3);
        let r = BaselineRunner::new(ExecMode::CPython)
            .run(&c, &[vec![vec![1.0, 0.0]]], 1)
            .unwrap();
        // pass0: a = 1 + prev(b)=0 = 1; b = a = 1
        // pass1: a = 1 + prev(b)=1 = 2; b = 2
        // pass2: a = 1 + 2 = 3; b = 3
        assert_eq!(r.outputs[0], vec![3.0, 3.0]);
    }
}
