//! The framework's standard function library (§3.4.1).
//!
//! PsyNeuLink mechanisms pick their computation from a library of functions
//! (Linear, Logistic, integrators, …). Distill keeps pre-defined templates
//! for these and specializes each one to the types and shapes of the lexical
//! instance that uses it — which is exactly what these constructors do:
//! given concrete shapes and parameter values they emit a fully scalarized
//! [`NodeComputation`] (and the corresponding [`Mechanism`]).

use crate::condition::Condition;
use crate::mechanism::{Framework, Mechanism, NodeComputation};
use distill_pyvm::{CmpOp, Expr, MathFn};

/// `y = slope * x + intercept`, element-wise over a port of size `n`.
pub fn linear(name: &str, n: usize, slope: f64, intercept: f64) -> Mechanism {
    let outputs = vec![(0..n)
        .map(|i| {
            Expr::add(
                Expr::mul(Expr::param("slope"), Expr::input_elem(0, i)),
                Expr::param("intercept"),
            )
        })
        .collect()];
    Mechanism::new(
        name,
        NodeComputation {
            outputs,
            state_updates: vec![],
        },
    )
    .with_inputs(vec![n])
    .with_param("slope", vec![slope])
    .with_param("intercept", vec![intercept])
}

/// `y = 1 / (1 + exp(-gain * (x - bias)))`, element-wise.
pub fn logistic(name: &str, n: usize, gain: f64, bias: f64) -> Mechanism {
    let outputs = vec![(0..n)
        .map(|i| {
            Expr::logistic(
                Expr::input_elem(0, i),
                Expr::param("gain"),
                Expr::param("bias"),
            )
        })
        .collect()];
    Mechanism::new(
        name,
        NodeComputation {
            outputs,
            state_updates: vec![],
        },
    )
    .with_inputs(vec![n])
    .with_param("gain", vec![gain])
    .with_param("bias", vec![bias])
}

/// A weighted-sum ("transfer") mechanism: output element `j` is
/// `f(sum_i w[j][i] * x[i] + b[j])` where `f` is a logistic with the given
/// gain. The weight matrix is stored row-major in a single parameter, and
/// the sum is fully unrolled — the monomorphic specialization of §3.4.1.
pub fn weighted_transfer(
    name: &str,
    n_in: usize,
    n_out: usize,
    weights: Vec<f64>,
    bias: Vec<f64>,
    gain: f64,
) -> Mechanism {
    assert_eq!(weights.len(), n_in * n_out, "weight matrix shape mismatch");
    assert_eq!(bias.len(), n_out, "bias shape mismatch");
    let outputs = vec![(0..n_out)
        .map(|j| {
            let mut acc = Expr::param_elem("bias", j);
            for i in 0..n_in {
                acc = Expr::add(
                    acc,
                    Expr::mul(
                        Expr::param_elem("weights", j * n_in + i),
                        Expr::input_elem(0, i),
                    ),
                );
            }
            Expr::logistic(acc, Expr::param("gain"), Expr::lit(0.0))
        })
        .collect()];
    Mechanism::new(
        name,
        NodeComputation {
            outputs,
            state_updates: vec![],
        },
    )
    .with_inputs(vec![n_in])
    .with_param("weights", weights)
    .with_param("bias", bias)
    .with_param("gain", vec![gain])
}

/// Drift-diffusion (DDM) integrator step: evidence accumulates as
/// `x += rate * stimulus * dt + noise * sqrt(dt) * N(0,1)`; the output is
/// the updated evidence. Used by two-choice decision models (Fig. 3).
pub fn ddm_integrator(name: &str, rate: f64, noise: f64, dt: f64, x0: f64) -> Mechanism {
    let drift = Expr::mul(
        Expr::mul(Expr::param("rate"), Expr::input(0)),
        Expr::param("dt"),
    );
    let diffusion = Expr::mul(
        Expr::mul(
            Expr::param("noise"),
            Expr::call1(MathFn::Sqrt, Expr::param("dt")),
        ),
        Expr::RandNormal,
    );
    let next = Expr::add(Expr::state("evidence"), Expr::add(drift, diffusion));
    Mechanism::new(
        name,
        NodeComputation {
            outputs: vec![vec![next.clone()]],
            state_updates: vec![("evidence".into(), 0, next)],
        },
    )
    .with_inputs(vec![1])
    .with_param("rate", vec![rate])
    .with_param("noise", vec![noise])
    .with_param("dt", vec![dt])
    .with_state("evidence", vec![x0])
}

/// Leaky competing accumulator (LCA) step over `n` competing units:
/// `x_j += dt * (stimulus_j - leak * x_j - beta * sum_{k != j} x_k)
///         + noise * sqrt(dt) * N(0,1)`.
pub fn lca_integrator(
    name: &str,
    n: usize,
    leak: f64,
    competition: f64,
    noise: f64,
    dt: f64,
) -> Mechanism {
    let mut outputs = Vec::with_capacity(n);
    let mut state_updates = Vec::with_capacity(n);
    for j in 0..n {
        let mut inhibition = Expr::lit(0.0);
        for k in 0..n {
            if k != j {
                inhibition = Expr::add(inhibition, Expr::state_elem("act", k));
            }
        }
        let drive = Expr::sub(
            Expr::sub(
                Expr::input_elem(0, j),
                Expr::mul(Expr::param("leak"), Expr::state_elem("act", j)),
            ),
            Expr::mul(Expr::param("competition"), inhibition),
        );
        let noise_term = Expr::mul(
            Expr::mul(
                Expr::param("noise"),
                Expr::call1(MathFn::Sqrt, Expr::param("dt")),
            ),
            Expr::RandNormal,
        );
        let next = Expr::add(
            Expr::state_elem("act", j),
            Expr::add(Expr::mul(Expr::param("dt"), drive), noise_term),
        );
        // Activations are clamped at zero from below (standard LCA).
        let clamped = Expr::call2(MathFn::Max, next, Expr::lit(0.0));
        outputs.push(clamped.clone());
        state_updates.push(("act".to_string(), j, clamped));
    }
    Mechanism::new(
        name,
        NodeComputation {
            outputs: vec![outputs],
            state_updates,
        },
    )
    .with_inputs(vec![n])
    .with_param("leak", vec![leak])
    .with_param("competition", vec![competition])
    .with_param("noise", vec![noise])
    .with_param("dt", vec![dt])
    .with_state("act", vec![0.0; n])
}

/// A Gaussian observer (predator-prey `Obs` nodes, §2.1): the observed
/// position of an entity is its true position plus noise whose standard
/// deviation shrinks with the attention allocated to the entity:
/// `obs_i = true_i + (sigma_max - attention * sigma_gain) * N(0,1)`.
pub fn gaussian_observer(name: &str, dims: usize, sigma_max: f64, sigma_gain: f64) -> Mechanism {
    let outputs = vec![(0..dims)
        .map(|i| {
            let sigma = Expr::call2(
                MathFn::Max,
                Expr::sub(
                    Expr::param("sigma_max"),
                    Expr::mul(Expr::param("attention"), Expr::param("sigma_gain")),
                ),
                Expr::lit(0.0),
            );
            Expr::add(Expr::input_elem(0, i), Expr::mul(sigma, Expr::RandNormal))
        })
        .collect()];
    Mechanism::new(
        name,
        NodeComputation {
            outputs,
            state_updates: vec![],
        },
    )
    .with_inputs(vec![dims])
    .with_param("sigma_max", vec![sigma_max])
    .with_param("sigma_gain", vec![sigma_gain])
    // `attention` is the controlled parameter the grid search writes into.
    .with_param("attention", vec![0.0])
}

/// A [`gaussian_observer`] that *deliberates* at high attention: when the
/// controlled `attention` exceeds `threshold`, each observed element is
/// refined by the mean of `deliberation` extra standard-normal samples
/// (scaled by `refine_gain`). Attention therefore buys a better estimate at
/// a real computational price — the evaluation cost of a grid point depends
/// on the attention levels its allocation decodes to, which makes the grid
/// *cost-skewed*: contiguous index ranges share the high-stride signal's
/// level and so cluster cheap and expensive cells together, the load shape
/// that serializes statically-chunked parallel sweeps and that work stealing
/// rebalances.
///
/// Both arms of the attention gate are honest about PRNG use: the refinement
/// draws only happen when the gate is taken (the interpreter short-circuits
/// and the compiled lowering branches), so the baseline, compiled, and every
/// parallel schedule consume identical streams.
pub fn deliberative_observer(
    name: &str,
    dims: usize,
    sigma_max: f64,
    sigma_gain: f64,
    deliberation: usize,
) -> Mechanism {
    let k = deliberation.max(1);
    let outputs = vec![(0..dims)
        .map(|i| {
            let sigma = Expr::call2(
                MathFn::Max,
                Expr::sub(
                    Expr::param("sigma_max"),
                    Expr::mul(Expr::param("attention"), Expr::param("sigma_gain")),
                ),
                Expr::lit(0.0),
            );
            let base = Expr::add(Expr::input_elem(0, i), Expr::mul(sigma, Expr::RandNormal));
            let mut refine = Expr::RandNormal;
            for _ in 1..k {
                refine = Expr::add(Expr::RandNormal, refine);
            }
            let refine_mean = Expr::mul(Expr::lit(1.0 / k as f64), refine);
            let gate = Expr::Cmp(
                CmpOp::Gt,
                Box::new(Expr::param("attention")),
                Box::new(Expr::param("threshold")),
            );
            let deliberated = Expr::If(
                Box::new(gate),
                Box::new(Expr::mul(Expr::param("refine_gain"), refine_mean)),
                Box::new(Expr::lit(0.0)),
            );
            Expr::add(base, deliberated)
        })
        .collect()];
    Mechanism::new(
        name,
        NodeComputation {
            outputs,
            state_updates: vec![],
        },
    )
    .with_inputs(vec![dims])
    .with_param("sigma_max", vec![sigma_max])
    .with_param("sigma_gain", vec![sigma_gain])
    .with_param("attention", vec![0.0])
    .with_param("threshold", vec![0.5])
    .with_param("refine_gain", vec![0.05])
}

/// A recurrent "Necker cube vertex" unit: a leaky integrator driven by the
/// summed activity of its neighbours (arriving on input port 0) minus its
/// own decay, squashed by a logistic.
pub fn necker_vertex(name: &str, n_neighbors: usize, leak: f64, gain: f64, dt: f64) -> Mechanism {
    let mut drive = Expr::lit(0.0);
    for i in 0..n_neighbors {
        drive = Expr::add(drive, Expr::input_elem(0, i));
    }
    let net = Expr::sub(drive, Expr::mul(Expr::param("leak"), Expr::state("act")));
    let next = Expr::add(Expr::state("act"), Expr::mul(Expr::param("dt"), net));
    let squashed = Expr::logistic(next.clone(), Expr::param("gain"), Expr::lit(0.5));
    Mechanism::new(
        name,
        NodeComputation {
            outputs: vec![vec![squashed]],
            state_updates: vec![("act".into(), 0, next)],
        },
    )
    .with_inputs(vec![n_neighbors])
    .with_param("leak", vec![leak])
    .with_param("gain", vec![gain])
    .with_param("dt", vec![dt])
    .with_state("act", vec![0.1])
}

/// The vectorized variant of the Necker cube model: all `n` vertices live in
/// a single mechanism whose input port carries the full activity vector and
/// whose adjacency is encoded in a weight parameter (1.0 where connected).
pub fn necker_vectorized(name: &str, n: usize, adjacency: Vec<f64>, leak: f64, gain: f64, dt: f64) -> Mechanism {
    assert_eq!(adjacency.len(), n * n, "adjacency matrix shape mismatch");
    let mut outputs = Vec::with_capacity(n);
    let mut state_updates = Vec::with_capacity(n);
    for j in 0..n {
        let mut drive = Expr::lit(0.0);
        for i in 0..n {
            drive = Expr::add(
                drive,
                Expr::mul(
                    Expr::param_elem("adjacency", j * n + i),
                    Expr::input_elem(0, i),
                ),
            );
        }
        let net = Expr::sub(
            drive,
            Expr::mul(Expr::param("leak"), Expr::state_elem("act", j)),
        );
        let next = Expr::add(
            Expr::state_elem("act", j),
            Expr::mul(Expr::param("dt"), net),
        );
        let squashed = Expr::logistic(next.clone(), Expr::param("gain"), Expr::lit(0.5));
        outputs.push(squashed);
        state_updates.push(("act".to_string(), j, next));
    }
    Mechanism::new(
        name,
        NodeComputation {
            outputs: vec![outputs],
            state_updates,
        },
    )
    .with_inputs(vec![n])
    .with_param("adjacency", adjacency)
    .with_param("leak", vec![leak])
    .with_param("gain", vec![gain])
    .with_param("dt", vec![dt])
    .with_state("act", vec![0.1; n])
}

/// A pass-through mechanism that simply republishes its input (used for
/// stimulus/"Loc" input nodes so every model value flows through a port).
pub fn identity(name: &str, n: usize) -> Mechanism {
    let outputs = vec![(0..n).map(|i| Expr::input_elem(0, i)).collect()];
    Mechanism::new(
        name,
        NodeComputation {
            outputs,
            state_updates: vec![],
        },
    )
    .with_inputs(vec![n])
}

/// An execution-count probe: cognitive scientists track how often nodes run
/// (§2.1 "metadata"); this mechanism exposes the count as its output.
pub fn call_counter(name: &str) -> Mechanism {
    let next = Expr::add(Expr::state("count"), Expr::lit(1.0));
    Mechanism::new(
        name,
        NodeComputation {
            outputs: vec![vec![next.clone()]],
            state_updates: vec![("count".into(), 0, next)],
        },
    )
    .with_inputs(vec![1])
    .with_state("count", vec![0.0])
    .with_condition(Condition::Always)
}

/// A dense (fully connected) neural-network layer imported from PyTorch:
/// `y_j = act(sum_i w[j][i] x_i + b[j])` with a tanh or logistic activation,
/// fully unrolled for the instantiated shape.
pub fn dense_layer(
    name: &str,
    n_in: usize,
    n_out: usize,
    weights: Vec<f64>,
    bias: Vec<f64>,
    logistic_act: bool,
) -> Mechanism {
    assert_eq!(weights.len(), n_in * n_out, "weight matrix shape mismatch");
    assert_eq!(bias.len(), n_out, "bias shape mismatch");
    let outputs = vec![(0..n_out)
        .map(|j| {
            let mut acc = Expr::param_elem("bias", j);
            for i in 0..n_in {
                acc = Expr::add(
                    acc,
                    Expr::mul(
                        Expr::param_elem("weights", j * n_in + i),
                        Expr::input_elem(0, i),
                    ),
                );
            }
            if logistic_act {
                Expr::logistic(acc, Expr::lit(1.0), Expr::lit(0.0))
            } else {
                Expr::call1(MathFn::Tanh, acc)
            }
        })
        .collect()];
    Mechanism::new(
        name,
        NodeComputation {
            outputs,
            state_updates: vec![],
        },
    )
    .with_framework(Framework::PyTorch)
    .with_inputs(vec![n_in])
    .with_param("weights", weights)
    .with_param("bias", bias)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_pyvm::{DynValue, EvalContext, ExecMode, Interpreter, SplitMix64};

    /// Evaluate a mechanism's outputs on concrete inputs with the baseline
    /// interpreter (helper shared by the library tests).
    fn eval_outputs(m: &Mechanism, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let mut interp = Interpreter::new(ExecMode::CPython);
        let params = m.params_dict();
        let mut state = m.state_dict();
        let mut rng = SplitMix64::new(1);
        let dyn_inputs: Vec<DynValue> = inputs.iter().map(|v| DynValue::vector(v)).collect();
        m.computation
            .outputs
            .iter()
            .map(|port| {
                port.iter()
                    .map(|e| {
                        let mut ctx = EvalContext {
                            inputs: &dyn_inputs,
                            params: &params,
                            state: &mut state,
                            rng: &mut rng,
                            cache_key: None,
                        };
                        interp.eval(e, &mut ctx).unwrap()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn linear_computes_slope_and_intercept() {
        let m = linear("lin", 3, 2.0, 1.0);
        let out = eval_outputs(&m, &[vec![0.0, 1.0, 2.0]]);
        assert_eq!(out, vec![vec![1.0, 3.0, 5.0]]);
    }

    #[test]
    fn logistic_is_bounded_and_monotone() {
        let m = logistic("log", 1, 2.0, 0.0);
        let lo = eval_outputs(&m, &[vec![-5.0]])[0][0];
        let mid = eval_outputs(&m, &[vec![0.0]])[0][0];
        let hi = eval_outputs(&m, &[vec![5.0]])[0][0];
        assert!(lo < mid && mid < hi);
        assert!((mid - 0.5).abs() < 1e-12);
        assert!(lo > 0.0 && hi < 1.0);
    }

    #[test]
    fn weighted_transfer_unrolls_matrix_product() {
        // 2-in, 2-out identity weights with zero bias and huge gain behaves
        // like a (soft) threshold on each input.
        let m = weighted_transfer("h", 2, 2, vec![1.0, 0.0, 0.0, 1.0], vec![0.0, 0.0], 1.0, );
        let out = eval_outputs(&m, &[vec![2.0, -2.0]]);
        assert!(out[0][0] > 0.8);
        assert!(out[0][1] < 0.2);
    }

    #[test]
    fn ddm_accumulates_with_zero_noise() {
        let m = ddm_integrator("ddm", 1.0, 0.0, 0.1, 0.0);
        // One step with stimulus 1.0 should add rate*stim*dt = 0.1.
        let out = eval_outputs(&m, &[vec![1.0]]);
        assert!((out[0][0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn lca_units_compete() {
        let m = lca_integrator("lca", 2, 0.1, 0.5, 0.0, 0.1);
        let out = eval_outputs(&m, &[vec![1.0, 0.2]]);
        assert!(out[0][0] > out[0][1], "stronger stimulus accumulates more");
        assert!(out[0][1] >= 0.0, "activations are clamped at zero");
    }

    #[test]
    fn observer_noise_shrinks_with_attention() {
        let mut low = gaussian_observer("obs", 2, 1.0, 0.9);
        let mut high = low.clone();
        low.param_mut("attention").unwrap()[0] = 0.0;
        high.param_mut("attention").unwrap()[0] = 1.0;
        // With the same RNG seed the deviation scales with sigma.
        let o_low = eval_outputs(&low, &[vec![0.0, 0.0]]);
        let o_high = eval_outputs(&high, &[vec![0.0, 0.0]]);
        let d_low: f64 = o_low[0].iter().map(|x| x.abs()).sum();
        let d_high: f64 = o_high[0].iter().map(|x| x.abs()).sum();
        assert!(d_high < d_low);
    }

    #[test]
    fn dense_layer_is_tagged_pytorch() {
        let m = dense_layer("nn", 2, 2, vec![1.0, 0.0, 0.0, 1.0], vec![0.0, 0.0], false);
        assert_eq!(m.framework, Framework::PyTorch);
        let out = eval_outputs(&m, &[vec![0.5, -0.5]]);
        assert!((out[0][0] - 0.5f64.tanh()).abs() < 1e-12);
        assert!((out[0][1] - (-0.5f64).tanh()).abs() < 1e-12);
    }

    #[test]
    fn vectorized_and_scalar_necker_have_matching_shapes() {
        let adj = vec![
            0.0, 1.0, 1.0, //
            1.0, 0.0, 1.0, //
            1.0, 1.0, 0.0,
        ];
        let vec_m = necker_vectorized("neckv", 3, adj, 0.4, 2.0, 0.1);
        assert_eq!(vec_m.output_sizes, vec![3]);
        let scalar_m = necker_vertex("v0", 2, 0.4, 2.0, 0.1);
        assert_eq!(scalar_m.output_sizes, vec![1]);
        assert_eq!(scalar_m.input_sizes, vec![2]);
    }

    #[test]
    fn call_counter_counts() {
        let m = call_counter("probe");
        let out1 = eval_outputs(&m, &[vec![0.0]]);
        assert_eq!(out1[0][0], 1.0);
    }
}
