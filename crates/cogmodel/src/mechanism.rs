//! Mechanisms: the nodes of a cognitive model.

use crate::condition::Condition;
use distill_pyvm::{DynValue, Expr};

/// The environment a component was authored in. Distill lowers computations
/// from every framework to the same IR (§3.4.2); the baseline environments
/// cannot (PyPy/Pyston cannot run PyTorch components at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Framework {
    /// Native PsyNeuLink mechanism.
    #[default]
    PsyNeuLink,
    /// A neural network or optimizer imported from PyTorch.
    PyTorch,
    /// A plain numpy-style function.
    Numpy,
}

impl Framework {
    /// Human-readable name used in error messages and figures.
    pub fn name(&self) -> &'static str {
        match self {
            Framework::PsyNeuLink => "PsyNeuLink",
            Framework::PyTorch => "PyTorch",
            Framework::Numpy => "numpy",
        }
    }
}

/// The scalarized computation of a mechanism.
///
/// `outputs[p][i]` is the expression for element `i` of output port `p`;
/// `state_updates` are `(state name, element index, expression)` triples
/// applied after the outputs are computed (all expressions read the state
/// values from *before* the update, i.e. the update is simultaneous).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeComputation {
    /// Per output port, per element, the defining expression.
    pub outputs: Vec<Vec<Expr>>,
    /// Read-write state updates applied after output computation.
    pub state_updates: Vec<(String, usize, Expr)>,
}

impl NodeComputation {
    /// A computation with a single scalar output and no state updates.
    pub fn scalar(expr: Expr) -> NodeComputation {
        NodeComputation {
            outputs: vec![vec![expr]],
            state_updates: Vec::new(),
        }
    }

    /// Total expression size (compile-cost proxy).
    pub fn size(&self) -> usize {
        self.outputs
            .iter()
            .flatten()
            .map(Expr::size)
            .sum::<usize>()
            + self
                .state_updates
                .iter()
                .map(|(_, _, e)| e.size())
                .sum::<usize>()
    }

    /// Whether any expression draws random numbers.
    pub fn uses_rng(&self) -> bool {
        self.outputs.iter().flatten().any(Expr::uses_rng)
            || self.state_updates.iter().any(|(_, _, e)| e.uses_rng())
    }
}

/// A node of the model graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Mechanism {
    /// Unique name within the composition.
    pub name: String,
    /// Framework of origin.
    pub framework: Framework,
    /// Size (element count) of each input port.
    pub input_sizes: Vec<usize>,
    /// Size of each output port.
    pub output_sizes: Vec<usize>,
    /// Read-only parameters: `(name, values)`.
    pub params: Vec<(String, Vec<f64>)>,
    /// Read-write state with its initial values: `(name, values)`.
    pub state: Vec<(String, Vec<f64>)>,
    /// The node's computation.
    pub computation: NodeComputation,
    /// Activation condition consulted by the scheduler each pass.
    pub condition: Condition,
}

impl Mechanism {
    /// Create a mechanism with the given name and computation; ports and
    /// parameters are added with the builder-style methods.
    pub fn new(name: impl Into<String>, computation: NodeComputation) -> Mechanism {
        let output_sizes = computation.outputs.iter().map(Vec::len).collect();
        Mechanism {
            name: name.into(),
            framework: Framework::PsyNeuLink,
            input_sizes: Vec::new(),
            output_sizes,
            params: Vec::new(),
            state: Vec::new(),
            computation,
            condition: Condition::Always,
        }
    }

    /// Set the framework of origin.
    pub fn with_framework(mut self, fw: Framework) -> Mechanism {
        self.framework = fw;
        self
    }

    /// Declare the input port sizes.
    pub fn with_inputs(mut self, sizes: Vec<usize>) -> Mechanism {
        self.input_sizes = sizes;
        self
    }

    /// Add a read-only parameter.
    pub fn with_param(mut self, name: &str, values: Vec<f64>) -> Mechanism {
        self.params.push((name.to_string(), values));
        self
    }

    /// Add a read-write state entry with its initial value.
    pub fn with_state(mut self, name: &str, values: Vec<f64>) -> Mechanism {
        self.state.push((name.to_string(), values));
        self
    }

    /// Set the activation condition.
    pub fn with_condition(mut self, c: Condition) -> Mechanism {
        self.condition = c;
        self
    }

    /// Look up a read-only parameter's values.
    pub fn param(&self, name: &str) -> Option<&[f64]> {
        self.params
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// Mutably look up a read-only parameter (the controller writes the
    /// chosen control-signal values here between trials).
    pub fn param_mut(&mut self, name: &str) -> Option<&mut Vec<f64>> {
        self.params
            .iter_mut()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// The read-only parameter dictionary as a dynamic value (baseline path).
    pub fn params_dict(&self) -> DynValue {
        DynValue::Dict(
            self.params
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        if v.len() == 1 {
                            DynValue::Float(v[0])
                        } else {
                            DynValue::vector(v)
                        },
                    )
                })
                .collect(),
        )
    }

    /// The read-write state dictionary (initial values) as a dynamic value.
    pub fn state_dict(&self) -> DynValue {
        DynValue::Dict(
            self.state
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        if v.len() == 1 {
                            DynValue::Float(v[0])
                        } else {
                            DynValue::vector(v)
                        },
                    )
                })
                .collect(),
        )
    }

    /// Total number of scalar output elements.
    pub fn total_output_size(&self) -> usize {
        self.output_sizes.iter().sum()
    }

    /// Total number of scalar input elements.
    pub fn total_input_size(&self) -> usize {
        self.input_sizes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_pyvm::Expr as E;

    #[test]
    fn builder_and_accessors() {
        let comp = NodeComputation::scalar(E::mul(E::param("slope"), E::input(0)));
        let m = Mechanism::new("linear", comp)
            .with_inputs(vec![1])
            .with_param("slope", vec![2.0])
            .with_state("count", vec![0.0])
            .with_framework(Framework::Numpy);
        assert_eq!(m.output_sizes, vec![1]);
        assert_eq!(m.input_sizes, vec![1]);
        assert_eq!(m.param("slope"), Some(&[2.0][..]));
        assert_eq!(m.param("missing"), None);
        assert_eq!(m.framework.name(), "numpy");
        assert_eq!(m.total_output_size(), 1);
        assert_eq!(m.total_input_size(), 1);
    }

    #[test]
    fn dictionaries_mirror_parameters() {
        let comp = NodeComputation::scalar(E::input(0));
        let m = Mechanism::new("n", comp)
            .with_inputs(vec![1])
            .with_param("w", vec![1.0, 2.0, 3.0])
            .with_state("acc", vec![0.5]);
        let d = m.params_dict();
        assert_eq!(d.get("w").map(|v| v.len()), Some(3));
        let s = m.state_dict();
        assert_eq!(s.get("acc").and_then(DynValue::as_f64), Some(0.5));
    }

    #[test]
    fn computation_size_and_rng() {
        let c = NodeComputation {
            outputs: vec![vec![E::add(E::input(0), E::mul(E::param("noise"), E::RandNormal))]],
            state_updates: vec![("acc".into(), 0, E::add(E::state("acc"), E::lit(1.0)))],
        };
        assert!(c.uses_rng());
        assert!(c.size() > 5);
        let m = Mechanism::new("obs", c).with_inputs(vec![1]);
        assert_eq!(m.output_sizes, vec![1]);
    }

    #[test]
    fn multi_port_output_sizes_derived_from_computation() {
        let c = NodeComputation {
            outputs: vec![vec![E::input(0), E::input(0)], vec![E::lit(1.0)]],
            state_updates: vec![],
        };
        let m = Mechanism::new("multi", c);
        assert_eq!(m.output_sizes, vec![2, 1]);
        assert_eq!(m.total_output_size(), 3);
    }
}
