//! The optimizing controller: exhaustive grid search over control-signal
//! allocations (the `Control` node of the predator-prey model, §2.1).
//!
//! Each trial, the controller enumerates the cartesian product of its
//! control signals' allowed levels, evaluates the model under every
//! candidate allocation, scores each one as
//! `cost = -objective + Σ cost_coeff · level`, and commits the allocation
//! with the lowest cost (ties broken uniformly at random with reservoir
//! sampling, §3.3). The number of evaluations is `levels^signals` — 8 for
//! Predator-Prey S and 1,000,000 for XL — and is the workload Distill
//! parallelizes across CPU threads and GPU threads (§3.6).

use distill_pyvm::SplitMix64;

/// One controlled parameter and its allowed levels.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlSignal {
    /// Index of the mechanism whose parameter is controlled.
    pub node: usize,
    /// Name of the controlled (read-only) parameter on that mechanism.
    pub param: String,
    /// Element within the parameter.
    pub index: usize,
    /// Allowed allocation levels (the grid along this dimension).
    pub levels: Vec<f64>,
    /// Linear cost per unit of allocation (the "cost of paying attention").
    pub cost_coeff: f64,
}

/// The grid-search controller attached to a composition.
#[derive(Debug, Clone, PartialEq)]
pub struct Controller {
    /// The control signals (grid dimensions).
    pub signals: Vec<ControlSignal>,
    /// Node whose output port 0, element 0 is the objective to maximize.
    pub objective_node: usize,
    /// Output port of the objective node.
    pub objective_port: usize,
    /// Seed for the per-evaluation PRNG streams (§3.6 reproducibility).
    pub seed: u64,
}

impl Controller {
    /// Total number of grid points (`Π levels_i`).
    pub fn grid_size(&self) -> usize {
        self.signals.iter().map(|s| s.levels.len().max(1)).product()
    }

    /// Decode a flat grid index into one allocation level per signal.
    pub fn allocation(&self, mut index: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.signals.len());
        for s in &self.signals {
            let n = s.levels.len().max(1);
            out.push(s.levels[index % n]);
            index /= n;
        }
        out
    }

    /// The allocation cost term `Σ cost_coeff · level` for an allocation.
    pub fn allocation_cost(&self, allocation: &[f64]) -> f64 {
        self.signals
            .iter()
            .zip(allocation)
            .map(|(s, a)| s.cost_coeff * a)
            .sum()
    }

    /// Combine an objective value with the allocation cost into the scalar
    /// the grid search minimizes.
    pub fn total_cost(&self, objective: f64, allocation: &[f64]) -> f64 {
        -objective + self.allocation_cost(allocation)
    }
}

/// Reservoir-sampling argmin: keeps a single best index while scanning
/// candidate costs, choosing uniformly at random among ties without storing
/// them (§3.3). The generic driver is shared by the baseline runner, the
/// compiled single-thread driver and the per-chunk reduction of the
/// multicore/GPU backends.
#[derive(Debug, Clone, Copy)]
pub struct ReservoirArgmin {
    best_cost: f64,
    best_index: usize,
    ties_seen: u64,
    rng: SplitMix64,
}

impl ReservoirArgmin {
    /// Start an empty reservoir with the given tie-breaking seed.
    pub fn new(seed: u64) -> ReservoirArgmin {
        ReservoirArgmin {
            best_cost: f64::INFINITY,
            best_index: usize::MAX,
            ties_seen: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// Offer a candidate `(index, cost)`.
    pub fn offer(&mut self, index: usize, cost: f64) {
        if cost < self.best_cost {
            self.best_cost = cost;
            self.best_index = index;
            self.ties_seen = 1;
        } else if cost == self.best_cost {
            // k-th tie (1-based, counting the current best as the first) is
            // selected with probability 1/k — uniform over all ties.
            self.ties_seen += 1;
            if self.rng.uniform() < 1.0 / self.ties_seen as f64 {
                self.best_index = index;
            }
        }
    }

    /// Merge another reservoir (used to reduce per-thread results).
    pub fn merge(&mut self, other: &ReservoirArgmin) {
        if other.best_index == usize::MAX {
            return;
        }
        if other.best_cost < self.best_cost {
            self.best_cost = other.best_cost;
            self.best_index = other.best_index;
            self.ties_seen = other.ties_seen;
        } else if other.best_cost == self.best_cost && self.best_index != usize::MAX {
            let total = self.ties_seen + other.ties_seen;
            if self.rng.uniform() < other.ties_seen as f64 / total as f64 {
                self.best_index = other.best_index;
            }
            self.ties_seen = total;
        } else if self.best_index == usize::MAX {
            *self = *other;
        }
    }

    /// The winning index.
    pub fn best_index(&self) -> usize {
        self.best_index
    }

    /// The winning cost.
    pub fn best_cost(&self) -> f64 {
        self.best_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller_2x3() -> Controller {
        Controller {
            signals: vec![
                ControlSignal {
                    node: 0,
                    param: "attention".into(),
                    index: 0,
                    levels: vec![0.0, 1.0],
                    cost_coeff: 0.1,
                },
                ControlSignal {
                    node: 1,
                    param: "attention".into(),
                    index: 0,
                    levels: vec![0.0, 0.5, 1.0],
                    cost_coeff: 0.2,
                },
            ],
            objective_node: 2,
            objective_port: 0,
            seed: 7,
        }
    }

    #[test]
    fn grid_size_and_decoding() {
        let c = controller_2x3();
        assert_eq!(c.grid_size(), 6);
        let all: Vec<Vec<f64>> = (0..6).map(|i| c.allocation(i)).collect();
        // Every allocation is distinct and covers the cartesian product.
        for a in &all {
            assert_eq!(a.len(), 2);
        }
        let distinct: std::collections::HashSet<String> =
            all.iter().map(|a| format!("{a:?}")).collect();
        assert_eq!(distinct.len(), 6);
    }

    #[test]
    fn cost_combines_objective_and_allocation() {
        let c = controller_2x3();
        let alloc = vec![1.0, 0.5];
        assert!((c.allocation_cost(&alloc) - (0.1 + 0.1)).abs() < 1e-12);
        assert!((c.total_cost(2.0, &alloc) - (-2.0 + 0.2)).abs() < 1e-12);
    }

    #[test]
    fn reservoir_argmin_finds_minimum() {
        let mut r = ReservoirArgmin::new(1);
        for (i, c) in [5.0, 3.0, 4.0, 3.5].iter().enumerate() {
            r.offer(i, *c);
        }
        assert_eq!(r.best_index(), 1);
        assert_eq!(r.best_cost(), 3.0);
    }

    #[test]
    fn reservoir_ties_are_roughly_uniform() {
        // 3 tied minima; over many seeds each should win about a third of
        // the time.
        let mut wins = [0usize; 3];
        for seed in 0..3000 {
            let mut r = ReservoirArgmin::new(seed);
            for (i, c) in [1.0, 0.5, 0.5, 2.0, 0.5].iter().enumerate() {
                r.offer(i, *c);
            }
            let w = match r.best_index() {
                1 => 0,
                2 => 1,
                4 => 2,
                other => panic!("non-tied index {other} won"),
            };
            wins[w] += 1;
        }
        for w in wins {
            assert!((700..1300).contains(&w), "tie-breaking is skewed: {wins:?}");
        }
    }

    #[test]
    fn reservoir_merge_prefers_lower_cost() {
        let mut a = ReservoirArgmin::new(1);
        a.offer(0, 2.0);
        let mut b = ReservoirArgmin::new(2);
        b.offer(5, 1.0);
        a.merge(&b);
        assert_eq!(a.best_index(), 5);
        assert_eq!(a.best_cost(), 1.0);
        // Merging an empty reservoir changes nothing.
        let empty = ReservoirArgmin::new(3);
        a.merge(&empty);
        assert_eq!(a.best_index(), 5);
    }
}
