//! Compositions: the model graph, its projections, its controller, and the
//! sanitization run that discovers every type and shape (§2.2, §3.1).

use crate::condition::TrialEndSpec;
use crate::controller::Controller;
use crate::mechanism::{Framework, Mechanism};
use distill_pyvm::{DynValue, EvalContext, ExecMode, Interpreter, SplitMix64};
use std::collections::HashMap;
use std::fmt;

/// Trial termination condition (re-exported under the composition's name).
pub type TrialEnd = TrialEndSpec;

/// A projection: the output of one mechanism's port feeds a slice of another
/// mechanism's input port.
///
/// `feedback` projections close cycles (recurrent models such as the Necker
/// cube); they deliver the *previous* pass's value, while feed-forward
/// projections deliver the value computed earlier in the same pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Projection {
    /// Source mechanism index.
    pub from_node: usize,
    /// Source output port.
    pub from_port: usize,
    /// Destination mechanism index.
    pub to_node: usize,
    /// Destination input port.
    pub to_port: usize,
    /// Offset within the destination input port at which the source value is
    /// written.
    pub to_offset: usize,
    /// Whether this is a feedback (previous-pass) projection.
    pub feedback: bool,
}

/// Everything the sanitization run (§3.1) discovers about one mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeShape {
    /// Mechanism name.
    pub name: String,
    /// Input port sizes.
    pub input_sizes: Vec<usize>,
    /// Output port sizes.
    pub output_sizes: Vec<usize>,
    /// Read-only parameter names and element counts.
    pub param_shapes: Vec<(String, usize)>,
    /// Read-write state names and element counts.
    pub state_shapes: Vec<(String, usize)>,
    /// Whether the node draws random numbers (needs a PRNG state slot).
    pub uses_rng: bool,
    /// Framework of origin.
    pub framework: Framework,
}

/// The result of the sanitization run over a whole composition.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShapeInfo {
    /// Per-node shapes, indexed like `Composition::mechanisms`.
    pub nodes: Vec<NodeShape>,
}

impl ShapeInfo {
    /// Total number of scalar output slots across all nodes (the size of the
    /// current/previous output structures of §3.3).
    pub fn total_output_slots(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.output_sizes.iter().sum::<usize>())
            .sum()
    }

    /// Total number of read-only parameter slots.
    pub fn total_param_slots(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.param_shapes.iter().map(|(_, s)| s).sum::<usize>())
            .sum()
    }

    /// Total number of read-write state slots.
    pub fn total_state_slots(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.state_shapes.iter().map(|(_, s)| s).sum::<usize>())
            .sum()
    }
}

/// Errors raised while building or validating a composition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompositionError(pub String);

impl fmt::Display for CompositionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "composition error: {}", self.0)
    }
}

impl std::error::Error for CompositionError {}

/// A cognitive model: mechanisms, projections, designated inputs and
/// outputs, an optional grid-search controller and a trial-end condition.
#[derive(Debug, Clone, PartialEq)]
pub struct Composition {
    /// Model name (used in figures and reports).
    pub name: String,
    /// The nodes.
    pub mechanisms: Vec<Mechanism>,
    /// The edges.
    pub projections: Vec<Projection>,
    /// Nodes that receive the external trial input on their input port 0, in
    /// the order the trial input vectors are given.
    pub input_nodes: Vec<usize>,
    /// Nodes whose output port 0 is concatenated into the trial result.
    pub output_nodes: Vec<usize>,
    /// Optional grid-search controller.
    pub controller: Option<Controller>,
    /// Trial termination condition.
    pub trial_end: TrialEnd,
    /// Whether read-write state is reset to its initial values at the start
    /// of every trial.
    pub reset_state_each_trial: bool,
}

impl Composition {
    /// Create an empty composition that stops each trial after one pass.
    pub fn new(name: impl Into<String>) -> Composition {
        Composition {
            name: name.into(),
            mechanisms: Vec::new(),
            projections: Vec::new(),
            input_nodes: Vec::new(),
            output_nodes: Vec::new(),
            controller: None,
            trial_end: TrialEnd::AfterNPasses(1),
            reset_state_each_trial: true,
        }
    }

    /// Add a mechanism; returns its node index.
    pub fn add(&mut self, m: Mechanism) -> usize {
        self.mechanisms.push(m);
        self.mechanisms.len() - 1
    }

    /// Add a feed-forward projection writing the whole source port at offset
    /// `to_offset` of the destination port.
    pub fn connect(
        &mut self,
        from_node: usize,
        from_port: usize,
        to_node: usize,
        to_port: usize,
        to_offset: usize,
    ) {
        self.projections.push(Projection {
            from_node,
            from_port,
            to_node,
            to_port,
            to_offset,
            feedback: false,
        });
    }

    /// Add a feedback projection (delivers the previous pass's value).
    pub fn connect_feedback(
        &mut self,
        from_node: usize,
        from_port: usize,
        to_node: usize,
        to_port: usize,
        to_offset: usize,
    ) {
        self.projections.push(Projection {
            from_node,
            from_port,
            to_node,
            to_port,
            to_offset,
            feedback: true,
        });
    }

    /// Find a node index by mechanism name.
    pub fn node_by_name(&self, name: &str) -> Option<usize> {
        self.mechanisms.iter().position(|m| m.name == name)
    }

    /// Whether any mechanism comes from the given framework.
    pub fn uses_framework(&self, fw: Framework) -> bool {
        self.mechanisms.iter().any(|m| m.framework == fw)
    }

    /// Validate structural invariants: indices in range, projection slices
    /// inside their destination ports, feed-forward edges acyclic.
    ///
    /// # Errors
    /// Returns a [`CompositionError`] describing the first violation.
    pub fn validate(&self) -> Result<(), CompositionError> {
        let n = self.mechanisms.len();
        if n == 0 {
            return Err(CompositionError("composition has no mechanisms".into()));
        }
        for p in &self.projections {
            if p.from_node >= n || p.to_node >= n {
                return Err(CompositionError(format!(
                    "projection references unknown node ({} -> {})",
                    p.from_node, p.to_node
                )));
            }
            let src = &self.mechanisms[p.from_node];
            let dst = &self.mechanisms[p.to_node];
            let src_size = *src.output_sizes.get(p.from_port).ok_or_else(|| {
                CompositionError(format!(
                    "projection from missing port {} of {}",
                    p.from_port, src.name
                ))
            })?;
            let dst_size = *dst.input_sizes.get(p.to_port).ok_or_else(|| {
                CompositionError(format!(
                    "projection into missing port {} of {}",
                    p.to_port, dst.name
                ))
            })?;
            if p.to_offset + src_size > dst_size {
                return Err(CompositionError(format!(
                    "projection {} -> {} overflows destination port ({} + {} > {})",
                    src.name, dst.name, p.to_offset, src_size, dst_size
                )));
            }
        }
        for &i in self.input_nodes.iter().chain(&self.output_nodes) {
            if i >= n {
                return Err(CompositionError(format!("unknown input/output node {i}")));
            }
        }
        if let Some(c) = &self.controller {
            if c.objective_node >= n {
                return Err(CompositionError("controller objective node is unknown".into()));
            }
            for s in &c.signals {
                let m = self.mechanisms.get(s.node).ok_or_else(|| {
                    CompositionError(format!("control signal targets unknown node {}", s.node))
                })?;
                if m.param(&s.param).is_none() {
                    return Err(CompositionError(format!(
                        "control signal targets missing parameter {}.{}",
                        m.name, s.param
                    )));
                }
            }
        }
        // Feed-forward subgraph must be acyclic.
        self.topological_order().map(|_| ())
    }

    /// Topological order of the nodes over feed-forward projections only.
    ///
    /// # Errors
    /// Returns an error if the feed-forward subgraph contains a cycle (such
    /// cycles must be broken by marking projections as feedback).
    pub fn topological_order(&self) -> Result<Vec<usize>, CompositionError> {
        let n = self.mechanisms.len();
        let mut indegree = vec![0usize; n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for p in &self.projections {
            if p.feedback {
                continue;
            }
            succs[p.from_node].push(p.to_node);
            indegree[p.to_node] += 1;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(i);
            for &s in &succs[i] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    ready.push(s);
                }
            }
        }
        if order.len() != n {
            return Err(CompositionError(
                "feed-forward projections form a cycle; mark recurrent edges as feedback".into(),
            ));
        }
        // Stable-ish order: sort ready batches by index for determinism.
        Ok(order)
    }

    /// The sanitization run (§2.2 / §3.1): execute every mechanism once with
    /// default (zero) inputs through the dynamic interpreter, checking that
    /// every parameter and state entry resolves and that the computed output
    /// counts match the declared port sizes. Returns the shape inventory
    /// Distill's dynamic-to-static conversion is driven by.
    ///
    /// # Errors
    /// Returns a [`CompositionError`] if a node's computation fails or its
    /// shape disagrees with its declaration.
    pub fn sanitize(&self) -> Result<ShapeInfo, CompositionError> {
        self.validate()?;
        let mut interp = Interpreter::new(ExecMode::CPython);
        let mut rng = SplitMix64::new(0);
        let mut nodes = Vec::with_capacity(self.mechanisms.len());
        for m in &self.mechanisms {
            let inputs: Vec<DynValue> = m
                .input_sizes
                .iter()
                .map(|&s| DynValue::vector(&vec![0.0; s]))
                .collect();
            let params = m.params_dict();
            let mut state = m.state_dict();
            let mut produced = Vec::new();
            for port in &m.computation.outputs {
                for e in port {
                    let mut ctx = EvalContext {
                        inputs: &inputs,
                        params: &params,
                        state: &mut state,
                        rng: &mut rng,
                        cache_key: None,
                    };
                    let v = interp.eval(e, &mut ctx).map_err(|err| {
                        CompositionError(format!("sanitization of {} failed: {err}", m.name))
                    })?;
                    produced.push(v);
                }
            }
            let declared: usize = m.output_sizes.iter().sum();
            if produced.len() != declared {
                return Err(CompositionError(format!(
                    "sanitization of {}: produced {} output elements but {} are declared",
                    m.name,
                    produced.len(),
                    declared
                )));
            }
            for (name, index, e) in &m.computation.state_updates {
                let mut ctx = EvalContext {
                    inputs: &inputs,
                    params: &params,
                    state: &mut state,
                    rng: &mut rng,
                    cache_key: None,
                };
                let v = interp.eval(e, &mut ctx).map_err(|err| {
                    CompositionError(format!("sanitization of {} failed: {err}", m.name))
                })?;
                let mut ctx = EvalContext {
                    inputs: &inputs,
                    params: &params,
                    state: &mut state,
                    rng: &mut rng,
                    cache_key: None,
                };
                interp
                    .store_state(&mut ctx, name, *index, v)
                    .map_err(|err| {
                        CompositionError(format!("sanitization of {} failed: {err}", m.name))
                    })?;
            }
            nodes.push(NodeShape {
                name: m.name.clone(),
                input_sizes: m.input_sizes.clone(),
                output_sizes: m.output_sizes.clone(),
                param_shapes: m.params.iter().map(|(n, v)| (n.clone(), v.len())).collect(),
                state_shapes: m.state.iter().map(|(n, v)| (n.clone(), v.len())).collect(),
                uses_rng: m.computation.uses_rng(),
                framework: m.framework,
            });
        }
        Ok(ShapeInfo { nodes })
    }

    /// Incoming projections per `(node, port)`, grouped for the runner and
    /// the code generator.
    pub fn incoming(&self) -> HashMap<(usize, usize), Vec<Projection>> {
        let mut map: HashMap<(usize, usize), Vec<Projection>> = HashMap::new();
        for p in &self.projections {
            map.entry((p.to_node, p.to_port)).or_default().push(*p);
        }
        map
    }

    /// Total number of mechanisms.
    pub fn node_count(&self) -> usize {
        self.mechanisms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{identity, linear, logistic};

    fn two_node_chain() -> Composition {
        let mut c = Composition::new("chain");
        let a = c.add(identity("in", 2));
        let b = c.add(linear("lin", 2, 2.0, 0.0));
        c.connect(a, 0, b, 0, 0);
        c.input_nodes = vec![a];
        c.output_nodes = vec![b];
        c
    }

    #[test]
    fn validates_well_formed_model() {
        let c = two_node_chain();
        assert!(c.validate().is_ok());
        assert_eq!(c.topological_order().unwrap().len(), 2);
        assert_eq!(c.node_by_name("lin"), Some(1));
        assert_eq!(c.node_by_name("nope"), None);
    }

    #[test]
    fn rejects_port_overflow() {
        let mut c = two_node_chain();
        // Writing a 2-wide output at offset 1 of a 2-wide port overflows.
        c.connect(0, 0, 1, 0, 1);
        let err = c.validate().unwrap_err();
        assert!(err.0.contains("overflows"));
    }

    #[test]
    fn rejects_feedforward_cycles_but_accepts_feedback() {
        let mut c = Composition::new("loop");
        let a = c.add(logistic("a", 1, 1.0, 0.0));
        let b = c.add(logistic("b", 1, 1.0, 0.0));
        c.connect(a, 0, b, 0, 0);
        c.connect(b, 0, a, 0, 0);
        assert!(c.validate().is_err());
        // Marking the back edge as feedback resolves the cycle.
        c.projections.last_mut().unwrap().feedback = true;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn sanitization_reports_shapes() {
        let c = two_node_chain();
        let info = c.sanitize().unwrap();
        assert_eq!(info.nodes.len(), 2);
        assert_eq!(info.nodes[1].name, "lin");
        assert_eq!(info.nodes[1].output_sizes, vec![2]);
        assert_eq!(info.total_output_slots(), 4);
        assert_eq!(
            info.nodes[1]
                .param_shapes
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["slope", "intercept"]
        );
        assert!(!info.nodes[0].uses_rng);
    }

    #[test]
    fn sanitization_catches_shape_mismatch() {
        let mut c = two_node_chain();
        // Corrupt the declared output size.
        c.mechanisms[1].output_sizes = vec![3];
        let err = c.sanitize().unwrap_err();
        assert!(err.0.contains("declared"), "{err}");
    }

    #[test]
    fn incoming_projections_grouped_per_port() {
        let mut c = Composition::new("fanin");
        let a = c.add(identity("a", 1));
        let b = c.add(identity("b", 1));
        let d = c.add(identity("sum", 2));
        c.connect(a, 0, d, 0, 0);
        c.connect(b, 0, d, 0, 1);
        let inc = c.incoming();
        assert_eq!(inc[&(d, 0)].len(), 2);
        assert!(inc.get(&(a, 0)).is_none());
    }
}
