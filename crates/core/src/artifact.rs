//! Versioned on-disk serialization of compiled artifacts.
//!
//! A [`CompiledModel`] is the unit the serving layer caches and shares: the
//! optimized IR module plus the driver-facing layout and entry-point ids.
//! This module gives it a stable on-disk form so a serving process can warm
//! its artifact cache across restarts instead of recompiling every family.
//!
//! The format is a little-endian binary stream: an 8-byte magic, a `u32`
//! format version, then the compile configuration, entry-point ids, layout
//! tables and the full module (functions, value arenas, blocks, globals).
//! The version stamp is checked before anything else is decoded — a reload
//! from a different format version fails with
//! [`ArtifactError::StaleVersion`] rather than risking a silently skewed
//! decode; callers fall back to recompiling (see the serving cache). Bump
//! [`ARTIFACT_VERSION`] whenever the IR or this encoding changes shape.
//!
//! Round-tripping is exact: the decoded artifact compares equal to the
//! encoded one, so a runner built from a reloaded artifact (via
//! [`Session::build_with`](crate::Session::build_with)) is bit-identical to
//! one built from a fresh compile.

use distill_codegen::{CompileConfig, CompileMode, CompiledModel, Layout};
use distill_exec::{Tier, TierPolicy};
use distill_ir::{
    BinOp, BlockData, BlockId, CastKind, CmpPred, Constant, FuncId, Function, GepIndex, GlobalId,
    Inst, Intrinsic, Module, Terminator, Ty, UnOp, ValueData, ValueId, ValueKind,
};
use distill_opt::{OptLevel, PassStats};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;

/// Format version of the artifact encoding; bump on any shape change.
pub const ARTIFACT_VERSION: u32 = 1;

/// Magic bytes identifying an artifact file.
pub const ARTIFACT_MAGIC: [u8; 8] = *b"DSTLART\0";

/// Failures loading or decoding an artifact.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem failure reading or writing the artifact.
    Io(std::io::Error),
    /// The bytes do not start with the artifact magic.
    BadMagic,
    /// The artifact was written by a different format version.
    StaleVersion {
        /// Version stamped in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The stream is structurally invalid (truncated, bad tag, ...).
    Corrupt(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact io error: {e}"),
            ArtifactError::BadMagic => write!(f, "not a distill artifact (bad magic)"),
            ArtifactError::StaleVersion { found, expected } => write!(
                f,
                "stale artifact: format version {found}, this build expects {expected}"
            ),
            ArtifactError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> ArtifactError {
        ArtifactError::Io(e)
    }
}

/// Canonical cache/filename key for an artifact: the family name plus every
/// compile knob that changes the generated code or the engine policy it
/// rides with. Two sessions with equal keys can share one artifact.
pub fn artifact_key(family: &str, config: &CompileConfig) -> String {
    format!(
        "{family}-{mode:?}-{opt:?}-s{seed:x}-b{batch}-{tier}",
        mode = config.mode,
        opt = config.opt_level,
        seed = config.seed,
        batch = config.batch_capacity,
        tier = config.tier,
    )
}

/// Encode a compiled artifact to its versioned byte form.
pub fn serialize_artifact(compiled: &CompiledModel) -> Vec<u8> {
    let mut w = Writer::default();
    w.bytes.extend_from_slice(&ARTIFACT_MAGIC);
    w.u32(ARTIFACT_VERSION);
    enc_config(&mut w, &compiled.config);
    // Entry points and sizes.
    w.len(compiled.node_funcs.len());
    for f in &compiled.node_funcs {
        w.u32(f.index() as u32);
    }
    w.opt_u32(compiled.trial_func.map(|f| f.index() as u32));
    w.opt_u32(compiled.batch_func.map(|f| f.index() as u32));
    w.len(compiled.batch_capacity);
    w.opt_u32(compiled.eval_func.map(|f| f.index() as u32));
    w.len(compiled.grid_size);
    enc_pass_stats(&mut w, &compiled.opt_stats);
    enc_layout(&mut w, &compiled.layout);
    enc_module(&mut w, &compiled.module);
    w.bytes
}

/// Decode an artifact from its byte form, checking magic and version first.
///
/// # Errors
/// [`ArtifactError::BadMagic`] / [`ArtifactError::StaleVersion`] on
/// foreign or out-of-date streams, [`ArtifactError::Corrupt`] on anything
/// structurally invalid.
pub fn deserialize_artifact(bytes: &[u8]) -> Result<CompiledModel, ArtifactError> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(8)?;
    if magic != ARTIFACT_MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let found = r.u32()?;
    if found != ARTIFACT_VERSION {
        return Err(ArtifactError::StaleVersion {
            found,
            expected: ARTIFACT_VERSION,
        });
    }
    let config = dec_config(&mut r)?;
    let node_funcs = {
        let n = r.len()?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(FuncId::from_index(r.u32()? as usize));
        }
        v
    };
    let trial_func = r.opt_u32()?.map(|i| FuncId::from_index(i as usize));
    let batch_func = r.opt_u32()?.map(|i| FuncId::from_index(i as usize));
    let batch_capacity = r.len()?;
    let eval_func = r.opt_u32()?.map(|i| FuncId::from_index(i as usize));
    let grid_size = r.len()?;
    let opt_stats = dec_pass_stats(&mut r)?;
    let layout = dec_layout(&mut r)?;
    let module = dec_module(&mut r)?;
    if r.pos != r.bytes.len() {
        return Err(ArtifactError::Corrupt(format!(
            "{} trailing bytes",
            r.bytes.len() - r.pos
        )));
    }
    for f in node_funcs.iter().chain(&trial_func).chain(&batch_func).chain(&eval_func) {
        if f.index() >= module.functions.len() {
            return Err(ArtifactError::Corrupt(format!(
                "entry point {} out of range",
                f.index()
            )));
        }
    }
    Ok(CompiledModel {
        module,
        layout,
        node_funcs,
        trial_func,
        batch_func,
        batch_capacity,
        eval_func,
        grid_size,
        opt_stats,
        config,
    })
}

/// Write an artifact to `path` (atomically via a sibling temp file, so a
/// concurrent reader never observes a half-written artifact).
pub fn write_artifact(path: &Path, compiled: &CompiledModel) -> Result<(), ArtifactError> {
    let bytes = serialize_artifact(compiled);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Read and decode an artifact from `path`.
///
/// # Errors
/// Same surface as [`deserialize_artifact`], plus [`ArtifactError::Io`].
pub fn read_artifact(path: &Path) -> Result<CompiledModel, ArtifactError> {
    let mut bytes = std::fs::read(path)?;
    // Chaos seam: an armed plan flips one byte here, which must surface
    // through the codec's integrity checks below, never as a bad artifact.
    crate::chaos::corrupt_artifact_read(&mut bytes);
    deserialize_artifact(&bytes)
}

// ---------------------------------------------------------------------------
// Primitive stream.

#[derive(Default)]
struct Writer {
    bytes: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }
    fn str(&mut self, s: &str) {
        self.len(s.len());
        self.bytes.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        if self.bytes.len() - self.pos < n {
            return Err(ArtifactError::Corrupt("truncated stream".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool, ArtifactError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(ArtifactError::Corrupt(format!("bad bool tag {t}"))),
        }
    }
    fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// A length that must be plausible for the remaining stream (guards
    /// against allocating gigabytes from a corrupt count).
    fn len(&mut self) -> Result<usize, ArtifactError> {
        let v = self.u64()? as usize;
        if v > self.bytes.len().saturating_mul(8) {
            return Err(ArtifactError::Corrupt(format!("implausible length {v}")));
        }
        Ok(v)
    }
    fn f64(&mut self) -> Result<f64, ArtifactError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn opt_u32(&mut self) -> Result<Option<u32>, ArtifactError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            t => Err(ArtifactError::Corrupt(format!("bad option tag {t}"))),
        }
    }
    fn str(&mut self) -> Result<String, ArtifactError> {
        let n = self.len()?;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec())
            .map_err(|_| ArtifactError::Corrupt("non-utf8 string".into()))
    }
}

// ---------------------------------------------------------------------------
// Configuration and layout tables.

fn enc_config(w: &mut Writer, c: &CompileConfig) {
    w.u8(match c.mode {
        CompileMode::PerNode => 0,
        CompileMode::WholeModel => 1,
    });
    w.u8(match c.opt_level {
        OptLevel::O0 => 0,
        OptLevel::O1 => 1,
        OptLevel::O2 => 2,
        OptLevel::O3 => 3,
    });
    w.u64(c.seed);
    w.len(c.batch_capacity);
    match c.tier {
        TierPolicy::Fixed(t) => {
            w.u8(0);
            w.u8(match t {
                Tier::Reference => 0,
                Tier::Decoded => 1,
                Tier::Fused => 2,
                Tier::Threaded => 3,
            });
        }
        TierPolicy::Adaptive { hot_call_threshold } => {
            w.u8(1);
            w.u64(hot_call_threshold);
        }
    }
}

fn dec_config(r: &mut Reader) -> Result<CompileConfig, ArtifactError> {
    let mode = match r.u8()? {
        0 => CompileMode::PerNode,
        1 => CompileMode::WholeModel,
        t => return Err(ArtifactError::Corrupt(format!("bad mode tag {t}"))),
    };
    let opt_level = match r.u8()? {
        0 => OptLevel::O0,
        1 => OptLevel::O1,
        2 => OptLevel::O2,
        3 => OptLevel::O3,
        t => return Err(ArtifactError::Corrupt(format!("bad opt tag {t}"))),
    };
    let seed = r.u64()?;
    let batch_capacity = r.len()?;
    let tier = match r.u8()? {
        0 => TierPolicy::Fixed(match r.u8()? {
            0 => Tier::Reference,
            1 => Tier::Decoded,
            2 => Tier::Fused,
            3 => Tier::Threaded,
            t => return Err(ArtifactError::Corrupt(format!("bad tier tag {t}"))),
        }),
        1 => TierPolicy::Adaptive {
            hot_call_threshold: r.u64()?,
        },
        t => return Err(ArtifactError::Corrupt(format!("bad policy tag {t}"))),
    };
    Ok(CompileConfig {
        mode,
        opt_level,
        seed,
        batch_capacity,
        tier,
    })
}

fn enc_pass_stats(w: &mut Writer, s: &PassStats) {
    for v in [
        s.promoted_allocas,
        s.folded,
        s.dce_removed,
        s.cse_removed,
        s.cfg_simplified,
        s.licm_hoisted,
        s.inlined_calls,
    ] {
        w.len(v);
    }
}

fn dec_pass_stats(r: &mut Reader) -> Result<PassStats, ArtifactError> {
    Ok(PassStats {
        promoted_allocas: r.len()?,
        folded: r.len()?,
        dce_removed: r.len()?,
        cse_removed: r.len()?,
        cfg_simplified: r.len()?,
        licm_hoisted: r.len()?,
        inlined_calls: r.len()?,
    })
}

/// Hash maps are encoded with their entries sorted by key so the byte form
/// is deterministic (byte-equal artifacts for equal models).
fn enc_layout(w: &mut Writer, l: &Layout) {
    let mut params: Vec<_> = l.param_offsets.iter().collect();
    params.sort();
    w.len(params.len());
    for ((node, name), off) in params {
        w.len(*node);
        w.str(name);
        w.len(*off);
    }
    w.len(l.params_len);
    let mut ctrl: Vec<_> = l.controlled.iter().collect();
    ctrl.sort();
    w.len(ctrl.len());
    for ((node, name, elem), sig) in ctrl {
        w.len(*node);
        w.str(name);
        w.len(*elem);
        w.len(*sig);
    }
    let mut state: Vec<_> = l.state_offsets.iter().collect();
    state.sort();
    w.len(state.len());
    for ((node, name), off) in state {
        w.len(*node);
        w.str(name);
        w.len(*off);
    }
    w.len(l.state_len);
    w.len(l.out_offsets.len());
    for ports in &l.out_offsets {
        w.len(ports.len());
        for p in ports {
            w.len(*p);
        }
    }
    w.len(l.out_len);
    let mut ext: Vec<_> = l.ext_offsets.iter().collect();
    ext.sort();
    w.len(ext.len());
    for (node, off) in ext {
        w.len(*node);
        w.len(*off);
    }
    w.len(l.ext_len);
    w.len(l.trial_output_len);
}

fn dec_layout(r: &mut Reader) -> Result<Layout, ArtifactError> {
    let mut l = Layout::default();
    let n = r.len()?;
    let mut param_offsets = HashMap::with_capacity(n);
    for _ in 0..n {
        let node = r.len()?;
        let name = r.str()?;
        let off = r.len()?;
        param_offsets.insert((node, name), off);
    }
    l.param_offsets = param_offsets;
    l.params_len = r.len()?;
    let n = r.len()?;
    let mut controlled = HashMap::with_capacity(n);
    for _ in 0..n {
        let node = r.len()?;
        let name = r.str()?;
        let elem = r.len()?;
        let sig = r.len()?;
        controlled.insert((node, name, elem), sig);
    }
    l.controlled = controlled;
    let n = r.len()?;
    let mut state_offsets = HashMap::with_capacity(n);
    for _ in 0..n {
        let node = r.len()?;
        let name = r.str()?;
        let off = r.len()?;
        state_offsets.insert((node, name), off);
    }
    l.state_offsets = state_offsets;
    l.state_len = r.len()?;
    let n = r.len()?;
    let mut out_offsets = Vec::with_capacity(n);
    for _ in 0..n {
        let m = r.len()?;
        let mut ports = Vec::with_capacity(m);
        for _ in 0..m {
            ports.push(r.len()?);
        }
        out_offsets.push(ports);
    }
    l.out_offsets = out_offsets;
    l.out_len = r.len()?;
    let n = r.len()?;
    let mut ext_offsets = HashMap::with_capacity(n);
    for _ in 0..n {
        let node = r.len()?;
        let off = r.len()?;
        ext_offsets.insert(node, off);
    }
    l.ext_offsets = ext_offsets;
    l.ext_len = r.len()?;
    l.trial_output_len = r.len()?;
    Ok(l)
}

// ---------------------------------------------------------------------------
// IR: types, constants, instructions, functions, module.

fn enc_ty(w: &mut Writer, ty: &Ty) {
    match ty {
        Ty::F64 => w.u8(0),
        Ty::F32 => w.u8(1),
        Ty::I64 => w.u8(2),
        Ty::Bool => w.u8(3),
        Ty::Void => w.u8(4),
        Ty::Ptr(p) => {
            w.u8(5);
            enc_ty(w, p);
        }
        Ty::Array(elem, n) => {
            w.u8(6);
            enc_ty(w, elem);
            w.len(*n);
        }
        Ty::Struct(fields) => {
            w.u8(7);
            w.len(fields.len());
            for f in fields {
                enc_ty(w, f);
            }
        }
    }
}

fn dec_ty(r: &mut Reader) -> Result<Ty, ArtifactError> {
    Ok(match r.u8()? {
        0 => Ty::F64,
        1 => Ty::F32,
        2 => Ty::I64,
        3 => Ty::Bool,
        4 => Ty::Void,
        5 => Ty::Ptr(Box::new(dec_ty(r)?)),
        6 => {
            let elem = dec_ty(r)?;
            let n = r.len()?;
            Ty::Array(Box::new(elem), n)
        }
        7 => {
            let n = r.len()?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                fields.push(dec_ty(r)?);
            }
            Ty::Struct(fields)
        }
        t => return Err(ArtifactError::Corrupt(format!("bad type tag {t}"))),
    })
}

fn enc_const(w: &mut Writer, c: &Constant) {
    match c {
        Constant::F64(v) => {
            w.u8(0);
            w.f64(*v);
        }
        Constant::F32(v) => {
            w.u8(1);
            w.u32(v.to_bits());
        }
        Constant::I64(v) => {
            w.u8(2);
            w.u64(*v as u64);
        }
        Constant::Bool(v) => {
            w.u8(3);
            w.bool(*v);
        }
        Constant::Undef => w.u8(4),
    }
}

fn dec_const(r: &mut Reader) -> Result<Constant, ArtifactError> {
    Ok(match r.u8()? {
        0 => Constant::F64(r.f64()?),
        1 => Constant::F32(f32::from_bits(r.u32()?)),
        2 => Constant::I64(r.u64()? as i64),
        3 => Constant::Bool(r.bool()?),
        4 => Constant::Undef,
        t => return Err(ArtifactError::Corrupt(format!("bad constant tag {t}"))),
    })
}

const BIN_OPS: [BinOp; 16] = [
    BinOp::FAdd,
    BinOp::FSub,
    BinOp::FMul,
    BinOp::FDiv,
    BinOp::FRem,
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::SDiv,
    BinOp::SRem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::LShr,
    BinOp::AShr,
];

const CMP_PREDS: [CmpPred; 12] = [
    CmpPred::FEq,
    CmpPred::FNe,
    CmpPred::FLt,
    CmpPred::FLe,
    CmpPred::FGt,
    CmpPred::FGe,
    CmpPred::IEq,
    CmpPred::INe,
    CmpPred::ILt,
    CmpPred::ILe,
    CmpPred::IGt,
    CmpPred::IGe,
];

const CAST_KINDS: [CastKind; 6] = [
    CastKind::SiToFp,
    CastKind::FpToSi,
    CastKind::FpTrunc,
    CastKind::FpExt,
    CastKind::ZExtBool,
    CastKind::TruncBool,
];

fn enum_tag<T: PartialEq>(table: &[T], v: &T, what: &str) -> u8 {
    table
        .iter()
        .position(|t| t == v)
        .unwrap_or_else(|| panic!("{what} missing from artifact table")) as u8
}

fn enum_from_tag<T: Copy>(table: &[T], tag: u8, what: &str) -> Result<T, ArtifactError> {
    table
        .get(tag as usize)
        .copied()
        .ok_or_else(|| ArtifactError::Corrupt(format!("bad {what} tag {tag}")))
}

fn enc_value_ids(w: &mut Writer, ids: &[ValueId]) {
    w.len(ids.len());
    for id in ids {
        w.u32(id.index() as u32);
    }
}

fn dec_value_ids(r: &mut Reader) -> Result<Vec<ValueId>, ArtifactError> {
    let n = r.len()?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(ValueId::from_index(r.u32()? as usize));
    }
    Ok(v)
}

fn enc_inst(w: &mut Writer, inst: &Inst) {
    match inst {
        Inst::Bin { op, lhs, rhs } => {
            w.u8(0);
            w.u8(enum_tag(&BIN_OPS, op, "binop"));
            w.u32(lhs.index() as u32);
            w.u32(rhs.index() as u32);
        }
        Inst::Un { op, val } => {
            w.u8(1);
            w.u8(match op {
                UnOp::FNeg => 0,
                UnOp::Not => 1,
            });
            w.u32(val.index() as u32);
        }
        Inst::Cmp { pred, lhs, rhs } => {
            w.u8(2);
            w.u8(enum_tag(&CMP_PREDS, pred, "predicate"));
            w.u32(lhs.index() as u32);
            w.u32(rhs.index() as u32);
        }
        Inst::Select {
            cond,
            then_val,
            else_val,
        } => {
            w.u8(3);
            w.u32(cond.index() as u32);
            w.u32(then_val.index() as u32);
            w.u32(else_val.index() as u32);
        }
        Inst::Call { callee, args } => {
            w.u8(4);
            w.u32(callee.index() as u32);
            enc_value_ids(w, args);
        }
        Inst::IntrinsicCall { kind, args } => {
            w.u8(5);
            w.u8(enum_tag(Intrinsic::all(), kind, "intrinsic"));
            enc_value_ids(w, args);
        }
        Inst::Alloca { ty } => {
            w.u8(6);
            enc_ty(w, ty);
        }
        Inst::Load { ptr } => {
            w.u8(7);
            w.u32(ptr.index() as u32);
        }
        Inst::Store { ptr, value } => {
            w.u8(8);
            w.u32(ptr.index() as u32);
            w.u32(value.index() as u32);
        }
        Inst::Gep { base, indices } => {
            w.u8(9);
            w.u32(base.index() as u32);
            w.len(indices.len());
            for idx in indices {
                match idx {
                    GepIndex::Const(i) => {
                        w.u8(0);
                        w.len(*i);
                    }
                    GepIndex::Dyn(v) => {
                        w.u8(1);
                        w.u32(v.index() as u32);
                    }
                }
            }
        }
        Inst::Phi { ty, incoming } => {
            w.u8(10);
            enc_ty(w, ty);
            w.len(incoming.len());
            for (blk, val) in incoming {
                w.u32(blk.index() as u32);
                w.u32(val.index() as u32);
            }
        }
        Inst::Cast { kind, val, to } => {
            w.u8(11);
            w.u8(enum_tag(&CAST_KINDS, kind, "cast"));
            w.u32(val.index() as u32);
            enc_ty(w, to);
        }
        Inst::GlobalAddr { global } => {
            w.u8(12);
            w.u32(global.index() as u32);
        }
    }
}

fn dec_inst(r: &mut Reader) -> Result<Inst, ArtifactError> {
    Ok(match r.u8()? {
        0 => Inst::Bin {
            op: enum_from_tag(&BIN_OPS, r.u8()?, "binop")?,
            lhs: ValueId::from_index(r.u32()? as usize),
            rhs: ValueId::from_index(r.u32()? as usize),
        },
        1 => Inst::Un {
            op: match r.u8()? {
                0 => UnOp::FNeg,
                1 => UnOp::Not,
                t => return Err(ArtifactError::Corrupt(format!("bad unop tag {t}"))),
            },
            val: ValueId::from_index(r.u32()? as usize),
        },
        2 => Inst::Cmp {
            pred: enum_from_tag(&CMP_PREDS, r.u8()?, "predicate")?,
            lhs: ValueId::from_index(r.u32()? as usize),
            rhs: ValueId::from_index(r.u32()? as usize),
        },
        3 => Inst::Select {
            cond: ValueId::from_index(r.u32()? as usize),
            then_val: ValueId::from_index(r.u32()? as usize),
            else_val: ValueId::from_index(r.u32()? as usize),
        },
        4 => Inst::Call {
            callee: FuncId::from_index(r.u32()? as usize),
            args: dec_value_ids(r)?,
        },
        5 => Inst::IntrinsicCall {
            kind: enum_from_tag(Intrinsic::all(), r.u8()?, "intrinsic")?,
            args: dec_value_ids(r)?,
        },
        6 => Inst::Alloca { ty: dec_ty(r)? },
        7 => Inst::Load {
            ptr: ValueId::from_index(r.u32()? as usize),
        },
        8 => Inst::Store {
            ptr: ValueId::from_index(r.u32()? as usize),
            value: ValueId::from_index(r.u32()? as usize),
        },
        9 => {
            let base = ValueId::from_index(r.u32()? as usize);
            let n = r.len()?;
            let mut indices = Vec::with_capacity(n);
            for _ in 0..n {
                indices.push(match r.u8()? {
                    0 => GepIndex::Const(r.len()?),
                    1 => GepIndex::Dyn(ValueId::from_index(r.u32()? as usize)),
                    t => return Err(ArtifactError::Corrupt(format!("bad gep tag {t}"))),
                });
            }
            Inst::Gep { base, indices }
        }
        10 => {
            let ty = dec_ty(r)?;
            let n = r.len()?;
            let mut incoming = Vec::with_capacity(n);
            for _ in 0..n {
                let blk = BlockId::from_index(r.u32()? as usize);
                let val = ValueId::from_index(r.u32()? as usize);
                incoming.push((blk, val));
            }
            Inst::Phi { ty, incoming }
        }
        11 => Inst::Cast {
            kind: enum_from_tag(&CAST_KINDS, r.u8()?, "cast")?,
            val: ValueId::from_index(r.u32()? as usize),
            to: dec_ty(r)?,
        },
        12 => Inst::GlobalAddr {
            global: GlobalId::from_index(r.u32()? as usize),
        },
        t => return Err(ArtifactError::Corrupt(format!("bad inst tag {t}"))),
    })
}

fn enc_term(w: &mut Writer, term: &Terminator) {
    match term {
        Terminator::Br(b) => {
            w.u8(0);
            w.u32(b.index() as u32);
        }
        Terminator::CondBr {
            cond,
            then_blk,
            else_blk,
        } => {
            w.u8(1);
            w.u32(cond.index() as u32);
            w.u32(then_blk.index() as u32);
            w.u32(else_blk.index() as u32);
        }
        Terminator::Ret(v) => {
            w.u8(2);
            w.opt_u32(v.map(|v| v.index() as u32));
        }
        Terminator::Unreachable => w.u8(3),
    }
}

fn dec_term(r: &mut Reader) -> Result<Terminator, ArtifactError> {
    Ok(match r.u8()? {
        0 => Terminator::Br(BlockId::from_index(r.u32()? as usize)),
        1 => Terminator::CondBr {
            cond: ValueId::from_index(r.u32()? as usize),
            then_blk: BlockId::from_index(r.u32()? as usize),
            else_blk: BlockId::from_index(r.u32()? as usize),
        },
        2 => Terminator::Ret(r.opt_u32()?.map(|v| ValueId::from_index(v as usize))),
        3 => Terminator::Unreachable,
        t => return Err(ArtifactError::Corrupt(format!("bad terminator tag {t}"))),
    })
}

fn enc_function(w: &mut Writer, f: &Function) {
    w.str(&f.name);
    w.len(f.params.len());
    for p in &f.params {
        enc_ty(w, p);
    }
    enc_ty(w, &f.ret_ty);
    w.bool(f.is_declaration);
    w.len(f.values.len());
    for v in &f.values {
        match &v.kind {
            ValueKind::Param(i) => {
                w.u8(0);
                w.len(*i);
            }
            ValueKind::Const(c) => {
                w.u8(1);
                enc_const(w, c);
            }
            ValueKind::Inst(inst) => {
                w.u8(2);
                enc_inst(w, inst);
            }
        }
        enc_ty(w, &v.ty);
        match &v.name {
            None => w.u8(0),
            Some(n) => {
                w.u8(1);
                w.str(n);
            }
        }
    }
    w.len(f.blocks.len());
    for b in &f.blocks {
        w.str(&b.name);
        enc_value_ids(w, &b.insts);
        match &b.term {
            None => w.u8(0),
            Some(t) => {
                w.u8(1);
                enc_term(w, t);
            }
        }
    }
    w.len(f.layout.len());
    for b in &f.layout {
        w.u32(b.index() as u32);
    }
}

fn dec_function(r: &mut Reader) -> Result<Function, ArtifactError> {
    let name = r.str()?;
    let n = r.len()?;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        params.push(dec_ty(r)?);
    }
    let ret_ty = dec_ty(r)?;
    let is_declaration = r.bool()?;
    let n = r.len()?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let kind = match r.u8()? {
            0 => ValueKind::Param(r.len()?),
            1 => ValueKind::Const(dec_const(r)?),
            2 => ValueKind::Inst(dec_inst(r)?),
            t => return Err(ArtifactError::Corrupt(format!("bad value tag {t}"))),
        };
        let ty = dec_ty(r)?;
        let name = match r.u8()? {
            0 => None,
            1 => Some(r.str()?),
            t => return Err(ArtifactError::Corrupt(format!("bad name tag {t}"))),
        };
        values.push(ValueData { kind, ty, name });
    }
    let n = r.len()?;
    let mut blocks = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let insts = dec_value_ids(r)?;
        let term = match r.u8()? {
            0 => None,
            1 => Some(dec_term(r)?),
            t => return Err(ArtifactError::Corrupt(format!("bad term tag {t}"))),
        };
        blocks.push(BlockData { name, insts, term });
    }
    let n = r.len()?;
    let mut layout = Vec::with_capacity(n);
    for _ in 0..n {
        layout.push(BlockId::from_index(r.u32()? as usize));
    }
    Ok(Function {
        name,
        params,
        ret_ty,
        values,
        blocks,
        layout,
        is_declaration,
    })
}

fn enc_module(w: &mut Writer, m: &Module) {
    w.str(&m.name);
    w.len(m.globals.len());
    for g in &m.globals {
        w.str(&g.name);
        enc_ty(w, &g.ty);
        w.len(g.init.len());
        for c in &g.init {
            enc_const(w, c);
        }
        w.bool(g.mutable);
    }
    w.len(m.functions.len());
    for f in &m.functions {
        enc_function(w, f);
    }
}

fn dec_module(r: &mut Reader) -> Result<Module, ArtifactError> {
    let name = r.str()?;
    // Rebuild through the arena API so the module's name→id indices are
    // reconstructed alongside the arenas.
    let mut m = Module::new(name);
    let n = r.len()?;
    for _ in 0..n {
        let name = r.str()?;
        let ty = dec_ty(r)?;
        let k = r.len()?;
        let mut init = Vec::with_capacity(k);
        for _ in 0..k {
            init.push(dec_const(r)?);
        }
        let mutable = r.bool()?;
        if init.len() != ty.slot_count() {
            return Err(ArtifactError::Corrupt(format!(
                "global {name}: {} init slots for type with {}",
                init.len(),
                ty.slot_count()
            )));
        }
        if m.global_by_name(&name).is_some() {
            return Err(ArtifactError::Corrupt(format!("duplicate global {name}")));
        }
        m.add_global(name, ty, init, mutable);
    }
    let n = r.len()?;
    for _ in 0..n {
        let f = dec_function(r)?;
        if m.function_by_name(&f.name).is_some() {
            return Err(ArtifactError::Corrupt(format!(
                "duplicate function {}",
                f.name
            )));
        }
        m.add_function(f);
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_models::predator_prey_s;

    fn compiled() -> CompiledModel {
        distill_codegen::compile(&predator_prey_s().model, CompileConfig::default()).unwrap()
    }

    #[test]
    fn round_trip_is_exact() {
        let c = compiled();
        let bytes = serialize_artifact(&c);
        let d = deserialize_artifact(&bytes).unwrap();
        assert_eq!(c.module, d.module);
        assert_eq!(c.layout, d.layout);
        assert_eq!(c.node_funcs, d.node_funcs);
        assert_eq!(c.trial_func, d.trial_func);
        assert_eq!(c.batch_func, d.batch_func);
        assert_eq!(c.batch_capacity, d.batch_capacity);
        assert_eq!(c.eval_func, d.eval_func);
        assert_eq!(c.grid_size, d.grid_size);
        assert_eq!(c.opt_stats, d.opt_stats);
        assert_eq!(c.config, d.config);
    }

    #[test]
    fn serialization_is_deterministic() {
        let c = compiled();
        assert_eq!(serialize_artifact(&c), serialize_artifact(&c));
    }

    #[test]
    fn reloaded_artifact_runs_identically() {
        use crate::{RunSpec, Session};
        let w = predator_prey_s();
        let c = compiled();
        let reloaded = deserialize_artifact(&serialize_artifact(&c)).unwrap();
        let spec = RunSpec::new(w.inputs.clone(), 3);
        let fresh = Session::new(&w.model).build_with(c).unwrap().run(&spec).unwrap();
        let warm = Session::new(&w.model)
            .build_with(reloaded)
            .unwrap()
            .run(&spec)
            .unwrap();
        assert_eq!(fresh.outputs, warm.outputs);
        assert_eq!(fresh.passes, warm.passes);
    }

    #[test]
    fn stale_version_is_rejected() {
        let mut bytes = serialize_artifact(&compiled());
        // The version stamp sits right after the 8-byte magic.
        bytes[8] = bytes[8].wrapping_add(1);
        match deserialize_artifact(&bytes) {
            Err(ArtifactError::StaleVersion { found, expected }) => {
                assert_eq!(expected, ARTIFACT_VERSION);
                assert_ne!(found, ARTIFACT_VERSION);
            }
            other => panic!("expected stale version, got {other:?}"),
        }
    }

    #[test]
    fn foreign_bytes_are_rejected() {
        assert!(matches!(
            deserialize_artifact(b"not an artifact at all"),
            Err(ArtifactError::BadMagic)
        ));
        let mut bytes = serialize_artifact(&compiled());
        bytes.truncate(bytes.len() / 2);
        assert!(matches!(
            deserialize_artifact(&bytes),
            Err(ArtifactError::Corrupt(_))
        ));
    }

    #[test]
    fn corruption_sweep_yields_typed_errors_never_panics() {
        // Truncate at every prefix length and bit-flip on a stride across
        // the whole buffer: decoding must always return either a valid
        // artifact or a typed error — no panic, no partial state escaping.
        // This is the property the distributed sweep and the serving cache
        // lean on when artifacts cross process and disk boundaries.
        let clean = serialize_artifact(&compiled());
        for cut in (0..clean.len()).step_by(97).chain([clean.len() - 1]) {
            let r = std::panic::catch_unwind(|| deserialize_artifact(&clean[..cut]));
            let decoded = r.unwrap_or_else(|_| panic!("panicked on truncation at {cut}"));
            assert!(decoded.is_err(), "truncation at {cut} must not decode");
        }
        for i in (0..clean.len()).step_by(53) {
            let mut bad = clean.clone();
            bad[i] ^= 0x08;
            let r = std::panic::catch_unwind(|| deserialize_artifact(&bad));
            // A flip may land in a don't-care byte and still decode; what is
            // forbidden is panicking.
            assert!(r.is_ok(), "panicked on bit flip at {i}");
        }

        // The same guarantees through the file path `read_artifact` takes.
        let dir =
            std::env::temp_dir().join(format!("distill-artifact-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.dstl");
        std::fs::write(&path, &clean[..clean.len() / 2]).unwrap();
        assert!(matches!(read_artifact(&path), Err(ArtifactError::Corrupt(_))));
        let mut flipped = clean.clone();
        let mid = clean.len() / 2;
        flipped[mid] ^= 0x01;
        std::fs::write(&path, &flipped).unwrap();
        let _ = read_artifact(&path); // typed result either way, proven above
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn artifact_key_separates_configs() {
        let base = CompileConfig::default();
        let mut other = base;
        other.seed = 1;
        assert_ne!(artifact_key("a", &base), artifact_key("a", &other));
        assert_ne!(artifact_key("a", &base), artifact_key("b", &base));
        assert_eq!(artifact_key("a", &base), artifact_key("a", &base));
    }

    #[test]
    fn write_read_file_round_trip() {
        let dir = std::env::temp_dir().join(format!("distill-artifact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pp2.dart");
        let c = compiled();
        write_artifact(&path, &c).unwrap();
        let d = read_artifact(&path).unwrap();
        assert_eq!(c.module, d.module);
        std::fs::remove_dir_all(&dir).ok();
    }
}
