//! The [`Session`] builder: one model, one compile configuration, one
//! execution [`Target`] — built into a boxed [`Runner`].

use crate::runner::{BaselineBackend, CompiledBackend, CompiledDriver, GridStrategy, Runner};
use crate::DistillError;
use distill_cogmodel::{BaselineRunner, Composition};
use distill_codegen::{compile, CompileConfig, CompileMode, CompiledModel};
use distill_exec::GpuConfig;
use distill_opt::OptLevel;
use distill_pyvm::ExecMode;

/// Where a [`Session`] executes its model.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(Default)]
pub enum Target {
    /// The dynamic baseline interpreter in one of the §5 environments; no
    /// compilation happens.
    Baseline(ExecMode),
    /// Compiled execution on a single core (the default). Whole-model
    /// artifacts run the compiled trial function — batched through
    /// `trials_batch` when the spec asks for `batch > 1`; per-node artifacts
    /// keep the scheduler outside the compiled code.
    #[default]
    SingleCore,
    /// Compiled execution with the controller's grid search split across OS
    /// threads (Fig. 5c, `mCPU`). The scheduler is driven per node so the
    /// grid phase can be extracted; models without a controller execute like
    /// a per-node single-core run.
    MultiCore {
        /// Worker thread count for the grid search.
        threads: usize,
    },
    /// Compiled execution with the grid search on the simulated SIMT GPU
    /// (Fig. 5c / Fig. 6); the run result carries the modelled
    /// [`distill_exec::GpuRunReport`].
    Gpu(GpuConfig),
}


/// Builder tying a model to compile-time knobs and an execution target.
///
/// ```
/// use distill::{RunSpec, Session, Target};
/// use distill_models::predator_prey_s;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let workload = predator_prey_s();
/// let mut runner = Session::new(&workload.model).build()?;
/// let result = runner.run(&RunSpec::new(workload.inputs.clone(), 2).with_batch(2))?;
/// assert_eq!(result.outputs.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    model: Composition,
    config: CompileConfig,
    target: Target,
    eval_budget: Option<u64>,
}

impl Session {
    /// Start a session for `model` with the default compile configuration
    /// and the [`Target::SingleCore`] target.
    pub fn new(model: &Composition) -> Session {
        Session {
            model: model.clone(),
            config: CompileConfig::default(),
            target: Target::default(),
            eval_budget: None,
        }
    }

    /// Select the execution target.
    #[must_use]
    pub fn target(mut self, target: Target) -> Session {
        self.target = target;
        self
    }

    /// Set the optimization level (Fig. 7's O0–O3).
    #[must_use]
    pub fn opt_level(mut self, level: OptLevel) -> Session {
        self.config.opt_level = level;
        self
    }

    /// Select per-node vs whole-model compilation (Fig. 5b).
    #[must_use]
    pub fn mode(mut self, mode: CompileMode) -> Session {
        self.config.mode = mode;
        self
    }

    /// Set the model seed (shared by compiled PRNG streams and the baseline).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Session {
        self.config.seed = seed;
        self
    }

    /// Set the batched entry point's capacity (trials per engine entry);
    /// `0` disables batched codegen.
    #[must_use]
    pub fn batch_capacity(mut self, capacity: usize) -> Session {
        self.config.batch_capacity = capacity;
        self
    }

    /// Select the execution tier (or tier-up policy) the runner's engine
    /// uses — see [`distill_exec::TierPolicy`]. Defaults to the fused
    /// interpreter.
    ///
    /// The `DISTILL_TIER` environment override wins over an explicit
    /// policy: when the environment requests a tier, every runner of the
    /// process uses it regardless of this knob, so a whole A/B sweep can be
    /// forced without touching call sites.
    #[must_use]
    pub fn tier(mut self, policy: distill_exec::TierPolicy) -> Session {
        self.config.tier = policy;
        self
    }

    /// Replace the whole compile configuration at once.
    #[must_use]
    pub fn compile_config(mut self, config: CompileConfig) -> Session {
        self.config = config;
        self
    }

    /// Budget (expression evaluations) for baseline targets; exceeding it
    /// fails the run with the paper's "did not finish" annotation. Ignored
    /// by compiled targets.
    #[must_use]
    pub fn eval_budget(mut self, budget: u64) -> Session {
        self.eval_budget = Some(budget);
        self
    }

    /// The model this session will run.
    pub fn model(&self) -> &Composition {
        &self.model
    }

    /// The compile configuration the session will use.
    pub fn config(&self) -> CompileConfig {
        self.config
    }

    /// Build the runner for the selected target.
    ///
    /// # Errors
    /// [`DistillError::Codegen`] when compilation fails (compiled targets
    /// only; baseline targets never compile).
    pub fn build(self) -> Result<Box<dyn Runner>, DistillError> {
        self.build_inner(None)
    }

    /// Build the runner for the selected target around a pre-compiled
    /// artifact, skipping compilation.
    ///
    /// The artifact must come from this session's model (e.g. [`compile`] or
    /// a previous runner's [`Runner::compiled`]); this is the reuse path for
    /// sweeps over run-time-only knobs such as [`Target::Gpu`]
    /// configurations, where recompiling identical IR per configuration
    /// would dominate. Baseline targets ignore the artifact.
    ///
    /// # Errors
    /// Same surface as [`Session::build`].
    pub fn build_with(self, compiled: CompiledModel) -> Result<Box<dyn Runner>, DistillError> {
        self.build_inner(Some(compiled))
    }

    fn build_inner(
        self,
        artifact: Option<CompiledModel>,
    ) -> Result<Box<dyn Runner>, DistillError> {
        let grid = match self.target {
            Target::Baseline(mode) => {
                let mut runner = BaselineRunner::new(mode).with_seed(self.config.seed);
                runner.eval_budget = self.eval_budget;
                return Ok(Box::new(BaselineBackend {
                    model: self.model,
                    runner,
                }));
            }
            Target::SingleCore => GridStrategy::Serial,
            Target::MultiCore { threads } => GridStrategy::MultiCore { threads },
            Target::Gpu(config) => GridStrategy::Gpu(config),
        };
        // Parallel grid targets drive the scheduler per node — the grid
        // phase must live outside the compiled trial function — but codegen
        // itself runs as configured, so the artifact keeps its whole-model
        // entry points for anything else that inspects it.
        let compiled = match artifact {
            Some(compiled) => compiled,
            None => compile(&self.model, self.config)?,
        };
        Ok(Box::new(CompiledBackend {
            driver: CompiledDriver::new(compiled, self.model),
            grid,
        }))
    }
}
