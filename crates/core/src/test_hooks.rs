//! Deterministic fault hooks for robustness tests.
//!
//! Production code must never depend on this module; it exists so
//! integration tests can inject a failure at a precisely chosen point in an
//! otherwise healthy run — e.g. panic a shard worker mid-sweep and assert
//! the driver surfaces a typed [`crate::DistillError`] instead of hanging a
//! join or returning a silent partial result. Hooks are process-global
//! atomics, so tests that arm one should run in their own process (their own
//! integration-test binary) or disarm it before returning.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Sentinel meaning "no trial armed".
const DISARMED: usize = usize::MAX;

static PANIC_TRIAL: AtomicUsize = AtomicUsize::new(DISARMED);

/// Arm (or with `None` disarm) a panic on the given absolute trial index:
/// the next chunk whose window covers that trial panics before executing,
/// on whatever thread picked the chunk up.
pub fn panic_on_trial(trial: Option<usize>) {
    PANIC_TRIAL.store(trial.unwrap_or(DISARMED), Ordering::SeqCst);
}

/// Called by the trial-chunk executor with its `[lo, lo + n)` window; panics
/// when the armed trial falls inside it.
pub(crate) fn check_panic_trial(lo: usize, n: usize) {
    let t = PANIC_TRIAL.load(Ordering::SeqCst);
    if t != DISARMED && t >= lo && t < lo + n {
        panic!("test hook: injected panic on trial {t}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_hook_is_inert_and_armed_hook_fires_in_window() {
        check_panic_trial(0, 1000);
        panic_on_trial(Some(7));
        check_panic_trial(0, 7); // window [0, 7) does not include 7
        check_panic_trial(8, 100);
        let hit = std::panic::catch_unwind(|| check_panic_trial(0, 8));
        panic_on_trial(None);
        assert!(hit.is_err(), "armed trial inside the window must panic");
        check_panic_trial(0, 1000);
    }
}
