//! Deterministic fault hooks for robustness tests.
//!
//! Superseded by the unified chaos injector in [`crate::chaos`], which
//! generalizes this module's single trial-panic hook into a seeded,
//! schedule-driven fault plan shared by the serving daemon, the
//! distributed sweep and the tests. This shim keeps the original arming
//! surface working for existing suites; new code should arm a
//! [`crate::chaos::ChaosPlan`] instead.

/// Arm (or with `None` disarm) a panic on the given absolute trial index:
/// the next chunk whose window covers that trial panics before executing,
/// on whatever thread picked the chunk up. Delegates to
/// [`crate::chaos::panic_on_trial`]; note the chaos semantics — the fault
/// fires once, then self-disarms.
pub fn panic_on_trial(trial: Option<usize>) {
    crate::chaos::panic_on_trial(trial);
}
