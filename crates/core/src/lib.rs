//! `distill` — the top-level API of the Distill reproduction.
//!
//! This crate ties the substrates together into the tool the paper
//! describes: take a PsyNeuLink-style [`Composition`], compile it with
//! domain-specific knowledge ([`compile`]), and execute the compiled model
//! orders of magnitude faster than the dynamic baseline — on one core, on
//! all cores, or on the (simulated) GPU — while also exposing the
//! model-level analyses of §4 through the re-exported `analysis` module.
//!
//! # Quickstart
//!
//! ```
//! use distill::{compile, CompileConfig, CompiledRunner};
//! use distill_models::predator_prey_s;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = predator_prey_s();
//! let compiled = compile(&workload.model, CompileConfig::default())?;
//! let mut runner = CompiledRunner::new(compiled)?;
//! let result = runner.run(&workload.inputs, 2)?;
//! assert_eq!(result.outputs.len(), 2);
//! # Ok(())
//! # }
//! ```

pub use distill_analysis as analysis;
pub use distill_codegen::{compile, CompileConfig, CompileMode, CompiledModel};
pub use distill_cogmodel::{BaselineRunner, Composition, RunError};
pub use distill_exec::{Engine, GpuConfig, GpuRunReport, ParallelResult};
pub use distill_opt::OptLevel;
pub use distill_pyvm::ExecMode;

use distill_cogmodel::composition::TrialEnd;
use distill_cogmodel::runner::TrialInput;
use distill_codegen::global_names as gn;
use distill_exec::{gpu, mcpu, ExecError, Value};
use std::fmt;
use std::time::{Duration, Instant};

/// Errors surfaced when driving a compiled model.
#[derive(Debug)]
pub enum DistillError {
    /// Code generation failed.
    Codegen(distill_codegen::CodegenError),
    /// The execution engine failed.
    Exec(ExecError),
    /// The request does not match the compiled artifact (e.g. asking for a
    /// whole-model run of a per-node compilation).
    Driver(String),
}

impl fmt::Display for DistillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistillError::Codegen(e) => write!(f, "{e}"),
            DistillError::Exec(e) => write!(f, "{e}"),
            DistillError::Driver(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for DistillError {}

impl From<distill_codegen::CodegenError> for DistillError {
    fn from(e: distill_codegen::CodegenError) -> Self {
        DistillError::Codegen(e)
    }
}

impl From<ExecError> for DistillError {
    fn from(e: ExecError) -> Self {
        DistillError::Exec(e)
    }
}

/// Results of running a compiled model.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledRunResult {
    /// Per trial, the concatenated output-node values at trial end.
    pub outputs: Vec<Vec<f64>>,
    /// Per trial, the number of scheduler passes executed.
    pub passes: Vec<u64>,
}

/// Drives a [`CompiledModel`] through the execution engine.
#[derive(Debug, Clone)]
pub struct CompiledRunner {
    /// The compiled model.
    pub compiled: CompiledModel,
    /// The model the artifact was compiled from (needed by the per-node
    /// driver, which keeps the scheduler outside the compiled code).
    model: Composition,
    engine: Engine,
}

impl CompiledRunner {
    /// Create a runner, materializing the engine memory.
    ///
    /// # Errors
    /// Returns [`DistillError::Driver`] if the compiled artifact has no model
    /// attached (never happens through [`compile_and_load`]).
    pub fn new(compiled: CompiledModel) -> Result<CompiledRunner, DistillError> {
        Err(DistillError::Driver(
            "use CompiledRunner::with_model or compile_and_load (the per-node driver needs the source model)"
                .into(),
        ))
        .or_else(|_: DistillError| {
            // Whole-model artifacts can be driven without the source model,
            // but keeping one API is simpler; reconstructing from the module
            // is not possible, so `new` is only valid for whole-model mode.
            if compiled.trial_func.is_some() {
                let engine = Engine::new(compiled.module.clone());
                Ok(CompiledRunner {
                    compiled,
                    model: Composition::new("detached"),
                    engine,
                })
            } else {
                Err(DistillError::Driver(
                    "per-node compilation requires CompiledRunner::with_model".into(),
                ))
            }
        })
    }

    /// Create a runner that also keeps the source model (required for
    /// per-node mode, harmless otherwise).
    pub fn with_model(compiled: CompiledModel, model: Composition) -> CompiledRunner {
        let engine = Engine::new(compiled.module.clone());
        CompiledRunner {
            compiled,
            model,
            engine,
        }
    }

    /// Borrow the engine (e.g. to inspect globals after a run).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    fn write_trial_input(&mut self, input: &TrialInput) {
        let mut flat = vec![0.0; self.compiled.layout.ext_len.max(1)];
        for (pos, values) in input.iter().enumerate() {
            // input_nodes order defines ext offsets.
            if let Some(&node) = self.model_input_node(pos) {
                if let Some(&off) = self.compiled.layout.ext_offsets.get(&node) {
                    for (i, v) in values.iter().enumerate() {
                        if off + i < flat.len() {
                            flat[off + i] = *v;
                        }
                    }
                }
            } else {
                // Detached whole-model runner: inputs are laid out in order.
                let mut off = 0;
                for prev in input.iter().take(pos) {
                    off += prev.len();
                }
                for (i, v) in values.iter().enumerate() {
                    if off + i < flat.len() {
                        flat[off + i] = *v;
                    }
                }
            }
        }
        self.engine.write_global_f64(gn::EXT_INPUT, &flat);
    }

    fn model_input_node(&self, pos: usize) -> Option<&usize> {
        self.model.input_nodes.get(pos)
    }

    /// Run `trials` trials, cycling through `inputs`.
    ///
    /// # Errors
    /// Returns [`DistillError`] on engine failures.
    pub fn run(
        &mut self,
        inputs: &[TrialInput],
        trials: usize,
    ) -> Result<CompiledRunResult, DistillError> {
        match self.compiled.trial_func {
            Some(_) => self.run_whole_model(inputs, trials),
            None => self.run_per_node(inputs, trials),
        }
    }

    fn run_whole_model(
        &mut self,
        inputs: &[TrialInput],
        trials: usize,
    ) -> Result<CompiledRunResult, DistillError> {
        let trial_fn = self
            .compiled
            .trial_func
            .ok_or_else(|| DistillError::Driver("no whole-model trial function".into()))?;
        let mut result = CompiledRunResult {
            outputs: Vec::with_capacity(trials),
            passes: Vec::with_capacity(trials),
        };
        for trial in 0..trials {
            let input = &inputs[trial % inputs.len()];
            self.write_trial_input(input);
            self.engine.call(trial_fn, &[Value::I64(trial as i64)])?;
            let out = self.engine.read_global_f64(gn::TRIAL_OUTPUT);
            result
                .outputs
                .push(out[..self.compiled.layout.trial_output_len].to_vec());
            result.passes.push(self.engine.read_global_i64(gn::PASSES, 0) as u64);
        }
        Ok(result)
    }

    /// The per-node driver (Fig. 5b, `Distill-per-node`): node computations
    /// run compiled, but the scheduler — readiness checks, pass loop, double
    /// buffering, grid search driver — stays outside the compiled code and
    /// crosses the engine boundary on every step.
    fn run_per_node(
        &mut self,
        inputs: &[TrialInput],
        trials: usize,
    ) -> Result<CompiledRunResult, DistillError> {
        use distill_cogmodel::Condition;
        let layout = self.compiled.layout.clone();
        let node_funcs = self.compiled.node_funcs.clone();
        let topo = self
            .model
            .topological_order()
            .map_err(|e| DistillError::Driver(e.to_string()))?;
        let mut result = CompiledRunResult {
            outputs: Vec::with_capacity(trials),
            passes: Vec::with_capacity(trials),
        };
        for trial in 0..trials {
            let input = &inputs[trial % inputs.len()];
            self.write_trial_input(input);
            // Reset read-write structures, exactly like the trial prologue.
            let state_init = self.engine.read_global_f64(gn::STATE_INIT);
            if self.model.reset_state_each_trial {
                self.engine.write_global_f64(gn::STATE, &state_init);
            }
            let zeros = vec![0.0; layout.out_len.max(1)];
            self.engine.write_global_f64(gn::OUT_CUR, &zeros);
            self.engine.write_global_f64(gn::OUT_PREV, &zeros);
            for i in 0..self.model.mechanisms.len() {
                self.engine.write_global_i64(gn::COUNTERS, i, 0);
            }

            // Grid search driven from outside the compiled code.
            if let (Some(ctrl), Some(eval_fn)) = (&self.model.controller, self.compiled.eval_func) {
                let mut best = (0usize, f64::INFINITY);
                for g in 0..ctrl.grid_size() {
                    let cost = self
                        .engine
                        .call(eval_fn, &[Value::I64(g as i64)])?
                        .as_f64()
                        .unwrap_or(f64::INFINITY);
                    if cost < best.1 {
                        best = (g, cost);
                    }
                }
                let alloc = ctrl.allocation(best.0);
                for (s, level) in alloc.iter().enumerate() {
                    let base = self
                        .engine
                        .module()
                        .global_by_name(gn::CTRL_PARAMS)
                        .expect("ctrl_params global exists");
                    let _ = base;
                    // Write element s of ctrl_params.
                    let mut cur = self.engine.read_global_f64(gn::CTRL_PARAMS);
                    cur[s] = *level;
                    self.engine.write_global_f64(gn::CTRL_PARAMS, &cur);
                }
            }

            // The pass loop, with a boundary crossing per node execution.
            let mut pass: u64 = 0;
            let mut calls = vec![0u64; self.model.mechanisms.len()];
            loop {
                for &node in &topo {
                    let ready = match &self.model.mechanisms[node].condition {
                        Condition::Always => true,
                        Condition::Never => false,
                        Condition::EveryNPasses(n) => *n != 0 && pass % n == 0,
                        Condition::AfterNCalls { node: other, n } => calls[*other] >= *n,
                        Condition::AtMostNCalls(n) => calls[node] < *n,
                    };
                    if !ready {
                        continue;
                    }
                    self.engine.call(node_funcs[node], &[])?;
                    calls[node] += 1;
                    self.engine
                        .write_global_i64(gn::COUNTERS, node, calls[node] as i64);
                }
                pass += 1;
                let cur = self.engine.read_global_f64(gn::OUT_CUR);
                self.engine.write_global_f64(gn::OUT_PREV, &cur);
                let done = match &self.model.trial_end {
                    TrialEnd::AfterNPasses(n) => pass >= *n,
                    TrialEnd::Threshold {
                        node,
                        port,
                        threshold,
                        max_passes,
                    } => {
                        let off = layout.out_offset(*node, *port, 0);
                        cur[off].abs() >= *threshold || pass >= *max_passes
                    }
                };
                if done {
                    break;
                }
            }
            let cur = self.engine.read_global_f64(gn::OUT_CUR);
            let mut out = Vec::new();
            for &o in &self.model.output_nodes {
                let size = self.model.mechanisms[o].output_sizes.first().copied().unwrap_or(0);
                let base = layout.out_offset(o, 0, 0);
                out.extend_from_slice(&cur[base..base + size]);
            }
            result.outputs.push(out);
            result.passes.push(pass);
            let _ = trial;
        }
        Ok(result)
    }

    /// Run the controller grid search of one trial across `threads` CPU
    /// cores (Fig. 5c, `mCPU`).
    ///
    /// # Errors
    /// Returns [`DistillError::Driver`] when the model has no controller.
    pub fn run_grid_multicore(
        &mut self,
        input: &TrialInput,
        threads: usize,
    ) -> Result<ParallelResult, DistillError> {
        let eval_fn = self
            .compiled
            .eval_func
            .ok_or_else(|| DistillError::Driver("model has no grid-search controller".into()))?;
        self.write_trial_input(input);
        Ok(mcpu::parallel_argmin(
            &self.engine,
            eval_fn,
            self.compiled.grid_size,
            threads,
        )?)
    }

    /// Run the controller grid search of one trial on the simulated GPU
    /// (Fig. 5c / Fig. 6).
    ///
    /// # Errors
    /// Returns [`DistillError::Driver`] when the model has no controller.
    pub fn run_grid_gpu(
        &mut self,
        input: &TrialInput,
        config: &GpuConfig,
    ) -> Result<GpuRunReport, DistillError> {
        let eval_fn = self
            .compiled
            .eval_func
            .ok_or_else(|| DistillError::Driver("model has no grid-search controller".into()))?;
        self.write_trial_input(input);
        Ok(gpu::run_grid(
            &self.engine,
            eval_fn,
            self.compiled.grid_size,
            config,
        )?)
    }
}

/// Compile a model and attach a runner in one step.
///
/// # Errors
/// Propagates [`DistillError::Codegen`] failures.
pub fn compile_and_load(
    model: &Composition,
    config: CompileConfig,
) -> Result<CompiledRunner, DistillError> {
    let compiled = compile(model, config)?;
    Ok(CompiledRunner::with_model(compiled, model.clone()))
}

/// How long a configuration took, or why it could not complete — the unit of
/// the Fig. 4 / Fig. 5 harnesses.
#[derive(Debug, Clone)]
pub enum Measurement {
    /// Completed in the given wall-clock time.
    Time(Duration),
    /// Failed with an annotation the figures print instead of a bar.
    Failed(String),
}

impl Measurement {
    /// The time in seconds, if completed.
    pub fn seconds(&self) -> Option<f64> {
        match self {
            Measurement::Time(d) => Some(d.as_secs_f64()),
            Measurement::Failed(_) => None,
        }
    }
}

/// Time a baseline run of `model` under `mode`.
pub fn time_baseline(
    model: &Composition,
    inputs: &[TrialInput],
    trials: usize,
    mode: ExecMode,
    eval_budget: Option<u64>,
) -> Measurement {
    let mut runner = BaselineRunner::new(mode);
    runner.eval_budget = eval_budget;
    let start = Instant::now();
    match runner.run(model, inputs, trials) {
        Ok(_) => Measurement::Time(start.elapsed()),
        Err(e) => Measurement::Failed(e.to_string()),
    }
}

/// Time a Distill-compiled run (compilation excluded, matching the paper's
/// warmup methodology).
pub fn time_distill(
    model: &Composition,
    inputs: &[TrialInput],
    trials: usize,
    config: CompileConfig,
) -> Measurement {
    match compile_and_load(model, config) {
        Ok(mut runner) => {
            let start = Instant::now();
            match runner.run(inputs, trials) {
                Ok(_) => Measurement::Time(start.elapsed()),
                Err(e) => Measurement::Failed(e.to_string()),
            }
        }
        Err(e) => Measurement::Failed(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_cogmodel::functions::{identity, linear, logistic};

    fn chain_model() -> (Composition, Vec<TrialInput>) {
        let mut c = Composition::new("chain");
        let a = c.add(identity("in", 2));
        let b = c.add(linear("double", 2, 2.0, 0.0));
        let d = c.add(logistic("squash", 2, 1.0, 0.0));
        c.connect(a, 0, b, 0, 0);
        c.connect(b, 0, d, 0, 0);
        c.input_nodes = vec![a];
        c.output_nodes = vec![d];
        (c, vec![vec![vec![0.25, -1.5]], vec![vec![1.0, 2.0]]])
    }

    #[test]
    fn compiled_whole_model_matches_baseline() {
        let (model, inputs) = chain_model();
        let baseline = BaselineRunner::new(ExecMode::CPython)
            .run(&model, &inputs, 4)
            .unwrap();
        let mut runner = compile_and_load(&model, CompileConfig::default()).unwrap();
        let compiled = runner.run(&inputs, 4).unwrap();
        assert_eq!(baseline.outputs.len(), compiled.outputs.len());
        for (b, c) in baseline.outputs.iter().zip(&compiled.outputs) {
            for (x, y) in b.iter().zip(c) {
                assert!((x - y).abs() < 1e-12, "baseline {x} vs compiled {y}");
            }
        }
    }

    #[test]
    fn per_node_mode_matches_whole_model() {
        let (model, inputs) = chain_model();
        let mut whole = compile_and_load(&model, CompileConfig::default()).unwrap();
        let mut per_node = compile_and_load(
            &model,
            CompileConfig {
                mode: CompileMode::PerNode,
                ..CompileConfig::default()
            },
        )
        .unwrap();
        let a = whole.run(&inputs, 3).unwrap();
        let b = per_node.run(&inputs, 3).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.passes, b.passes);
    }

    #[test]
    fn measurements_report_time_or_failure() {
        let (model, inputs) = chain_model();
        let m = time_baseline(&model, &inputs, 2, ExecMode::CPython, None);
        assert!(m.seconds().is_some());
        let failed = time_baseline(&model, &inputs, 100, ExecMode::CPython, Some(1));
        assert!(failed.seconds().is_none());
        let d = time_distill(&model, &inputs, 2, CompileConfig::default());
        assert!(d.seconds().is_some());
    }

    #[test]
    fn detached_runner_requires_whole_model() {
        let (model, _) = chain_model();
        let per_node = compile(
            &model,
            CompileConfig {
                mode: CompileMode::PerNode,
                ..CompileConfig::default()
            },
        )
        .unwrap();
        assert!(CompiledRunner::new(per_node).is_err());
        let whole = compile(&model, CompileConfig::default()).unwrap();
        assert!(CompiledRunner::new(whole).is_ok());
    }
}
