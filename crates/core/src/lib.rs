//! `distill` — the top-level API of the Distill reproduction.
//!
//! This crate ties the substrates together into the tool the paper
//! describes: take a PsyNeuLink-style [`Composition`], compile it with
//! domain-specific knowledge, and execute the compiled model orders of
//! magnitude faster than the dynamic baseline — on one core, on all cores,
//! or on the (simulated) GPU — while also exposing the model-level analyses
//! of §4 through the re-exported `analysis` module.
//!
//! # Quickstart
//!
//! Execution is unified behind a [`Session`] builder and the [`Runner`]
//! trait: pick a [`Target`], build, and run a [`RunSpec`]. Every backend —
//! baseline interpreter, compiled single-core, multicore grid search,
//! simulated GPU — answers the same contract with a [`RunResult`].
//!
//! ```
//! use distill::{RunSpec, Session, Target};
//! use distill_models::predator_prey_s;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = predator_prey_s();
//!
//! // Compiled, single core (the default target).
//! let mut compiled = Session::new(&workload.model).build()?;
//! let result = compiled.run(&RunSpec::new(workload.inputs.clone(), 2))?;
//! assert_eq!(result.outputs.len(), 2);
//!
//! // The same trials through the dynamic baseline for comparison.
//! let mut baseline = Session::new(&workload.model)
//!     .target(Target::Baseline(distill::ExecMode::CPython))
//!     .build()?;
//! let reference = baseline.run(&RunSpec::new(workload.inputs.clone(), 2))?;
//! assert_eq!(reference.outputs, result.outputs);
//!
//! // Batched: many trials per engine entry via the compiled
//! // `trials_batch` entry point — same results, fewer boundary crossings.
//! let mut batched = Session::new(&workload.model).build()?;
//! let spec = RunSpec::new(workload.inputs.clone(), 2).with_batch(32);
//! assert_eq!(batched.run(&spec)?.outputs, result.outputs);
//! # Ok(())
//! # }
//! ```
//!
//! Other targets: `Target::MultiCore { threads }` splits a controller's
//! grid search across OS threads; `Target::Gpu(GpuConfig::default())` runs
//! it on the simulated SIMT GPU and reports modelled timing in
//! [`RunResult::gpu`].

pub use distill_analysis as analysis;
pub use distill_codegen::{compile, global_names, CompileConfig, CompileMode, CompiledModel};
pub use distill_cogmodel::{BaselineRunner, Composition, RunError};
pub use distill_exec::{
    parallel_argmin, parallel_argmin_static, serial_argmin, ChunkQueue, Engine, EngineStats,
    ExecConfig, ExecError, FuseSummary, GpuConfig, GpuRunReport, ParallelResult, Tier,
    TierPolicy, Value,
};
pub use distill_opt::OptLevel;
pub use distill_pyvm::ExecMode;

pub mod artifact;
pub mod chaos;
mod runner;
mod session;
#[doc(hidden)]
pub mod test_hooks;

pub use artifact::{
    artifact_key, deserialize_artifact, read_artifact, serialize_artifact, write_artifact,
    ArtifactError, ARTIFACT_VERSION,
};
pub use chaos::ChaosPlan;
pub use runner::{RunResult, RunSpec, Runner, ShardStats};
pub use session::{Session, Target};

/// One trial's external input: one vector per input node, in
/// `Composition::input_nodes` order (re-exported from the cogmodel crate).
pub use distill_cogmodel::runner::TrialInput;

use std::fmt;
use std::time::{Duration, Instant};

/// Errors surfaced when building or driving a model.
#[derive(Debug)]
pub enum DistillError {
    /// Code generation failed.
    Codegen(distill_codegen::CodegenError),
    /// The execution engine failed.
    Exec(ExecError),
    /// The baseline interpreter failed (unsupported framework, simulated
    /// OOM, exceeded budget, …).
    Baseline(RunError),
    /// The request does not match the model or artifact (empty inputs for a
    /// non-zero trial count, wrong input arity, missing controller, …).
    Driver(String),
}

impl fmt::Display for DistillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistillError::Codegen(e) => write!(f, "{e}"),
            DistillError::Exec(e) => write!(f, "{e}"),
            DistillError::Baseline(e) => write!(f, "{e}"),
            DistillError::Driver(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for DistillError {}

impl From<distill_codegen::CodegenError> for DistillError {
    fn from(e: distill_codegen::CodegenError) -> Self {
        DistillError::Codegen(e)
    }
}

impl From<ExecError> for DistillError {
    fn from(e: ExecError) -> Self {
        DistillError::Exec(e)
    }
}

impl From<RunError> for DistillError {
    fn from(e: RunError) -> Self {
        DistillError::Baseline(e)
    }
}

/// How long a configuration took, or why it could not complete — the unit of
/// the Fig. 4 / Fig. 5 harnesses.
#[derive(Debug, Clone)]
pub enum Measurement {
    /// Completed in the given wall-clock time.
    Time(Duration),
    /// Failed with an annotation the figures print instead of a bar.
    Failed(String),
}

impl Measurement {
    /// The time in seconds, if completed.
    pub fn seconds(&self) -> Option<f64> {
        match self {
            Measurement::Time(d) => Some(d.as_secs_f64()),
            Measurement::Failed(_) => None,
        }
    }
}

/// Build the session's runner, then time only the run of `spec` —
/// compilation and engine setup are excluded from the measurement, matching
/// the paper's warmup methodology. A build/compile failure is reported as
/// [`Measurement::Failed`] just like a run failure.
pub fn time_session(session: Session, spec: &RunSpec) -> Measurement {
    match session.build() {
        Ok(mut runner) => {
            let start = Instant::now();
            match runner.run(spec) {
                Ok(_) => Measurement::Time(start.elapsed()),
                Err(e) => Measurement::Failed(e.to_string()),
            }
        }
        Err(e) => Measurement::Failed(e.to_string()),
    }
}

/// Time a baseline run of `model` under `mode`.
pub fn time_baseline(
    model: &Composition,
    inputs: &[TrialInput],
    trials: usize,
    mode: ExecMode,
    eval_budget: Option<u64>,
) -> Measurement {
    let mut session = Session::new(model).target(Target::Baseline(mode));
    if let Some(budget) = eval_budget {
        session = session.eval_budget(budget);
    }
    time_session(session, &RunSpec::new(inputs.to_vec(), trials))
}

/// Time a Distill-compiled run (compilation excluded, matching the paper's
/// warmup methodology).
pub fn time_distill(
    model: &Composition,
    inputs: &[TrialInput],
    trials: usize,
    config: CompileConfig,
) -> Measurement {
    time_session(
        Session::new(model).compile_config(config),
        &RunSpec::new(inputs.to_vec(), trials),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_cogmodel::functions::{identity, linear, logistic};

    fn chain_model() -> (Composition, Vec<TrialInput>) {
        let mut c = Composition::new("chain");
        let a = c.add(identity("in", 2));
        let b = c.add(linear("double", 2, 2.0, 0.0));
        let d = c.add(logistic("squash", 2, 1.0, 0.0));
        c.connect(a, 0, b, 0, 0);
        c.connect(b, 0, d, 0, 0);
        c.input_nodes = vec![a];
        c.output_nodes = vec![d];
        (c, vec![vec![vec![0.25, -1.5]], vec![vec![1.0, 2.0]]])
    }

    #[test]
    fn compiled_whole_model_matches_baseline() {
        let (model, inputs) = chain_model();
        let spec = RunSpec::new(inputs, 4);
        let baseline = Session::new(&model)
            .target(Target::Baseline(ExecMode::CPython))
            .build()
            .unwrap()
            .run(&spec)
            .unwrap();
        let compiled = Session::new(&model).build().unwrap().run(&spec).unwrap();
        assert_eq!(baseline.outputs.len(), compiled.outputs.len());
        for (b, c) in baseline.outputs.iter().zip(&compiled.outputs) {
            for (x, y) in b.iter().zip(c) {
                assert!((x - y).abs() < 1e-12, "baseline {x} vs compiled {y}");
            }
        }
    }

    #[test]
    fn per_node_mode_matches_whole_model() {
        let (model, inputs) = chain_model();
        let spec = RunSpec::new(inputs, 3);
        let a = Session::new(&model).build().unwrap().run(&spec).unwrap();
        let b = Session::new(&model)
            .mode(CompileMode::PerNode)
            .build()
            .unwrap()
            .run(&spec)
            .unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.passes, b.passes);
    }

    #[test]
    fn batched_execution_matches_per_trial() {
        let (model, inputs) = chain_model();
        let per_trial = Session::new(&model)
            .build()
            .unwrap()
            .run(&RunSpec::new(inputs.clone(), 7))
            .unwrap();
        let batched = Session::new(&model)
            .build()
            .unwrap()
            .run(&RunSpec::new(inputs, 7).with_batch(3))
            .unwrap();
        assert_eq!(per_trial.outputs, batched.outputs);
        assert_eq!(per_trial.passes, batched.passes);
    }

    #[test]
    fn empty_inputs_fail_loudly_not_by_panic() {
        let (model, _) = chain_model();
        for target in [Target::SingleCore, Target::Baseline(ExecMode::CPython)] {
            let err = Session::new(&model)
                .target(target)
                .build()
                .unwrap()
                .run(&RunSpec::new(vec![], 3))
                .unwrap_err();
            assert!(matches!(err, DistillError::Driver(_)), "{target:?}: {err}");
        }
    }

    #[test]
    fn wrong_arity_inputs_fail_loudly() {
        let (model, _) = chain_model();
        // Three values for a 2-wide input node.
        let err = Session::new(&model)
            .build()
            .unwrap()
            .run(&RunSpec::new(vec![vec![vec![1.0, 2.0, 3.0]]], 1))
            .unwrap_err();
        assert!(matches!(err, DistillError::Driver(_)), "{err}");
        // Two port vectors for a single input node.
        let err = Session::new(&model)
            .build()
            .unwrap()
            .run(&RunSpec::new(vec![vec![vec![1.0, 2.0], vec![3.0]]], 1))
            .unwrap_err();
        assert!(matches!(err, DistillError::Driver(_)), "{err}");
    }

    #[test]
    fn measurements_report_time_or_failure() {
        let (model, inputs) = chain_model();
        let m = time_baseline(&model, &inputs, 2, ExecMode::CPython, None);
        assert!(m.seconds().is_some());
        let failed = time_baseline(&model, &inputs, 100, ExecMode::CPython, Some(1));
        assert!(failed.seconds().is_none());
        let d = time_distill(&model, &inputs, 2, CompileConfig::default());
        assert!(d.seconds().is_some());
    }

    #[test]
    fn sharded_execution_matches_serial_bitwise() {
        // Stochastic model with a controller: the strongest determinism case.
        let w = distill_models::predator_prey_s();
        let serial = Session::new(&w.model)
            .build()
            .unwrap()
            .run(&RunSpec::new(w.inputs.clone(), 17))
            .unwrap();
        assert!(serial.shards.is_none());
        for (shards, batch) in [(4, 8), (4, 1), (2, 5), (8, 64)] {
            let spec = RunSpec::new(w.inputs.clone(), 17)
                .with_batch(batch)
                .with_shards(shards);
            let sharded = Session::new(&w.model).build().unwrap().run(&spec).unwrap();
            assert_eq!(
                serial.outputs, sharded.outputs,
                "shards={shards} batch={batch}"
            );
            assert_eq!(serial.passes, sharded.passes);
            let stats = sharded.shards.expect("sharded run reports stats");
            assert!(stats.threads >= 1 && stats.chunks >= 1);
        }
    }

    #[test]
    fn build_with_reuses_a_precompiled_artifact() {
        let (model, inputs) = chain_model();
        let artifact = compile(&model, CompileConfig::default()).unwrap();
        let spec = RunSpec::new(inputs, 3);
        let reused = Session::new(&model)
            .build_with(artifact.clone())
            .unwrap()
            .run(&spec)
            .unwrap();
        let fresh = Session::new(&model).build().unwrap().run(&spec).unwrap();
        assert_eq!(reused.outputs, fresh.outputs);
    }

    #[test]
    fn oversized_grid_search_inputs_are_driver_errors() {
        // Regression (formerly guarded via the deleted shims): a wrong-arity
        // input on a grid-searching target used to panic inside input
        // flattening; it must be a driver error like every other entry point.
        let w = distill_models::predator_prey_s();
        let oversized: TrialInput = vec![vec![0.5; 70]];
        for target in [
            Target::MultiCore { threads: 2 },
            Target::Gpu(GpuConfig::default()),
        ] {
            let err = Session::new(&w.model)
                .target(target)
                .build()
                .unwrap()
                .run(&RunSpec::new(vec![oversized.clone()], 1))
                .unwrap_err();
            assert!(matches!(err, DistillError::Driver(_)), "{err}");
        }
        // Well-formed inputs still work.
        assert!(Session::new(&w.model)
            .target(Target::MultiCore { threads: 2 })
            .build()
            .unwrap()
            .run(&RunSpec::new(w.inputs.clone(), 1))
            .is_ok());
    }
}
