//! The unified execution contract: [`RunSpec`] in, [`RunResult`] out,
//! whatever the backend.
//!
//! Every execution target — the dynamic baseline interpreter, the compiled
//! whole-model and per-node drivers, the multicore grid-search driver and
//! the simulated GPU — implements [`Runner`]. Backends are built from a
//! [`crate::Session`]; the trait object hides which backend is running so
//! benches, examples and tests can switch targets without changing the
//! driving code.

use crate::DistillError;
use distill_cogmodel::composition::TrialEnd;
use distill_cogmodel::runner::TrialInput;
use distill_cogmodel::{BaselineRunner, Composition};
use distill_codegen::global_names as gn;
use distill_codegen::CompiledModel;
use distill_exec::{
    gpu, mcpu, ChunkQueue, Engine, GpuConfig, GpuRunReport, GrabCount, ParallelResult, Value,
};
use distill_pyvm::SplitMix64;

/// What to execute: the trial inputs (cycled), how many trials, and how many
/// trials a compiled backend may run per engine entry.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// One external input per trial, cycled when `trials > inputs.len()`.
    pub inputs: Vec<TrialInput>,
    /// Number of trials to execute.
    pub trials: usize,
    /// Trials per engine entry on compiled backends (`1` = re-enter the
    /// engine per trial). Backends without a batched path — the baseline
    /// interpreter, per-node drivers — execute trial-by-trial regardless;
    /// results are identical either way.
    pub batch: usize,
    /// Worker threads sharding the trial space on whole-model compiled
    /// backends (`1` = serial). Workers pull `batch`-sized chunks of trials
    /// from a work-stealing queue, each on its own engine copy; per-trial
    /// PRNG streams are derived from the trial index, so outputs are
    /// bit-identical to a serial run at any thread count. Backends without
    /// the sharded path — the baseline interpreter, per-node drivers, models
    /// whose state persists across trials — run serially regardless; results
    /// are identical either way.
    pub shards: usize,
    /// First absolute trial index of this run (default 0). A distributed
    /// worker holding a lease over `[offset, offset + trials)` of a larger
    /// trial space sets this so per-trial PRNG streams and input cycling are
    /// derived from the *global* trial index — the property that makes its
    /// outputs bitwise identical to the same window of a serial run. The
    /// baseline interpreter has no random-access trial path and rejects a
    /// non-zero offset.
    pub offset: usize,
}

impl RunSpec {
    /// A spec running `trials` trials with per-trial engine entry.
    pub fn new(inputs: Vec<TrialInput>, trials: usize) -> RunSpec {
        RunSpec {
            inputs,
            trials,
            batch: 1,
            shards: 1,
            offset: 0,
        }
    }

    /// Set the batch size (clamped to at least 1).
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> RunSpec {
        self.batch = batch.max(1);
        self
    }

    /// Set the trial-sharding worker count (clamped to at least 1).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> RunSpec {
        self.shards = shards.max(1);
        self
    }

    /// Set the first absolute trial index (for leased windows of a larger
    /// trial space — see the field docs).
    #[must_use]
    pub fn with_offset(mut self, offset: usize) -> RunSpec {
        self.offset = offset;
        self
    }
}

/// Statistics of a sharded trial run ([`RunSpec::with_shards`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStats {
    /// Worker threads that drained the trial queue.
    pub threads: usize,
    /// Chunks the trial space was split into (one `trials_batch` call — or
    /// one per-trial loop — per chunk).
    pub chunks: usize,
    /// Trials per chunk (the effective batch size).
    pub batch: usize,
    /// Chunk grabs beyond each worker's first — the same redistribution
    /// measure the grid scheduler reports.
    pub steals: u64,
    /// Engine counters the shard workers accumulated (summed deltas), so
    /// sweep reports attribute work to the trial space that produced it
    /// rather than to engine lifetimes.
    pub stats: distill_exec::EngineStats,
}

impl ShardStats {
    /// Fold another shard's statistics into this one: additive counters
    /// (chunks, steals, engine stats) are summed; topology descriptors
    /// (threads, batch) take the maximum, since merged stats describe work
    /// drained by heterogeneous workers rather than one queue. This is how
    /// the distributed sweep coordinator accumulates per-lease stats into
    /// one sweep-level view.
    pub fn merge(&mut self, other: &ShardStats) {
        self.threads = self.threads.max(other.threads);
        self.batch = self.batch.max(other.batch);
        self.chunks += other.chunks;
        self.steals += other.steals;
        self.stats.add(&other.stats);
    }
}

/// Results of a run, uniform across backends.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Per trial, the concatenated output-node values at trial end.
    pub outputs: Vec<Vec<f64>>,
    /// Per trial, the number of scheduler passes executed.
    pub passes: Vec<u64>,
    /// Grid-search statistics of the last trial, when the multicore backend
    /// parallelized a controller's grid search.
    pub grid: Option<ParallelResult>,
    /// The simulated GPU's report for the last trial, when running on
    /// [`crate::Target::Gpu`].
    pub gpu: Option<GpuRunReport>,
    /// Shard statistics, when the run sharded its trial space across worker
    /// threads ([`RunSpec::with_shards`]).
    pub shards: Option<ShardStats>,
    /// Engine counters accumulated by **this run** (worker-thread deltas
    /// included): the per-run view of `EngineStats`, so harnesses attribute
    /// instructions, fusion rates and frame-pool traffic to the spec that
    /// produced them instead of reading engine-lifetime aggregates. Zero for
    /// baseline targets, which have no engine.
    pub stats: distill_exec::EngineStats,
}

impl RunResult {
    fn with_capacity(trials: usize) -> RunResult {
        RunResult {
            outputs: Vec::with_capacity(trials),
            passes: Vec::with_capacity(trials),
            grid: None,
            gpu: None,
            shards: None,
            stats: distill_exec::EngineStats::default(),
        }
    }
}

/// The single backend contract: execute a [`RunSpec`].
///
/// Obtain implementations through [`Session::build`](crate::Session::build).
pub trait Runner {
    /// Execute the spec.
    ///
    /// # Errors
    /// [`DistillError::Driver`] when the spec does not match the model (no
    /// inputs for a non-zero trial count, wrong input arity); backend errors
    /// otherwise.
    fn run(&mut self, spec: &RunSpec) -> Result<RunResult, DistillError>;

    /// A short human-readable label of the backend (e.g. `single-core`).
    fn target_label(&self) -> String;

    /// The compiled artifact driving this backend, when there is one.
    fn compiled(&self) -> Option<&CompiledModel> {
        None
    }

    /// The execution engine, when the backend has one.
    fn engine(&self) -> Option<&Engine> {
        None
    }
}

/// Validate a spec against the model before touching any engine memory:
/// empty inputs with a non-zero trial count and wrong-arity inputs are
/// driver errors, not panics or silent truncation.
pub(crate) fn validate_spec(model: &Composition, spec: &RunSpec) -> Result<(), DistillError> {
    if spec.trials > 0 && spec.inputs.is_empty() {
        return Err(DistillError::Driver(format!(
            "no trial inputs provided for a {}-trial run",
            spec.trials
        )));
    }
    for (t, input) in spec.inputs.iter().enumerate() {
        if input.len() != model.input_nodes.len() {
            return Err(DistillError::Driver(format!(
                "trial input {t} has {} port vectors but the model has {} input nodes",
                input.len(),
                model.input_nodes.len()
            )));
        }
        for (pos, values) in input.iter().enumerate() {
            let node = model.input_nodes[pos];
            let want = model.mechanisms[node]
                .input_sizes
                .first()
                .copied()
                .unwrap_or(0);
            if values.len() != want {
                return Err(DistillError::Driver(format!(
                    "trial input {t}, input node {} ({}): expected {} values, got {}",
                    node, model.mechanisms[node].name, want, values.len()
                )));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Baseline backend
// ---------------------------------------------------------------------------

/// The dynamic-interpreter backend ([`crate::Target::Baseline`]).
pub(crate) struct BaselineBackend {
    pub(crate) model: Composition,
    pub(crate) runner: BaselineRunner,
}

impl Runner for BaselineBackend {
    fn run(&mut self, spec: &RunSpec) -> Result<RunResult, DistillError> {
        validate_spec(&self.model, spec)?;
        if spec.offset > 0 {
            return Err(DistillError::Driver(
                "the baseline interpreter cannot run an offset trial window: it executes \
                 trials sequentially from 0 and has no random-access trial path"
                    .into(),
            ));
        }
        if spec.trials == 0 {
            return Ok(RunResult::with_capacity(0));
        }
        // The interpreter has no batched path; `spec.batch` is accepted (the
        // contract is uniform) and results are identical for any batch size.
        let r = self
            .runner
            .run(&self.model, &spec.inputs, spec.trials)
            .map_err(DistillError::Baseline)?;
        Ok(RunResult {
            outputs: r.outputs,
            passes: r.passes,
            grid: None,
            gpu: None,
            shards: None,
            stats: distill_exec::EngineStats::default(),
        })
    }

    fn target_label(&self) -> String {
        format!("baseline:{}", self.runner.mode)
    }
}

// ---------------------------------------------------------------------------
// Compiled backends
// ---------------------------------------------------------------------------

/// How a compiled backend executes a controller's grid search.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum GridStrategy {
    /// Inside the compiled trial function (whole-model) or as a serial
    /// driver loop (per-node).
    Serial,
    /// Split across OS threads via [`mcpu::parallel_argmin`].
    MultiCore {
        /// Worker thread count.
        threads: usize,
    },
    /// On the simulated SIMT GPU via [`gpu::run_grid`].
    Gpu(GpuConfig),
}

/// Shared driver of every compiled backend: owns the artifact, the source
/// model and the engine, and implements per-trial, batched and per-node
/// execution over them.
pub(crate) struct CompiledDriver {
    pub(crate) compiled: CompiledModel,
    pub(crate) model: Composition,
    pub(crate) engine: Engine,
}

impl CompiledDriver {
    pub(crate) fn new(compiled: CompiledModel, model: Composition) -> CompiledDriver {
        // The session's tier policy decides which execution form the engine
        // runs; a `DISTILL_TIER` environment request wins over it, so a
        // whole-process A/B can be forced without touching call sites.
        let policy = distill_exec::TierPolicy::from_env().unwrap_or(compiled.config.tier);
        let engine = Engine::with_config(
            compiled.module.clone(),
            distill_exec::ExecConfig { policy },
        );
        CompiledDriver {
            compiled,
            model,
            engine,
        }
    }

    /// Flatten every distinct trial input into the `ext_input` layout once,
    /// so per-trial (and per-batch) writes are a single memcpy-style global
    /// write instead of a re-flattening.
    fn flatten_inputs(&self, inputs: &[TrialInput]) -> Vec<Vec<f64>> {
        inputs
            .iter()
            .map(|input| {
                self.compiled
                    .layout
                    .flatten_input(&self.model.input_nodes, input)
            })
            .collect()
    }

    /// Run a spec with the given grid strategy. Whole-model artifacts with a
    /// serial grid run the compiled trial (batched when `spec.batch > 1`);
    /// everything else goes through the per-node driver, which keeps the
    /// scheduler and grid search outside the compiled code.
    pub(crate) fn run(
        &mut self,
        spec: &RunSpec,
        grid: &GridStrategy,
    ) -> Result<RunResult, DistillError> {
        // Snapshot the engine's counters so the result can report the
        // *per-run* delta (worker-thread deltas are absorbed into the
        // template engine before the run returns, so they are included).
        let base_stats = self.engine.stats();
        let mut span = distill_telemetry::span("run");
        span.arg_i64("trials", spec.trials as i64);
        span.arg_i64("shards", spec.shards as i64);
        let mut result = self.run_inner(spec, grid)?;
        drop(span);
        result.stats = self.engine.stats_since(&base_stats);
        if distill_telemetry::enabled() {
            mirror_run_stats(&result.stats);
        }
        Ok(result)
    }

    fn run_inner(
        &mut self,
        spec: &RunSpec,
        grid: &GridStrategy,
    ) -> Result<RunResult, DistillError> {
        validate_spec(&self.model, spec)?;
        if spec.trials == 0 {
            return Ok(RunResult::with_capacity(0));
        }
        let flats = self.flatten_inputs(&spec.inputs);
        match (self.compiled.trial_func, grid) {
            (Some(trial_fn), GridStrategy::Serial) => {
                // The sharded path requires trial independence: per-trial
                // PRNG streams always hold (trial prologue), but state that
                // persists across trials serializes them — such models fall
                // back to the (identical-output) serial path.
                if spec.shards > 1 && spec.trials > 1 && self.model.reset_state_each_trial {
                    self.run_sharded(spec, &flats, trial_fn)
                } else {
                    self.run_whole(spec, &flats, trial_fn)
                }
            }
            _ => self.run_per_node(spec, &flats, grid),
        }
    }

    /// Resolve the batched entry point for a spec: `Some` when the spec
    /// batches and the artifact was compiled with batch capacity, `None` for
    /// the per-trial path.
    ///
    /// # Errors
    /// A batching spec against an artifact without the entry point is a
    /// driver error.
    fn resolve_batch_fn(&self, spec: &RunSpec) -> Result<Option<distill_ir::FuncId>, DistillError> {
        if spec.batch > 1 && self.compiled.batch_capacity > 0 {
            Ok(Some(self.compiled.batch_func.ok_or_else(|| {
                DistillError::Driver("artifact has no batched entry point".into())
            })?))
        } else {
            Ok(None)
        }
    }

    /// Trials per chunk for a resolved batch mode: one `trials_batch` call
    /// per chunk when batching (capped by the staging capacity), the whole
    /// requested batch as a per-trial loop otherwise.
    fn chunk_trials(&self, spec: &RunSpec, batch_fn: Option<distill_ir::FuncId>) -> usize {
        match batch_fn {
            Some(_) => spec.batch.min(self.compiled.batch_capacity),
            None => spec.batch,
        }
        .max(1)
    }

    /// Whole-model execution: one compiled call per trial, or one per batch
    /// through the generated `trials_batch` entry point. Chunk execution is
    /// shared with the sharded path ([`run_trial_chunk`]), so the two can
    /// never drift apart.
    fn run_whole(
        &mut self,
        spec: &RunSpec,
        flats: &[Vec<f64>],
        trial_fn: distill_ir::FuncId,
    ) -> Result<RunResult, DistillError> {
        let mut result = RunResult::with_capacity(spec.trials);
        let batch_fn = self.resolve_batch_fn(spec)?;
        let chunk = self.chunk_trials(spec, batch_fn);
        let mut done = 0usize;
        while done < spec.trials {
            let n = chunk.min(spec.trials - done);
            let (outs, passes) = run_trial_chunk(
                &mut self.engine,
                &self.compiled.layout,
                batch_fn,
                trial_fn,
                flats,
                spec.offset + done,
                n,
            )?;
            result.outputs.extend(outs);
            result.passes.extend(passes);
            done += n;
        }
        Ok(result)
    }

    /// Sharded whole-model execution ([`RunSpec::with_shards`]): worker
    /// threads pull `batch`-sized chunks of the trial space from a
    /// work-stealing [`ChunkQueue`] — the same scheduling substrate as the
    /// multicore grid search, lifted from grid level to trial level. Each
    /// worker owns an engine copy (module and predecoded code shared behind
    /// `Arc`, only the memory image is cloned), stages its chunk through
    /// [`distill_codegen::Layout::stage_batch`] and runs it through the
    /// compiled `trials_batch` entry point (or trial-by-trial when the spec
    /// does not batch). Trial outputs depend only on the trial index and its
    /// input — the trial prologue re-derives PRNG streams per trial — so the
    /// stitched result is bit-identical to [`CompiledDriver::run_whole`] at
    /// any thread count and any schedule.
    fn run_sharded(
        &mut self,
        spec: &RunSpec,
        flats: &[Vec<f64>],
        trial_fn: distill_ir::FuncId,
    ) -> Result<RunResult, DistillError> {
        let batch_fn = self.resolve_batch_fn(spec)?;
        // Trials per chunk: one `trials_batch` call when batching, a
        // per-trial loop otherwise (grouping keeps queue traffic amortized
        // either way).
        let chunk = self.chunk_trials(spec, batch_fn);
        let n_chunks = spec.trials.div_ceil(chunk);
        let threads = spec.shards.min(n_chunks).max(1);
        let layout = &self.compiled.layout;
        // Chunks (not trials) are the queue's unit; balance the grab size so
        // a shared-counter RMW amortizes over many chunks on fine-grained
        // specs while skew can still redistribute (same policy as the grid
        // scheduler).
        let queue = ChunkQueue::balanced(n_chunks, threads, 8, 1024);

        type ChunkResult = (usize, Vec<Vec<f64>>, Vec<u64>);
        type WorkerResult = (Vec<ChunkResult>, u64, distill_exec::EngineStats);
        let worker_results: Vec<Result<WorkerResult, DistillError>> =
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for _ in 0..threads {
                    let queue = &queue;
                    // Thread-local copy of every read-write structure.
                    let mut engine = self.engine.clone();
                    handles.push(scope.spawn(move || {
                        let mut mine: Vec<ChunkResult> = Vec::new();
                        let mut grabs = GrabCount::default();
                        // Worker stats start from the template's snapshot;
                        // only the delta is this worker's own work.
                        let base_stats = engine.stats();
                        while let Some(range) = queue.grab() {
                            grabs.record();
                            for c in range {
                                let lo = c * chunk;
                                let n = chunk.min(spec.trials - lo);
                                let (outs, passes) = run_trial_chunk(
                                    &mut engine,
                                    layout,
                                    batch_fn,
                                    trial_fn,
                                    flats,
                                    spec.offset + lo,
                                    n,
                                )?;
                                mine.push((c, outs, passes));
                            }
                        }
                        Ok((mine, grabs.steals(), engine.stats_since(&base_stats)))
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| {
                        // A panicking worker is a driver error, not a
                        // propagated unwind: the caller gets a typed
                        // `DistillError` and every other worker's handle is
                        // still joined (scope exit), so no thread leaks and
                        // no partial result is silently returned.
                        h.join().unwrap_or_else(|p| {
                            Err(DistillError::Driver(format!(
                                "shard worker panicked: {}",
                                distill_exec::panic_message(&*p)
                            )))
                        })
                    })
                    .collect()
            });

        // Stitch chunks back into trial order; every chunk arrives exactly
        // once (the queue partitions the index space).
        type ChunkOutput = (Vec<Vec<f64>>, Vec<u64>);
        let mut slots: Vec<Option<ChunkOutput>> = (0..n_chunks).map(|_| None).collect();
        let mut steals = 0u64;
        let mut worker_stats = distill_exec::EngineStats::default();
        for r in worker_results {
            let (mine, s, stats) = r?;
            steals += s;
            worker_stats.add(&stats);
            self.engine.absorb_stats(&stats);
            for (c, outs, passes) in mine {
                slots[c] = Some((outs, passes));
            }
        }
        // A lone worker draining the queue is self-scheduling, not stealing.
        if threads <= 1 {
            steals = 0;
        }
        self.engine.record_steals(steals);
        let mut result = RunResult::with_capacity(spec.trials);
        for slot in slots {
            let (outs, passes) = slot.expect("chunk executed");
            result.outputs.extend(outs);
            result.passes.extend(passes);
        }
        result.shards = Some(ShardStats {
            threads,
            chunks: n_chunks,
            batch: chunk,
            steals,
            stats: worker_stats,
        });
        Ok(result)
    }

    /// The per-node driver (Fig. 5b, `Distill-per-node`): node computations
    /// run compiled, but the scheduler — readiness checks, pass loop, double
    /// buffering, grid-search driving — stays outside the compiled code and
    /// crosses the engine boundary on every step. The grid search itself is
    /// pluggable: serial, multicore, or simulated GPU.
    fn run_per_node(
        &mut self,
        spec: &RunSpec,
        flats: &[Vec<f64>],
        grid: &GridStrategy,
    ) -> Result<RunResult, DistillError> {
        use distill_cogmodel::Condition;
        let layout = self.compiled.layout.clone();
        let node_funcs = self.compiled.node_funcs.clone();
        let topo = self
            .model
            .topological_order()
            .map_err(|e| DistillError::Driver(e.to_string()))?;
        let mut result = RunResult::with_capacity(spec.trials);
        for local in 0..spec.trials {
            // Absolute trial index: PRNG streams and input cycling key off
            // it, so an offset window reproduces the same slice of a full
            // serial run.
            let trial = spec.offset + local;
            self.engine
                .write_global_f64(gn::EXT_INPUT, &flats[trial % flats.len()])?;
            // Reset read-write structures, exactly like the trial prologue.
            let state_init = self.engine.read_global_f64(gn::STATE_INIT)?;
            if self.model.reset_state_each_trial {
                self.engine.write_global_f64(gn::STATE, &state_init)?;
            }
            let zeros = vec![0.0; layout.out_len.max(1)];
            self.engine.write_global_f64(gn::OUT_CUR, &zeros)?;
            self.engine.write_global_f64(gn::OUT_PREV, &zeros)?;
            for i in 0..self.model.mechanisms.len() {
                self.engine.write_global_i64(gn::COUNTERS, i, 0)?;
            }
            // Per-trial node PRNG streams, exactly like the compiled trial
            // prologue and the baseline runner.
            let seed = self.compiled.config.seed;
            for i in 0..self.model.mechanisms.len() {
                let stream = SplitMix64::trial_node_stream(seed, trial as u64, i as u64);
                self.engine
                    .write_global_i64(gn::RNG, i, stream.state as i64)?;
            }

            // Grid search driven from outside the compiled code.
            if let (Some(ctrl), Some(eval_fn)) = (&self.model.controller, self.compiled.eval_func)
            {
                let grid_size = ctrl.grid_size();
                let best_index = match grid {
                    GridStrategy::Serial => {
                        let mut best = (0usize, f64::INFINITY);
                        for g in 0..grid_size {
                            let cost = self
                                .engine
                                .call(eval_fn, &[Value::I64(g as i64)])?
                                .as_f64()
                                .unwrap_or(f64::INFINITY);
                            if cost < best.1 {
                                best = (g, cost);
                            }
                        }
                        best.0
                    }
                    GridStrategy::MultiCore { threads } => {
                        let r = mcpu::parallel_argmin(&self.engine, eval_fn, grid_size, *threads)?;
                        // Worker engines died with their threads; fold their
                        // counter deltas and the scheduler's steal count into
                        // the template engine.
                        self.engine.absorb_stats(&r.stats);
                        self.engine.record_steals(r.steals);
                        let best = r.best_index;
                        result.grid = Some(r);
                        best
                    }
                    GridStrategy::Gpu(config) => {
                        let r = gpu::run_grid(&self.engine, eval_fn, grid_size, config)?;
                        self.engine.absorb_stats(&r.stats);
                        let best = r.best_index;
                        result.gpu = Some(r);
                        best
                    }
                };
                let alloc = ctrl.allocation(best_index);
                let mut cur = self.engine.read_global_f64(gn::CTRL_PARAMS)?;
                for (s, level) in alloc.iter().enumerate() {
                    cur[s] = *level;
                }
                self.engine.write_global_f64(gn::CTRL_PARAMS, &cur)?;
            }

            // The pass loop, with a boundary crossing per node execution.
            let mut pass: u64 = 0;
            let mut calls = vec![0u64; self.model.mechanisms.len()];
            loop {
                for &node in &topo {
                    let ready = match &self.model.mechanisms[node].condition {
                        Condition::Always => true,
                        Condition::Never => false,
                        Condition::EveryNPasses(n) => *n != 0 && pass.is_multiple_of(*n),
                        Condition::AfterNCalls { node: other, n } => calls[*other] >= *n,
                        Condition::AtMostNCalls(n) => calls[node] < *n,
                    };
                    if !ready {
                        continue;
                    }
                    self.engine.call(node_funcs[node], &[])?;
                    calls[node] += 1;
                    self.engine
                        .write_global_i64(gn::COUNTERS, node, calls[node] as i64)?;
                }
                pass += 1;
                let cur = self.engine.read_global_f64(gn::OUT_CUR)?;
                self.engine.write_global_f64(gn::OUT_PREV, &cur)?;
                let done = match &self.model.trial_end {
                    TrialEnd::AfterNPasses(n) => pass >= *n,
                    TrialEnd::Threshold {
                        node,
                        port,
                        threshold,
                        max_passes,
                    } => {
                        let off = layout.out_offset(*node, *port, 0);
                        cur[off].abs() >= *threshold || pass >= *max_passes
                    }
                };
                if done {
                    break;
                }
            }
            let cur = self.engine.read_global_f64(gn::OUT_CUR)?;
            let mut out = Vec::new();
            for &o in &self.model.output_nodes {
                let size = self.model.mechanisms[o]
                    .output_sizes
                    .first()
                    .copied()
                    .unwrap_or(0);
                let base = layout.out_offset(o, 0, 0);
                out.extend_from_slice(&cur[base..base + size]);
            }
            result.outputs.push(out);
            result.passes.push(pass);
        }
        Ok(result)
    }

}

/// Execute one chunk of `n` consecutive trials starting at absolute trial
/// index `lo` on `engine`: through the `trials_batch` entry point when
/// `batch_fn` is resolved, trial-by-trial otherwise. Returns the chunk's
/// per-trial outputs and pass counts.
///
/// This is the *single* definition of compiled trial-chunk execution —
/// [`CompiledDriver::run_whole`] drives it over the template engine and
/// every sharded worker drives it over its own engine copy, which is what
/// keeps serial and sharded runs bit-identical by construction rather than
/// by parallel maintenance of two loops.
fn run_trial_chunk(
    engine: &mut Engine,
    layout: &distill_codegen::Layout,
    batch_fn: Option<distill_ir::FuncId>,
    trial_fn: distill_ir::FuncId,
    flats: &[Vec<f64>],
    lo: usize,
    n: usize,
) -> Result<(Vec<Vec<f64>>, Vec<u64>), DistillError> {
    let out_len = layout.trial_output_len;
    crate::chaos::chunk_delay();
    crate::chaos::check_panic_trial(lo, n);
    let mut outs = Vec::with_capacity(n);
    let mut passes = Vec::with_capacity(n);
    match batch_fn {
        Some(bf) => {
            // Stage the chunk's inputs in one global write.
            if layout.ext_len > 0 {
                let staging = layout.stage_batch(flats, lo, n);
                engine.write_global_f64(gn::BATCH_EXT, &staging)?;
            }
            engine.call(bf, &[Value::I64(lo as i64), Value::I64(n as i64)])?;
            // Read only the chunk's slots, one global read each.
            let o = engine.read_global_f64_prefix(gn::BATCH_OUT, n * out_len)?;
            let p = engine.read_global_f64_prefix(gn::BATCH_PASSES, n)?;
            for k in 0..n {
                outs.push(o[k * out_len..(k + 1) * out_len].to_vec());
                passes.push(p[k] as u64);
            }
        }
        None => {
            for t in lo..lo + n {
                engine.write_global_f64(gn::EXT_INPUT, &flats[t % flats.len()])?;
                engine.call(trial_fn, &[Value::I64(t as i64)])?;
                let out = engine.read_global_f64(gn::TRIAL_OUTPUT)?;
                outs.push(out[..out_len].to_vec());
                passes.push(engine.read_global_i64(gn::PASSES, 0)? as u64);
            }
        }
    }
    Ok((outs, passes))
}

/// Mirror a finished run's [`EngineStats`] delta into the global telemetry
/// registry, one `run.*` counter per stats field. Because the mirror adds
/// exactly [`RunResult::stats`], a registry snapshot taken before and after
/// a run reproduces the result's deltas — the equality the telemetry
/// integration tests pin down.
fn mirror_run_stats(stats: &distill_exec::EngineStats) {
    use distill_telemetry::Counter;
    use std::sync::OnceLock;
    struct RunProbes {
        instructions: &'static Counter,
        calls: &'static Counter,
        loads: &'static Counter,
        stores: &'static Counter,
        frame_pool_hits: &'static Counter,
        steals: &'static Counter,
        fused_ops: &'static Counter,
        frame_slots: &'static Counter,
        tier_promotions: &'static Counter,
        runs: &'static Counter,
    }
    static PROBES: OnceLock<RunProbes> = OnceLock::new();
    let p = PROBES.get_or_init(|| {
        let reg = distill_telemetry::registry();
        RunProbes {
            instructions: reg.counter("run.instructions"),
            calls: reg.counter("run.calls"),
            loads: reg.counter("run.loads"),
            stores: reg.counter("run.stores"),
            frame_pool_hits: reg.counter("run.frame_pool_hits"),
            steals: reg.counter("run.steals"),
            fused_ops: reg.counter("run.fused_ops"),
            frame_slots: reg.counter("run.frame_slots"),
            tier_promotions: reg.counter("run.tier_promotions"),
            runs: reg.counter("run.completed"),
        }
    });
    p.instructions.add(stats.instructions);
    p.calls.add(stats.calls);
    p.loads.add(stats.loads);
    p.stores.add(stats.stores);
    p.frame_pool_hits.add(stats.frame_pool_hits);
    p.steals.add(stats.steals);
    p.fused_ops.add(stats.fused_ops);
    p.frame_slots.add(stats.frame_slots);
    p.tier_promotions.add(stats.tier_promotions);
    p.runs.inc();
}

/// A compiled backend: the driver plus the grid strategy the target selects.
pub(crate) struct CompiledBackend {
    pub(crate) driver: CompiledDriver,
    pub(crate) grid: GridStrategy,
}

impl Runner for CompiledBackend {
    fn run(&mut self, spec: &RunSpec) -> Result<RunResult, DistillError> {
        self.driver.run(spec, &self.grid)
    }

    fn target_label(&self) -> String {
        match &self.grid {
            GridStrategy::Serial => "single-core".into(),
            GridStrategy::MultiCore { threads } => format!("multi-core:{threads}"),
            GridStrategy::Gpu(_) => "gpu".into(),
        }
    }

    fn compiled(&self) -> Option<&CompiledModel> {
        Some(&self.driver.compiled)
    }

    fn engine(&self) -> Option<&Engine> {
        Some(&self.driver.engine)
    }
}
