//! One deterministic chaos injector for the whole runtime.
//!
//! Every fault the repository can inject — a panicking trial chunk, a
//! mid-build compiler panic, a corrupted artifact read, an execution delay,
//! a distributed-sweep worker kill — is described by one seeded
//! [`ChaosPlan`] and driven from one place, instead of each subsystem
//! growing its own ad-hoc hook. The serving daemon, the distributed sweep
//! and the robustness tests all arm the same schedule, which is what lets a
//! single integer reproduce a whole failure scenario across subsystems.
//!
//! Two consumption styles:
//!
//! * **Process-global hooks** ([`ChaosPlan::install`]): the trial-panic,
//!   build-panic, artifact-corruption and delay faults arm process-global
//!   atomics that the hot paths poll ([`check_panic_trial`],
//!   [`check_panic_build`], [`corrupt_artifact_read`], [`chunk_delay`]).
//!   Each armed fault fires **once** and disarms itself, so a recovery
//!   path re-running the same trial range is not re-injected — exactly the
//!   semantics a requeue-and-reserve scheduler needs.
//! * **Plan-as-value**: the distributed-sweep fields (`kill`, `drop`,
//!   `garble`, `heartbeat_delay_ms`) are read directly off the plan by the
//!   dsweep coordinator, which slices them per worker and ships them over
//!   the wire; they involve no process-global state here.
//!
//! The environment spec ([`ChaosPlan::from_env`]) reads [`CHAOS_ENV`]
//! (`DISTILL_CHAOS`), a comma-separated `key=value` list:
//!
//! | key           | meaning                                              |
//! |---------------|------------------------------------------------------|
//! | `panic=T`     | panic the first chunk covering absolute trial `T`    |
//! | `buildpanic=N`| panic the `N`th artifact build (0-based)             |
//! | `corrupt=N`   | flip one seeded byte of the `N`th artifact read      |
//! | `delay=MS`    | sleep `MS` ms before every trial chunk               |
//! | `kill=W@K`    | dsweep: kill worker `W` after `K` completed leases   |
//! | `drop=W@K`    | dsweep: drop worker `W`'s lease-`K` result, once     |
//! | `garble=W@K`  | dsweep: garble worker `W`'s lease-`K` frame, once    |
//! | `hbdelay=MS`  | dsweep: delay every heartbeat by `MS` ms             |
//! | `seed=S`      | seed for derived randomness (corruption byte index)  |
//!
//! Unset or empty → inert plan; a malformed entry is an **error**, so a
//! typoed schedule cannot silently run fault-free. The dsweep-era variable
//! [`DSWEEP_FAULTS_ENV`] (`DISTILL_DSWEEP_FAULTS`) is honored as a
//! deprecated compatibility alias when `DISTILL_CHAOS` is unset.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// The environment variable [`ChaosPlan::from_env`] reads first.
pub const CHAOS_ENV: &str = "DISTILL_CHAOS";

/// Deprecated alias of [`CHAOS_ENV`], kept so existing
/// `DISTILL_DSWEEP_FAULTS` schedules keep working; consulted only when
/// `DISTILL_CHAOS` is unset or empty.
pub const DSWEEP_FAULTS_ENV: &str = "DISTILL_DSWEEP_FAULTS";

/// A deterministic, seeded fault schedule for the whole process (and, via
/// the dsweep fields, the whole worker topology). Inert by default.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChaosPlan {
    /// Seed for derived randomness (victim selection, corruption byte
    /// index); recorded so one integer reproduces the schedule.
    pub seed: u64,
    /// Panic the first executed chunk whose window covers this absolute
    /// trial index (fires once, on whatever thread picked the chunk up).
    pub panic_trial: Option<usize>,
    /// Panic the `N`th artifact build after installation (0-based), once.
    pub panic_build: Option<u64>,
    /// Corrupt (one seeded byte flip) the `N`th artifact read after
    /// installation (0-based), once.
    pub corrupt_read: Option<u64>,
    /// Sleep this long before every trial chunk (0 = no delay).
    pub delay_ms: u64,
    /// dsweep: kill worker `.0` after `.1` completed leases.
    pub kill: Option<(u32, u64)>,
    /// dsweep: drop the result of worker `.0`'s lease number `.1`.
    pub drop: Option<(u32, u64)>,
    /// dsweep: garble the result frame of worker `.0`'s lease number `.1`.
    pub garble: Option<(u32, u64)>,
    /// dsweep: delay every heartbeat of every worker by this many ms.
    pub heartbeat_delay_ms: u64,
}

// Process-global armed state. `usize::MAX` / `-1` mean "disarmed"; the
// build/read counters count *down* so the fault fires exactly when the
// armed ordinal is consumed, then the counter parks at -1 (disarmed).
const NO_TRIAL: usize = usize::MAX;
static PANIC_TRIAL: AtomicUsize = AtomicUsize::new(NO_TRIAL);
static BUILD_COUNTDOWN: AtomicI64 = AtomicI64::new(-1);
static READ_COUNTDOWN: AtomicI64 = AtomicI64::new(-1);
static DELAY_MS: AtomicU64 = AtomicU64::new(0);
static SEED: AtomicU64 = AtomicU64::new(0);
static ALIAS_WARNED: AtomicBool = AtomicBool::new(false);

/// SplitMix64 step: advances `state` and returns the next value. The one
/// mixing primitive every seeded schedule in the repository derives from
/// (fault victims, corruption offsets, retry jitter).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaosPlan {
    /// A seeded kill schedule for a `workers`-wide dsweep topology: derive
    /// a victim worker from `seed` deterministically. The victim always
    /// dies on its *first* lease grab — the coordinator holds assignment
    /// until every spawned worker has connected, so a first lease is the
    /// one grab scheduling cannot starve the victim out of, making the
    /// kill land under any load.
    pub fn seeded(seed: u64, workers: usize) -> ChaosPlan {
        let mut s = seed;
        let victim = (splitmix64(&mut s) % workers.max(1) as u64) as u32;
        ChaosPlan {
            seed,
            kill: Some((victim, 0)),
            ..ChaosPlan::default()
        }
    }

    /// Parse the plan from the environment: [`CHAOS_ENV`] first, then the
    /// deprecated [`DSWEEP_FAULTS_ENV`] alias (with a one-shot stderr
    /// warning). Unset or empty → inert plan.
    ///
    /// # Errors
    /// A malformed spec, so a typoed schedule cannot silently run
    /// fault-free.
    pub fn from_env() -> Result<ChaosPlan, String> {
        if let Ok(v) = std::env::var(CHAOS_ENV) {
            if !v.trim().is_empty() {
                return ChaosPlan::parse(&v);
            }
        }
        match std::env::var(DSWEEP_FAULTS_ENV) {
            Ok(v) if !v.trim().is_empty() => {
                if !ALIAS_WARNED.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "warning: {DSWEEP_FAULTS_ENV} is deprecated; \
                         use {CHAOS_ENV} (same grammar, more fault kinds)"
                    );
                }
                ChaosPlan::parse(&v)
            }
            _ => Ok(ChaosPlan::default()),
        }
    }

    /// Parse the [`CHAOS_ENV`] grammar (exposed for tests and CLIs); see
    /// the module docs for the key table.
    pub fn parse(text: &str) -> Result<ChaosPlan, String> {
        let mut plan = ChaosPlan::default();
        for item in text.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("chaos entry '{item}' is not key=value"))?;
            let worker_at = |v: &str| -> Result<(u32, u64), String> {
                let (w, k) = v
                    .split_once('@')
                    .ok_or_else(|| format!("chaos value '{v}' is not W@K"))?;
                Ok((
                    w.parse().map_err(|_| format!("bad worker index '{w}'"))?,
                    k.parse().map_err(|_| format!("bad lease count '{k}'"))?,
                ))
            };
            let num = |v: &str, what: &str| -> Result<u64, String> {
                v.parse().map_err(|_| format!("bad {what} '{v}'"))
            };
            match key {
                "panic" => plan.panic_trial = Some(num(value, "trial index")? as usize),
                "buildpanic" => plan.panic_build = Some(num(value, "build ordinal")?),
                "corrupt" => plan.corrupt_read = Some(num(value, "read ordinal")?),
                "delay" => plan.delay_ms = num(value, "delay")?,
                "kill" => plan.kill = Some(worker_at(value)?),
                "drop" => plan.drop = Some(worker_at(value)?),
                "garble" => plan.garble = Some(worker_at(value)?),
                "hbdelay" => plan.heartbeat_delay_ms = num(value, "delay")?,
                "seed" => plan.seed = num(value, "seed")?,
                other => return Err(format!("unknown chaos key '{other}'")),
            }
        }
        Ok(plan)
    }

    /// Whether the plan injects nothing anywhere (the seed alone injects
    /// nothing).
    pub fn is_inert(&self) -> bool {
        let inert = ChaosPlan {
            seed: self.seed,
            ..ChaosPlan::default()
        };
        *self == inert
    }

    /// Arm this plan's process-global hooks (trial panic, build panic,
    /// artifact-read corruption, chunk delay). The dsweep fields are *not*
    /// global state — the coordinator consumes them off the plan value —
    /// so installing a pure-dsweep plan is a no-op here. Installing
    /// replaces whatever was armed before; [`disarm`] clears everything.
    pub fn install(&self) {
        SEED.store(self.seed, Ordering::SeqCst);
        PANIC_TRIAL.store(self.panic_trial.unwrap_or(NO_TRIAL), Ordering::SeqCst);
        BUILD_COUNTDOWN.store(
            self.panic_build.map_or(-1, |n| n.min(i64::MAX as u64 - 1) as i64),
            Ordering::SeqCst,
        );
        READ_COUNTDOWN.store(
            self.corrupt_read.map_or(-1, |n| n.min(i64::MAX as u64 - 1) as i64),
            Ordering::SeqCst,
        );
        DELAY_MS.store(self.delay_ms, Ordering::SeqCst);
    }
}

/// Parse the environment spec and [`install`](ChaosPlan::install) it.
/// Returns the plan when one was armed, `None` when no spec is set — an
/// unset environment never clobbers a programmatically installed plan.
///
/// # Errors
/// A malformed spec (see [`ChaosPlan::from_env`]).
pub fn install_from_env() -> Result<Option<ChaosPlan>, String> {
    let plan = ChaosPlan::from_env()?;
    let unset = std::env::var(CHAOS_ENV).map_or(true, |v| v.trim().is_empty())
        && std::env::var(DSWEEP_FAULTS_ENV).map_or(true, |v| v.trim().is_empty());
    if unset {
        return Ok(None);
    }
    plan.install();
    Ok(Some(plan))
}

/// Disarm every process-global hook.
pub fn disarm() {
    ChaosPlan::default().install();
}

/// Arm (or with `None` disarm) a panic on the given absolute trial index
/// without touching the rest of the installed plan. This is the legacy
/// `test_hooks::panic_on_trial` surface, kept for tests that inject one
/// trial panic and nothing else.
pub fn panic_on_trial(trial: Option<usize>) {
    PANIC_TRIAL.store(trial.unwrap_or(NO_TRIAL), Ordering::SeqCst);
}

/// Called by every trial-chunk executor with its `[lo, lo + n)` window;
/// panics — once, then self-disarms — when the armed trial falls inside
/// it. The self-disarm is what makes recovery paths (a serve requeue, a
/// dsweep lease re-issue, a client retry) run clean instead of re-tripping
/// the same fault forever.
pub fn check_panic_trial(lo: usize, n: usize) {
    let t = PANIC_TRIAL.load(Ordering::SeqCst);
    if t != NO_TRIAL
        && t >= lo
        && t < lo + n
        && PANIC_TRIAL
            .compare_exchange(t, NO_TRIAL, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    {
        panic!("chaos: injected panic on trial {t}");
    }
}

/// Called by artifact builders (the serve cache's compile path); panics on
/// the armed build ordinal, once.
pub fn check_panic_build(what: &str) {
    let fired = BUILD_COUNTDOWN
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| (v >= 0).then(|| v - 1))
        == Ok(0);
    if fired {
        panic!("chaos: injected panic while building artifact for `{what}`");
    }
}

/// Called by [`crate::read_artifact`] on the raw bytes before decoding;
/// flips one seeded byte on the armed read ordinal, once. Returns whether
/// the corruption fired (tests assert on it; production callers ignore it
/// and let the codec's integrity checks reject the bytes).
pub fn corrupt_artifact_read(bytes: &mut [u8]) -> bool {
    let fired = READ_COUNTDOWN
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| (v >= 0).then(|| v - 1))
        == Ok(0);
    if fired && !bytes.is_empty() {
        let mut s = SEED.load(Ordering::SeqCst) ^ bytes.len() as u64;
        let idx = (splitmix64(&mut s) % bytes.len() as u64) as usize;
        bytes[idx] ^= 0x40;
        return true;
    }
    false
}

/// Called by trial-chunk executors before running a chunk; sleeps the
/// armed delay (a scheduler-pressure fault: it widens the window in which
/// queues build up, without changing any output byte).
pub fn chunk_delay() {
    let ms = DELAY_MS.load(Ordering::SeqCst);
    if ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_unified_grammar_and_rejects_typos() {
        let plan =
            ChaosPlan::parse("panic=13, buildpanic=0, corrupt=2, delay=5, kill=1@2, seed=9")
                .unwrap();
        assert_eq!(plan.panic_trial, Some(13));
        assert_eq!(plan.panic_build, Some(0));
        assert_eq!(plan.corrupt_read, Some(2));
        assert_eq!(plan.delay_ms, 5);
        assert_eq!(plan.kill, Some((1, 2)));
        assert_eq!(plan.seed, 9);
        assert!(!plan.is_inert());

        // The dsweep-era grammar is a strict subset.
        let old = ChaosPlan::parse("kill=1@2, drop=0@1, garble=1@1, hbdelay=40, seed=3").unwrap();
        assert_eq!(old.drop, Some((0, 1)));
        assert_eq!(old.garble, Some((1, 1)));
        assert_eq!(old.heartbeat_delay_ms, 40);

        assert!(ChaosPlan::parse("").unwrap().is_inert());
        assert!(ChaosPlan::parse("seed=42").unwrap().is_inert());
        assert!(ChaosPlan::parse("kill=oops").is_err());
        assert!(ChaosPlan::parse("explode=1@1").is_err());
        assert!(ChaosPlan::parse("panic").is_err());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_kill_on_first_lease() {
        for seed in [0u64, 1, 0xD5EE9, u64::MAX] {
            let a = ChaosPlan::seeded(seed, 4);
            let b = ChaosPlan::seeded(seed, 4);
            assert_eq!(a, b);
            let (victim, lease) = a.kill.unwrap();
            assert!(victim < 4);
            assert_eq!(lease, 0);
        }
    }

    #[test]
    fn trial_panic_fires_once_then_self_disarms() {
        panic_on_trial(Some(7));
        check_panic_trial(0, 7); // window [0, 7) does not cover 7
        check_panic_trial(8, 100);
        let hit = std::panic::catch_unwind(|| check_panic_trial(0, 8));
        assert!(hit.is_err(), "armed trial inside the window must panic");
        // Fired → disarmed: the recovery rerun of the same window is clean.
        check_panic_trial(0, 8);
        panic_on_trial(None);
    }

    #[test]
    fn corruption_countdown_hits_the_armed_read_only() {
        ChaosPlan {
            corrupt_read: Some(1),
            seed: 5,
            ..Default::default()
        }
        .install();
        let clean = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        let mut first = clean.clone();
        assert!(!corrupt_artifact_read(&mut first), "read 0 is not armed");
        assert_eq!(first, clean);
        let mut second = clean.clone();
        assert!(corrupt_artifact_read(&mut second), "read 1 is armed");
        assert_ne!(second, clean);
        assert_eq!(
            second.iter().zip(&clean).filter(|(a, b)| a != b).count(),
            1,
            "exactly one byte flips"
        );
        let mut third = clean.clone();
        assert!(!corrupt_artifact_read(&mut third), "fired once, then inert");
        assert_eq!(third, clean);
        disarm();
    }

    #[test]
    fn build_panic_countdown_fires_on_the_armed_ordinal() {
        ChaosPlan {
            panic_build: Some(1),
            ..Default::default()
        }
        .install();
        check_panic_build("warmup"); // build 0: clean
        let hit = std::panic::catch_unwind(|| check_panic_build("victim"));
        assert!(hit.is_err(), "build 1 is armed");
        check_panic_build("recovery"); // fired once, then inert
        disarm();
    }
}
