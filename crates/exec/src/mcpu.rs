//! The multicore grid-search backend (§3.6).
//!
//! Distill extracts the exhaustive parameter evaluation of grid-search
//! controllers and runs it on as many threads as there are cores. Each
//! thread receives a contiguous segment of the grid, works on its *own copy*
//! of the read-write structures (here: its own clone of the engine and
//! therefore of every mutable global), and evaluates grid points by calling
//! the compiled evaluation kernel. Per-evaluation PRNG streams are derived
//! inside the kernel from the evaluation index, so the numbers drawn are
//! identical regardless of which thread executes which point — the paper's
//! reproducibility requirement.

use crate::engine::{Engine, ExecError, Value};
use distill_ir::FuncId;

/// Result of a parallel argmin over the grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelResult {
    /// Index of the winning grid point.
    pub best_index: usize,
    /// Its cost.
    pub best_cost: f64,
    /// Number of evaluations performed.
    pub evaluations: usize,
    /// Number of worker threads used.
    pub threads: usize,
}

/// Evaluate `eval_func(i)` for every `i in 0..grid_size` across `threads`
/// workers and return the argmin of the returned costs.
///
/// Ties are broken towards the lowest index, which matches what the
/// compiled single-thread driver does when its tie-breaking PRNG is disabled;
/// the stochastic reservoir tie-break lives inside the whole-model trial
/// function where determinism against the baseline matters.
///
/// # Errors
/// Returns the first [`ExecError`] any worker encountered.
pub fn parallel_argmin(
    engine: &Engine,
    eval_func: FuncId,
    grid_size: usize,
    threads: usize,
) -> Result<ParallelResult, ExecError> {
    let threads = threads.max(1).min(grid_size.max(1));
    if grid_size == 0 {
        return Ok(ParallelResult {
            best_index: 0,
            best_cost: f64::INFINITY,
            evaluations: 0,
            threads,
        });
    }
    let chunk = grid_size.div_ceil(threads);
    let results: Vec<Result<(usize, f64), ExecError>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(grid_size);
            if lo >= hi {
                continue;
            }
            // Thread-local copy of every read-write structure (§3.6).
            let mut local = engine.clone();
            handles.push(scope.spawn(move || {
                let mut best = (usize::MAX, f64::INFINITY);
                for i in lo..hi {
                    let cost = local
                        .call(eval_func, &[Value::I64(i as i64)])?
                        .as_f64()
                        .ok_or_else(|| ExecError::Type("evaluation kernel must return f64".into()))?;
                    if cost < best.1 || (cost == best.1 && i < best.0) {
                        best = (i, cost);
                    }
                }
                Ok(best)
            }));
        }
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    let mut best = (usize::MAX, f64::INFINITY);
    for r in results {
        let (i, c) = r?;
        if c < best.1 || (c == best.1 && i < best.0) {
            best = (i, c);
        }
    }
    Ok(ParallelResult {
        best_index: best.0,
        best_cost: best.1,
        evaluations: grid_size,
        threads,
    })
}

/// Sequential reference implementation used to validate the parallel backend
/// and to time the single-thread compiled path in Fig. 5c.
pub fn serial_argmin(
    engine: &Engine,
    eval_func: FuncId,
    grid_size: usize,
) -> Result<ParallelResult, ExecError> {
    let mut local = engine.clone();
    let mut best = (usize::MAX, f64::INFINITY);
    for i in 0..grid_size {
        let cost = local
            .call(eval_func, &[Value::I64(i as i64)])?
            .as_f64()
            .ok_or_else(|| ExecError::Type("evaluation kernel must return f64".into()))?;
        if cost < best.1 || (cost == best.1 && i < best.0) {
            best = (i, cost);
        }
    }
    Ok(ParallelResult {
        best_index: best.0,
        best_cost: best.1,
        evaluations: grid_size,
        threads: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_ir::{FunctionBuilder, Module, Ty};

    /// cost(i) = (i - 37)^2 as a compiled kernel.
    fn quadratic_kernel() -> (Engine, FuncId) {
        let mut m = Module::new("m");
        let fid = m.declare_function("eval", vec![Ty::I64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let i = b.param(0);
            let x = b.sitofp(i);
            let c = b.const_f64(37.0);
            let d = b.fsub(x, c);
            let sq = b.fmul(d, d);
            b.ret(Some(sq));
        }
        (Engine::new(m), fid)
    }

    #[test]
    fn parallel_matches_serial() {
        let (engine, fid) = quadratic_kernel();
        let serial = serial_argmin(&engine, fid, 100).unwrap();
        for threads in [1, 2, 4, 7, 12] {
            let par = parallel_argmin(&engine, fid, 100, threads).unwrap();
            assert_eq!(par.best_index, serial.best_index, "threads={threads}");
            assert_eq!(par.best_cost, serial.best_cost);
            assert_eq!(par.evaluations, 100);
        }
    }

    #[test]
    fn finds_the_minimum() {
        let (engine, fid) = quadratic_kernel();
        let r = parallel_argmin(&engine, fid, 100, 4).unwrap();
        assert_eq!(r.best_index, 37);
        assert_eq!(r.best_cost, 0.0);
    }

    #[test]
    fn empty_grid_is_handled() {
        let (engine, fid) = quadratic_kernel();
        let r = parallel_argmin(&engine, fid, 0, 4).unwrap();
        assert_eq!(r.evaluations, 0);
    }

    #[test]
    fn worker_state_does_not_leak_into_the_template_engine() {
        // A kernel that mutates a global; the template engine must stay
        // untouched because every worker gets its own copy.
        let mut m = Module::new("m");
        let g = m.add_zeroed_global("scratch", Ty::F64, true);
        let tys: Vec<Ty> = m.globals.iter().map(|g| g.ty.clone()).collect();
        let fid = m.declare_function("eval", vec![Ty::I64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f).with_global_types(tys);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let i = b.param(0);
            let x = b.sitofp(i);
            let base = b.global_addr(g);
            b.store(base, x);
            let v = b.load(base);
            b.ret(Some(v));
        }
        let engine = Engine::new(m);
        parallel_argmin(&engine, fid, 64, 8).unwrap();
        assert_eq!(engine.read_global_f64("scratch"), vec![0.0]);
    }
}
