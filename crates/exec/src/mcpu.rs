//! The multicore grid-search backend (§3.6).
//!
//! Distill extracts the exhaustive parameter evaluation of grid-search
//! controllers and runs it on as many threads as there are cores. Each
//! worker receives work through a **work-stealing chunk queue** (an atomic
//! next-index counter over `std::thread::scope`; no external dependencies):
//! workers repeatedly grab the next chunk of grid indices until the grid is
//! drained, so a skewed grid — evaluation cost varying wildly across
//! parameter points, as in the Fig. 5c controllers — no longer serializes on
//! the slowest statically-assigned chunk. The pre-work-stealing
//! static-contiguous partitioning is retained as
//! [`parallel_argmin_static`] for measurement and differential testing.
//!
//! Every worker owns an [`EvalContext`]: a clone of the engine (sharing the
//! immutable module and predecoded code, copying only the mutable memory
//! image) whose register-frame pool is reused across every grid point the
//! worker evaluates — the "thread-local copy of the read-write structures"
//! strategy of §3.6 without per-evaluation allocation. Per-evaluation PRNG
//! streams are derived inside the kernel from the evaluation index, so the
//! numbers drawn are identical regardless of which thread executes which
//! point — the paper's reproducibility requirement — and therefore the
//! argmin is deterministic under any schedule.

use crate::engine::{Engine, EngineStats, ExecError, Value};
use crate::shard::{ChunkQueue, GrabCount};
use distill_ir::FuncId;

/// Result of a parallel argmin over the grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelResult {
    /// Index of the winning grid point.
    pub best_index: usize,
    /// Its cost.
    pub best_cost: f64,
    /// Number of evaluations performed.
    pub evaluations: usize,
    /// Number of worker threads used.
    pub threads: usize,
    /// Chunk grabs beyond each worker's first under the work-stealing
    /// scheduler — redistribution another worker could have absorbed. Zero
    /// for the serial and static-chunk paths and for single-worker runs
    /// (a lone worker draining the queue is self-scheduling, not stealing).
    pub steals: u64,
    /// Engine counters the evaluation contexts accumulated (summed across
    /// workers). Worker engines die with their threads, so the scheduler
    /// hands the deltas back for the driver to fold into its template
    /// engine's [`EngineStats`].
    pub stats: EngineStats,
}

/// The argmin accumulator's initial state.
const ARGMIN_INIT: (usize, f64) = (usize::MAX, f64::INFINITY);

/// Fold one `(index, cost)` observation into an argmin accumulator.
///
/// Ties are broken towards the lowest index, which matches what the
/// compiled single-thread driver does when its tie-breaking PRNG is
/// disabled; the stochastic reservoir tie-break lives inside the whole-model
/// trial function where determinism against the baseline matters. This one
/// helper is shared by the serial path, every parallel worker, and the
/// cross-worker reduction, so all schedules agree on the winner.
#[inline]
pub fn argmin_better(best: (usize, f64), index: usize, cost: f64) -> (usize, f64) {
    if cost < best.1 || (cost == best.1 && index < best.0) {
        (index, cost)
    } else {
        best
    }
}

/// A pooled grid-evaluation context: one mutable engine copy (module and
/// predecoded code shared with the template behind `Arc`) driving the
/// compiled evaluation kernel. The serial path uses a single context; the
/// parallel paths give one to each worker thread.
pub struct EvalContext {
    engine: Engine,
    eval_func: FuncId,
}

impl EvalContext {
    /// Clone the template's mutable state into a fresh context (§3.6's
    /// thread-local read-write copy).
    pub fn new(template: &Engine, eval_func: FuncId) -> EvalContext {
        EvalContext {
            engine: template.clone(),
            eval_func,
        }
    }

    /// Evaluate one grid point.
    ///
    /// # Errors
    /// Propagates engine failures; a kernel not returning `f64` is a type
    /// error.
    pub fn eval(&mut self, index: usize) -> Result<f64, ExecError> {
        as_cost(self.engine.call(self.eval_func, &[Value::I64(index as i64)]))
    }

    /// Evaluate one grid point through the **unfused** decoded path. The
    /// simulated GPU uses this so its per-thread instruction counts
    /// approximate the kernel's architectural instruction stream rather
    /// than the host interpreter's (fusion-dependent) dispatch count.
    ///
    /// # Errors
    /// Same surface as [`EvalContext::eval`].
    pub fn eval_decoded(&mut self, index: usize) -> Result<f64, ExecError> {
        as_cost(
            self.engine
                .call_decoded(self.eval_func, &[Value::I64(index as i64)]),
        )
    }

    /// The context's engine (e.g. to inspect statistics after a sweep).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

/// Interpret a kernel result as a cost (the one definition of the
/// "kernel must return f64" contract, shared by both evaluation paths).
fn as_cost(result: Result<Value, ExecError>) -> Result<f64, ExecError> {
    result?
        .as_f64()
        .ok_or_else(|| ExecError::Type("evaluation kernel must return f64".into()))
}

fn empty_result(threads: usize) -> ParallelResult {
    ParallelResult {
        best_index: 0,
        best_cost: f64::INFINITY,
        evaluations: 0,
        threads,
        steals: 0,
        stats: EngineStats::default(),
    }
}

/// Evaluate `eval_func(i)` for every `i in 0..grid_size` across `threads`
/// workers pulling chunks from a shared work-stealing queue, and return the
/// argmin of the returned costs.
///
/// The result is bit-identical to [`serial_argmin`] and
/// [`parallel_argmin_static`] for any thread count and any schedule: costs
/// depend only on the evaluation index, and every path shares the
/// [`argmin_better`] tie-break.
///
/// # Errors
/// Returns the first [`ExecError`] any worker encountered.
pub fn parallel_argmin(
    engine: &Engine,
    eval_func: FuncId,
    grid_size: usize,
    threads: usize,
) -> Result<ParallelResult, ExecError> {
    let threads = threads.max(1).min(grid_size.max(1));
    if grid_size == 0 {
        return Ok(empty_result(threads));
    }
    // Chunked stealing through the shared [`ChunkQueue`]: coarse enough to
    // amortize the shared counter, fine enough (≥ 8 chunks per worker) that
    // one expensive tail region cannot serialize the sweep.
    let queue = ChunkQueue::balanced(grid_size, threads, 8, 1024);
    type WorkerOut = ((usize, f64), u64, EngineStats);
    let results: Vec<Result<WorkerOut, ExecError>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let queue = &queue;
            // Thread-local copy of every read-write structure (§3.6).
            let mut ctx = EvalContext::new(engine, eval_func);
            handles.push(scope.spawn(move || {
                let mut best = ARGMIN_INIT;
                let mut grabs = GrabCount::default();
                // The clone starts from the template's counters; only the
                // delta is this worker's own work.
                let base_stats = ctx.engine().stats();
                while let Some(range) = queue.grab() {
                    grabs.record();
                    for i in range {
                        best = argmin_better(best, i, ctx.eval(i)?);
                    }
                }
                // Every grab beyond the worker's first is a steal from the
                // shared queue. Worker engines die with their thread, so the
                // count and the counter delta are returned for the
                // reduction; drivers fold both into their template engine.
                Ok((best, grabs.steals(), ctx.engine().stats_since(&base_stats)))
            }));
        }
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|p| {
                    Err(ExecError::WorkerPanicked(crate::shard::panic_message(&*p)))
                })
            })
            .collect()
    });

    let mut best = ARGMIN_INIT;
    let mut steals = 0u64;
    let mut stats = EngineStats::default();
    for r in results {
        let ((i, c), s, worker_stats) = r?;
        steals += s;
        stats.add(&worker_stats);
        if i != usize::MAX {
            best = argmin_better(best, i, c);
        }
    }
    // A lone worker draining the queue is self-scheduling, not stealing;
    // only report redistribution that another worker could have absorbed.
    if threads <= 1 {
        steals = 0;
    }
    Ok(ParallelResult {
        best_index: best.0,
        best_cost: best.1,
        evaluations: grid_size,
        threads,
        steals,
        stats,
    })
}

/// The pre-work-stealing scheduler: split the grid into `threads` contiguous
/// static chunks, one per worker. Retained for differential testing and for
/// the Fig. 5c thread-skew measurement (the `skew` series of
/// `figures --fig 5c`), where it demonstrates the serialization work
/// stealing removes.
///
/// # Errors
/// Returns the first [`ExecError`] any worker encountered.
pub fn parallel_argmin_static(
    engine: &Engine,
    eval_func: FuncId,
    grid_size: usize,
    threads: usize,
) -> Result<ParallelResult, ExecError> {
    let threads = threads.max(1).min(grid_size.max(1));
    if grid_size == 0 {
        return Ok(empty_result(threads));
    }
    let chunk = grid_size.div_ceil(threads);
    type WorkerResult = Result<((usize, f64), EngineStats), ExecError>;
    let results: Vec<WorkerResult> =
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(grid_size);
                if lo >= hi {
                    continue;
                }
                let mut ctx = EvalContext::new(engine, eval_func);
                handles.push(scope.spawn(move || {
                    let mut best = ARGMIN_INIT;
                    let base_stats = ctx.engine().stats();
                    for i in lo..hi {
                        best = argmin_better(best, i, ctx.eval(i)?);
                    }
                    Ok((best, ctx.engine().stats_since(&base_stats)))
                }));
            }
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|p| {
                        Err(ExecError::WorkerPanicked(crate::shard::panic_message(&*p)))
                    })
                })
                .collect()
        });

    let mut best = ARGMIN_INIT;
    let mut stats = EngineStats::default();
    for r in results {
        let ((i, c), worker_stats) = r?;
        stats.add(&worker_stats);
        if i != usize::MAX {
            best = argmin_better(best, i, c);
        }
    }
    Ok(ParallelResult {
        best_index: best.0,
        best_cost: best.1,
        evaluations: grid_size,
        threads,
        steals: 0,
        stats,
    })
}

/// Sequential reference implementation used to validate the parallel
/// backends and to time the single-thread compiled path in Fig. 5c. Takes
/// the template engine by shared reference and evaluates through a single
/// pooled [`EvalContext`] — the same context type the parallel workers use.
///
/// # Errors
/// Propagates the first [`ExecError`].
pub fn serial_argmin(
    engine: &Engine,
    eval_func: FuncId,
    grid_size: usize,
) -> Result<ParallelResult, ExecError> {
    if grid_size == 0 {
        return Ok(empty_result(1));
    }
    let mut ctx = EvalContext::new(engine, eval_func);
    let mut best = ARGMIN_INIT;
    let base_stats = ctx.engine().stats();
    for i in 0..grid_size {
        best = argmin_better(best, i, ctx.eval(i)?);
    }
    Ok(ParallelResult {
        best_index: best.0,
        best_cost: best.1,
        evaluations: grid_size,
        threads: 1,
        steals: 0,
        stats: ctx.engine().stats_since(&base_stats),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_ir::{FunctionBuilder, Module, Ty};

    /// cost(i) = (i - 37)^2 as a compiled kernel.
    fn quadratic_kernel() -> (Engine, FuncId) {
        let mut m = Module::new("m");
        let fid = m.declare_function("eval", vec![Ty::I64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let i = b.param(0);
            let x = b.sitofp(i);
            let c = b.const_f64(37.0);
            let d = b.fsub(x, c);
            let sq = b.fmul(d, d);
            b.ret(Some(sq));
        }
        (Engine::new(m), fid)
    }

    #[test]
    fn parallel_matches_serial() {
        let (engine, fid) = quadratic_kernel();
        let serial = serial_argmin(&engine, fid, 100).unwrap();
        for threads in [1, 2, 4, 7, 12] {
            let par = parallel_argmin(&engine, fid, 100, threads).unwrap();
            assert_eq!(par.best_index, serial.best_index, "threads={threads}");
            assert_eq!(par.best_cost, serial.best_cost);
            assert_eq!(par.evaluations, 100);
            let stat = parallel_argmin_static(&engine, fid, 100, threads).unwrap();
            assert_eq!(stat.best_index, serial.best_index, "threads={threads}");
            assert_eq!(stat.best_cost, serial.best_cost);
        }
    }

    #[test]
    fn finds_the_minimum() {
        let (engine, fid) = quadratic_kernel();
        let r = parallel_argmin(&engine, fid, 100, 4).unwrap();
        assert_eq!(r.best_index, 37);
        assert_eq!(r.best_cost, 0.0);
    }

    #[test]
    fn empty_grid_is_handled() {
        let (engine, fid) = quadratic_kernel();
        let r = parallel_argmin(&engine, fid, 0, 4).unwrap();
        assert_eq!(r.evaluations, 0);
        let r = parallel_argmin_static(&engine, fid, 0, 4).unwrap();
        assert_eq!(r.evaluations, 0);
        let r = serial_argmin(&engine, fid, 0).unwrap();
        assert_eq!(r.evaluations, 0);
    }

    #[test]
    fn stealing_drains_the_whole_grid() {
        // Grid much larger than threads * chunk: every worker must go back
        // to the queue, so grabs beyond the first are recorded as steals.
        let (engine, fid) = quadratic_kernel();
        let r = parallel_argmin(&engine, fid, 500, 2).unwrap();
        assert_eq!(r.best_index, 37);
        assert!(r.steals > 0, "expected chunked re-grabs, got {r:?}");
    }

    #[test]
    fn ties_break_towards_the_lowest_index() {
        // cost(i) = 0 everywhere: index 0 must win under every scheduler.
        let mut m = Module::new("m");
        let fid = m.declare_function("flat", vec![Ty::I64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let z = b.const_f64(0.0);
            b.ret(Some(z));
        }
        let engine = Engine::new(m);
        assert_eq!(serial_argmin(&engine, fid, 64).unwrap().best_index, 0);
        for threads in [2, 4, 8] {
            assert_eq!(
                parallel_argmin(&engine, fid, 64, threads).unwrap().best_index,
                0
            );
            assert_eq!(
                parallel_argmin_static(&engine, fid, 64, threads)
                    .unwrap()
                    .best_index,
                0
            );
        }
    }

    #[test]
    fn worker_state_does_not_leak_into_the_template_engine() {
        // A kernel that mutates a global; the template engine must stay
        // untouched because every worker gets its own copy.
        let mut m = Module::new("m");
        let g = m.add_zeroed_global("scratch", Ty::F64, true);
        let tys: Vec<Ty> = m.globals.iter().map(|g| g.ty.clone()).collect();
        let fid = m.declare_function("eval", vec![Ty::I64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f).with_global_types(tys);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let i = b.param(0);
            let x = b.sitofp(i);
            let base = b.global_addr(g);
            b.store(base, x);
            let v = b.load(base);
            b.ret(Some(v));
        }
        let engine = Engine::new(m);
        parallel_argmin(&engine, fid, 64, 8).unwrap();
        assert_eq!(engine.read_global_f64("scratch").unwrap(), vec![0.0]);
    }
}
