//! Chunked work distribution shared by the parallel backends.
//!
//! Both kinds of parallelism in this repository drain an index space across
//! OS threads: the multicore grid search ([`crate::mcpu`]) distributes grid
//! evaluations, and the sharded trial driver in `distill-core` distributes
//! `trials_batch`-sized chunks of the trial space. The scheduling substrate
//! is the same — an atomic next-index counter over a fixed range, grabbed in
//! chunks so one shared cache line amortizes over many work items — so it
//! lives here once as [`ChunkQueue`].
//!
//! The queue is *work-stealing* in the same sense PR 3's grid scheduler is:
//! a worker that finishes its chunk early goes back for more, so a skewed
//! cost profile cannot serialize the sweep on the unluckiest worker. Every
//! grab beyond a worker's first is reported as a steal (redistribution that
//! another worker could have absorbed); single-worker runs report zero by
//! convention, since a lone worker draining the queue is self-scheduling.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An atomic chunked index queue over `0..limit`.
#[derive(Debug)]
pub struct ChunkQueue {
    next: AtomicUsize,
    limit: usize,
    chunk: usize,
}

impl ChunkQueue {
    /// A queue handing out `chunk`-sized ranges of `0..limit` (chunk is
    /// clamped to at least 1).
    pub fn new(limit: usize, chunk: usize) -> ChunkQueue {
        ChunkQueue::over(0..limit, chunk)
    }

    /// The lease-range adapter: a queue handing out `chunk`-sized ranges of
    /// an arbitrary `start..end` window instead of `0..limit`. This is how a
    /// holder of a *lease* over part of a larger index space — the
    /// distributed sweep coordinator carving a trial space into leases, or a
    /// worker sharding its leased range across threads — reuses the same
    /// scheduling substrate: the ranges handed out are absolute indices
    /// into the global space, so per-index determinism (PRNG streams derived
    /// from the absolute trial index) is preserved no matter which process
    /// drains which window.
    pub fn over(range: Range<usize>, chunk: usize) -> ChunkQueue {
        ChunkQueue {
            next: AtomicUsize::new(range.start),
            limit: range.end.max(range.start),
            chunk: chunk.max(1),
        }
    }

    /// A queue whose chunk size targets at least `grabs_per_worker` grabs
    /// per worker (so one expensive tail region cannot serialize the sweep)
    /// while never exceeding `max_chunk` (so the shared counter stays
    /// amortized).
    pub fn balanced(
        limit: usize,
        workers: usize,
        grabs_per_worker: usize,
        max_chunk: usize,
    ) -> ChunkQueue {
        let denom = workers.max(1) * grabs_per_worker.max(1);
        let chunk = (limit / denom).clamp(1, max_chunk.max(1));
        ChunkQueue::new(limit, chunk)
    }

    /// Grab the next chunk, or `None` when the range is drained.
    pub fn grab(&self) -> Option<Range<usize>> {
        let lo = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if lo >= self.limit {
            return None;
        }
        Some(lo..(lo + self.chunk).min(self.limit))
    }

    /// The configured chunk size.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// The exclusive upper bound of the index space.
    pub fn limit(&self) -> usize {
        self.limit
    }
}

/// Render a worker thread's panic payload as a message, so drivers can fold
/// a caught unwind into a typed error (`ExecError::WorkerPanicked`,
/// `DistillError::Driver`) instead of re-panicking on `join` and tearing the
/// whole run down with a hung caller or a silent partial result.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-worker tally of queue grabs, folded into steal statistics: every grab
/// beyond the first is a steal. See the module docs for the convention on
/// single-worker runs (the caller zeroes the total when only one worker
/// drained the queue).
#[derive(Debug, Default, Clone, Copy)]
pub struct GrabCount(u64);

impl GrabCount {
    /// Record one successful grab.
    pub fn record(&mut self) {
        self.0 += 1;
    }

    /// Grabs beyond the first — the worker's steal count.
    pub fn steals(&self) -> u64 {
        self.0.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_the_whole_range_exactly_once() {
        let q = ChunkQueue::new(103, 10);
        let mut seen = vec![false; 103];
        while let Some(r) = q.grab() {
            for i in r {
                assert!(!seen[i], "index {i} handed out twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn empty_range_grabs_nothing() {
        let q = ChunkQueue::new(0, 8);
        assert!(q.grab().is_none());
    }

    #[test]
    fn balanced_matches_the_grid_scheduler_formula() {
        // The fig5c grid scheduler's historical sizing: at least 8 chunks
        // per worker, capped at 1024.
        let q = ChunkQueue::balanced(1_000_000, 4, 8, 1024);
        assert_eq!(q.chunk(), 1024);
        let q = ChunkQueue::balanced(100, 4, 8, 1024);
        assert_eq!(q.chunk(), 3);
        let q = ChunkQueue::balanced(5, 4, 8, 1024);
        assert_eq!(q.chunk(), 1);
    }

    #[test]
    fn concurrent_grabs_partition_the_range() {
        let q = ChunkQueue::new(10_000, 7);
        let counts: Vec<usize> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let mut n = 0;
                        while let Some(r) = q.grab() {
                            n += r.len();
                        }
                        n
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn range_queue_drains_exactly_the_window() {
        let q = ChunkQueue::over(40..103, 10);
        let mut seen = vec![false; 103];
        while let Some(r) = q.grab() {
            for i in r {
                assert!(i >= 40 && i < 103, "index {i} outside the lease window");
                assert!(!seen[i], "index {i} handed out twice");
                seen[i] = true;
            }
        }
        assert!(seen[40..103].iter().all(|&s| s));
        assert!(seen[..40].iter().all(|&s| !s));
    }

    #[test]
    fn empty_and_inverted_windows_grab_nothing() {
        assert!(ChunkQueue::over(7..7, 4).grab().is_none());
        assert!(ChunkQueue::over(9..3, 4).grab().is_none());
    }

    #[test]
    fn panic_messages_cover_the_common_payloads() {
        let caught = std::thread::spawn(|| panic!("literal payload")).join().unwrap_err();
        assert_eq!(panic_message(&*caught), "literal payload");
        let caught = std::thread::spawn(|| panic!("formatted {}", 7)).join().unwrap_err();
        assert_eq!(panic_message(&*caught), "formatted 7");
        let caught = std::thread::spawn(|| std::panic::panic_any(42i32)).join().unwrap_err();
        assert_eq!(panic_message(&*caught), "non-string panic payload");
    }

    #[test]
    fn grab_count_reports_steals() {
        let mut g = GrabCount::default();
        assert_eq!(g.steals(), 0);
        g.record();
        assert_eq!(g.steals(), 0);
        g.record();
        g.record();
        assert_eq!(g.steals(), 2);
    }
}
