//! The IR execution engine.
//!
//! Memory is a flat vector of scalar slots. Globals are materialized at
//! engine construction in declaration order; `alloca` slots live in a stack
//! region that grows past the globals and is truncated when the allocating
//! frame returns. Addresses are slot indices carried in [`Value::Ptr`].
//!
//! # Two execution paths
//!
//! The hot path ([`Engine::call`]) runs the **predecoded** form built once at
//! construction (see [`crate::decode`]): flat per-block instruction arrays
//! with operands pre-resolved to a register index or an inlined immediate,
//! phi nodes split into per-edge copy tables, terminators stored by value.
//! The loop never touches the IR, never clones, and never string-formats on
//! the happy path; register frames come from a reusable frame pool instead
//! of a fresh allocation per call.
//!
//! The slow path ([`Engine::call_reference`]) is the original IR-walking
//! interpreter, retained verbatim as the behavioural reference: the
//! differential test suite pits every model family against it and the
//! `figures --interp` report measures the predecode speedup against it.
//!
//! The engine is `Clone`: the multicore backend gives every worker thread
//! its own copy, which is the "thread-local copy of the read-write
//! parameter structure and node outputs" strategy of §3.6. Clones share the
//! immutable module and decoded code behind `Arc` — only the mutable memory
//! image is copied, so spawning a worker is cheap.

use crate::decode::{
    decode_module, DecodedFunction, DecodedInst, DecodedTerm, Operand, PhiEdge,
};
use crate::fuse::{fuse_module, FuseSummary};
use distill_ir::inst::GepIndex;
use distill_ir::{
    BinOp, CastKind, CmpPred, Constant, FuncId, Function, GlobalId, Inst, Intrinsic, Module,
    Terminator, Ty, UnOp, ValueId, ValueKind,
};
use distill_pyvm::SplitMix64;
use std::fmt;
use std::sync::Arc;

/// A runtime scalar value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit float.
    F64(f64),
    /// 64-bit integer.
    I64(i64),
    /// Boolean.
    Bool(bool),
    /// Pointer (slot index into engine memory).
    Ptr(usize),
    /// The unit value of `Void`-typed instructions.
    Unit,
}

impl Value {
    /// View as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            Value::Bool(b) => Some(*b as i64 as f64),
            _ => None,
        }
    }

    /// View as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// View as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Execution failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A value had the wrong runtime type for an operation.
    Type(String),
    /// A memory access fell outside the allocated slots.
    OutOfBounds {
        /// Offending slot address.
        addr: usize,
        /// Memory size at the time.
        size: usize,
    },
    /// An undefined (uninitialized) value was read.
    Undef(String),
    /// Integer division by zero.
    DivisionByZero,
    /// The instruction budget was exhausted (guards against non-terminating
    /// generated code in tests).
    FuelExhausted,
    /// The called function is only a declaration.
    MissingBody(String),
    /// A global was looked up by a name the module does not declare.
    UnknownGlobal(String),
    /// The call stack exceeded the engine's depth limit.
    DepthExceeded,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Type(m) => write!(f, "type error: {m}"),
            ExecError::OutOfBounds { addr, size } => {
                write!(f, "memory access at slot {addr} out of bounds (size {size})")
            }
            ExecError::Undef(m) => write!(f, "undefined value read: {m}"),
            ExecError::DivisionByZero => write!(f, "integer division by zero"),
            ExecError::FuelExhausted => write!(f, "instruction budget exhausted"),
            ExecError::MissingBody(n) => write!(f, "function {n} has no body"),
            ExecError::UnknownGlobal(n) => write!(f, "unknown global {n}"),
            ExecError::DepthExceeded => write!(f, "call depth exceeded"),
        }
    }
}

impl std::error::Error for ExecError {}

/// One memory slot.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Slot {
    F64(f64),
    I64(i64),
    Bool(bool),
    Uninit,
}

/// Statistics accumulated while executing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Instruction dispatches executed. On the fused path a superinstruction
    /// counts once, so the same work reports fewer dispatches than on the
    /// decoded path — [`EngineStats::fused_ops`] says how many of them were
    /// superinstructions.
    pub instructions: u64,
    /// Function calls made.
    pub calls: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Register frames served from the reuse pool instead of a fresh
    /// allocation (predecoded path only; the first call per depth misses).
    pub frame_pool_hits: u64,
    /// Work-stealing chunk grabs beyond each worker's first, accumulated by
    /// drivers that run parallel grid searches from this engine (see
    /// [`Engine::record_steals`] and `ParallelResult::steals`).
    pub steals: u64,
    /// Fused superinstructions executed (absolute loads/stores, GEP+memory
    /// pairs, load/store-fused arithmetic, fused compare-and-branch
    /// terminators). `fused_ops / instructions` is the dynamic fusion rate.
    pub fused_ops: u64,
    /// Cumulative register-frame slots acquired across calls; comparing the
    /// fused and decoded paths shows how much the liveness compaction in
    /// [`crate::fuse`] shrank the pooled frames.
    pub frame_slots: u64,
}

impl EngineStats {
    /// Field-wise accumulate `other` into `self` — the one definition of
    /// the counter fold, shared by [`Engine::absorb_stats`] and every
    /// driver that reduces worker-thread counter deltas.
    pub fn add(&mut self, other: &EngineStats) {
        self.instructions += other.instructions;
        self.calls += other.calls;
        self.loads += other.loads;
        self.stores += other.stores;
        self.frame_pool_hits += other.frame_pool_hits;
        self.steals += other.steals;
        self.fused_ops += other.fused_ops;
        self.frame_slots += other.frame_slots;
    }
}

/// A call frame: one register per SSA value of the function.
type Frame = Vec<Option<Value>>;

/// Construction-time knobs of the engine's execution pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Run the fusion pass ([`crate::fuse`]) at construction and execute the
    /// fused form from [`Engine::call`]. When `false`, `call` runs the plain
    /// predecoded form — the same path [`Engine::call_decoded`] always runs.
    pub fuse: bool,
}

impl ExecConfig {
    /// Interpret an environment-variable value for the fusion knob:
    /// `0`/`off`/`false`/`no` (any casing) disable it, anything else
    /// (including the variable being unset) leaves fusion on.
    fn fuse_from_env_value(value: Option<&str>) -> bool {
        match value {
            Some(v) => !matches!(
                v.to_ascii_lowercase().as_str(),
                "0" | "off" | "false" | "no"
            ),
            None => true,
        }
    }
}

impl Default for ExecConfig {
    /// Fusion defaults to on; the `DISTILL_FUSE` environment variable
    /// (`0`/`off`/`false`) turns it off for A/B measurement without touching
    /// any call site.
    fn default() -> ExecConfig {
        let env = std::env::var("DISTILL_FUSE").ok();
        ExecConfig {
            fuse: ExecConfig::fuse_from_env_value(env.as_deref()),
        }
    }
}

/// The execution engine: a module plus its materialized memory.
#[derive(Debug)]
pub struct Engine {
    module: Arc<Module>,
    decoded: Arc<Vec<DecodedFunction>>,
    /// The fused form `call` executes; `None` when fusion is disabled.
    fused: Arc<Vec<DecodedFunction>>,
    fuse_enabled: bool,
    fuse_summary: FuseSummary,
    memory: Vec<Slot>,
    global_base: Vec<usize>,
    stack_base: usize,
    stats: EngineStats,
    frame_pool: Vec<Frame>,
    phi_scratch: Vec<Value>,
    /// Maximum instructions per top-level `call` (default: effectively
    /// unlimited). Tests lower it to catch runaway loops.
    pub fuel_limit: u64,
}

impl Clone for Engine {
    /// Clone the mutable memory image; the module and the predecoded/fused
    /// code are shared (immutable after construction), so worker threads can
    /// be spawned without re-lowering or copying any code.
    fn clone(&self) -> Engine {
        Engine {
            module: Arc::clone(&self.module),
            decoded: Arc::clone(&self.decoded),
            fused: Arc::clone(&self.fused),
            fuse_enabled: self.fuse_enabled,
            fuse_summary: self.fuse_summary,
            memory: self.memory.clone(),
            global_base: self.global_base.clone(),
            stack_base: self.stack_base,
            stats: self.stats,
            frame_pool: Vec::new(),
            phi_scratch: Vec::new(),
            fuel_limit: self.fuel_limit,
        }
    }
}

/// Cap on pooled frames kept for reuse; deeper recursion falls back to
/// fresh allocations rather than hoarding memory.
const FRAME_POOL_CAP: usize = 64;

impl Engine {
    /// Materialize an engine for a module with the default
    /// [`ExecConfig`] (fusion on unless `DISTILL_FUSE=0`): lay out the
    /// globals and lower every function to its predecoded — and, by
    /// default, fused — execution form (once; the code is shared by every
    /// [`Clone`] of the engine).
    pub fn new(module: Module) -> Engine {
        Engine::with_config(module, ExecConfig::default())
    }

    /// Materialize an engine with explicit execution knobs.
    pub fn with_config(module: Module, config: ExecConfig) -> Engine {
        let mut memory = Vec::new();
        let mut global_base = Vec::with_capacity(module.globals.len());
        for g in &module.globals {
            global_base.push(memory.len());
            for c in &g.init {
                memory.push(match c {
                    Constant::F64(v) => Slot::F64(*v),
                    Constant::F32(v) => Slot::F64(*v as f64),
                    Constant::I64(v) => Slot::I64(*v),
                    Constant::Bool(b) => Slot::Bool(*b),
                    Constant::Undef => Slot::Uninit,
                });
            }
        }
        let stack_base = memory.len();
        let decoded = Arc::new(decode_module(&module, &global_base));
        let (fused, fuse_summary) = if config.fuse {
            let (fused, summary) = fuse_module(&decoded);
            (Arc::new(fused), summary)
        } else {
            // `call` aliases the decoded form; nothing was fused.
            (Arc::clone(&decoded), FuseSummary::default())
        };
        Engine {
            module: Arc::new(module),
            decoded,
            fused,
            fuse_enabled: config.fuse,
            fuse_summary,
            memory,
            global_base,
            stack_base,
            stats: EngineStats::default(),
            frame_pool: Vec::new(),
            phi_scratch: Vec::new(),
            fuel_limit: u64::MAX,
        }
    }

    /// The module being executed.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Whether [`Engine::call`] runs the fused form.
    pub fn fuse_enabled(&self) -> bool {
        self.fuse_enabled
    }

    /// Static accounting of the construction-time fusion pass (zeroed when
    /// fusion is disabled).
    pub fn fuse_summary(&self) -> FuseSummary {
        self.fuse_summary
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Reset statistics.
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Fold a worker engine's counters into this engine's statistics.
    /// Sharded drivers run chunks on engine clones whose stats would die
    /// with their thread; absorbing them keeps the template engine's
    /// [`EngineStats`] a faithful account of all work done on its behalf.
    pub fn absorb_stats(&mut self, other: &EngineStats) {
        self.stats.add(other);
    }

    /// The counters accumulated since `base` (a snapshot of this engine's
    /// earlier [`Engine::stats`]). The inverse of [`Engine::absorb_stats`]:
    /// workers snapshot at spawn, run, and hand the delta back — keeping the
    /// field-by-field bookkeeping in one place next to the fold.
    pub fn stats_since(&self, base: &EngineStats) -> EngineStats {
        let s = &self.stats;
        EngineStats {
            instructions: s.instructions - base.instructions,
            calls: s.calls - base.calls,
            loads: s.loads - base.loads,
            stores: s.stores - base.stores,
            frame_pool_hits: s.frame_pool_hits - base.frame_pool_hits,
            steals: s.steals - base.steals,
            fused_ops: s.fused_ops - base.fused_ops,
            frame_slots: s.frame_slots - base.frame_slots,
        }
    }

    /// Fold work-stealing chunk grabs into [`EngineStats::steals`]. Worker
    /// engines are dropped when their thread finishes, so the driver that
    /// owns the template engine records the scheduler's aggregate here
    /// after each parallel grid search.
    pub fn record_steals(&mut self, n: u64) {
        self.stats.steals += n;
    }

    /// Base slot address of a global.
    pub fn global_addr(&self, id: GlobalId) -> usize {
        self.global_base[id.index()]
    }

    /// The full memory image as `(tag, bits)` pairs (tags: 0 = f64, 1 = i64,
    /// 2 = bool, 3 = uninitialized). Intended for differential tests that
    /// assert two engines reached bit-identical states.
    pub fn memory_bits(&self) -> Vec<(u8, u64)> {
        self.memory
            .iter()
            .map(|s| match s {
                Slot::F64(v) => (0u8, v.to_bits()),
                Slot::I64(v) => (1u8, *v as u64),
                Slot::Bool(b) => (2u8, *b as u64),
                Slot::Uninit => (3u8, 0),
            })
            .collect()
    }

    fn global_id(&self, name: &str) -> Result<GlobalId, ExecError> {
        self.module
            .global_by_name(name)
            .ok_or_else(|| ExecError::UnknownGlobal(name.to_string()))
    }

    /// Read a global's slots as `f64` values.
    ///
    /// # Errors
    /// [`ExecError::UnknownGlobal`] if the global name is unknown.
    pub fn read_global_f64(&self, name: &str) -> Result<Vec<f64>, ExecError> {
        let id = self.global_id(name)?;
        let len = self.module.global(id).ty.slot_count();
        self.read_global_f64_prefix(name, len)
    }

    /// Read only the first `len` slots of a global as `f64` values — the
    /// cheap path for partially-filled staging buffers (e.g. a batch chunk
    /// smaller than the staging capacity).
    ///
    /// # Errors
    /// [`ExecError::UnknownGlobal`] if the global name is unknown.
    ///
    /// # Panics
    /// Panics if `len` exceeds the global's size (a driver contract
    /// violation, not a runtime condition).
    pub fn read_global_f64_prefix(&self, name: &str, len: usize) -> Result<Vec<f64>, ExecError> {
        let id = self.global_id(name)?;
        let base = self.global_base[id.index()];
        assert!(
            len <= self.module.global(id).ty.slot_count(),
            "prefix of {len} slots exceeds global {name}"
        );
        Ok(self.memory[base..base + len]
            .iter()
            .map(|s| match s {
                Slot::F64(v) => *v,
                Slot::I64(v) => *v as f64,
                Slot::Bool(b) => *b as i64 as f64,
                Slot::Uninit => f64::NAN,
            })
            .collect())
    }

    /// Overwrite a global's slots with `f64` values (shorter inputs leave the
    /// remaining slots untouched).
    ///
    /// # Errors
    /// [`ExecError::UnknownGlobal`] if the global name is unknown;
    /// [`ExecError::OutOfBounds`] if `values` is longer than the global —
    /// writing past a global's extent would silently corrupt its neighbour.
    pub fn write_global_f64(&mut self, name: &str, values: &[f64]) -> Result<(), ExecError> {
        let id = self.global_id(name)?;
        let size = self.module.global(id).ty.slot_count();
        if values.len() > size {
            return Err(ExecError::OutOfBounds {
                addr: values.len(),
                size,
            });
        }
        let base = self.global_base[id.index()];
        for (i, v) in values.iter().enumerate() {
            self.memory[base + i] = Slot::F64(*v);
        }
        Ok(())
    }

    /// Write a single `i64` slot of a global.
    ///
    /// # Errors
    /// [`ExecError::UnknownGlobal`] if the global name is unknown;
    /// [`ExecError::OutOfBounds`] if `index` is outside the global.
    pub fn write_global_i64(&mut self, name: &str, index: usize, value: i64) -> Result<(), ExecError> {
        let id = self.global_id(name)?;
        let size = self.module.global(id).ty.slot_count();
        if index >= size {
            return Err(ExecError::OutOfBounds { addr: index, size });
        }
        let base = self.global_base[id.index()];
        self.memory[base + index] = Slot::I64(value);
        Ok(())
    }

    /// Read a single `i64` slot of a global.
    ///
    /// # Errors
    /// [`ExecError::UnknownGlobal`] if the global name is unknown;
    /// [`ExecError::OutOfBounds`] if `index` is outside the global;
    /// [`ExecError::Undef`] if the slot is uninitialized.
    pub fn read_global_i64(&self, name: &str, index: usize) -> Result<i64, ExecError> {
        let id = self.global_id(name)?;
        let size = self.module.global(id).ty.slot_count();
        if index >= size {
            return Err(ExecError::OutOfBounds { addr: index, size });
        }
        let base = self.global_base[id.index()];
        match self.memory[base + index] {
            Slot::I64(v) => Ok(v),
            Slot::F64(v) => Ok(v as i64),
            Slot::Bool(b) => Ok(b as i64),
            Slot::Uninit => Err(ExecError::Undef(format!("global {name}[{index}]"))),
        }
    }

    // -----------------------------------------------------------------------
    // Predecoded hot path
    // -----------------------------------------------------------------------

    /// Call a function by id with the given arguments, running the fused
    /// form (or the plain predecoded form when fusion is disabled — see
    /// [`ExecConfig`]).
    ///
    /// # Errors
    /// Returns [`ExecError`] on type errors, memory violations, division by
    /// zero, depth or fuel exhaustion.
    pub fn call(&mut self, func: FuncId, args: &[Value]) -> Result<Value, ExecError> {
        // The code is behind `Arc` so the loop can borrow it while
        // `&mut self` mutates memory and statistics; one refcount bump per
        // top-level call.
        let code = Arc::clone(&self.fused);
        let mut fuel = self.fuel_limit;
        self.call_in(&code, func.index(), args, &mut fuel, 0)
    }

    /// Call a function through the **unfused** predecoded form — the PR 3
    /// interpreter core, retained for A/B measurement (`figures --fused`)
    /// and differential testing against the fused fast path. Semantically
    /// identical to [`Engine::call`] for verifier-clean IR.
    ///
    /// # Errors
    /// Same surface as [`Engine::call`].
    pub fn call_decoded(&mut self, func: FuncId, args: &[Value]) -> Result<Value, ExecError> {
        let code = Arc::clone(&self.decoded);
        let mut fuel = self.fuel_limit;
        self.call_in(&code, func.index(), args, &mut fuel, 0)
    }

    fn call_in(
        &mut self,
        decoded: &[DecodedFunction],
        func: usize,
        args: &[Value],
        fuel: &mut u64,
        depth: usize,
    ) -> Result<Value, ExecError> {
        self.stats.calls += 1;
        if depth > 256 {
            return Err(ExecError::DepthExceeded);
        }
        let df = &decoded[func];
        let Some(entry) = df.entry else {
            return Err(ExecError::MissingBody(df.name.clone()));
        };
        let frame_base = self.memory.len();
        let mut regs = self.acquire_frame(df.num_values as usize);
        for (i, a) in args.iter().enumerate() {
            regs[i] = Some(*a);
        }
        let result = self.exec_in(decoded, df, entry, &mut regs, fuel, depth);
        self.release_frame(regs);
        // Pop this frame's allocas.
        self.memory.truncate(frame_base.max(self.stack_base));
        result
    }

    fn acquire_frame(&mut self, num_values: usize) -> Frame {
        self.stats.frame_slots += num_values as u64;
        match self.frame_pool.pop() {
            Some(mut frame) => {
                self.stats.frame_pool_hits += 1;
                frame.clear();
                frame.resize(num_values, None);
                frame
            }
            None => vec![None; num_values],
        }
    }

    fn release_frame(&mut self, frame: Frame) {
        if self.frame_pool.len() < FRAME_POOL_CAP {
            self.frame_pool.push(frame);
        }
    }

    fn exec_in(
        &mut self,
        decoded: &[DecodedFunction],
        df: &DecodedFunction,
        entry: u32,
        regs: &mut Frame,
        fuel: &mut u64,
        depth: usize,
    ) -> Result<Value, ExecError> {
        let mut block = entry as usize;
        let mut prev: Option<u32> = None;
        loop {
            let blk = &df.blocks[block];
            if blk.has_phis {
                let Some(p) = prev else {
                    return Err(ExecError::Undef(format!(
                        "phi %{} evaluated in entry block",
                        blk.first_phi
                    )));
                };
                let (_, edge) = blk
                    .phi_edges
                    .iter()
                    .find(|(pred, _)| *pred == p)
                    .expect("phi edge decoded for every static predecessor");
                match edge {
                    PhiEdge::Missing { phi, pred } => {
                        return Err(ExecError::Type(format!(
                            "phi %{phi} has no edge from bb{pred}"
                        )));
                    }
                    PhiEdge::Copies(copies) => {
                        // Parallel copy: all sources are read against the
                        // pre-entry register state before any destination is
                        // written (a phi may feed another phi of the block).
                        let mut scratch = std::mem::take(&mut self.phi_scratch);
                        scratch.clear();
                        let mut failed = None;
                        for (_, src) in copies.iter() {
                            match read_operand(src, regs) {
                                Ok(v) => scratch.push(v),
                                Err(e) => {
                                    failed = Some(e);
                                    break;
                                }
                            }
                        }
                        if failed.is_none() {
                            for ((dst, _), v) in copies.iter().zip(scratch.iter()) {
                                regs[*dst as usize] = Some(*v);
                            }
                        }
                        self.phi_scratch = scratch;
                        if let Some(e) = failed {
                            return Err(e);
                        }
                    }
                }
            }

            for op in blk.code.iter() {
                if *fuel == 0 {
                    return Err(ExecError::FuelExhausted);
                }
                *fuel -= 1;
                self.stats.instructions += 1;
                let val = self.exec_decoded_inst(decoded, &op.inst, regs, fuel, depth)?;
                regs[op.dst as usize] = Some(val);
            }

            match &blk.term {
                DecodedTerm::Br(next) => {
                    prev = Some(block as u32);
                    block = *next as usize;
                }
                DecodedTerm::CondBr {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    let c = read_operand(cond, regs)?
                        .as_bool()
                        .ok_or_else(|| ExecError::Type("branch on non-bool".into()))?;
                    prev = Some(block as u32);
                    block = if c { *then_blk } else { *else_blk } as usize;
                }
                DecodedTerm::CmpBr {
                    pred,
                    lhs,
                    rhs,
                    then_blk,
                    else_blk,
                } => {
                    // The absorbed cmp still costs one dispatch of fuel so a
                    // compare-and-branch-only loop cannot spin past the
                    // budget.
                    charge_fuel(fuel)?;
                    self.stats.instructions += 1;
                    self.stats.fused_ops += 1;
                    let c = match exec_cmp(*pred, read_operand(lhs, regs)?, read_operand(rhs, regs)?)? {
                        Value::Bool(b) => b,
                        _ => unreachable!("cmp yields bool"),
                    };
                    prev = Some(block as u32);
                    block = if c { *then_blk } else { *else_blk } as usize;
                }
                DecodedTerm::Ret(Some(v)) => return read_operand(v, regs),
                DecodedTerm::Ret(None) => return Ok(Value::Unit),
                DecodedTerm::Unreachable => {
                    return Err(ExecError::Type("reached unreachable".into()))
                }
                DecodedTerm::Missing => panic!("block has terminator"),
            }
        }
    }

    fn exec_decoded_inst(
        &mut self,
        decoded: &[DecodedFunction],
        inst: &DecodedInst,
        regs: &mut Frame,
        fuel: &mut u64,
        depth: usize,
    ) -> Result<Value, ExecError> {
        match inst {
            DecodedInst::Bin { op, lhs, rhs } => {
                exec_bin(*op, read_operand(lhs, regs)?, read_operand(rhs, regs)?)
            }
            DecodedInst::Un { op, val } => {
                let a = read_operand(val, regs)?;
                match op {
                    UnOp::FNeg => Ok(Value::F64(
                        -a.as_f64().ok_or_else(|| ExecError::Type("fneg".into()))?,
                    )),
                    UnOp::Not => match a {
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        Value::I64(i) => Ok(Value::I64(!i)),
                        _ => Err(ExecError::Type("not on float".into())),
                    },
                }
            }
            DecodedInst::Cmp { pred, lhs, rhs } => {
                exec_cmp(*pred, read_operand(lhs, regs)?, read_operand(rhs, regs)?)
            }
            DecodedInst::Select {
                cond,
                then_val,
                else_val,
            } => {
                let c = read_operand(cond, regs)?
                    .as_bool()
                    .ok_or_else(|| ExecError::Type("select condition".into()))?;
                if c {
                    read_operand(then_val, regs)
                } else {
                    read_operand(else_val, regs)
                }
            }
            DecodedInst::Call { callee, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args.iter() {
                    vals.push(read_operand(a, regs)?);
                }
                self.call_in(decoded, *callee as usize, &vals, fuel, depth + 1)
            }
            DecodedInst::MathCall { kind, args } => {
                let mut vals = [0.0f64; 2];
                for (i, a) in args.iter().enumerate() {
                    vals[i] = read_operand(a, regs)?
                        .as_f64()
                        .ok_or_else(|| ExecError::Type("intrinsic arg".into()))?;
                }
                Ok(Value::F64(exec_math(*kind, &vals[..args.len()])))
            }
            DecodedInst::RandCall { kind, state } => {
                let addr = match read_operand(state, regs)? {
                    Value::Ptr(p) => p,
                    _ => return Err(ExecError::Type("PRNG state must be a pointer".into())),
                };
                let state_bits = self
                    .load_slot(addr)?
                    .as_i64()
                    .ok_or_else(|| ExecError::Type("PRNG state must be an integer".into()))?;
                let mut rng = SplitMix64::new(state_bits as u64);
                let out = match kind {
                    Intrinsic::RandUniform => rng.uniform(),
                    Intrinsic::RandNormal => rng.normal(),
                    _ => unreachable!(),
                };
                self.store_slot(addr, Value::I64(rng.state as i64))?;
                Ok(Value::F64(out))
            }
            DecodedInst::Alloca { slots } => {
                let addr = self.memory.len();
                for _ in 0..*slots {
                    self.memory.push(Slot::Uninit);
                }
                Ok(Value::Ptr(addr))
            }
            DecodedInst::Load { ptr } => {
                self.stats.loads += 1;
                let addr = match read_operand(ptr, regs)? {
                    Value::Ptr(p) => p,
                    other => {
                        return Err(ExecError::Type(format!("load from non-pointer {other:?}")))
                    }
                };
                self.load_slot(addr)
            }
            DecodedInst::Store { ptr, value } => {
                self.stats.stores += 1;
                let addr = match read_operand(ptr, regs)? {
                    Value::Ptr(p) => p,
                    other => {
                        return Err(ExecError::Type(format!("store to non-pointer {other:?}")))
                    }
                };
                let v = read_operand(value, regs)?;
                self.store_slot(addr, v)?;
                Ok(Value::Unit)
            }
            DecodedInst::Gep {
                base,
                const_offset,
                dyn_steps,
            } => Ok(Value::Ptr(
                self.gep_addr(base, *const_offset, dyn_steps, regs)?,
            )),
            DecodedInst::InvalidGep { base } => match read_operand(base, regs)? {
                Value::Ptr(_) => Err(ExecError::Type("invalid gep".into())),
                other => Err(ExecError::Type(format!("gep on non-pointer {other:?}"))),
            },
            DecodedInst::Cast { kind, val } => {
                let a = read_operand(val, regs)?;
                Ok(match kind {
                    CastKind::SiToFp => Value::F64(
                        a.as_i64()
                            .ok_or_else(|| ExecError::Type("sitofp".into()))? as f64,
                    ),
                    CastKind::FpToSi => Value::I64(
                        a.as_f64()
                            .ok_or_else(|| ExecError::Type("fptosi".into()))? as i64,
                    ),
                    CastKind::FpTrunc | CastKind::FpExt => Value::F64(
                        a.as_f64().ok_or_else(|| ExecError::Type("fpcast".into()))?,
                    ),
                    CastKind::ZExtBool => Value::I64(
                        a.as_bool().ok_or_else(|| ExecError::Type("zext".into()))? as i64,
                    ),
                    CastKind::TruncBool => Value::Bool(
                        a.as_i64().ok_or_else(|| ExecError::Type("trunc".into()))? != 0,
                    ),
                })
            }
            DecodedInst::GlobalAddr { addr } => Ok(Value::Ptr(*addr)),

            // -- Fused superinstructions (emitted by `crate::fuse` only) ----
            DecodedInst::LoadAbs { addr } => {
                self.stats.loads += 1;
                self.stats.fused_ops += 1;
                self.load_slot(*addr)
            }
            DecodedInst::StoreAbs { addr, value } => {
                self.stats.stores += 1;
                self.stats.fused_ops += 1;
                let v = read_operand(value, regs)?;
                self.store_slot(*addr, v)?;
                Ok(Value::Unit)
            }
            DecodedInst::GepLoad {
                base,
                const_offset,
                dyn_steps,
            } => {
                // Pair superinstructions charge the absorbed dispatch's
                // fuel (like the fused cmp+branch terminator), so fuel
                // accounting matches the decoded path op-for-op.
                charge_fuel(fuel)?;
                let addr = self.gep_addr(base, *const_offset, dyn_steps, regs)?;
                self.stats.loads += 1;
                self.stats.fused_ops += 1;
                self.load_slot(addr)
            }
            DecodedInst::GepStore {
                base,
                const_offset,
                dyn_steps,
                value,
            } => {
                charge_fuel(fuel)?;
                let addr = self.gep_addr(base, *const_offset, dyn_steps, regs)?;
                self.stats.stores += 1;
                self.stats.fused_ops += 1;
                let v = read_operand(value, regs)?;
                self.store_slot(addr, v)?;
                Ok(Value::Unit)
            }
            DecodedInst::BinRI { op, reg, imm } => {
                exec_bin(*op, read_reg(regs, *reg)?, *imm)
            }
            DecodedInst::BinIR { op, imm, reg } => {
                exec_bin(*op, *imm, read_reg(regs, *reg)?)
            }
            DecodedInst::LoadBin {
                op,
                ptr,
                other,
                load_lhs,
            } => {
                charge_fuel(fuel)?;
                self.stats.loads += 1;
                self.stats.fused_ops += 1;
                let addr = match read_operand(ptr, regs)? {
                    Value::Ptr(p) => p,
                    other => {
                        return Err(ExecError::Type(format!("load from non-pointer {other:?}")))
                    }
                };
                let loaded = self.load_slot(addr)?;
                let o = read_operand(other, regs)?;
                if *load_lhs {
                    exec_bin(*op, loaded, o)
                } else {
                    exec_bin(*op, o, loaded)
                }
            }
            DecodedInst::BinStore { op, lhs, rhs, ptr } => {
                charge_fuel(fuel)?;
                let v = exec_bin(*op, read_operand(lhs, regs)?, read_operand(rhs, regs)?)?;
                self.stats.stores += 1;
                self.stats.fused_ops += 1;
                let addr = match read_operand(ptr, regs)? {
                    Value::Ptr(p) => p,
                    other => {
                        return Err(ExecError::Type(format!("store to non-pointer {other:?}")))
                    }
                };
                self.store_slot(addr, v)?;
                Ok(Value::Unit)
            }
        }
    }

    /// Resolve a folded GEP address: base pointer, constant offset, dynamic
    /// steps. Shared by the plain and the fused GEP forms.
    fn gep_addr(
        &self,
        base: &Operand,
        const_offset: u32,
        dyn_steps: &[(Operand, u32)],
        regs: &Frame,
    ) -> Result<usize, ExecError> {
        let addr = match read_operand(base, regs)? {
            Value::Ptr(p) => p,
            other => return Err(ExecError::Type(format!("gep on non-pointer {other:?}"))),
        };
        let mut offset = const_offset as usize;
        for (idx, stride) in dyn_steps.iter() {
            let i = read_operand(idx, regs)?
                .as_i64()
                .ok_or_else(|| ExecError::Type("gep index".into()))?;
            if i < 0 {
                return Err(ExecError::OutOfBounds {
                    addr,
                    size: self.memory.len(),
                });
            }
            offset += i as usize * *stride as usize;
        }
        Ok(addr + offset)
    }

    // -----------------------------------------------------------------------
    // Reference slow path (the pre-predecode interpreter, retained verbatim)
    // -----------------------------------------------------------------------

    /// Call a function through the retained IR-walking reference
    /// interpreter: the pre-predecode implementation that deep-clones the
    /// callee per call and resolves operands against the value arena on
    /// every read. Semantically identical to [`Engine::call`] (the
    /// differential suite enforces it); kept as the behavioural baseline and
    /// for the `figures --interp` before/after measurement.
    ///
    /// # Errors
    /// Same surface as [`Engine::call`].
    pub fn call_reference(&mut self, func: FuncId, args: &[Value]) -> Result<Value, ExecError> {
        let mut fuel = self.fuel_limit;
        self.call_reference_inner(func, args, &mut fuel, 0)
    }

    fn call_reference_inner(
        &mut self,
        func_id: FuncId,
        args: &[Value],
        fuel: &mut u64,
        depth: usize,
    ) -> Result<Value, ExecError> {
        self.stats.calls += 1;
        if depth > 256 {
            return Err(ExecError::DepthExceeded);
        }
        let func: Function = self.module.function(func_id).clone();
        if func.layout.is_empty() {
            return Err(ExecError::MissingBody(func.name.clone()));
        }
        let frame_base = self.memory.len();
        let mut regs: Vec<Option<Value>> = vec![None; func.values.len()];
        for (i, a) in args.iter().enumerate() {
            regs[i] = Some(*a);
        }

        let mut block = func.entry_block().expect("function has entry block");
        let mut prev_block: Option<distill_ir::BlockId> = None;
        let result = 'outer: loop {
            // Phi nodes are evaluated together against the incoming edge.
            let blk = func.block(block);
            let mut phi_updates: Vec<(ValueId, Value)> = Vec::new();
            for &v in &blk.insts {
                if let Some(Inst::Phi { incoming, .. }) = func.as_inst(v) {
                    if let Some(pb) = prev_block {
                        let Some((_, src)) = incoming.iter().find(|(b, _)| *b == pb) else {
                            break 'outer Err(ExecError::Type(format!(
                                "phi {v} has no edge from {pb}"
                            )));
                        };
                        let val = self.operand(&func, &regs, *src)?;
                        phi_updates.push((v, val));
                    } else {
                        break 'outer Err(ExecError::Undef(format!(
                            "phi {v} evaluated in entry block"
                        )));
                    }
                }
            }
            for (v, val) in phi_updates {
                regs[v.index()] = Some(val);
            }

            for &v in &blk.insts {
                let inst = func.as_inst(v).expect("scheduled value is an instruction");
                if inst.is_phi() {
                    continue;
                }
                if *fuel == 0 {
                    break 'outer Err(ExecError::FuelExhausted);
                }
                *fuel -= 1;
                self.stats.instructions += 1;
                let val = self.exec_inst(&func, &mut regs, v, inst, fuel, depth)?;
                regs[v.index()] = Some(val);
            }

            match blk.term.clone().expect("block has terminator") {
                Terminator::Br(next) => {
                    prev_block = Some(block);
                    block = next;
                }
                Terminator::CondBr {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    let c = self
                        .operand(&func, &regs, cond)?
                        .as_bool()
                        .ok_or_else(|| ExecError::Type("branch on non-bool".into()))?;
                    prev_block = Some(block);
                    block = if c { then_blk } else { else_blk };
                }
                Terminator::Ret(val) => {
                    let out = match val {
                        Some(v) => self.operand(&func, &regs, v)?,
                        None => Value::Unit,
                    };
                    break Ok(out);
                }
                Terminator::Unreachable => {
                    break Err(ExecError::Type("reached unreachable".into()));
                }
            }
        };
        // Pop this frame's allocas.
        self.memory.truncate(frame_base.max(self.stack_base));
        result
    }

    fn operand(
        &self,
        func: &Function,
        regs: &[Option<Value>],
        v: ValueId,
    ) -> Result<Value, ExecError> {
        match &func.value(v).kind {
            ValueKind::Const(c) => Ok(match c {
                Constant::F64(x) => Value::F64(*x),
                Constant::F32(x) => Value::F64(*x as f64),
                Constant::I64(x) => Value::I64(*x),
                Constant::Bool(b) => Value::Bool(*b),
                Constant::Undef => return Err(ExecError::Undef(format!("{v}"))),
            }),
            _ => regs[v.index()]
                .ok_or_else(|| ExecError::Undef(format!("value {v} used before definition"))),
        }
    }

    fn load_slot(&self, addr: usize) -> Result<Value, ExecError> {
        match self.memory.get(addr) {
            Some(Slot::F64(v)) => Ok(Value::F64(*v)),
            Some(Slot::I64(v)) => Ok(Value::I64(*v)),
            Some(Slot::Bool(b)) => Ok(Value::Bool(*b)),
            Some(Slot::Uninit) => Err(ExecError::Undef(format!("slot {addr}"))),
            None => Err(ExecError::OutOfBounds {
                addr,
                size: self.memory.len(),
            }),
        }
    }

    fn store_slot(&mut self, addr: usize, value: Value) -> Result<(), ExecError> {
        let size = self.memory.len();
        let slot = self
            .memory
            .get_mut(addr)
            .ok_or(ExecError::OutOfBounds { addr, size })?;
        *slot = match value {
            Value::F64(v) => Slot::F64(v),
            Value::I64(v) => Slot::I64(v),
            Value::Bool(b) => Slot::Bool(b),
            Value::Ptr(p) => Slot::I64(p as i64),
            Value::Unit => return Err(ExecError::Type("storing unit value".into())),
        };
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_inst(
        &mut self,
        func: &Function,
        regs: &mut [Option<Value>],
        _id: ValueId,
        inst: &Inst,
        fuel: &mut u64,
        depth: usize,
    ) -> Result<Value, ExecError> {
        let op = |engine: &Engine, regs: &[Option<Value>], v: ValueId| engine.operand(func, regs, v);
        match inst {
            Inst::Bin { op: o, lhs, rhs } => {
                let a = op(self, regs, *lhs)?;
                let b = op(self, regs, *rhs)?;
                exec_bin(*o, a, b)
            }
            Inst::Un { op: o, val } => {
                let a = op(self, regs, *val)?;
                match o {
                    UnOp::FNeg => Ok(Value::F64(
                        -a.as_f64().ok_or_else(|| ExecError::Type("fneg".into()))?,
                    )),
                    UnOp::Not => match a {
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        Value::I64(i) => Ok(Value::I64(!i)),
                        _ => Err(ExecError::Type("not on float".into())),
                    },
                }
            }
            Inst::Cmp { pred, lhs, rhs } => {
                let a = op(self, regs, *lhs)?;
                let b = op(self, regs, *rhs)?;
                exec_cmp(*pred, a, b)
            }
            Inst::Select {
                cond,
                then_val,
                else_val,
            } => {
                let c = op(self, regs, *cond)?
                    .as_bool()
                    .ok_or_else(|| ExecError::Type("select condition".into()))?;
                if c {
                    op(self, regs, *then_val)
                } else {
                    op(self, regs, *else_val)
                }
            }
            Inst::Call { callee, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(op(self, regs, *a)?);
                }
                self.call_reference_inner(*callee, &vals, fuel, depth + 1)
            }
            Inst::IntrinsicCall { kind, args } => {
                if kind.has_side_effects() {
                    let ptr = op(self, regs, args[0])?;
                    let addr = match ptr {
                        Value::Ptr(p) => p,
                        _ => return Err(ExecError::Type("PRNG state must be a pointer".into())),
                    };
                    let state_bits = self
                        .load_slot(addr)?
                        .as_i64()
                        .ok_or_else(|| ExecError::Type("PRNG state must be an integer".into()))?;
                    let mut rng = SplitMix64::new(state_bits as u64);
                    let out = match kind {
                        Intrinsic::RandUniform => rng.uniform(),
                        Intrinsic::RandNormal => rng.normal(),
                        _ => unreachable!(),
                    };
                    self.store_slot(addr, Value::I64(rng.state as i64))?;
                    Ok(Value::F64(out))
                } else {
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(
                            op(self, regs, *a)?
                                .as_f64()
                                .ok_or_else(|| ExecError::Type("intrinsic arg".into()))?,
                        );
                    }
                    Ok(Value::F64(exec_math(*kind, &vals)))
                }
            }
            Inst::Alloca { ty } => {
                let addr = self.memory.len();
                for _ in 0..ty.slot_count() {
                    self.memory.push(Slot::Uninit);
                }
                Ok(Value::Ptr(addr))
            }
            Inst::Load { ptr } => {
                self.stats.loads += 1;
                let addr = match op(self, regs, *ptr)? {
                    Value::Ptr(p) => p,
                    other => {
                        return Err(ExecError::Type(format!("load from non-pointer {other:?}")))
                    }
                };
                self.load_slot(addr)
            }
            Inst::Store { ptr, value } => {
                self.stats.stores += 1;
                let addr = match op(self, regs, *ptr)? {
                    Value::Ptr(p) => p,
                    other => {
                        return Err(ExecError::Type(format!("store to non-pointer {other:?}")))
                    }
                };
                let v = op(self, regs, *value)?;
                self.store_slot(addr, v)?;
                Ok(Value::Unit)
            }
            Inst::Gep { base, indices } => {
                let addr = match op(self, regs, *base)? {
                    Value::Ptr(p) => p,
                    other => return Err(ExecError::Type(format!("gep on non-pointer {other:?}"))),
                };
                let mut ty = func.ty(*base).pointee().clone();
                let mut offset = 0usize;
                for idx in indices {
                    match (&ty, idx) {
                        (Ty::Array(elem, _), GepIndex::Const(i)) => {
                            offset += i * elem.slot_count();
                            ty = (**elem).clone();
                        }
                        (Ty::Array(elem, _), GepIndex::Dyn(v)) => {
                            let i = op(self, regs, *v)?
                                .as_i64()
                                .ok_or_else(|| ExecError::Type("gep index".into()))?;
                            if i < 0 {
                                return Err(ExecError::OutOfBounds {
                                    addr,
                                    size: self.memory.len(),
                                });
                            }
                            offset += i as usize * elem.slot_count();
                            ty = (**elem).clone();
                        }
                        // Out-of-range field indices are the same typed
                        // error the decoded path's poison form raises (the
                        // one deviation from the pre-predecode code, which
                        // panicked here).
                        (Ty::Struct(fields), GepIndex::Const(i)) if *i < fields.len() => {
                            offset += ty.field_offset(*i);
                            ty = fields[*i].clone();
                        }
                        _ => return Err(ExecError::Type("invalid gep".into())),
                    }
                }
                Ok(Value::Ptr(addr + offset))
            }
            Inst::Phi { .. } => unreachable!("phis handled at block entry"),
            Inst::Cast { kind, val, .. } => {
                let a = op(self, regs, *val)?;
                Ok(match kind {
                    CastKind::SiToFp => Value::F64(
                        a.as_i64()
                            .ok_or_else(|| ExecError::Type("sitofp".into()))? as f64,
                    ),
                    CastKind::FpToSi => Value::I64(
                        a.as_f64()
                            .ok_or_else(|| ExecError::Type("fptosi".into()))? as i64,
                    ),
                    CastKind::FpTrunc | CastKind::FpExt => Value::F64(
                        a.as_f64().ok_or_else(|| ExecError::Type("fpcast".into()))?,
                    ),
                    CastKind::ZExtBool => Value::I64(
                        a.as_bool().ok_or_else(|| ExecError::Type("zext".into()))? as i64,
                    ),
                    CastKind::TruncBool => Value::Bool(
                        a.as_i64().ok_or_else(|| ExecError::Type("trunc".into()))? != 0,
                    ),
                })
            }
            Inst::GlobalAddr { global } => Ok(Value::Ptr(self.global_base[global.index()])),
        }
    }
}

/// Read a pre-resolved operand against the current frame.
#[inline]
fn read_operand(op: &Operand, regs: &[Option<Value>]) -> Result<Value, ExecError> {
    match op {
        Operand::Imm(v) => Ok(*v),
        Operand::Reg(i) => regs[*i as usize]
            .ok_or_else(|| ExecError::Undef(format!("value %{i} used before definition"))),
        Operand::Undef(i) => Err(ExecError::Undef(format!("%{i}"))),
    }
}

/// Read a frame register directly (the specialized register fields of the
/// fused `BinRI`/`BinIR` forms).
#[inline]
fn read_reg(regs: &[Option<Value>], i: u32) -> Result<Value, ExecError> {
    regs[i as usize]
        .ok_or_else(|| ExecError::Undef(format!("value %{i} used before definition")))
}

/// Charge one extra unit of fuel for an instruction a superinstruction
/// absorbed, so fused pair forms consume the same fuel as their decoded
/// expansion.
#[inline]
fn charge_fuel(fuel: &mut u64) -> Result<(), ExecError> {
    if *fuel == 0 {
        return Err(ExecError::FuelExhausted);
    }
    *fuel -= 1;
    Ok(())
}

fn exec_bin(op: BinOp, a: Value, b: Value) -> Result<Value, ExecError> {
    if op.is_float() {
        let (x, y) = (
            a.as_f64().ok_or_else(|| ExecError::Type("float op".into()))?,
            b.as_f64().ok_or_else(|| ExecError::Type("float op".into()))?,
        );
        let r = match op {
            BinOp::FAdd => x + y,
            BinOp::FSub => x - y,
            BinOp::FMul => x * y,
            BinOp::FDiv => x / y,
            BinOp::FRem => x % y,
            _ => unreachable!(),
        };
        Ok(Value::F64(r))
    } else {
        let (x, y) = (
            a.as_i64().ok_or_else(|| ExecError::Type("int op".into()))?,
            b.as_i64().ok_or_else(|| ExecError::Type("int op".into()))?,
        );
        let r = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::SDiv => {
                if y == 0 {
                    return Err(ExecError::DivisionByZero);
                }
                x.wrapping_div(y)
            }
            BinOp::SRem => {
                if y == 0 {
                    return Err(ExecError::DivisionByZero);
                }
                x.wrapping_rem(y)
            }
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32),
            BinOp::LShr => ((x as u64).wrapping_shr(y as u32)) as i64,
            BinOp::AShr => x.wrapping_shr(y as u32),
            _ => unreachable!(),
        };
        Ok(Value::I64(r))
    }
}

fn exec_cmp(pred: CmpPred, a: Value, b: Value) -> Result<Value, ExecError> {
    let r = if pred.is_float() {
        let (x, y) = (
            a.as_f64().ok_or_else(|| ExecError::Type("fcmp".into()))?,
            b.as_f64().ok_or_else(|| ExecError::Type("fcmp".into()))?,
        );
        match pred {
            CmpPred::FEq => x == y,
            CmpPred::FNe => x != y,
            CmpPred::FLt => x < y,
            CmpPred::FLe => x <= y,
            CmpPred::FGt => x > y,
            CmpPred::FGe => x >= y,
            _ => unreachable!(),
        }
    } else {
        let (x, y) = (
            a.as_i64().ok_or_else(|| ExecError::Type("icmp".into()))?,
            b.as_i64().ok_or_else(|| ExecError::Type("icmp".into()))?,
        );
        match pred {
            CmpPred::IEq => x == y,
            CmpPred::INe => x != y,
            CmpPred::ILt => x < y,
            CmpPred::ILe => x <= y,
            CmpPred::IGt => x > y,
            CmpPred::IGe => x >= y,
            _ => unreachable!(),
        }
    };
    Ok(Value::Bool(r))
}

fn exec_math(kind: Intrinsic, args: &[f64]) -> f64 {
    match kind {
        Intrinsic::Exp => args[0].exp(),
        Intrinsic::Log => args[0].ln(),
        Intrinsic::Sqrt => args[0].sqrt(),
        Intrinsic::Sin => args[0].sin(),
        Intrinsic::Cos => args[0].cos(),
        Intrinsic::Tanh => args[0].tanh(),
        Intrinsic::Pow => args[0].powf(args[1]),
        Intrinsic::FAbs => args[0].abs(),
        Intrinsic::Floor => args[0].floor(),
        Intrinsic::Ceil => args[0].ceil(),
        Intrinsic::FMin => args[0].min(args[1]),
        Intrinsic::FMax => args[0].max(args[1]),
        Intrinsic::RandUniform | Intrinsic::RandNormal => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_ir::{FunctionBuilder, Module, Ty};

    fn axpy_module() -> (Module, FuncId) {
        let mut m = Module::new("m");
        let fid = m.declare_function("axpy", vec![Ty::F64, Ty::F64, Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let a = b.param(0);
            let x = b.param(1);
            let y = b.param(2);
            let ax = b.fmul(a, x);
            let r = b.fadd(ax, y);
            b.ret(Some(r));
        }
        (m, fid)
    }

    #[test]
    fn straightline_arithmetic() {
        let (m, fid) = axpy_module();
        let mut e = Engine::new(m);
        let r = e
            .call(fid, &[Value::F64(2.0), Value::F64(3.0), Value::F64(1.0)])
            .unwrap();
        assert_eq!(r, Value::F64(7.0));
        assert!(e.stats().instructions >= 2);
    }

    #[test]
    fn reference_path_matches_decoded_path() {
        let (m, fid) = axpy_module();
        let mut e = Engine::new(m);
        let args = [Value::F64(2.0), Value::F64(3.0), Value::F64(1.0)];
        assert_eq!(e.call(fid, &args), e.call_reference(fid, &args));
    }

    fn sum_module() -> (Module, FuncId) {
        // sum(0..n)
        let mut m = Module::new("m");
        let fid = m.declare_function("sum", vec![Ty::I64], Ty::I64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let entry = b.create_block("entry");
            let header = b.create_block("header");
            let body = b.create_block("body");
            let exit = b.create_block("exit");
            b.switch_to_block(entry);
            let n = b.param(0);
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.br(header);
            b.switch_to_block(header);
            let i = b.empty_phi(Ty::I64);
            let acc = b.empty_phi(Ty::I64);
            b.add_phi_incoming(i, entry, zero);
            b.add_phi_incoming(acc, entry, zero);
            let c = b.cmp(distill_ir::CmpPred::ILt, i, n);
            b.cond_br(c, body, exit);
            b.switch_to_block(body);
            let acc2 = b.iadd(acc, i);
            let i2 = b.iadd(i, one);
            b.add_phi_incoming(i, body, i2);
            b.add_phi_incoming(acc, body, acc2);
            b.br(header);
            b.switch_to_block(exit);
            b.ret(Some(acc));
        }
        (m, fid)
    }

    #[test]
    fn loops_and_phis_sum_integers() {
        let (m, _) = sum_module();
        let mut e = Engine::new(m);
        let r = e.call(FuncId::from_index(0), &[Value::I64(10)]).unwrap();
        assert_eq!(r, Value::I64(45));
    }

    #[test]
    fn loops_and_phis_match_reference() {
        let (m, fid) = sum_module();
        let mut fast = Engine::new(m.clone());
        let mut slow = Engine::new(m);
        for n in [0i64, 1, 2, 17, 100] {
            assert_eq!(
                fast.call(fid, &[Value::I64(n)]),
                slow.call_reference(fid, &[Value::I64(n)]),
                "n={n}"
            );
        }
        assert_eq!(fast.memory_bits(), slow.memory_bits());
    }

    #[test]
    fn globals_memory_and_gep() {
        let mut m = Module::new("m");
        let g = m.add_zeroed_global("buf", Ty::array(Ty::F64, 4), true);
        let tys: Vec<Ty> = m.globals.iter().map(|g| g.ty.clone()).collect();
        let fid = m.declare_function("bump", vec![Ty::I64, Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f).with_global_types(tys);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let idx = b.param(0);
            let inc = b.param(1);
            let base = b.global_addr(g);
            let p = b.elem_addr(base, idx);
            let old = b.load(p);
            let new = b.fadd(old, inc);
            b.store(p, new);
            b.ret(Some(new));
        }
        let mut e = Engine::new(m);
        e.write_global_f64("buf", &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let r = e.call(fid, &[Value::I64(2), Value::F64(0.5)]).unwrap();
        assert_eq!(r, Value::F64(3.5));
        assert_eq!(e.read_global_f64("buf").unwrap(), vec![1.0, 2.0, 3.5, 4.0]);
    }

    #[test]
    fn unknown_globals_are_typed_errors() {
        let (m, _) = axpy_module();
        let mut e = Engine::new(m);
        assert_eq!(
            e.read_global_f64("nope").unwrap_err(),
            ExecError::UnknownGlobal("nope".into())
        );
        assert_eq!(
            e.read_global_i64("nope", 0).unwrap_err(),
            ExecError::UnknownGlobal("nope".into())
        );
        assert_eq!(
            e.write_global_f64("nope", &[1.0]).unwrap_err(),
            ExecError::UnknownGlobal("nope".into())
        );
        assert_eq!(
            e.write_global_i64("nope", 0, 1).unwrap_err(),
            ExecError::UnknownGlobal("nope".into())
        );
        assert_eq!(
            e.read_global_f64_prefix("nope", 0).unwrap_err(),
            ExecError::UnknownGlobal("nope".into())
        );
    }

    #[test]
    fn global_writes_are_bounds_checked() {
        let mut m = Module::new("m");
        m.add_zeroed_global("a", Ty::array(Ty::F64, 2), true);
        m.add_zeroed_global("b", Ty::array(Ty::F64, 2), true);
        let mut e = Engine::new(m);
        // An oversized write must not silently spill into the next global.
        assert!(matches!(
            e.write_global_f64("a", &[1.0, 2.0, 3.0]),
            Err(ExecError::OutOfBounds { .. })
        ));
        assert_eq!(e.read_global_f64("b").unwrap(), vec![0.0, 0.0]);
        assert!(matches!(
            e.write_global_i64("a", 2, 1),
            Err(ExecError::OutOfBounds { .. })
        ));
        assert!(matches!(
            e.read_global_i64("a", 5),
            Err(ExecError::OutOfBounds { .. })
        ));
        // In-bounds shorter writes still work and leave the tail untouched.
        e.write_global_f64("a", &[7.5]).unwrap();
        assert_eq!(e.read_global_f64("a").unwrap(), vec![7.5, 0.0]);
    }

    #[test]
    fn call_depth_limit_is_a_typed_error_on_both_paths() {
        // f(x) = f(x): infinite recursion trips the depth limit.
        let mut m = Module::new("m");
        let fid = m.declare_function("f", vec![Ty::I64], Ty::I64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f).with_signatures(vec![(vec![Ty::I64], Ty::I64)]);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let r = b.call(fid, vec![x]);
            b.ret(Some(r));
        }
        // 256 interpreter levels need more stack than the default test
        // thread provides under the unoptimized profile.
        std::thread::Builder::new()
            .stack_size(32 * 1024 * 1024)
            .spawn(move || {
                let mut e = Engine::new(m);
                assert_eq!(
                    e.call(fid, &[Value::I64(0)]),
                    Err(ExecError::DepthExceeded)
                );
                assert_eq!(
                    e.call_reference(fid, &[Value::I64(0)]),
                    Err(ExecError::DepthExceeded)
                );
            })
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn alloca_frames_are_released() {
        let mut m = Module::new("m");
        let fid = m.declare_function("f", vec![Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let slot = b.alloca(Ty::F64);
            b.store(slot, x);
            let v = b.load(slot);
            b.ret(Some(v));
        }
        let mut e = Engine::new(m);
        let before = e.memory.len();
        for _ in 0..100 {
            e.call(fid, &[Value::F64(1.0)]).unwrap();
        }
        assert_eq!(e.memory.len(), before, "stack slots must be reclaimed");
    }

    #[test]
    fn frame_pool_is_reused_across_calls() {
        let (m, fid) = axpy_module();
        let mut e = Engine::new(m);
        let args = [Value::F64(2.0), Value::F64(3.0), Value::F64(1.0)];
        for _ in 0..10 {
            e.call(fid, &args).unwrap();
        }
        // The first call allocates; every later top-level call reuses it.
        assert!(
            e.stats().frame_pool_hits >= 9,
            "expected pooled frames, stats: {:?}",
            e.stats()
        );
    }

    #[test]
    fn prng_intrinsics_match_the_shared_generator() {
        let mut m = Module::new("m");
        let g = m.add_global(
            "rng",
            Ty::array(Ty::I64, 1),
            vec![Constant::I64(42)],
            true,
        );
        let tys: Vec<Ty> = m.globals.iter().map(|g| g.ty.clone()).collect();
        let fid = m.declare_function("draw", vec![], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f).with_global_types(tys);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let base = b.global_addr(g);
            let p = b.const_elem_addr(base, 0);
            let r = b.intrinsic(Intrinsic::RandNormal, vec![p]);
            b.ret(Some(r));
        }
        let mut e = Engine::new(m);
        let mut reference = SplitMix64::new(42);
        for _ in 0..5 {
            let got = e.call(fid, &[]).unwrap().as_f64().unwrap();
            assert_eq!(got, reference.normal());
        }
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let mut m = Module::new("m");
        let fid = m.declare_function("div", vec![Ty::I64, Ty::I64], Ty::I64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let y = b.param(1);
            let r = b.sdiv(x, y);
            b.ret(Some(r));
        }
        let mut e = Engine::new(m);
        assert_eq!(
            e.call(fid, &[Value::I64(1), Value::I64(0)]),
            Err(ExecError::DivisionByZero)
        );
        assert_eq!(
            e.call_reference(fid, &[Value::I64(1), Value::I64(0)]),
            Err(ExecError::DivisionByZero)
        );
    }

    #[test]
    fn fuel_limit_stops_runaway_loops() {
        let mut m = Module::new("m");
        let fid = m.declare_function("spin", vec![], Ty::Void);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            let l = b.create_block("loop");
            b.switch_to_block(e);
            b.br(l);
            b.switch_to_block(l);
            let one = b.const_i64(1);
            let _ = b.iadd(one, one);
            b.br(l);
        }
        let mut e = Engine::new(m);
        e.fuel_limit = 10_000;
        assert_eq!(e.call(fid, &[]), Err(ExecError::FuelExhausted));
        assert_eq!(e.call_reference(fid, &[]), Err(ExecError::FuelExhausted));
    }

    #[test]
    fn cloned_engines_have_independent_memory() {
        let mut m = Module::new("m");
        m.add_zeroed_global("buf", Ty::array(Ty::F64, 2), true);
        let e1 = Engine::new(m);
        let mut e2 = e1.clone();
        e2.write_global_f64("buf", &[9.0, 9.0]).unwrap();
        assert_eq!(e1.read_global_f64("buf").unwrap(), vec![0.0, 0.0]);
        assert_eq!(e2.read_global_f64("buf").unwrap(), vec![9.0, 9.0]);
    }

    #[test]
    fn clones_share_the_decoded_code() {
        let (m, _) = axpy_module();
        let e1 = Engine::new(m);
        let e2 = e1.clone();
        assert!(Arc::ptr_eq(&e1.decoded, &e2.decoded));
        assert!(Arc::ptr_eq(&e1.fused, &e2.fused));
        assert!(Arc::ptr_eq(&e1.module, &e2.module));
    }

    #[test]
    fn fusion_knob_parses_env_values() {
        for off in ["0", "off", "OFF", "false", "False", "no", "NO"] {
            assert!(!ExecConfig::fuse_from_env_value(Some(off)), "{off}");
        }
        assert!(ExecConfig::fuse_from_env_value(Some("1")));
        assert!(ExecConfig::fuse_from_env_value(Some("")));
        assert!(ExecConfig::fuse_from_env_value(None));
    }

    #[test]
    fn disabled_fusion_aliases_the_decoded_code() {
        let (m, fid) = axpy_module();
        let mut e = Engine::with_config(m, ExecConfig { fuse: false });
        assert!(!e.fuse_enabled());
        assert_eq!(e.fuse_summary(), FuseSummary::default());
        assert!(Arc::ptr_eq(&e.fused, &e.decoded));
        let args = [Value::F64(2.0), Value::F64(3.0), Value::F64(1.0)];
        assert_eq!(e.call(fid, &args), Ok(Value::F64(7.0)));
        assert_eq!(e.stats().fused_ops, 0, "no superinstructions without fusion");
    }

    #[test]
    fn fused_and_decoded_paths_agree_and_fusion_shrinks_frames() {
        let (m, fid) = sum_module();
        // Pinned explicitly so an inherited DISTILL_FUSE=0 cannot turn this
        // into a decoded-vs-decoded comparison.
        let mut e = Engine::with_config(m, ExecConfig { fuse: true });
        assert!(e.fuse_enabled());
        let summary = e.fuse_summary();
        assert!(
            summary.fused_frame_slots < summary.decoded_frame_slots,
            "liveness compaction must shrink frames: {summary:?}"
        );
        for n in [0i64, 1, 17, 100] {
            assert_eq!(
                e.call(fid, &[Value::I64(n)]),
                e.call_decoded(fid, &[Value::I64(n)]),
                "n={n}"
            );
        }
        // The loop's cmp+cond_br fused: superinstructions executed.
        assert!(e.stats().fused_ops > 0, "stats: {:?}", e.stats());
        // Frame-slot accounting: the fused entries are smaller than the
        // decoded entries for the same call pattern.
        assert!(e.stats().frame_slots > 0);
    }

    #[test]
    fn missing_body_errors_on_both_paths() {
        let mut m = Module::new("m");
        let fid = m.declare_function("decl", vec![], Ty::F64);
        m.function_mut(fid).is_declaration = true;
        let mut e = Engine::new(m);
        assert_eq!(
            e.call(fid, &[]),
            Err(ExecError::MissingBody("decl".into()))
        );
        assert_eq!(
            e.call_reference(fid, &[]),
            Err(ExecError::MissingBody("decl".into()))
        );
    }
}
