//! The IR execution engine.
//!
//! Memory is a flat vector of scalar slots. Globals are materialized at
//! engine construction in declaration order; `alloca` slots live in a stack
//! region that grows past the globals and is truncated when the allocating
//! frame returns. Addresses are slot indices carried in [`Value::Ptr`].
//!
//! # Execution tiers
//!
//! The engine prepares every module at four specialization levels and picks
//! one per call according to its [`TierPolicy`] (see [`crate::backend`] for
//! the tier architecture): the retained IR-walking reference oracle, the
//! predecoded interpreter (see [`crate::decode`]), the fused
//! superinstruction stream (see [`crate::fuse`]), and direct-threaded
//! dispatch over the fused stream. `Fixed(tier)` pins every call;
//! `Adaptive { hot_call_threshold }` starts functions at the decoded tier
//! and promotes hot ones to the threaded tier, counting promotions in
//! [`EngineStats::tier_promotions`]. The per-tier entry points
//! ([`Engine::call_reference`], [`Engine::call_decoded`],
//! [`Engine::call_fused`], [`Engine::call_threaded`]) bypass the policy for
//! A/B measurement and differential testing.
//!
//! The mutable state a call runs against — memory image, statistics, the
//! register-frame pool — lives in [`EngineCtx`], which every tier borrows
//! while its immutable prepared code is shared behind `Arc`.
//!
//! The engine is `Clone`: the multicore backend gives every worker thread
//! its own copy, which is the "thread-local copy of the read-write
//! parameter structure and node outputs" strategy of §3.6. Clones share the
//! immutable module and every tier's prepared code behind `Arc` — only the
//! mutable memory image is copied, so spawning a worker is cheap — and they
//! inherit the template's adaptive promotion state, so a worker starts hot
//! functions on the tier the template already promoted them to.

use crate::backend::{
    DecodedTier, ExecTier, FusedTier, ReferenceTier, ThreadedTier, Tier, TierCodeStats, TierPolicy,
};
use crate::decode::decode_module;
use crate::fuse::{fuse_module, FuseSummary};
use distill_ir::{Constant, FuncId, GlobalId, Module};
use std::fmt;
use std::sync::Arc;

/// A runtime scalar value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit float.
    F64(f64),
    /// 64-bit integer.
    I64(i64),
    /// Boolean.
    Bool(bool),
    /// Pointer (slot index into engine memory).
    Ptr(usize),
    /// The unit value of `Void`-typed instructions.
    Unit,
}

impl Value {
    /// View as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            Value::Bool(b) => Some(*b as i64 as f64),
            _ => None,
        }
    }

    /// View as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// View as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Execution failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A value had the wrong runtime type for an operation.
    Type(String),
    /// A memory access fell outside the allocated slots.
    OutOfBounds {
        /// Offending slot address.
        addr: usize,
        /// Memory size at the time.
        size: usize,
    },
    /// An undefined (uninitialized) value was read.
    Undef(String),
    /// Integer division by zero.
    DivisionByZero,
    /// The instruction budget was exhausted (guards against non-terminating
    /// generated code in tests).
    FuelExhausted,
    /// The called function is only a declaration.
    MissingBody(String),
    /// A global was looked up by a name the module does not declare.
    UnknownGlobal(String),
    /// The call stack exceeded the engine's depth limit.
    DepthExceeded,
    /// A parallel worker thread panicked; the unwind was caught at `join`
    /// and surfaced as this error instead of tearing down the driver.
    WorkerPanicked(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Type(m) => write!(f, "type error: {m}"),
            ExecError::OutOfBounds { addr, size } => {
                write!(f, "memory access at slot {addr} out of bounds (size {size})")
            }
            ExecError::Undef(m) => write!(f, "undefined value read: {m}"),
            ExecError::DivisionByZero => write!(f, "integer division by zero"),
            ExecError::FuelExhausted => write!(f, "instruction budget exhausted"),
            ExecError::MissingBody(n) => write!(f, "function {n} has no body"),
            ExecError::UnknownGlobal(n) => write!(f, "unknown global {n}"),
            ExecError::DepthExceeded => write!(f, "call depth exceeded"),
            ExecError::WorkerPanicked(m) => write!(f, "worker thread panicked: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// One memory slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Slot {
    F64(f64),
    I64(i64),
    Bool(bool),
    Uninit,
}

/// Statistics accumulated while executing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Instruction dispatches executed. On the fused path a superinstruction
    /// counts once, so the same work reports fewer dispatches than on the
    /// decoded path — [`EngineStats::fused_ops`] says how many of them were
    /// superinstructions.
    pub instructions: u64,
    /// Function calls made.
    pub calls: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Register frames served from the reuse pool instead of a fresh
    /// allocation (predecoded path only; the first call per depth misses).
    pub frame_pool_hits: u64,
    /// Work-stealing chunk grabs beyond each worker's first, accumulated by
    /// drivers that run parallel grid searches from this engine (see
    /// [`Engine::record_steals`] and `ParallelResult::steals`).
    pub steals: u64,
    /// Fused superinstructions executed (absolute loads/stores, GEP+memory
    /// pairs, load/store-fused arithmetic, fused compare-and-branch
    /// terminators). `fused_ops / instructions` is the dynamic fusion rate.
    pub fused_ops: u64,
    /// Cumulative register-frame slots acquired across calls; comparing the
    /// fused and decoded paths shows how much the liveness compaction in
    /// [`crate::fuse`] shrank the pooled frames.
    pub frame_slots: u64,
    /// Functions promoted from the decoded to the threaded tier by the
    /// adaptive policy (see [`TierPolicy::Adaptive`]). Zero under any fixed
    /// policy.
    pub tier_promotions: u64,
}

impl EngineStats {
    /// Field-wise accumulate `other` into `self` — the one definition of
    /// the counter fold, shared by [`Engine::absorb_stats`] and every
    /// driver that reduces worker-thread counter deltas.
    pub fn add(&mut self, other: &EngineStats) {
        self.instructions += other.instructions;
        self.calls += other.calls;
        self.loads += other.loads;
        self.stores += other.stores;
        self.frame_pool_hits += other.frame_pool_hits;
        self.steals += other.steals;
        self.fused_ops += other.fused_ops;
        self.frame_slots += other.frame_slots;
        self.tier_promotions += other.tier_promotions;
    }
}

/// A call frame: one register per SSA value of the function.
pub(crate) type Frame = Vec<Option<Value>>;

/// Construction-time knobs of the engine's execution pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Which tier [`Engine::call`] dispatches to (see [`TierPolicy`]).
    pub policy: TierPolicy,
}

impl ExecConfig {
    /// Pin every call to one tier.
    pub fn fixed(tier: Tier) -> ExecConfig {
        ExecConfig {
            policy: TierPolicy::Fixed(tier),
        }
    }
}

impl Default for ExecConfig {
    /// The `DISTILL_TIER` environment override when set, otherwise the
    /// fused interpreter — so any tier can be A/B-measured without touching
    /// a call site.
    fn default() -> ExecConfig {
        ExecConfig {
            policy: TierPolicy::from_env().unwrap_or_default(),
        }
    }
}

/// The mutable state a call executes against: the flat memory image, the
/// statistics counters, and the register-frame pool. Every [`ExecTier`]
/// borrows this exclusively for the duration of a call while its prepared
/// code stays shared and immutable.
#[derive(Debug)]
pub struct EngineCtx {
    pub(crate) memory: Vec<Slot>,
    pub(crate) global_base: Vec<usize>,
    /// First slot past the globals; the stack region starts here.
    pub(crate) stack_base: usize,
    pub(crate) stats: EngineStats,
    pub(crate) frame_pool: Vec<Frame>,
    pub(crate) phi_scratch: Vec<Value>,
}

/// Cap on pooled frames kept for reuse; deeper recursion falls back to
/// fresh allocations rather than hoarding memory.
const FRAME_POOL_CAP: usize = 64;

impl EngineCtx {
    pub(crate) fn acquire_frame(&mut self, num_values: usize) -> Frame {
        self.stats.frame_slots += num_values as u64;
        match self.frame_pool.pop() {
            Some(mut frame) => {
                self.stats.frame_pool_hits += 1;
                frame.clear();
                frame.resize(num_values, None);
                frame
            }
            None => vec![None; num_values],
        }
    }

    pub(crate) fn release_frame(&mut self, frame: Frame) {
        if self.frame_pool.len() < FRAME_POOL_CAP {
            self.frame_pool.push(frame);
        }
    }

    /// Pop a returning frame's allocas (never below the global region).
    pub(crate) fn truncate_stack(&mut self, frame_base: usize) {
        self.memory.truncate(frame_base.max(self.stack_base));
    }

    /// Push `slots` uninitialized stack slots; returns their base address.
    pub(crate) fn alloca(&mut self, slots: usize) -> usize {
        let addr = self.memory.len();
        for _ in 0..slots {
            self.memory.push(Slot::Uninit);
        }
        addr
    }

    pub(crate) fn load_slot(&self, addr: usize) -> Result<Value, ExecError> {
        match self.memory.get(addr) {
            Some(Slot::F64(v)) => Ok(Value::F64(*v)),
            Some(Slot::I64(v)) => Ok(Value::I64(*v)),
            Some(Slot::Bool(b)) => Ok(Value::Bool(*b)),
            Some(Slot::Uninit) => Err(ExecError::Undef(format!("slot {addr}"))),
            None => Err(ExecError::OutOfBounds {
                addr,
                size: self.memory.len(),
            }),
        }
    }

    pub(crate) fn store_slot(&mut self, addr: usize, value: Value) -> Result<(), ExecError> {
        let size = self.memory.len();
        let slot = self
            .memory
            .get_mut(addr)
            .ok_or(ExecError::OutOfBounds { addr, size })?;
        *slot = match value {
            Value::F64(v) => Slot::F64(v),
            Value::I64(v) => Slot::I64(v),
            Value::Bool(b) => Slot::Bool(b),
            Value::Ptr(p) => Slot::I64(p as i64),
            Value::Unit => return Err(ExecError::Type("storing unit value".into())),
        };
        Ok(())
    }
}

/// The execution engine: a module prepared at every tier plus its
/// materialized memory.
#[derive(Debug)]
pub struct Engine {
    module: Arc<Module>,
    reference: ReferenceTier,
    pub(crate) decoded: DecodedTier,
    pub(crate) fused: FusedTier,
    pub(crate) threaded: ThreadedTier,
    policy: TierPolicy,
    fuse_enabled: bool,
    /// Per-function call counts driving adaptive promotion.
    hot_calls: Vec<u64>,
    /// Per-function promotion state (`true` = runs on the threaded tier).
    promoted: Vec<bool>,
    pub(crate) ctx: EngineCtx,
    /// Maximum instructions per top-level `call` (default: effectively
    /// unlimited). Tests lower it to catch runaway loops.
    pub fuel_limit: u64,
}

impl Clone for Engine {
    /// Clone the mutable memory image; the module and every tier's prepared
    /// code are shared (immutable after construction), so worker threads can
    /// be spawned without re-lowering or copying any code. The adaptive
    /// promotion state is inherited, so clones start hot functions on the
    /// tier the template already promoted them to.
    fn clone(&self) -> Engine {
        Engine {
            module: Arc::clone(&self.module),
            reference: self.reference.clone(),
            decoded: self.decoded.clone(),
            fused: self.fused.clone(),
            threaded: self.threaded.clone(),
            policy: self.policy,
            fuse_enabled: self.fuse_enabled,
            hot_calls: self.hot_calls.clone(),
            promoted: self.promoted.clone(),
            ctx: EngineCtx {
                memory: self.ctx.memory.clone(),
                global_base: self.ctx.global_base.clone(),
                stack_base: self.ctx.stack_base,
                stats: self.ctx.stats,
                frame_pool: Vec::new(),
                phi_scratch: Vec::new(),
            },
            fuel_limit: self.fuel_limit,
        }
    }
}

impl Engine {
    /// Materialize an engine for a module with the default [`ExecConfig`]
    /// (the fused tier unless `DISTILL_TIER` requests otherwise): lay out
    /// the globals and lower every function to each tier's prepared form
    /// (once; the code is shared by every [`Clone`] of the engine).
    pub fn new(module: Module) -> Engine {
        Engine::with_config(module, ExecConfig::default())
    }

    /// Materialize an engine with an explicit tier policy.
    pub fn with_config(module: Module, config: ExecConfig) -> Engine {
        let mut memory = Vec::new();
        let mut global_base = Vec::with_capacity(module.globals.len());
        for g in &module.globals {
            global_base.push(memory.len());
            for c in &g.init {
                memory.push(match c {
                    Constant::F64(v) => Slot::F64(*v),
                    Constant::F32(v) => Slot::F64(*v as f64),
                    Constant::I64(v) => Slot::I64(*v),
                    Constant::Bool(b) => Slot::Bool(*b),
                    Constant::Undef => Slot::Uninit,
                });
            }
        }
        let stack_base = memory.len();
        // Build the tier pipeline once, sharing intermediates: decode, then
        // fuse (unless the policy pins a pre-fusion tier), then thread the
        // fused stream. Threading is O(static ops), so it is always built
        // eagerly and per-tier entry points work under any policy.
        let decoded_code = Arc::new(decode_module(&module, &global_base));
        let fuse_enabled = config.policy.wants_fusion();
        let (fused_code, fuse_summary) = if fuse_enabled {
            let (fused, summary) = fuse_module(&decoded_code);
            (Arc::new(fused), summary)
        } else {
            // The fused tier aliases the decoded form; nothing was fused.
            (Arc::clone(&decoded_code), FuseSummary::default())
        };
        let threaded_code = Arc::new(crate::backend::threaded::thread_module(&fused_code));
        let num_funcs = module.functions.len();
        let module = Arc::new(module);
        Engine {
            reference: ReferenceTier {
                module: Arc::clone(&module),
            },
            decoded: DecodedTier { code: decoded_code },
            fused: FusedTier {
                code: fused_code,
                summary: fuse_summary,
            },
            threaded: ThreadedTier {
                code: threaded_code,
            },
            module,
            policy: config.policy,
            fuse_enabled,
            hot_calls: vec![0; num_funcs],
            promoted: vec![false; num_funcs],
            ctx: EngineCtx {
                memory,
                global_base,
                stack_base,
                stats: EngineStats::default(),
                frame_pool: Vec::new(),
                phi_scratch: Vec::new(),
            },
            fuel_limit: u64::MAX,
        }
    }

    /// The module being executed.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The tier policy [`Engine::call`] dispatches under.
    pub fn tier_policy(&self) -> TierPolicy {
        self.policy
    }

    /// Whether the fusion pass ran at construction (true for every policy
    /// that can execute the fused stream).
    pub fn fuse_enabled(&self) -> bool {
        self.fuse_enabled
    }

    /// Static accounting of the construction-time fusion pass (zeroed when
    /// fusion is disabled).
    pub fn fuse_summary(&self) -> FuseSummary {
        self.fused.summary
    }

    /// Static shape of a tier's prepared code.
    pub fn tier_code_stats(&self, tier: Tier) -> TierCodeStats {
        match tier {
            Tier::Reference => self.reference.code_stats(),
            Tier::Decoded => self.decoded.code_stats(),
            Tier::Fused => self.fused.code_stats(),
            Tier::Threaded => self.threaded.code_stats(),
        }
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.ctx.stats
    }

    /// Reset statistics.
    pub fn reset_stats(&mut self) {
        self.ctx.stats = EngineStats::default();
    }

    /// Fold a worker engine's counters into this engine's statistics.
    /// Sharded drivers run chunks on engine clones whose stats would die
    /// with their thread; absorbing them keeps the template engine's
    /// [`EngineStats`] a faithful account of all work done on its behalf.
    pub fn absorb_stats(&mut self, other: &EngineStats) {
        self.ctx.stats.add(other);
    }

    /// The counters accumulated since `base` (a snapshot of this engine's
    /// earlier [`Engine::stats`]). The inverse of [`Engine::absorb_stats`]:
    /// workers snapshot at spawn, run, and hand the delta back — keeping the
    /// field-by-field bookkeeping in one place next to the fold.
    pub fn stats_since(&self, base: &EngineStats) -> EngineStats {
        let s = &self.ctx.stats;
        EngineStats {
            instructions: s.instructions - base.instructions,
            calls: s.calls - base.calls,
            loads: s.loads - base.loads,
            stores: s.stores - base.stores,
            frame_pool_hits: s.frame_pool_hits - base.frame_pool_hits,
            steals: s.steals - base.steals,
            fused_ops: s.fused_ops - base.fused_ops,
            frame_slots: s.frame_slots - base.frame_slots,
            tier_promotions: s.tier_promotions - base.tier_promotions,
        }
    }

    /// Fold work-stealing chunk grabs into [`EngineStats::steals`]. Worker
    /// engines are dropped when their thread finishes, so the driver that
    /// owns the template engine records the scheduler's aggregate here
    /// after each parallel grid search.
    pub fn record_steals(&mut self, n: u64) {
        self.ctx.stats.steals += n;
    }

    /// Base slot address of a global.
    pub fn global_addr(&self, id: GlobalId) -> usize {
        self.ctx.global_base[id.index()]
    }

    /// The full memory image as `(tag, bits)` pairs (tags: 0 = f64, 1 = i64,
    /// 2 = bool, 3 = uninitialized). Intended for differential tests that
    /// assert two engines reached bit-identical states.
    pub fn memory_bits(&self) -> Vec<(u8, u64)> {
        self.ctx
            .memory
            .iter()
            .map(|s| match s {
                Slot::F64(v) => (0u8, v.to_bits()),
                Slot::I64(v) => (1u8, *v as u64),
                Slot::Bool(b) => (2u8, *b as u64),
                Slot::Uninit => (3u8, 0),
            })
            .collect()
    }

    fn global_id(&self, name: &str) -> Result<GlobalId, ExecError> {
        self.module
            .global_by_name(name)
            .ok_or_else(|| ExecError::UnknownGlobal(name.to_string()))
    }

    /// Read a global's slots as `f64` values.
    ///
    /// # Errors
    /// [`ExecError::UnknownGlobal`] if the global name is unknown.
    pub fn read_global_f64(&self, name: &str) -> Result<Vec<f64>, ExecError> {
        let id = self.global_id(name)?;
        let len = self.module.global(id).ty.slot_count();
        self.read_global_f64_prefix(name, len)
    }

    /// Read only the first `len` slots of a global as `f64` values — the
    /// cheap path for partially-filled staging buffers (e.g. a batch chunk
    /// smaller than the staging capacity).
    ///
    /// # Errors
    /// [`ExecError::UnknownGlobal`] if the global name is unknown.
    ///
    /// # Panics
    /// Panics if `len` exceeds the global's size (a driver contract
    /// violation, not a runtime condition).
    pub fn read_global_f64_prefix(&self, name: &str, len: usize) -> Result<Vec<f64>, ExecError> {
        let id = self.global_id(name)?;
        let base = self.ctx.global_base[id.index()];
        assert!(
            len <= self.module.global(id).ty.slot_count(),
            "prefix of {len} slots exceeds global {name}"
        );
        Ok(self.ctx.memory[base..base + len]
            .iter()
            .map(|s| match s {
                Slot::F64(v) => *v,
                Slot::I64(v) => *v as f64,
                Slot::Bool(b) => *b as i64 as f64,
                Slot::Uninit => f64::NAN,
            })
            .collect())
    }

    /// Overwrite a global's slots with `f64` values (shorter inputs leave the
    /// remaining slots untouched).
    ///
    /// # Errors
    /// [`ExecError::UnknownGlobal`] if the global name is unknown;
    /// [`ExecError::OutOfBounds`] if `values` is longer than the global —
    /// writing past a global's extent would silently corrupt its neighbour.
    pub fn write_global_f64(&mut self, name: &str, values: &[f64]) -> Result<(), ExecError> {
        let id = self.global_id(name)?;
        let size = self.module.global(id).ty.slot_count();
        if values.len() > size {
            return Err(ExecError::OutOfBounds {
                addr: values.len(),
                size,
            });
        }
        let base = self.ctx.global_base[id.index()];
        for (i, v) in values.iter().enumerate() {
            self.ctx.memory[base + i] = Slot::F64(*v);
        }
        Ok(())
    }

    /// Write a single `i64` slot of a global.
    ///
    /// # Errors
    /// [`ExecError::UnknownGlobal`] if the global name is unknown;
    /// [`ExecError::OutOfBounds`] if `index` is outside the global.
    pub fn write_global_i64(&mut self, name: &str, index: usize, value: i64) -> Result<(), ExecError> {
        let id = self.global_id(name)?;
        let size = self.module.global(id).ty.slot_count();
        if index >= size {
            return Err(ExecError::OutOfBounds { addr: index, size });
        }
        let base = self.ctx.global_base[id.index()];
        self.ctx.memory[base + index] = Slot::I64(value);
        Ok(())
    }

    /// Read a single `i64` slot of a global.
    ///
    /// # Errors
    /// [`ExecError::UnknownGlobal`] if the global name is unknown;
    /// [`ExecError::OutOfBounds`] if `index` is outside the global;
    /// [`ExecError::Undef`] if the slot is uninitialized.
    pub fn read_global_i64(&self, name: &str, index: usize) -> Result<i64, ExecError> {
        let id = self.global_id(name)?;
        let size = self.module.global(id).ty.slot_count();
        if index >= size {
            return Err(ExecError::OutOfBounds { addr: index, size });
        }
        let base = self.ctx.global_base[id.index()];
        match self.ctx.memory[base + index] {
            Slot::I64(v) => Ok(v),
            Slot::F64(v) => Ok(v as i64),
            Slot::Bool(b) => Ok(b as i64),
            Slot::Uninit => Err(ExecError::Undef(format!("global {name}[{index}]"))),
        }
    }

    // -----------------------------------------------------------------------
    // Tier dispatch
    // -----------------------------------------------------------------------

    /// Call a function by id with the given arguments, on the tier the
    /// engine's [`TierPolicy`] selects. Under a fixed policy every call runs
    /// that tier; under the adaptive policy the function's call count is
    /// bumped first and crossing the threshold promotes it (at the call
    /// boundary only, so a promotion never splits one run's statistics
    /// across tiers).
    ///
    /// # Errors
    /// Returns [`ExecError`] on type errors, memory violations, division by
    /// zero, depth or fuel exhaustion.
    pub fn call(&mut self, func: FuncId, args: &[Value]) -> Result<Value, ExecError> {
        match self.policy {
            TierPolicy::Fixed(tier) => self.call_tier(tier, func, args),
            TierPolicy::Adaptive { hot_call_threshold } => {
                let idx = func.index();
                if !self.promoted[idx] {
                    self.hot_calls[idx] += 1;
                    if self.hot_calls[idx] >= hot_call_threshold {
                        self.promoted[idx] = true;
                        self.ctx.stats.tier_promotions += 1;
                        if distill_telemetry::enabled() {
                            crate::probes::record_promotion(idx, hot_call_threshold);
                        }
                    }
                }
                let tier = if self.promoted[idx] {
                    Tier::Threaded
                } else {
                    Tier::Decoded
                };
                self.call_tier(tier, func, args)
            }
        }
    }

    /// Call a function on an explicit tier, bypassing the policy. The
    /// per-tier convenience wrappers below delegate here.
    ///
    /// # Errors
    /// Same surface as [`Engine::call`].
    pub fn call_tier(
        &mut self,
        tier: Tier,
        func: FuncId,
        args: &[Value],
    ) -> Result<Value, ExecError> {
        // Telemetry probes once per dispatch, never per instruction: a
        // latency sample plus the stats delta mirrored into the global
        // registry. Off means one relaxed load and the untaken branch.
        if !distill_telemetry::enabled() {
            return self.dispatch_tier(tier, func, args);
        }
        let before = self.ctx.stats;
        let start = std::time::Instant::now();
        let result = self.dispatch_tier(tier, func, args);
        crate::probes::record_dispatch(tier, start.elapsed(), &before, &self.ctx.stats);
        result
    }

    /// The raw tier dispatch behind [`Engine::call_tier`].
    fn dispatch_tier(&mut self, tier: Tier, func: FuncId, args: &[Value]) -> Result<Value, ExecError> {
        let mut fuel = self.fuel_limit;
        // Disjoint field borrows: the tier's prepared code is immutable
        // while the call mutates only `ctx`.
        match tier {
            Tier::Reference => self.reference.call(&mut self.ctx, func, args, &mut fuel),
            Tier::Decoded => self.decoded.call(&mut self.ctx, func, args, &mut fuel),
            Tier::Fused => self.fused.call(&mut self.ctx, func, args, &mut fuel),
            Tier::Threaded => self.threaded.call(&mut self.ctx, func, args, &mut fuel),
        }
    }

    /// Call a function through the retained IR-walking reference
    /// interpreter: the pre-predecode implementation that deep-clones the
    /// callee per call and resolves operands against the value arena on
    /// every read. Semantically identical to [`Engine::call`] (the
    /// differential suite enforces it); kept as the behavioural baseline and
    /// for the `figures --interp` before/after measurement.
    ///
    /// # Errors
    /// Same surface as [`Engine::call`].
    pub fn call_reference(&mut self, func: FuncId, args: &[Value]) -> Result<Value, ExecError> {
        self.call_tier(Tier::Reference, func, args)
    }

    /// Call a function through the **unfused** predecoded form — the PR 3
    /// interpreter core, retained for A/B measurement (`figures --fused`)
    /// and differential testing against the fused fast path.
    ///
    /// # Errors
    /// Same surface as [`Engine::call`].
    pub fn call_decoded(&mut self, func: FuncId, args: &[Value]) -> Result<Value, ExecError> {
        self.call_tier(Tier::Decoded, func, args)
    }

    /// Call a function through the fused superinstruction stream (the plain
    /// predecoded form when the policy disabled fusion at construction).
    ///
    /// # Errors
    /// Same surface as [`Engine::call`].
    pub fn call_fused(&mut self, func: FuncId, args: &[Value]) -> Result<Value, ExecError> {
        self.call_tier(Tier::Fused, func, args)
    }

    /// Call a function through the direct-threaded dispatcher (see
    /// [`crate::backend::threaded`]).
    ///
    /// # Errors
    /// Same surface as [`Engine::call`].
    pub fn call_threaded(&mut self, func: FuncId, args: &[Value]) -> Result<Value, ExecError> {
        self.call_tier(Tier::Threaded, func, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_ir::{FunctionBuilder, Intrinsic, Module, Ty};
    use distill_pyvm::SplitMix64;

    const ALL_TIERS: [Tier; 4] = [Tier::Reference, Tier::Decoded, Tier::Fused, Tier::Threaded];

    fn axpy_module() -> (Module, FuncId) {
        let mut m = Module::new("m");
        let fid = m.declare_function("axpy", vec![Ty::F64, Ty::F64, Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let a = b.param(0);
            let x = b.param(1);
            let y = b.param(2);
            let ax = b.fmul(a, x);
            let r = b.fadd(ax, y);
            b.ret(Some(r));
        }
        (m, fid)
    }

    #[test]
    fn straightline_arithmetic() {
        let (m, fid) = axpy_module();
        let mut e = Engine::new(m);
        let r = e
            .call(fid, &[Value::F64(2.0), Value::F64(3.0), Value::F64(1.0)])
            .unwrap();
        assert_eq!(r, Value::F64(7.0));
        assert!(e.stats().instructions >= 2);
    }

    #[test]
    fn every_tier_matches_the_reference_path() {
        let (m, fid) = axpy_module();
        let mut e = Engine::new(m);
        let args = [Value::F64(2.0), Value::F64(3.0), Value::F64(1.0)];
        let oracle = e.call_reference(fid, &args);
        for tier in ALL_TIERS {
            assert_eq!(e.call_tier(tier, fid, &args), oracle, "{tier}");
        }
    }

    fn sum_module() -> (Module, FuncId) {
        // sum(0..n)
        let mut m = Module::new("m");
        let fid = m.declare_function("sum", vec![Ty::I64], Ty::I64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let entry = b.create_block("entry");
            let header = b.create_block("header");
            let body = b.create_block("body");
            let exit = b.create_block("exit");
            b.switch_to_block(entry);
            let n = b.param(0);
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.br(header);
            b.switch_to_block(header);
            let i = b.empty_phi(Ty::I64);
            let acc = b.empty_phi(Ty::I64);
            b.add_phi_incoming(i, entry, zero);
            b.add_phi_incoming(acc, entry, zero);
            let c = b.cmp(distill_ir::CmpPred::ILt, i, n);
            b.cond_br(c, body, exit);
            b.switch_to_block(body);
            let acc2 = b.iadd(acc, i);
            let i2 = b.iadd(i, one);
            b.add_phi_incoming(i, body, i2);
            b.add_phi_incoming(acc, body, acc2);
            b.br(header);
            b.switch_to_block(exit);
            b.ret(Some(acc));
        }
        (m, fid)
    }

    #[test]
    fn loops_and_phis_sum_integers() {
        let (m, _) = sum_module();
        let mut e = Engine::new(m);
        let r = e.call(FuncId::from_index(0), &[Value::I64(10)]).unwrap();
        assert_eq!(r, Value::I64(45));
    }

    #[test]
    fn loops_and_phis_match_reference_on_every_tier() {
        let (m, fid) = sum_module();
        let mut fast = Engine::new(m.clone());
        let mut slow = Engine::new(m);
        for n in [0i64, 1, 2, 17, 100] {
            let oracle = slow.call_reference(fid, &[Value::I64(n)]);
            for tier in ALL_TIERS {
                assert_eq!(fast.call_tier(tier, fid, &[Value::I64(n)]), oracle, "n={n} {tier}");
            }
        }
        assert_eq!(fast.memory_bits(), slow.memory_bits());
    }

    #[test]
    fn globals_memory_and_gep() {
        let mut m = Module::new("m");
        let g = m.add_zeroed_global("buf", Ty::array(Ty::F64, 4), true);
        let tys: Vec<Ty> = m.globals.iter().map(|g| g.ty.clone()).collect();
        let fid = m.declare_function("bump", vec![Ty::I64, Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f).with_global_types(tys);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let idx = b.param(0);
            let inc = b.param(1);
            let base = b.global_addr(g);
            let p = b.elem_addr(base, idx);
            let old = b.load(p);
            let new = b.fadd(old, inc);
            b.store(p, new);
            b.ret(Some(new));
        }
        let mut e = Engine::new(m);
        e.write_global_f64("buf", &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let r = e.call(fid, &[Value::I64(2), Value::F64(0.5)]).unwrap();
        assert_eq!(r, Value::F64(3.5));
        assert_eq!(e.read_global_f64("buf").unwrap(), vec![1.0, 2.0, 3.5, 4.0]);
    }

    #[test]
    fn unknown_globals_are_typed_errors() {
        let (m, _) = axpy_module();
        let mut e = Engine::new(m);
        assert_eq!(
            e.read_global_f64("nope").unwrap_err(),
            ExecError::UnknownGlobal("nope".into())
        );
        assert_eq!(
            e.read_global_i64("nope", 0).unwrap_err(),
            ExecError::UnknownGlobal("nope".into())
        );
        assert_eq!(
            e.write_global_f64("nope", &[1.0]).unwrap_err(),
            ExecError::UnknownGlobal("nope".into())
        );
        assert_eq!(
            e.write_global_i64("nope", 0, 1).unwrap_err(),
            ExecError::UnknownGlobal("nope".into())
        );
        assert_eq!(
            e.read_global_f64_prefix("nope", 0).unwrap_err(),
            ExecError::UnknownGlobal("nope".into())
        );
    }

    #[test]
    fn global_writes_are_bounds_checked() {
        let mut m = Module::new("m");
        m.add_zeroed_global("a", Ty::array(Ty::F64, 2), true);
        m.add_zeroed_global("b", Ty::array(Ty::F64, 2), true);
        let mut e = Engine::new(m);
        // An oversized write must not silently spill into the next global.
        assert!(matches!(
            e.write_global_f64("a", &[1.0, 2.0, 3.0]),
            Err(ExecError::OutOfBounds { .. })
        ));
        assert_eq!(e.read_global_f64("b").unwrap(), vec![0.0, 0.0]);
        assert!(matches!(
            e.write_global_i64("a", 2, 1),
            Err(ExecError::OutOfBounds { .. })
        ));
        assert!(matches!(
            e.read_global_i64("a", 5),
            Err(ExecError::OutOfBounds { .. })
        ));
        // In-bounds shorter writes still work and leave the tail untouched.
        e.write_global_f64("a", &[7.5]).unwrap();
        assert_eq!(e.read_global_f64("a").unwrap(), vec![7.5, 0.0]);
    }

    #[test]
    fn call_depth_limit_is_a_typed_error_on_every_tier() {
        // f(x) = f(x): infinite recursion trips the depth limit.
        let mut m = Module::new("m");
        let fid = m.declare_function("f", vec![Ty::I64], Ty::I64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f).with_signatures(vec![(vec![Ty::I64], Ty::I64)]);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let r = b.call(fid, vec![x]);
            b.ret(Some(r));
        }
        // 256 interpreter levels need more stack than the default test
        // thread provides under the unoptimized profile.
        std::thread::Builder::new()
            .stack_size(32 * 1024 * 1024)
            .spawn(move || {
                let mut e = Engine::new(m);
                for tier in ALL_TIERS {
                    assert_eq!(
                        e.call_tier(tier, fid, &[Value::I64(0)]),
                        Err(ExecError::DepthExceeded),
                        "{tier}"
                    );
                }
            })
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn alloca_frames_are_released() {
        let mut m = Module::new("m");
        let fid = m.declare_function("f", vec![Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let slot = b.alloca(Ty::F64);
            b.store(slot, x);
            let v = b.load(slot);
            b.ret(Some(v));
        }
        let mut e = Engine::new(m);
        let before = e.ctx.memory.len();
        for _ in 0..100 {
            e.call(fid, &[Value::F64(1.0)]).unwrap();
        }
        assert_eq!(e.ctx.memory.len(), before, "stack slots must be reclaimed");
    }

    #[test]
    fn frame_pool_is_reused_across_calls() {
        let (m, fid) = axpy_module();
        let mut e = Engine::new(m);
        let args = [Value::F64(2.0), Value::F64(3.0), Value::F64(1.0)];
        for _ in 0..10 {
            e.call(fid, &args).unwrap();
        }
        // The first call allocates; every later top-level call reuses it.
        assert!(
            e.stats().frame_pool_hits >= 9,
            "expected pooled frames, stats: {:?}",
            e.stats()
        );
    }

    #[test]
    fn prng_intrinsics_match_the_shared_generator() {
        let mut m = Module::new("m");
        let g = m.add_global(
            "rng",
            Ty::array(Ty::I64, 1),
            vec![Constant::I64(42)],
            true,
        );
        let tys: Vec<Ty> = m.globals.iter().map(|g| g.ty.clone()).collect();
        let fid = m.declare_function("draw", vec![], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f).with_global_types(tys);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let base = b.global_addr(g);
            let p = b.const_elem_addr(base, 0);
            let r = b.intrinsic(Intrinsic::RandNormal, vec![p]);
            b.ret(Some(r));
        }
        let mut e = Engine::new(m);
        let mut reference = SplitMix64::new(42);
        for _ in 0..5 {
            let got = e.call(fid, &[]).unwrap().as_f64().unwrap();
            assert_eq!(got, reference.normal());
        }
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let mut m = Module::new("m");
        let fid = m.declare_function("div", vec![Ty::I64, Ty::I64], Ty::I64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let y = b.param(1);
            let r = b.sdiv(x, y);
            b.ret(Some(r));
        }
        let mut e = Engine::new(m);
        for tier in ALL_TIERS {
            assert_eq!(
                e.call_tier(tier, fid, &[Value::I64(1), Value::I64(0)]),
                Err(ExecError::DivisionByZero),
                "{tier}"
            );
        }
    }

    #[test]
    fn fuel_limit_stops_runaway_loops_on_every_tier() {
        let mut m = Module::new("m");
        let fid = m.declare_function("spin", vec![], Ty::Void);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            let l = b.create_block("loop");
            b.switch_to_block(e);
            b.br(l);
            b.switch_to_block(l);
            let one = b.const_i64(1);
            let _ = b.iadd(one, one);
            b.br(l);
        }
        let mut e = Engine::new(m);
        e.fuel_limit = 10_000;
        for tier in ALL_TIERS {
            assert_eq!(
                e.call_tier(tier, fid, &[]),
                Err(ExecError::FuelExhausted),
                "{tier}"
            );
        }
    }

    #[test]
    fn cloned_engines_have_independent_memory() {
        let mut m = Module::new("m");
        m.add_zeroed_global("buf", Ty::array(Ty::F64, 2), true);
        let e1 = Engine::new(m);
        let mut e2 = e1.clone();
        e2.write_global_f64("buf", &[9.0, 9.0]).unwrap();
        assert_eq!(e1.read_global_f64("buf").unwrap(), vec![0.0, 0.0]);
        assert_eq!(e2.read_global_f64("buf").unwrap(), vec![9.0, 9.0]);
    }

    #[test]
    fn clones_share_every_tiers_prepared_code() {
        let (m, _) = axpy_module();
        let e1 = Engine::new(m);
        let e2 = e1.clone();
        assert!(Arc::ptr_eq(&e1.decoded.code, &e2.decoded.code));
        assert!(Arc::ptr_eq(&e1.fused.code, &e2.fused.code));
        assert!(Arc::ptr_eq(&e1.threaded.code, &e2.threaded.code));
        assert!(Arc::ptr_eq(&e1.module, &e2.module));
    }

    #[test]
    fn decoded_policy_aliases_the_decoded_code() {
        let (m, fid) = axpy_module();
        let mut e = Engine::with_config(m, ExecConfig::fixed(Tier::Decoded));
        assert!(!e.fuse_enabled());
        assert_eq!(e.fuse_summary(), FuseSummary::default());
        assert!(Arc::ptr_eq(&e.fused.code, &e.decoded.code));
        let args = [Value::F64(2.0), Value::F64(3.0), Value::F64(1.0)];
        assert_eq!(e.call(fid, &args), Ok(Value::F64(7.0)));
        assert_eq!(e.stats().fused_ops, 0, "no superinstructions without fusion");
    }

    #[test]
    fn fused_and_decoded_paths_agree_and_fusion_shrinks_frames() {
        let (m, fid) = sum_module();
        // Pinned explicitly so an inherited DISTILL_TIER cannot turn this
        // into a decoded-vs-decoded comparison.
        let mut e = Engine::with_config(m, ExecConfig::fixed(Tier::Fused));
        assert!(e.fuse_enabled());
        let summary = e.fuse_summary();
        assert!(
            summary.fused_frame_slots < summary.decoded_frame_slots,
            "liveness compaction must shrink frames: {summary:?}"
        );
        for n in [0i64, 1, 17, 100] {
            assert_eq!(
                e.call(fid, &[Value::I64(n)]),
                e.call_decoded(fid, &[Value::I64(n)]),
                "n={n}"
            );
        }
        // The loop's cmp+cond_br fused: superinstructions executed.
        assert!(e.stats().fused_ops > 0, "stats: {:?}", e.stats());
        // Frame-slot accounting: the fused entries are smaller than the
        // decoded entries for the same call pattern.
        assert!(e.stats().frame_slots > 0);
    }

    #[test]
    fn threaded_tier_matches_fused_results_and_instruction_counts() {
        let (m, fid) = sum_module();
        let mut fused = Engine::with_config(m.clone(), ExecConfig::fixed(Tier::Fused));
        let mut threaded = Engine::with_config(m, ExecConfig::fixed(Tier::Threaded));
        for n in [0i64, 1, 17, 100] {
            assert_eq!(
                threaded.call(fid, &[Value::I64(n)]),
                fused.call(fid, &[Value::I64(n)]),
                "n={n}"
            );
        }
        // Block-granular accounting on the threaded tier must total exactly
        // what the fused interpreter charges per op.
        assert_eq!(threaded.stats().instructions, fused.stats().instructions);
        assert_eq!(threaded.stats().fused_ops, fused.stats().fused_ops);
        assert_eq!(threaded.memory_bits(), fused.memory_bits());
    }

    #[test]
    fn adaptive_policy_promotes_hot_functions_at_the_call_boundary() {
        let (m, fid) = sum_module();
        let mut e = Engine::with_config(
            m,
            ExecConfig {
                policy: TierPolicy::Adaptive {
                    hot_call_threshold: 4,
                },
            },
        );
        let mut fixed = Engine::with_config(
            e.module().clone(),
            ExecConfig::fixed(Tier::Fused),
        );
        for i in 0..8 {
            assert_eq!(
                e.call(fid, &[Value::I64(i)]),
                fixed.call(fid, &[Value::I64(i)]),
                "call {i}"
            );
        }
        assert_eq!(e.stats().tier_promotions, 1, "stats: {:?}", e.stats());
        // Promotion state is inherited by clones: a worker spawned now does
        // not re-promote (or re-interpret) the hot function.
        let mut worker = e.clone();
        let base = worker.stats();
        worker.call(fid, &[Value::I64(3)]).unwrap();
        assert_eq!(worker.stats_since(&base).tier_promotions, 0);
    }

    #[test]
    fn adaptive_policy_below_threshold_stays_decoded() {
        let (m, fid) = sum_module();
        let mut e = Engine::with_config(
            m,
            ExecConfig {
                policy: TierPolicy::Adaptive {
                    hot_call_threshold: 100,
                },
            },
        );
        for i in 0..8 {
            e.call(fid, &[Value::I64(i)]).unwrap();
        }
        assert_eq!(e.stats().tier_promotions, 0);
    }

    #[test]
    fn missing_body_errors_on_every_tier() {
        let mut m = Module::new("m");
        let fid = m.declare_function("decl", vec![], Ty::F64);
        m.function_mut(fid).is_declaration = true;
        let mut e = Engine::new(m);
        for tier in ALL_TIERS {
            assert_eq!(
                e.call_tier(tier, fid, &[]),
                Err(ExecError::MissingBody("decl".into())),
                "{tier}"
            );
        }
    }
}
