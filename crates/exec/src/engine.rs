//! The IR execution engine.
//!
//! Memory is a flat vector of scalar slots. Globals are materialized at
//! engine construction in declaration order; `alloca` slots live in a stack
//! region that grows past the globals and is truncated when the allocating
//! frame returns. Addresses are slot indices carried in [`Value::Ptr`].
//!
//! The engine is `Clone`: the multicore backend gives every worker thread
//! its own copy, which is the "thread-local copy of the read-write
//! parameter structure and node outputs" strategy of §3.6.

use distill_ir::{
    BinOp, CastKind, CmpPred, Constant, FuncId, Function, GlobalId, Inst, Intrinsic, Module,
    Terminator, Ty, UnOp, ValueId, ValueKind,
};
use distill_ir::inst::GepIndex;
use distill_pyvm::SplitMix64;
use std::fmt;

/// A runtime scalar value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit float.
    F64(f64),
    /// 64-bit integer.
    I64(i64),
    /// Boolean.
    Bool(bool),
    /// Pointer (slot index into engine memory).
    Ptr(usize),
    /// The unit value of `Void`-typed instructions.
    Unit,
}

impl Value {
    /// View as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            Value::Bool(b) => Some(*b as i64 as f64),
            _ => None,
        }
    }

    /// View as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// View as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Execution failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A value had the wrong runtime type for an operation.
    Type(String),
    /// A memory access fell outside the allocated slots.
    OutOfBounds {
        /// Offending slot address.
        addr: usize,
        /// Memory size at the time.
        size: usize,
    },
    /// An undefined (uninitialized) value was read.
    Undef(String),
    /// Integer division by zero.
    DivisionByZero,
    /// The instruction budget was exhausted (guards against non-terminating
    /// generated code in tests).
    FuelExhausted,
    /// The called function is only a declaration.
    MissingBody(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Type(m) => write!(f, "type error: {m}"),
            ExecError::OutOfBounds { addr, size } => {
                write!(f, "memory access at slot {addr} out of bounds (size {size})")
            }
            ExecError::Undef(m) => write!(f, "undefined value read: {m}"),
            ExecError::DivisionByZero => write!(f, "integer division by zero"),
            ExecError::FuelExhausted => write!(f, "instruction budget exhausted"),
            ExecError::MissingBody(n) => write!(f, "function {n} has no body"),
        }
    }
}

impl std::error::Error for ExecError {}

/// One memory slot.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Slot {
    F64(f64),
    I64(i64),
    Bool(bool),
    Uninit,
}

/// Statistics accumulated while executing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Instructions executed.
    pub instructions: u64,
    /// Function calls made.
    pub calls: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
}

/// The execution engine: a module plus its materialized memory.
#[derive(Debug, Clone)]
pub struct Engine {
    module: Module,
    memory: Vec<Slot>,
    global_base: Vec<usize>,
    stack_base: usize,
    stats: EngineStats,
    /// Maximum instructions per top-level `call` (default: effectively
    /// unlimited). Tests lower it to catch runaway loops.
    pub fuel_limit: u64,
}

impl Engine {
    /// Materialize an engine for a module.
    pub fn new(module: Module) -> Engine {
        let mut memory = Vec::new();
        let mut global_base = Vec::with_capacity(module.globals.len());
        for g in &module.globals {
            global_base.push(memory.len());
            for c in &g.init {
                memory.push(match c {
                    Constant::F64(v) => Slot::F64(*v),
                    Constant::F32(v) => Slot::F64(*v as f64),
                    Constant::I64(v) => Slot::I64(*v),
                    Constant::Bool(b) => Slot::Bool(*b),
                    Constant::Undef => Slot::Uninit,
                });
            }
        }
        let stack_base = memory.len();
        Engine {
            module,
            memory,
            global_base,
            stack_base,
            stats: EngineStats::default(),
            fuel_limit: u64::MAX,
        }
    }

    /// The module being executed.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Reset statistics.
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Base slot address of a global.
    pub fn global_addr(&self, id: GlobalId) -> usize {
        self.global_base[id.index()]
    }

    /// Read a global's slots as `f64` values.
    ///
    /// # Panics
    /// Panics if the global name is unknown.
    pub fn read_global_f64(&self, name: &str) -> Vec<f64> {
        let id = self
            .module
            .global_by_name(name)
            .unwrap_or_else(|| panic!("unknown global {name}"));
        let len = self.module.global(id).ty.slot_count();
        self.read_global_f64_prefix(name, len)
    }

    /// Read only the first `len` slots of a global as `f64` values — the
    /// cheap path for partially-filled staging buffers (e.g. a batch chunk
    /// smaller than the staging capacity).
    ///
    /// # Panics
    /// Panics if the global name is unknown or `len` exceeds its size.
    pub fn read_global_f64_prefix(&self, name: &str, len: usize) -> Vec<f64> {
        let id = self
            .module
            .global_by_name(name)
            .unwrap_or_else(|| panic!("unknown global {name}"));
        let base = self.global_base[id.index()];
        assert!(
            len <= self.module.global(id).ty.slot_count(),
            "prefix of {len} slots exceeds global {name}"
        );
        self.memory[base..base + len]
            .iter()
            .map(|s| match s {
                Slot::F64(v) => *v,
                Slot::I64(v) => *v as f64,
                Slot::Bool(b) => *b as i64 as f64,
                Slot::Uninit => f64::NAN,
            })
            .collect()
    }

    /// Overwrite a global's slots with `f64` values (shorter inputs leave the
    /// remaining slots untouched).
    ///
    /// # Panics
    /// Panics if the global name is unknown.
    pub fn write_global_f64(&mut self, name: &str, values: &[f64]) {
        let id = self
            .module
            .global_by_name(name)
            .unwrap_or_else(|| panic!("unknown global {name}"));
        let base = self.global_base[id.index()];
        for (i, v) in values.iter().enumerate() {
            self.memory[base + i] = Slot::F64(*v);
        }
    }

    /// Write a single `i64` slot of a global.
    ///
    /// # Panics
    /// Panics if the global name is unknown.
    pub fn write_global_i64(&mut self, name: &str, index: usize, value: i64) {
        let id = self
            .module
            .global_by_name(name)
            .unwrap_or_else(|| panic!("unknown global {name}"));
        let base = self.global_base[id.index()];
        self.memory[base + index] = Slot::I64(value);
    }

    /// Read a single `i64` slot of a global.
    ///
    /// # Panics
    /// Panics if the global name is unknown or the slot is not an integer.
    pub fn read_global_i64(&self, name: &str, index: usize) -> i64 {
        let id = self
            .module
            .global_by_name(name)
            .unwrap_or_else(|| panic!("unknown global {name}"));
        let base = self.global_base[id.index()];
        match self.memory[base + index] {
            Slot::I64(v) => v,
            Slot::F64(v) => v as i64,
            Slot::Bool(b) => b as i64,
            Slot::Uninit => panic!("uninitialized slot"),
        }
    }

    /// Call a function by id with the given arguments.
    ///
    /// # Errors
    /// Returns [`ExecError`] on type errors, memory violations, division by
    /// zero, or fuel exhaustion.
    pub fn call(&mut self, func: FuncId, args: &[Value]) -> Result<Value, ExecError> {
        let mut fuel = self.fuel_limit;
        self.call_inner(func, args, &mut fuel, 0)
    }

    fn call_inner(
        &mut self,
        func_id: FuncId,
        args: &[Value],
        fuel: &mut u64,
        depth: usize,
    ) -> Result<Value, ExecError> {
        self.stats.calls += 1;
        if depth > 256 {
            return Err(ExecError::Type("call depth exceeded".into()));
        }
        let func: Function = self.module.function(func_id).clone();
        if func.layout.is_empty() {
            return Err(ExecError::MissingBody(func.name.clone()));
        }
        let frame_base = self.memory.len();
        let mut regs: Vec<Option<Value>> = vec![None; func.values.len()];
        for (i, a) in args.iter().enumerate() {
            regs[i] = Some(*a);
        }

        let mut block = func.entry_block().expect("function has entry block");
        let mut prev_block: Option<distill_ir::BlockId> = None;
        let result = 'outer: loop {
            // Phi nodes are evaluated together against the incoming edge.
            let blk = func.block(block);
            let mut phi_updates: Vec<(ValueId, Value)> = Vec::new();
            for &v in &blk.insts {
                if let Some(Inst::Phi { incoming, .. }) = func.as_inst(v) {
                    if let Some(pb) = prev_block {
                        let Some((_, src)) = incoming.iter().find(|(b, _)| *b == pb) else {
                            break 'outer Err(ExecError::Type(format!(
                                "phi {v} has no edge from {pb}"
                            )));
                        };
                        let val = self.operand(&func, &regs, *src)?;
                        phi_updates.push((v, val));
                    } else {
                        break 'outer Err(ExecError::Undef(format!(
                            "phi {v} evaluated in entry block"
                        )));
                    }
                }
            }
            for (v, val) in phi_updates {
                regs[v.index()] = Some(val);
            }

            for &v in &blk.insts {
                let inst = func.as_inst(v).expect("scheduled value is an instruction");
                if inst.is_phi() {
                    continue;
                }
                if *fuel == 0 {
                    break 'outer Err(ExecError::FuelExhausted);
                }
                *fuel -= 1;
                self.stats.instructions += 1;
                let val = self.exec_inst(&func, &mut regs, v, inst, fuel, depth)?;
                regs[v.index()] = Some(val);
            }

            match blk.term.clone().expect("block has terminator") {
                Terminator::Br(next) => {
                    prev_block = Some(block);
                    block = next;
                }
                Terminator::CondBr {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    let c = self
                        .operand(&func, &regs, cond)?
                        .as_bool()
                        .ok_or_else(|| ExecError::Type("branch on non-bool".into()))?;
                    prev_block = Some(block);
                    block = if c { then_blk } else { else_blk };
                }
                Terminator::Ret(val) => {
                    let out = match val {
                        Some(v) => self.operand(&func, &regs, v)?,
                        None => Value::Unit,
                    };
                    break Ok(out);
                }
                Terminator::Unreachable => {
                    break Err(ExecError::Type("reached unreachable".into()));
                }
            }
        };
        // Pop this frame's allocas.
        self.memory.truncate(frame_base.max(self.stack_base));
        result
    }

    fn operand(
        &self,
        func: &Function,
        regs: &[Option<Value>],
        v: ValueId,
    ) -> Result<Value, ExecError> {
        match &func.value(v).kind {
            ValueKind::Const(c) => Ok(match c {
                Constant::F64(x) => Value::F64(*x),
                Constant::F32(x) => Value::F64(*x as f64),
                Constant::I64(x) => Value::I64(*x),
                Constant::Bool(b) => Value::Bool(*b),
                Constant::Undef => return Err(ExecError::Undef(format!("{v}"))),
            }),
            _ => regs[v.index()]
                .ok_or_else(|| ExecError::Undef(format!("value {v} used before definition"))),
        }
    }

    fn load_slot(&self, addr: usize) -> Result<Value, ExecError> {
        match self.memory.get(addr) {
            Some(Slot::F64(v)) => Ok(Value::F64(*v)),
            Some(Slot::I64(v)) => Ok(Value::I64(*v)),
            Some(Slot::Bool(b)) => Ok(Value::Bool(*b)),
            Some(Slot::Uninit) => Err(ExecError::Undef(format!("slot {addr}"))),
            None => Err(ExecError::OutOfBounds {
                addr,
                size: self.memory.len(),
            }),
        }
    }

    fn store_slot(&mut self, addr: usize, value: Value) -> Result<(), ExecError> {
        let size = self.memory.len();
        let slot = self
            .memory
            .get_mut(addr)
            .ok_or(ExecError::OutOfBounds { addr, size })?;
        *slot = match value {
            Value::F64(v) => Slot::F64(v),
            Value::I64(v) => Slot::I64(v),
            Value::Bool(b) => Slot::Bool(b),
            Value::Ptr(p) => Slot::I64(p as i64),
            Value::Unit => return Err(ExecError::Type("storing unit value".into())),
        };
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_inst(
        &mut self,
        func: &Function,
        regs: &mut [Option<Value>],
        _id: ValueId,
        inst: &Inst,
        fuel: &mut u64,
        depth: usize,
    ) -> Result<Value, ExecError> {
        let op = |engine: &Engine, regs: &[Option<Value>], v: ValueId| engine.operand(func, regs, v);
        match inst {
            Inst::Bin { op: o, lhs, rhs } => {
                let a = op(self, regs, *lhs)?;
                let b = op(self, regs, *rhs)?;
                exec_bin(*o, a, b)
            }
            Inst::Un { op: o, val } => {
                let a = op(self, regs, *val)?;
                match o {
                    UnOp::FNeg => Ok(Value::F64(
                        -a.as_f64().ok_or_else(|| ExecError::Type("fneg".into()))?,
                    )),
                    UnOp::Not => match a {
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        Value::I64(i) => Ok(Value::I64(!i)),
                        _ => Err(ExecError::Type("not on float".into())),
                    },
                }
            }
            Inst::Cmp { pred, lhs, rhs } => {
                let a = op(self, regs, *lhs)?;
                let b = op(self, regs, *rhs)?;
                exec_cmp(*pred, a, b)
            }
            Inst::Select {
                cond,
                then_val,
                else_val,
            } => {
                let c = op(self, regs, *cond)?
                    .as_bool()
                    .ok_or_else(|| ExecError::Type("select condition".into()))?;
                if c {
                    op(self, regs, *then_val)
                } else {
                    op(self, regs, *else_val)
                }
            }
            Inst::Call { callee, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(op(self, regs, *a)?);
                }
                self.call_inner(*callee, &vals, fuel, depth + 1)
            }
            Inst::IntrinsicCall { kind, args } => {
                if kind.has_side_effects() {
                    let ptr = op(self, regs, args[0])?;
                    let addr = match ptr {
                        Value::Ptr(p) => p,
                        _ => return Err(ExecError::Type("PRNG state must be a pointer".into())),
                    };
                    let state_bits = self
                        .load_slot(addr)?
                        .as_i64()
                        .ok_or_else(|| ExecError::Type("PRNG state must be an integer".into()))?;
                    let mut rng = SplitMix64::new(state_bits as u64);
                    let out = match kind {
                        Intrinsic::RandUniform => rng.uniform(),
                        Intrinsic::RandNormal => rng.normal(),
                        _ => unreachable!(),
                    };
                    self.store_slot(addr, Value::I64(rng.state as i64))?;
                    Ok(Value::F64(out))
                } else {
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(
                            op(self, regs, *a)?
                                .as_f64()
                                .ok_or_else(|| ExecError::Type("intrinsic arg".into()))?,
                        );
                    }
                    Ok(Value::F64(exec_math(*kind, &vals)))
                }
            }
            Inst::Alloca { ty } => {
                let addr = self.memory.len();
                for _ in 0..ty.slot_count() {
                    self.memory.push(Slot::Uninit);
                }
                Ok(Value::Ptr(addr))
            }
            Inst::Load { ptr } => {
                self.stats.loads += 1;
                let addr = match op(self, regs, *ptr)? {
                    Value::Ptr(p) => p,
                    other => {
                        return Err(ExecError::Type(format!("load from non-pointer {other:?}")))
                    }
                };
                self.load_slot(addr)
            }
            Inst::Store { ptr, value } => {
                self.stats.stores += 1;
                let addr = match op(self, regs, *ptr)? {
                    Value::Ptr(p) => p,
                    other => {
                        return Err(ExecError::Type(format!("store to non-pointer {other:?}")))
                    }
                };
                let v = op(self, regs, *value)?;
                self.store_slot(addr, v)?;
                Ok(Value::Unit)
            }
            Inst::Gep { base, indices } => {
                let addr = match op(self, regs, *base)? {
                    Value::Ptr(p) => p,
                    other => return Err(ExecError::Type(format!("gep on non-pointer {other:?}"))),
                };
                let mut ty = func.ty(*base).pointee().clone();
                let mut offset = 0usize;
                for idx in indices {
                    match (&ty, idx) {
                        (Ty::Array(elem, _), GepIndex::Const(i)) => {
                            offset += i * elem.slot_count();
                            ty = (**elem).clone();
                        }
                        (Ty::Array(elem, _), GepIndex::Dyn(v)) => {
                            let i = op(self, regs, *v)?
                                .as_i64()
                                .ok_or_else(|| ExecError::Type("gep index".into()))?;
                            if i < 0 {
                                return Err(ExecError::OutOfBounds {
                                    addr,
                                    size: self.memory.len(),
                                });
                            }
                            offset += i as usize * elem.slot_count();
                            ty = (**elem).clone();
                        }
                        (Ty::Struct(fields), GepIndex::Const(i)) => {
                            offset += ty.field_offset(*i);
                            ty = fields[*i].clone();
                        }
                        _ => return Err(ExecError::Type("invalid gep".into())),
                    }
                }
                Ok(Value::Ptr(addr + offset))
            }
            Inst::Phi { .. } => unreachable!("phis handled at block entry"),
            Inst::Cast { kind, val, .. } => {
                let a = op(self, regs, *val)?;
                Ok(match kind {
                    CastKind::SiToFp => Value::F64(
                        a.as_i64()
                            .ok_or_else(|| ExecError::Type("sitofp".into()))? as f64,
                    ),
                    CastKind::FpToSi => Value::I64(
                        a.as_f64()
                            .ok_or_else(|| ExecError::Type("fptosi".into()))? as i64,
                    ),
                    CastKind::FpTrunc | CastKind::FpExt => Value::F64(
                        a.as_f64().ok_or_else(|| ExecError::Type("fpcast".into()))?,
                    ),
                    CastKind::ZExtBool => Value::I64(
                        a.as_bool().ok_or_else(|| ExecError::Type("zext".into()))? as i64,
                    ),
                    CastKind::TruncBool => Value::Bool(
                        a.as_i64().ok_or_else(|| ExecError::Type("trunc".into()))? != 0,
                    ),
                })
            }
            Inst::GlobalAddr { global } => Ok(Value::Ptr(self.global_base[global.index()])),
        }
    }
}

fn exec_bin(op: BinOp, a: Value, b: Value) -> Result<Value, ExecError> {
    if op.is_float() {
        let (x, y) = (
            a.as_f64().ok_or_else(|| ExecError::Type("float op".into()))?,
            b.as_f64().ok_or_else(|| ExecError::Type("float op".into()))?,
        );
        let r = match op {
            BinOp::FAdd => x + y,
            BinOp::FSub => x - y,
            BinOp::FMul => x * y,
            BinOp::FDiv => x / y,
            BinOp::FRem => x % y,
            _ => unreachable!(),
        };
        Ok(Value::F64(r))
    } else {
        let (x, y) = (
            a.as_i64().ok_or_else(|| ExecError::Type("int op".into()))?,
            b.as_i64().ok_or_else(|| ExecError::Type("int op".into()))?,
        );
        let r = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::SDiv => {
                if y == 0 {
                    return Err(ExecError::DivisionByZero);
                }
                x.wrapping_div(y)
            }
            BinOp::SRem => {
                if y == 0 {
                    return Err(ExecError::DivisionByZero);
                }
                x.wrapping_rem(y)
            }
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32),
            BinOp::LShr => ((x as u64).wrapping_shr(y as u32)) as i64,
            BinOp::AShr => x.wrapping_shr(y as u32),
            _ => unreachable!(),
        };
        Ok(Value::I64(r))
    }
}

fn exec_cmp(pred: CmpPred, a: Value, b: Value) -> Result<Value, ExecError> {
    let r = if pred.is_float() {
        let (x, y) = (
            a.as_f64().ok_or_else(|| ExecError::Type("fcmp".into()))?,
            b.as_f64().ok_or_else(|| ExecError::Type("fcmp".into()))?,
        );
        match pred {
            CmpPred::FEq => x == y,
            CmpPred::FNe => x != y,
            CmpPred::FLt => x < y,
            CmpPred::FLe => x <= y,
            CmpPred::FGt => x > y,
            CmpPred::FGe => x >= y,
            _ => unreachable!(),
        }
    } else {
        let (x, y) = (
            a.as_i64().ok_or_else(|| ExecError::Type("icmp".into()))?,
            b.as_i64().ok_or_else(|| ExecError::Type("icmp".into()))?,
        );
        match pred {
            CmpPred::IEq => x == y,
            CmpPred::INe => x != y,
            CmpPred::ILt => x < y,
            CmpPred::ILe => x <= y,
            CmpPred::IGt => x > y,
            CmpPred::IGe => x >= y,
            _ => unreachable!(),
        }
    };
    Ok(Value::Bool(r))
}

fn exec_math(kind: Intrinsic, args: &[f64]) -> f64 {
    match kind {
        Intrinsic::Exp => args[0].exp(),
        Intrinsic::Log => args[0].ln(),
        Intrinsic::Sqrt => args[0].sqrt(),
        Intrinsic::Sin => args[0].sin(),
        Intrinsic::Cos => args[0].cos(),
        Intrinsic::Tanh => args[0].tanh(),
        Intrinsic::Pow => args[0].powf(args[1]),
        Intrinsic::FAbs => args[0].abs(),
        Intrinsic::Floor => args[0].floor(),
        Intrinsic::Ceil => args[0].ceil(),
        Intrinsic::FMin => args[0].min(args[1]),
        Intrinsic::FMax => args[0].max(args[1]),
        Intrinsic::RandUniform | Intrinsic::RandNormal => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_ir::{FunctionBuilder, Module, Ty};

    fn axpy_module() -> (Module, FuncId) {
        let mut m = Module::new("m");
        let fid = m.declare_function("axpy", vec![Ty::F64, Ty::F64, Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let a = b.param(0);
            let x = b.param(1);
            let y = b.param(2);
            let ax = b.fmul(a, x);
            let r = b.fadd(ax, y);
            b.ret(Some(r));
        }
        (m, fid)
    }

    #[test]
    fn straightline_arithmetic() {
        let (m, fid) = axpy_module();
        let mut e = Engine::new(m);
        let r = e
            .call(fid, &[Value::F64(2.0), Value::F64(3.0), Value::F64(1.0)])
            .unwrap();
        assert_eq!(r, Value::F64(7.0));
        assert!(e.stats().instructions >= 2);
    }

    #[test]
    fn loops_and_phis_sum_integers() {
        // sum(0..n)
        let mut m = Module::new("m");
        let fid = m.declare_function("sum", vec![Ty::I64], Ty::I64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let entry = b.create_block("entry");
            let header = b.create_block("header");
            let body = b.create_block("body");
            let exit = b.create_block("exit");
            b.switch_to_block(entry);
            let n = b.param(0);
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.br(header);
            b.switch_to_block(header);
            let i = b.empty_phi(Ty::I64);
            let acc = b.empty_phi(Ty::I64);
            b.add_phi_incoming(i, entry, zero);
            b.add_phi_incoming(acc, entry, zero);
            let c = b.cmp(distill_ir::CmpPred::ILt, i, n);
            b.cond_br(c, body, exit);
            b.switch_to_block(body);
            let acc2 = b.iadd(acc, i);
            let i2 = b.iadd(i, one);
            b.add_phi_incoming(i, body, i2);
            b.add_phi_incoming(acc, body, acc2);
            b.br(header);
            b.switch_to_block(exit);
            b.ret(Some(acc));
        }
        let mut e = Engine::new(m);
        let r = e.call(FuncId::from_index(0), &[Value::I64(10)]).unwrap();
        assert_eq!(r, Value::I64(45));
    }

    #[test]
    fn globals_memory_and_gep() {
        let mut m = Module::new("m");
        let g = m.add_zeroed_global("buf", Ty::array(Ty::F64, 4), true);
        let tys: Vec<Ty> = m.globals.iter().map(|g| g.ty.clone()).collect();
        let fid = m.declare_function("bump", vec![Ty::I64, Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f).with_global_types(tys);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let idx = b.param(0);
            let inc = b.param(1);
            let base = b.global_addr(g);
            let p = b.elem_addr(base, idx);
            let old = b.load(p);
            let new = b.fadd(old, inc);
            b.store(p, new);
            b.ret(Some(new));
        }
        let mut e = Engine::new(m);
        e.write_global_f64("buf", &[1.0, 2.0, 3.0, 4.0]);
        let r = e.call(fid, &[Value::I64(2), Value::F64(0.5)]).unwrap();
        assert_eq!(r, Value::F64(3.5));
        assert_eq!(e.read_global_f64("buf"), vec![1.0, 2.0, 3.5, 4.0]);
    }

    #[test]
    fn alloca_frames_are_released() {
        let mut m = Module::new("m");
        let fid = m.declare_function("f", vec![Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let slot = b.alloca(Ty::F64);
            b.store(slot, x);
            let v = b.load(slot);
            b.ret(Some(v));
        }
        let mut e = Engine::new(m);
        let before = e.memory.len();
        for _ in 0..100 {
            e.call(fid, &[Value::F64(1.0)]).unwrap();
        }
        assert_eq!(e.memory.len(), before, "stack slots must be reclaimed");
    }

    #[test]
    fn prng_intrinsics_match_the_shared_generator() {
        let mut m = Module::new("m");
        let g = m.add_global(
            "rng",
            Ty::array(Ty::I64, 1),
            vec![Constant::I64(42)],
            true,
        );
        let tys: Vec<Ty> = m.globals.iter().map(|g| g.ty.clone()).collect();
        let fid = m.declare_function("draw", vec![], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f).with_global_types(tys);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let base = b.global_addr(g);
            let p = b.const_elem_addr(base, 0);
            let r = b.intrinsic(Intrinsic::RandNormal, vec![p]);
            b.ret(Some(r));
        }
        let mut e = Engine::new(m);
        let mut reference = SplitMix64::new(42);
        for _ in 0..5 {
            let got = e.call(fid, &[]).unwrap().as_f64().unwrap();
            assert_eq!(got, reference.normal());
        }
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let mut m = Module::new("m");
        let fid = m.declare_function("div", vec![Ty::I64, Ty::I64], Ty::I64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let y = b.param(1);
            let r = b.sdiv(x, y);
            b.ret(Some(r));
        }
        let mut e = Engine::new(m);
        assert_eq!(
            e.call(fid, &[Value::I64(1), Value::I64(0)]),
            Err(ExecError::DivisionByZero)
        );
    }

    #[test]
    fn fuel_limit_stops_runaway_loops() {
        let mut m = Module::new("m");
        let fid = m.declare_function("spin", vec![], Ty::Void);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            let l = b.create_block("loop");
            b.switch_to_block(e);
            b.br(l);
            b.switch_to_block(l);
            let one = b.const_i64(1);
            let _ = b.iadd(one, one);
            b.br(l);
        }
        let mut e = Engine::new(m);
        e.fuel_limit = 10_000;
        assert_eq!(e.call(fid, &[]), Err(ExecError::FuelExhausted));
    }

    #[test]
    fn cloned_engines_have_independent_memory() {
        let mut m = Module::new("m");
        m.add_zeroed_global("buf", Ty::array(Ty::F64, 2), true);
        let e1 = Engine::new(m);
        let mut e2 = e1.clone();
        e2.write_global_f64("buf", &[9.0, 9.0]);
        assert_eq!(e1.read_global_f64("buf"), vec![0.0, 0.0]);
        assert_eq!(e2.read_global_f64("buf"), vec![9.0, 9.0]);
    }
}
