//! A simulated SIMT GPU backend (§3.6, §6.3, Fig. 6).
//!
//! The paper offloads grid-search evaluations to a GeForce GTX 1060 through
//! the NVPTX backend and PyCUDA. We cannot assume CUDA hardware, so this
//! module provides the closest synthetic equivalent that exercises the same
//! code path: the compiled evaluation kernel is executed once per grid point
//! (functionally identical to the CUDA kernel, one thread per point), and
//! the *reported execution time* comes from an analytic occupancy and
//! memory-pressure model of the paper's GPU:
//!
//! * register pressure — each thread needs an estimated number of registers
//!   (derived from the kernel's live-value count); the launch is limited by
//!   the per-SM register file and by the `max_registers` throttle the paper
//!   sweeps in Fig. 6, with spill traffic added when the throttle bites;
//! * local-memory pressure — the paper's kernels carry ~15.5 kB (fp32) /
//!   18.5 kB (fp64) of per-thread private data, dominated by replicated PRNG
//!   state; that footprint (configurable) limits the number of resident
//!   threads and adds memory traffic per evaluation, which is why the paper
//!   finds the kernel memory-bound and fp32 barely faster than fp64;
//! * occupancy — the ratio of resident threads to the hardware maximum.
//!
//! The model reproduces the *shape* of Fig. 6 — occupancy rises as the
//! register throttle drops while run time gets worse, and fp32 ≈ fp64 —
//! and of Fig. 5c, where the GPU beats the 12-thread CPU by a modest factor.

use crate::engine::{Engine, EngineStats, ExecError};
use distill_ir::FuncId;

/// Configuration of the simulated device (defaults follow the paper's
/// GTX 1060 3 GB).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// 32-bit registers per SM.
    pub registers_per_sm: usize,
    /// Maximum registers per thread allowed by the compiler throttle
    /// (the x-axis of Fig. 6).
    pub max_registers: usize,
    /// Local (private) memory available per SM before spilling to DRAM
    /// becomes the bottleneck, in bytes.
    pub local_memory_per_sm: usize,
    /// Per-thread private data in bytes (the paper reports 15.5 kB for the
    /// fp32 kernel and 18.5 kB for fp64, dominated by replicated PRNG state).
    pub private_bytes_per_thread: usize,
    /// Whether the kernel is compiled for fp32 (Fig. 6 right vs left half).
    pub fp32: bool,
    /// Device clock in Hz.
    pub clock_hz: f64,
    /// Effective DRAM bandwidth in bytes/s.
    pub dram_bandwidth: f64,
    /// Fixed launch overhead in seconds (driver + PyCUDA import of the
    /// generated kernel).
    pub launch_overhead_s: f64,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            sm_count: 9,
            max_threads_per_sm: 2048,
            registers_per_sm: 65_536,
            max_registers: 256,
            local_memory_per_sm: 96 * 1024,
            private_bytes_per_thread: 18_500,
            fp32: false,
            clock_hz: 1.7e9,
            dram_bandwidth: 192.0e9 / 2.0,
            launch_overhead_s: 0.05,
        }
    }
}

impl GpuConfig {
    /// The fp32 variant of the configuration (smaller private data, Fig. 6).
    pub fn fp32(mut self) -> Self {
        self.fp32 = true;
        self.private_bytes_per_thread = 15_500;
        self
    }

    /// Set the register throttle (Fig. 6 x-axis).
    pub fn with_max_registers(mut self, regs: usize) -> Self {
        self.max_registers = regs;
        self
    }
}

/// What the simulated launch reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuRunReport {
    /// Index of the winning grid point (functional result).
    pub best_index: usize,
    /// Its cost.
    pub best_cost: f64,
    /// Number of evaluations (threads launched).
    pub evaluations: usize,
    /// Modelled occupancy: resident threads / maximum resident threads.
    pub occupancy: f64,
    /// Registers the kernel wants per thread before throttling.
    pub registers_wanted: usize,
    /// Registers per thread after the throttle.
    pub registers_used: usize,
    /// Modelled kernel execution time in seconds (excludes launch overhead).
    pub kernel_time_s: f64,
    /// Modelled total time in seconds (launch overhead + kernel).
    pub total_time_s: f64,
    /// Engine counters the simulated launch accumulated (the evaluation
    /// context dies with the launch, so the delta is handed back for the
    /// driver to fold into its template engine).
    pub stats: EngineStats,
}

/// Execute the evaluation kernel for every grid point on the simulated GPU
/// and return both the functional argmin and the modelled timing.
///
/// # Errors
/// Returns the first [`ExecError`] raised by the kernel.
pub fn run_grid(
    engine: &Engine,
    eval_func: FuncId,
    grid_size: usize,
    config: &GpuConfig,
) -> Result<GpuRunReport, ExecError> {
    // ---- functional execution (one logical thread per grid point) --------
    // The kernel runs through the *unfused* decoded path on purpose: the
    // timing model below consumes the per-thread instruction count, which
    // must approximate the kernel's architectural instruction stream — not
    // the host interpreter's dispatch count, which shrinks when the fusion
    // knob is on. A host-side peephole pass must never change modelled GPU
    // time.
    let mut ctx = crate::mcpu::EvalContext::new(engine, eval_func);
    let mut best = (usize::MAX, f64::INFINITY);
    let mut kernel_instructions = 0u64;
    let base_stats = ctx.engine().stats();
    for i in 0..grid_size {
        let before = ctx.engine().stats().instructions;
        let cost = ctx.eval_decoded(i)?;
        kernel_instructions += ctx.engine().stats().instructions - before;
        best = crate::mcpu::argmin_better(best, i, cost);
    }
    let avg_instructions = if grid_size == 0 {
        0.0
    } else {
        kernel_instructions as f64 / grid_size as f64
    };

    // ---- occupancy / register model ---------------------------------------
    let func = engine.module().function(eval_func);
    // Live-value proxy: one register per SSA value, floor of 32, capped at
    // the ISA maximum of 255. fp64 values take two 32-bit registers.
    let width = if config.fp32 { 1 } else { 2 };
    let registers_wanted = (func.values.len() * width / 4).clamp(32, 255);
    let registers_used = registers_wanted.min(config.max_registers.max(16));
    let spilled_registers = registers_wanted.saturating_sub(registers_used);

    let threads_by_regs = config.registers_per_sm / registers_used.max(1);
    let threads_by_local = config.local_memory_per_sm / config.private_bytes_per_thread.max(1);
    let resident = threads_by_regs
        .min(config.max_threads_per_sm)
        .max(1)
        .min(threads_by_local.max(1).max(32));
    let occupancy = resident as f64 / config.max_threads_per_sm as f64;

    // ---- timing model -----------------------------------------------------
    // Compute time: instructions issued across SMs at ~1 instruction per
    // cycle per resident warp group (simplified), divided by occupancy-
    // limited parallelism.
    let parallel_threads = (config.sm_count * resident).max(1) as f64;
    let waves = (grid_size as f64 / parallel_threads).ceil().max(1.0);
    let cycles_per_thread = avg_instructions * 4.0 + spilled_registers as f64 * 8.0;
    let compute_time = waves * cycles_per_thread / config.clock_hz;

    // Memory time: every evaluation streams its private data (PRNG state and
    // read-write copies) through the memory hierarchy at least twice (read at
    // entry, write-back at exit); spills add 8 bytes per spilled register per
    // evaluation.
    let bytes_per_eval =
        2.0 * config.private_bytes_per_thread as f64 + spilled_registers as f64 * 8.0 * 4.0;
    let memory_time = grid_size as f64 * bytes_per_eval / config.dram_bandwidth;

    // The kernel is memory-bound in the paper; the max() realizes that.
    let kernel_time_s = compute_time.max(memory_time);
    Ok(GpuRunReport {
        best_index: best.0,
        best_cost: best.1,
        evaluations: grid_size,
        occupancy,
        registers_wanted,
        registers_used,
        kernel_time_s,
        total_time_s: kernel_time_s + config.launch_overhead_s,
        stats: ctx.engine().stats_since(&base_stats),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_ir::{FunctionBuilder, Module, Ty};

    fn kernel() -> (Engine, FuncId) {
        let mut m = Module::new("m");
        let fid = m.declare_function("eval", vec![Ty::I64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let i = b.param(0);
            let x = b.sitofp(i);
            let c = b.const_f64(100.0);
            let d = b.fsub(x, c);
            let sq = b.fmul(d, d);
            let ex = b.exp(sq);
            let r = b.fadd(sq, ex);
            b.ret(Some(r));
        }
        (Engine::new(m), fid)
    }

    #[test]
    fn functional_result_matches_cpu() {
        let (engine, fid) = kernel();
        let gpu = run_grid(&engine, fid, 256, &GpuConfig::default()).unwrap();
        let cpu = crate::mcpu::serial_argmin(&engine, fid, 256).unwrap();
        assert_eq!(gpu.best_index, cpu.best_index);
        assert_eq!(gpu.best_cost, cpu.best_cost);
    }

    #[test]
    fn occupancy_rises_as_register_throttle_drops() {
        let (engine, fid) = kernel();
        let mut last_occupancy = 0.0;
        let mut occupancies = Vec::new();
        for regs in [256, 128, 64, 32, 16] {
            let cfg = GpuConfig::default().with_max_registers(regs);
            let r = run_grid(&engine, fid, 1024, &cfg).unwrap();
            occupancies.push(r.occupancy);
            assert!(r.occupancy >= last_occupancy - 1e-12, "{occupancies:?}");
            last_occupancy = r.occupancy;
            assert!(r.registers_used <= regs.max(16));
        }
    }

    #[test]
    fn throttling_registers_increases_time_despite_higher_occupancy() {
        let (engine, fid) = kernel();
        let wide = run_grid(
            &engine,
            fid,
            4096,
            &GpuConfig::default().with_max_registers(256),
        )
        .unwrap();
        let narrow = run_grid(
            &engine,
            fid,
            4096,
            &GpuConfig::default().with_max_registers(16),
        )
        .unwrap();
        assert!(narrow.occupancy >= wide.occupancy);
        assert!(
            narrow.kernel_time_s >= wide.kernel_time_s,
            "spilling should not make the kernel faster"
        );
    }

    #[test]
    fn fp32_is_not_dramatically_faster_because_memory_bound() {
        let (engine, fid) = kernel();
        let f64_run = run_grid(&engine, fid, 4096, &GpuConfig::default()).unwrap();
        let f32_run = run_grid(&engine, fid, 4096, &GpuConfig::default().fp32()).unwrap();
        let ratio = f64_run.kernel_time_s / f32_run.kernel_time_s;
        // fp32 has up to 32x the compute throughput but the paper observes
        // almost no speedup; our model keeps the ratio well under 2x.
        assert!(ratio < 2.0, "ratio {ratio}");
        assert!(ratio >= 1.0, "fp32 should not be slower, ratio {ratio}");
    }

    #[test]
    fn report_scales_with_grid_size() {
        let (engine, fid) = kernel();
        let small = run_grid(&engine, fid, 128, &GpuConfig::default()).unwrap();
        let large = run_grid(&engine, fid, 4096, &GpuConfig::default()).unwrap();
        assert!(large.kernel_time_s > small.kernel_time_s);
        assert_eq!(large.evaluations, 4096);
    }
}
