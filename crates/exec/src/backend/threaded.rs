//! The direct-threaded tier: dispatch over the fused stream via indirect
//! calls instead of the interpreter's big `match`.
//!
//! At prepare time every fused instruction is paired with a **handler
//! function pointer** selected once from its opcode and operand shape, so a
//! block becomes a flat array of `(handler, packed operands)` and the
//! dispatch loop is one indirect call per instruction — the classic
//! direct-threading structure, minus computed goto (not expressible in safe
//! Rust). Handler selection also specializes the hottest shapes (float
//! binops on two registers, integer add with an immediate) down to
//! branch-free bodies, which is where the win over the fused interpreter
//! comes from.
//!
//! Fuel and the `instructions` counter are charged **per block** on entry
//! rather than per op: totals on successful runs are identical to the fused
//! interpreter op-for-op (each op still costs 1, superinstructions still
//! charge their absorbed dispatches inside the handler), but a run that
//! exhausts its budget mid-block fails at the block boundary instead of the
//! exact op. Error *kind* and success/failure behaviour are unchanged — a
//! run succeeds under this tier iff it succeeds under the fused tier.

use super::interp::{
    self, charge_fuel, exec_bin, read_operand, read_reg, enter_block, exec_term, Flow,
};
use crate::decode::{DecodedFunction, DecodedInst, DecodedTerm, Operand, PhiEdge};
use crate::engine::{EngineCtx, ExecError, Frame, Value};
use distill_ir::BinOp;

/// A handler executes one packed op against the engine state and returns
/// the value for the op's destination register. `code` is the whole
/// threaded module, so call handlers can recurse within the tier.
type Handler = fn(
    ctx: &mut EngineCtx,
    code: &[ThreadedFunction],
    op: &ThreadedOp,
    regs: &mut Frame,
    fuel: &mut u64,
    depth: usize,
) -> Result<Value, ExecError>;

/// One instruction of the threaded stream: the pre-selected handler plus
/// the packed operands it interprets (the fused instruction, kept whole so
/// generic handlers can destructure it).
#[derive(Debug, Clone)]
pub struct ThreadedOp {
    handler: Handler,
    dst: u32,
    inst: DecodedInst,
}

/// One basic block: the phi tables of the fused form plus the handler
/// array.
#[derive(Debug, Clone)]
pub struct ThreadedBlock {
    pub(crate) has_phis: bool,
    pub(crate) first_phi: u32,
    pub(crate) phi_edges: Box<[(u32, PhiEdge)]>,
    pub(crate) code: Box<[ThreadedOp]>,
    pub(crate) term: DecodedTerm,
}

/// A function lowered to the threaded form.
#[derive(Debug, Clone)]
pub struct ThreadedFunction {
    pub(crate) name: String,
    pub(crate) entry: Option<u32>,
    pub(crate) num_values: u32,
    pub(crate) blocks: Vec<ThreadedBlock>,
}

/// Lower every fused function to its threaded form.
pub(crate) fn thread_module(fused: &[DecodedFunction]) -> Vec<ThreadedFunction> {
    fused.iter().map(thread_function).collect()
}

fn thread_function(df: &DecodedFunction) -> ThreadedFunction {
    ThreadedFunction {
        name: df.name.clone(),
        entry: df.entry,
        num_values: df.num_values,
        blocks: df
            .blocks
            .iter()
            .map(|b| ThreadedBlock {
                has_phis: b.has_phis,
                first_phi: b.first_phi,
                phi_edges: b.phi_edges.clone(),
                code: b
                    .code
                    .iter()
                    .map(|op| ThreadedOp {
                        handler: select_handler(&op.inst),
                        dst: op.dst,
                        inst: op.inst.clone(),
                    })
                    .collect(),
                term: b.term.clone(),
            })
            .collect(),
    }
}

/// Pick the handler for an instruction from its opcode and operand shape.
/// The specialized rows avoid re-matching the opcode and the operand tags
/// at run time; everything else falls back to a per-variant generic.
fn select_handler(inst: &DecodedInst) -> Handler {
    match inst {
        DecodedInst::Bin {
            op,
            lhs: Operand::Reg(_),
            rhs: Operand::Reg(_),
        } => match op {
            BinOp::FAdd => h_fadd_rr,
            BinOp::FSub => h_fsub_rr,
            BinOp::FMul => h_fmul_rr,
            BinOp::FDiv => h_fdiv_rr,
            _ => h_bin,
        },
        DecodedInst::Bin { .. } => h_bin,
        DecodedInst::BinRI { op: BinOp::Add, .. } => h_iadd_ri,
        DecodedInst::BinRI { .. } => h_bin_ri,
        DecodedInst::BinIR { .. } => h_bin_ir,
        DecodedInst::Un { .. } => h_un,
        DecodedInst::Cmp { .. } => h_cmp,
        DecodedInst::Select { .. } => h_select,
        DecodedInst::Call { .. } => h_call,
        DecodedInst::MathCall { .. } => h_math,
        DecodedInst::RandCall { .. } => h_rand,
        DecodedInst::Alloca { .. } => h_alloca,
        DecodedInst::Load { .. } => h_load,
        DecodedInst::Store { .. } => h_store,
        DecodedInst::Gep { .. } => h_gep,
        DecodedInst::InvalidGep { .. } => h_generic,
        DecodedInst::Cast { .. } => h_cast,
        DecodedInst::GlobalAddr { .. } => h_global_addr,
        DecodedInst::LoadAbs { .. } => h_load_abs,
        DecodedInst::StoreAbs { .. } => h_store_abs,
        DecodedInst::GepLoad { .. } => h_gep_load,
        DecodedInst::GepStore { .. } => h_gep_store,
        DecodedInst::LoadBin { .. } => h_load_bin,
        DecodedInst::BinStore { .. } => h_bin_store,
    }
}

/// Call a function within the threaded stream.
pub(crate) fn call_in(
    ctx: &mut EngineCtx,
    code: &[ThreadedFunction],
    func: usize,
    args: &[Value],
    fuel: &mut u64,
    depth: usize,
) -> Result<Value, ExecError> {
    ctx.stats.calls += 1;
    if depth > 256 {
        return Err(ExecError::DepthExceeded);
    }
    let tf = &code[func];
    let Some(entry) = tf.entry else {
        return Err(ExecError::MissingBody(tf.name.clone()));
    };
    let frame_base = ctx.memory.len();
    let mut regs = ctx.acquire_frame(tf.num_values as usize);
    for (i, a) in args.iter().enumerate() {
        regs[i] = Some(*a);
    }
    let result = exec_in(ctx, code, tf, entry, &mut regs, fuel, depth);
    ctx.release_frame(regs);
    ctx.truncate_stack(frame_base);
    result
}

fn exec_in(
    ctx: &mut EngineCtx,
    code: &[ThreadedFunction],
    tf: &ThreadedFunction,
    entry: u32,
    regs: &mut Frame,
    fuel: &mut u64,
    depth: usize,
) -> Result<Value, ExecError> {
    let mut block = entry as usize;
    let mut prev: Option<u32> = None;
    loop {
        let blk = &tf.blocks[block];
        if blk.has_phis {
            enter_block(ctx, &blk.phi_edges, blk.first_phi, prev, regs)?;
        }

        // Block-granular accounting (see the module docs): one decrement
        // and one add for the whole array, then a straight run of indirect
        // calls.
        let cost = blk.code.len() as u64;
        if *fuel < cost {
            return Err(ExecError::FuelExhausted);
        }
        *fuel -= cost;
        ctx.stats.instructions += cost;
        for op in blk.code.iter() {
            let val = (op.handler)(ctx, code, op, regs, fuel, depth)?;
            regs[op.dst as usize] = Some(val);
        }

        match exec_term(ctx, &blk.term, regs, fuel)? {
            Flow::Goto(next) => {
                prev = Some(block as u32);
                block = next as usize;
            }
            Flow::Ret(v) => return Ok(v),
        }
    }
}

// ---------------------------------------------------------------------------
// Specialized handlers: opcode and operand shape resolved at prepare time.
// ---------------------------------------------------------------------------

/// Destructure the two register indices of a specialized float binop.
#[inline(always)]
fn rr(inst: &DecodedInst) -> (u32, u32) {
    match inst {
        DecodedInst::Bin {
            lhs: Operand::Reg(a),
            rhs: Operand::Reg(b),
            ..
        } => (*a, *b),
        _ => unreachable!("handler selected for reg-reg binop"),
    }
}

#[inline(always)]
fn f64_reg(regs: &Frame, i: u32) -> Result<f64, ExecError> {
    read_reg(regs, i)?
        .as_f64()
        .ok_or_else(|| ExecError::Type("float op".into()))
}

macro_rules! float_rr_handler {
    ($name:ident, $op:tt) => {
        fn $name(
            _ctx: &mut EngineCtx,
            _code: &[ThreadedFunction],
            op: &ThreadedOp,
            regs: &mut Frame,
            _fuel: &mut u64,
            _depth: usize,
        ) -> Result<Value, ExecError> {
            let (a, b) = rr(&op.inst);
            Ok(Value::F64(f64_reg(regs, a)? $op f64_reg(regs, b)?))
        }
    };
}

float_rr_handler!(h_fadd_rr, +);
float_rr_handler!(h_fsub_rr, -);
float_rr_handler!(h_fmul_rr, *);
float_rr_handler!(h_fdiv_rr, /);

/// Integer add with an inline immediate — the loop-counter bump of every
/// counted loop, hot enough for its own row.
fn h_iadd_ri(
    _ctx: &mut EngineCtx,
    _code: &[ThreadedFunction],
    op: &ThreadedOp,
    regs: &mut Frame,
    _fuel: &mut u64,
    _depth: usize,
) -> Result<Value, ExecError> {
    let DecodedInst::BinRI { reg, imm, .. } = &op.inst else {
        unreachable!("handler selected for BinRI");
    };
    let x = read_reg(regs, *reg)?
        .as_i64()
        .ok_or_else(|| ExecError::Type("int op".into()))?;
    let y = imm.as_i64().ok_or_else(|| ExecError::Type("int op".into()))?;
    Ok(Value::I64(x.wrapping_add(y)))
}

// ---------------------------------------------------------------------------
// Per-variant generic handlers: destructure and run the interpreter's arm.
// ---------------------------------------------------------------------------

macro_rules! variant_handler {
    ($name:ident, $pat:pat) => {
        fn $name(
            ctx: &mut EngineCtx,
            code: &[ThreadedFunction],
            op: &ThreadedOp,
            regs: &mut Frame,
            fuel: &mut u64,
            depth: usize,
        ) -> Result<Value, ExecError> {
            debug_assert!(matches!(&op.inst, $pat));
            exec_generic(ctx, code, op, regs, fuel, depth)
        }
    };
}

variant_handler!(h_bin, DecodedInst::Bin { .. });
variant_handler!(h_bin_ir, DecodedInst::BinIR { .. });
variant_handler!(h_un, DecodedInst::Un { .. });
variant_handler!(h_cmp, DecodedInst::Cmp { .. });
variant_handler!(h_select, DecodedInst::Select { .. });
variant_handler!(h_math, DecodedInst::MathCall { .. });
variant_handler!(h_rand, DecodedInst::RandCall { .. });
variant_handler!(h_alloca, DecodedInst::Alloca { .. });
variant_handler!(h_cast, DecodedInst::Cast { .. });
variant_handler!(h_global_addr, DecodedInst::GlobalAddr { .. });

fn h_bin_ri(
    _ctx: &mut EngineCtx,
    _code: &[ThreadedFunction],
    op: &ThreadedOp,
    regs: &mut Frame,
    _fuel: &mut u64,
    _depth: usize,
) -> Result<Value, ExecError> {
    let DecodedInst::BinRI { op: o, reg, imm } = &op.inst else {
        unreachable!("handler selected for BinRI");
    };
    exec_bin(*o, read_reg(regs, *reg)?, *imm)
}

fn h_load(
    ctx: &mut EngineCtx,
    _code: &[ThreadedFunction],
    op: &ThreadedOp,
    regs: &mut Frame,
    _fuel: &mut u64,
    _depth: usize,
) -> Result<Value, ExecError> {
    let DecodedInst::Load { ptr } = &op.inst else {
        unreachable!("handler selected for Load");
    };
    ctx.stats.loads += 1;
    let addr = match read_operand(ptr, regs)? {
        Value::Ptr(p) => p,
        other => return Err(ExecError::Type(format!("load from non-pointer {other:?}"))),
    };
    ctx.load_slot(addr)
}

fn h_store(
    ctx: &mut EngineCtx,
    _code: &[ThreadedFunction],
    op: &ThreadedOp,
    regs: &mut Frame,
    _fuel: &mut u64,
    _depth: usize,
) -> Result<Value, ExecError> {
    let DecodedInst::Store { ptr, value } = &op.inst else {
        unreachable!("handler selected for Store");
    };
    ctx.stats.stores += 1;
    let addr = match read_operand(ptr, regs)? {
        Value::Ptr(p) => p,
        other => return Err(ExecError::Type(format!("store to non-pointer {other:?}"))),
    };
    let v = read_operand(value, regs)?;
    ctx.store_slot(addr, v)?;
    Ok(Value::Unit)
}

fn h_gep(
    ctx: &mut EngineCtx,
    _code: &[ThreadedFunction],
    op: &ThreadedOp,
    regs: &mut Frame,
    _fuel: &mut u64,
    _depth: usize,
) -> Result<Value, ExecError> {
    let DecodedInst::Gep {
        base,
        const_offset,
        dyn_steps,
    } = &op.inst
    else {
        unreachable!("handler selected for Gep");
    };
    Ok(Value::Ptr(interp::gep_addr(
        ctx,
        base,
        *const_offset,
        dyn_steps,
        regs,
    )?))
}

fn h_load_abs(
    ctx: &mut EngineCtx,
    _code: &[ThreadedFunction],
    op: &ThreadedOp,
    _regs: &mut Frame,
    _fuel: &mut u64,
    _depth: usize,
) -> Result<Value, ExecError> {
    let DecodedInst::LoadAbs { addr } = &op.inst else {
        unreachable!("handler selected for LoadAbs");
    };
    ctx.stats.loads += 1;
    ctx.stats.fused_ops += 1;
    ctx.load_slot(*addr)
}

fn h_store_abs(
    ctx: &mut EngineCtx,
    _code: &[ThreadedFunction],
    op: &ThreadedOp,
    regs: &mut Frame,
    _fuel: &mut u64,
    _depth: usize,
) -> Result<Value, ExecError> {
    let DecodedInst::StoreAbs { addr, value } = &op.inst else {
        unreachable!("handler selected for StoreAbs");
    };
    ctx.stats.stores += 1;
    ctx.stats.fused_ops += 1;
    let v = read_operand(value, regs)?;
    ctx.store_slot(*addr, v)?;
    Ok(Value::Unit)
}

fn h_gep_load(
    ctx: &mut EngineCtx,
    _code: &[ThreadedFunction],
    op: &ThreadedOp,
    regs: &mut Frame,
    fuel: &mut u64,
    _depth: usize,
) -> Result<Value, ExecError> {
    let DecodedInst::GepLoad {
        base,
        const_offset,
        dyn_steps,
    } = &op.inst
    else {
        unreachable!("handler selected for GepLoad");
    };
    charge_fuel(fuel)?;
    let addr = interp::gep_addr(ctx, base, *const_offset, dyn_steps, regs)?;
    ctx.stats.loads += 1;
    ctx.stats.fused_ops += 1;
    ctx.load_slot(addr)
}

fn h_gep_store(
    ctx: &mut EngineCtx,
    _code: &[ThreadedFunction],
    op: &ThreadedOp,
    regs: &mut Frame,
    fuel: &mut u64,
    _depth: usize,
) -> Result<Value, ExecError> {
    let DecodedInst::GepStore {
        base,
        const_offset,
        dyn_steps,
        value,
    } = &op.inst
    else {
        unreachable!("handler selected for GepStore");
    };
    charge_fuel(fuel)?;
    let addr = interp::gep_addr(ctx, base, *const_offset, dyn_steps, regs)?;
    ctx.stats.stores += 1;
    ctx.stats.fused_ops += 1;
    let v = read_operand(value, regs)?;
    ctx.store_slot(addr, v)?;
    Ok(Value::Unit)
}

fn h_load_bin(
    ctx: &mut EngineCtx,
    _code: &[ThreadedFunction],
    op: &ThreadedOp,
    regs: &mut Frame,
    fuel: &mut u64,
    _depth: usize,
) -> Result<Value, ExecError> {
    let DecodedInst::LoadBin {
        op: o,
        ptr,
        other,
        load_lhs,
    } = &op.inst
    else {
        unreachable!("handler selected for LoadBin");
    };
    charge_fuel(fuel)?;
    ctx.stats.loads += 1;
    ctx.stats.fused_ops += 1;
    let addr = match read_operand(ptr, regs)? {
        Value::Ptr(p) => p,
        other => return Err(ExecError::Type(format!("load from non-pointer {other:?}"))),
    };
    let loaded = ctx.load_slot(addr)?;
    let v = read_operand(other, regs)?;
    if *load_lhs {
        exec_bin(*o, loaded, v)
    } else {
        exec_bin(*o, v, loaded)
    }
}

fn h_bin_store(
    ctx: &mut EngineCtx,
    _code: &[ThreadedFunction],
    op: &ThreadedOp,
    regs: &mut Frame,
    fuel: &mut u64,
    _depth: usize,
) -> Result<Value, ExecError> {
    let DecodedInst::BinStore { op: o, lhs, rhs, ptr } = &op.inst else {
        unreachable!("handler selected for BinStore");
    };
    charge_fuel(fuel)?;
    let v = exec_bin(*o, read_operand(lhs, regs)?, read_operand(rhs, regs)?)?;
    ctx.stats.stores += 1;
    ctx.stats.fused_ops += 1;
    let addr = match read_operand(ptr, regs)? {
        Value::Ptr(p) => p,
        other => return Err(ExecError::Type(format!("store to non-pointer {other:?}"))),
    };
    ctx.store_slot(addr, v)?;
    Ok(Value::Unit)
}

/// Calls recurse within the threaded tier, so a promoted function's whole
/// dynamic extent runs threaded.
fn h_call(
    ctx: &mut EngineCtx,
    code: &[ThreadedFunction],
    op: &ThreadedOp,
    regs: &mut Frame,
    fuel: &mut u64,
    depth: usize,
) -> Result<Value, ExecError> {
    let DecodedInst::Call { callee, args } = &op.inst else {
        unreachable!("handler selected for Call");
    };
    let mut vals = Vec::with_capacity(args.len());
    for a in args.iter() {
        vals.push(read_operand(a, regs)?);
    }
    call_in(ctx, code, *callee as usize, &vals, fuel, depth + 1)
}

/// Fallback for the remaining variants: run the interpreter's arm. Only
/// instruction kinds with no handler of their own land here, so the
/// interpreter's `match` prologue runs once per *rare* op, not per op.
fn exec_generic(
    ctx: &mut EngineCtx,
    _code: &[ThreadedFunction],
    op: &ThreadedOp,
    regs: &mut Frame,
    fuel: &mut u64,
    depth: usize,
) -> Result<Value, ExecError> {
    interp::exec_decoded_inst(ctx, &[], &op.inst, regs, fuel, depth)
}

fn h_generic(
    ctx: &mut EngineCtx,
    code: &[ThreadedFunction],
    op: &ThreadedOp,
    regs: &mut Frame,
    fuel: &mut u64,
    depth: usize,
) -> Result<Value, ExecError> {
    exec_generic(ctx, code, op, regs, fuel, depth)
}
