//! The predecoded interpreter core — the dispatch loop shared by the
//! decoded and fused tiers (the fused tier runs the same loop over the
//! superinstruction stream).
//!
//! Moved verbatim out of the engine when execution was split into tiers;
//! the loop never touches the IR, never clones, and never string-formats on
//! the happy path. The scalar helpers at the bottom (`exec_bin`,
//! `exec_cmp`, `exec_math`, `read_operand`) are the single definition
//! of operator semantics, shared by the reference and threaded tiers.

use crate::decode::{DecodedFunction, DecodedInst, DecodedTerm, Operand, PhiEdge};
use crate::engine::{EngineCtx, ExecError, Frame, Value};
use distill_ir::{BinOp, CastKind, CmpPred, Intrinsic, UnOp};
use distill_pyvm::SplitMix64;

/// Call a function within a decoded (or fused) code stream.
pub(crate) fn call_in(
    ctx: &mut EngineCtx,
    code: &[DecodedFunction],
    func: usize,
    args: &[Value],
    fuel: &mut u64,
    depth: usize,
) -> Result<Value, ExecError> {
    ctx.stats.calls += 1;
    if depth > 256 {
        return Err(ExecError::DepthExceeded);
    }
    let df = &code[func];
    let Some(entry) = df.entry else {
        return Err(ExecError::MissingBody(df.name.clone()));
    };
    let frame_base = ctx.memory.len();
    let mut regs = ctx.acquire_frame(df.num_values as usize);
    for (i, a) in args.iter().enumerate() {
        regs[i] = Some(*a);
    }
    let result = exec_in(ctx, code, df, entry, &mut regs, fuel, depth);
    ctx.release_frame(regs);
    // Pop this frame's allocas.
    ctx.truncate_stack(frame_base);
    result
}

/// Run the phi parallel copies for entry into `blk` from predecessor `prev`.
/// Shared with the threaded tier, whose blocks reuse the decoded phi tables.
pub(crate) fn enter_block(
    ctx: &mut EngineCtx,
    phi_edges: &[(u32, PhiEdge)],
    first_phi: u32,
    prev: Option<u32>,
    regs: &mut Frame,
) -> Result<(), ExecError> {
    let Some(p) = prev else {
        return Err(ExecError::Undef(format!(
            "phi %{first_phi} evaluated in entry block"
        )));
    };
    let (_, edge) = phi_edges
        .iter()
        .find(|(pred, _)| *pred == p)
        .expect("phi edge decoded for every static predecessor");
    match edge {
        PhiEdge::Missing { phi, pred } => {
            Err(ExecError::Type(format!("phi %{phi} has no edge from bb{pred}")))
        }
        PhiEdge::Copies(copies) => {
            // Parallel copy: all sources are read against the pre-entry
            // register state before any destination is written (a phi may
            // feed another phi of the block).
            let mut scratch = std::mem::take(&mut ctx.phi_scratch);
            scratch.clear();
            let mut failed = None;
            for (_, src) in copies.iter() {
                match read_operand(src, regs) {
                    Ok(v) => scratch.push(v),
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                }
            }
            if failed.is_none() {
                for ((dst, _), v) in copies.iter().zip(scratch.iter()) {
                    regs[*dst as usize] = Some(*v);
                }
            }
            ctx.phi_scratch = scratch;
            match failed {
                Some(e) => Err(e),
                None => Ok(()),
            }
        }
    }
}

/// Outcome of a decoded terminator: continue at a block or return a value.
pub(crate) enum Flow {
    Goto(u32),
    Ret(Value),
}

/// Execute a decoded terminator. Fused compare-and-branch forms charge the
/// fuel of every instruction they absorbed so a branch-only loop cannot spin
/// past the budget; they count the absorbed dispatches in both
/// `instructions` and `fused_ops`. Shared with the threaded tier.
pub(crate) fn exec_term(
    ctx: &mut EngineCtx,
    term: &DecodedTerm,
    regs: &mut Frame,
    fuel: &mut u64,
) -> Result<Flow, ExecError> {
    match term {
        DecodedTerm::Br(next) => Ok(Flow::Goto(*next)),
        DecodedTerm::CondBr {
            cond,
            then_blk,
            else_blk,
        } => {
            let c = read_operand(cond, regs)?
                .as_bool()
                .ok_or_else(|| ExecError::Type("branch on non-bool".into()))?;
            Ok(Flow::Goto(if c { *then_blk } else { *else_blk }))
        }
        DecodedTerm::CmpBr {
            pred,
            lhs,
            rhs,
            then_blk,
            else_blk,
        } => {
            charge_fuel(fuel)?;
            ctx.stats.instructions += 1;
            ctx.stats.fused_ops += 1;
            let c = match exec_cmp(*pred, read_operand(lhs, regs)?, read_operand(rhs, regs)?)? {
                Value::Bool(b) => b,
                _ => unreachable!("cmp yields bool"),
            };
            Ok(Flow::Goto(if c { *then_blk } else { *else_blk }))
        }
        DecodedTerm::BinRICmpBr {
            op,
            src,
            imm,
            dst,
            pred,
            other,
            bin_is_lhs,
            then_blk,
            else_blk,
        } => {
            // Two absorbed dispatches: the immediate-specialized binop and
            // the compare. The binop's destination is still written — phis
            // and later blocks may read it.
            charge_fuel(fuel)?;
            charge_fuel(fuel)?;
            ctx.stats.instructions += 2;
            ctx.stats.fused_ops += 2;
            let v = exec_bin(*op, read_reg(regs, *src)?, *imm)?;
            regs[*dst as usize] = Some(v);
            let o = read_operand(other, regs)?;
            let (a, b) = if *bin_is_lhs { (v, o) } else { (o, v) };
            let c = match exec_cmp(*pred, a, b)? {
                Value::Bool(b) => b,
                _ => unreachable!("cmp yields bool"),
            };
            Ok(Flow::Goto(if c { *then_blk } else { *else_blk }))
        }
        DecodedTerm::Ret(Some(v)) => Ok(Flow::Ret(read_operand(v, regs)?)),
        DecodedTerm::Ret(None) => Ok(Flow::Ret(Value::Unit)),
        DecodedTerm::Unreachable => Err(ExecError::Type("reached unreachable".into())),
        DecodedTerm::Missing => panic!("block has terminator"),
    }
}

fn exec_in(
    ctx: &mut EngineCtx,
    code: &[DecodedFunction],
    df: &DecodedFunction,
    entry: u32,
    regs: &mut Frame,
    fuel: &mut u64,
    depth: usize,
) -> Result<Value, ExecError> {
    let mut block = entry as usize;
    let mut prev: Option<u32> = None;
    loop {
        let blk = &df.blocks[block];
        if blk.has_phis {
            enter_block(ctx, &blk.phi_edges, blk.first_phi, prev, regs)?;
        }

        for op in blk.code.iter() {
            if *fuel == 0 {
                return Err(ExecError::FuelExhausted);
            }
            *fuel -= 1;
            ctx.stats.instructions += 1;
            let val = exec_decoded_inst(ctx, code, &op.inst, regs, fuel, depth)?;
            regs[op.dst as usize] = Some(val);
        }

        match exec_term(ctx, &blk.term, regs, fuel)? {
            Flow::Goto(next) => {
                prev = Some(block as u32);
                block = next as usize;
            }
            Flow::Ret(v) => return Ok(v),
        }
    }
}

pub(crate) fn exec_decoded_inst(
    ctx: &mut EngineCtx,
    code: &[DecodedFunction],
    inst: &DecodedInst,
    regs: &mut Frame,
    fuel: &mut u64,
    depth: usize,
) -> Result<Value, ExecError> {
    match inst {
        DecodedInst::Bin { op, lhs, rhs } => {
            exec_bin(*op, read_operand(lhs, regs)?, read_operand(rhs, regs)?)
        }
        DecodedInst::Un { op, val } => exec_un(*op, read_operand(val, regs)?),
        DecodedInst::Cmp { pred, lhs, rhs } => {
            exec_cmp(*pred, read_operand(lhs, regs)?, read_operand(rhs, regs)?)
        }
        DecodedInst::Select {
            cond,
            then_val,
            else_val,
        } => {
            let c = read_operand(cond, regs)?
                .as_bool()
                .ok_or_else(|| ExecError::Type("select condition".into()))?;
            if c {
                read_operand(then_val, regs)
            } else {
                read_operand(else_val, regs)
            }
        }
        DecodedInst::Call { callee, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args.iter() {
                vals.push(read_operand(a, regs)?);
            }
            call_in(ctx, code, *callee as usize, &vals, fuel, depth + 1)
        }
        DecodedInst::MathCall { kind, args } => {
            let mut vals = [0.0f64; 2];
            for (i, a) in args.iter().enumerate() {
                vals[i] = read_operand(a, regs)?
                    .as_f64()
                    .ok_or_else(|| ExecError::Type("intrinsic arg".into()))?;
            }
            Ok(Value::F64(exec_math(*kind, &vals[..args.len()])))
        }
        DecodedInst::RandCall { kind, state } => exec_rand(ctx, *kind, read_operand(state, regs)?),
        DecodedInst::Alloca { slots } => Ok(Value::Ptr(ctx.alloca(*slots as usize))),
        DecodedInst::Load { ptr } => {
            ctx.stats.loads += 1;
            let addr = match read_operand(ptr, regs)? {
                Value::Ptr(p) => p,
                other => return Err(ExecError::Type(format!("load from non-pointer {other:?}"))),
            };
            ctx.load_slot(addr)
        }
        DecodedInst::Store { ptr, value } => {
            ctx.stats.stores += 1;
            let addr = match read_operand(ptr, regs)? {
                Value::Ptr(p) => p,
                other => return Err(ExecError::Type(format!("store to non-pointer {other:?}"))),
            };
            let v = read_operand(value, regs)?;
            ctx.store_slot(addr, v)?;
            Ok(Value::Unit)
        }
        DecodedInst::Gep {
            base,
            const_offset,
            dyn_steps,
        } => Ok(Value::Ptr(gep_addr(
            ctx,
            base,
            *const_offset,
            dyn_steps,
            regs,
        )?)),
        DecodedInst::InvalidGep { base } => match read_operand(base, regs)? {
            Value::Ptr(_) => Err(ExecError::Type("invalid gep".into())),
            other => Err(ExecError::Type(format!("gep on non-pointer {other:?}"))),
        },
        DecodedInst::Cast { kind, val } => exec_cast(*kind, read_operand(val, regs)?),
        DecodedInst::GlobalAddr { addr } => Ok(Value::Ptr(*addr)),

        // -- Fused superinstructions (emitted by `crate::fuse` only) --------
        DecodedInst::LoadAbs { addr } => {
            ctx.stats.loads += 1;
            ctx.stats.fused_ops += 1;
            ctx.load_slot(*addr)
        }
        DecodedInst::StoreAbs { addr, value } => {
            ctx.stats.stores += 1;
            ctx.stats.fused_ops += 1;
            let v = read_operand(value, regs)?;
            ctx.store_slot(*addr, v)?;
            Ok(Value::Unit)
        }
        DecodedInst::GepLoad {
            base,
            const_offset,
            dyn_steps,
        } => {
            // Pair superinstructions charge the absorbed dispatch's fuel
            // (like the fused cmp+branch terminator), so fuel accounting
            // matches the decoded path op-for-op.
            charge_fuel(fuel)?;
            let addr = gep_addr(ctx, base, *const_offset, dyn_steps, regs)?;
            ctx.stats.loads += 1;
            ctx.stats.fused_ops += 1;
            ctx.load_slot(addr)
        }
        DecodedInst::GepStore {
            base,
            const_offset,
            dyn_steps,
            value,
        } => {
            charge_fuel(fuel)?;
            let addr = gep_addr(ctx, base, *const_offset, dyn_steps, regs)?;
            ctx.stats.stores += 1;
            ctx.stats.fused_ops += 1;
            let v = read_operand(value, regs)?;
            ctx.store_slot(addr, v)?;
            Ok(Value::Unit)
        }
        DecodedInst::BinRI { op, reg, imm } => exec_bin(*op, read_reg(regs, *reg)?, *imm),
        DecodedInst::BinIR { op, imm, reg } => exec_bin(*op, *imm, read_reg(regs, *reg)?),
        DecodedInst::LoadBin {
            op,
            ptr,
            other,
            load_lhs,
        } => {
            charge_fuel(fuel)?;
            ctx.stats.loads += 1;
            ctx.stats.fused_ops += 1;
            let addr = match read_operand(ptr, regs)? {
                Value::Ptr(p) => p,
                other => return Err(ExecError::Type(format!("load from non-pointer {other:?}"))),
            };
            let loaded = ctx.load_slot(addr)?;
            let o = read_operand(other, regs)?;
            if *load_lhs {
                exec_bin(*op, loaded, o)
            } else {
                exec_bin(*op, o, loaded)
            }
        }
        DecodedInst::BinStore { op, lhs, rhs, ptr } => {
            charge_fuel(fuel)?;
            let v = exec_bin(*op, read_operand(lhs, regs)?, read_operand(rhs, regs)?)?;
            ctx.stats.stores += 1;
            ctx.stats.fused_ops += 1;
            let addr = match read_operand(ptr, regs)? {
                Value::Ptr(p) => p,
                other => return Err(ExecError::Type(format!("store to non-pointer {other:?}"))),
            };
            ctx.store_slot(addr, v)?;
            Ok(Value::Unit)
        }
    }
}

/// Execute a unary operator.
pub(crate) fn exec_un(op: UnOp, a: Value) -> Result<Value, ExecError> {
    match op {
        UnOp::FNeg => Ok(Value::F64(
            -a.as_f64().ok_or_else(|| ExecError::Type("fneg".into()))?,
        )),
        UnOp::Not => match a {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            Value::I64(i) => Ok(Value::I64(!i)),
            _ => Err(ExecError::Type("not on float".into())),
        },
    }
}

/// Execute a cast.
pub(crate) fn exec_cast(kind: CastKind, a: Value) -> Result<Value, ExecError> {
    Ok(match kind {
        CastKind::SiToFp => Value::F64(
            a.as_i64().ok_or_else(|| ExecError::Type("sitofp".into()))? as f64,
        ),
        CastKind::FpToSi => Value::I64(
            a.as_f64().ok_or_else(|| ExecError::Type("fptosi".into()))? as i64,
        ),
        CastKind::FpTrunc | CastKind::FpExt => {
            Value::F64(a.as_f64().ok_or_else(|| ExecError::Type("fpcast".into()))?)
        }
        CastKind::ZExtBool => {
            Value::I64(a.as_bool().ok_or_else(|| ExecError::Type("zext".into()))? as i64)
        }
        CastKind::TruncBool => {
            Value::Bool(a.as_i64().ok_or_else(|| ExecError::Type("trunc".into()))? != 0)
        }
    })
}

/// Execute a PRNG intrinsic against its memory-resident state slot.
pub(crate) fn exec_rand(
    ctx: &mut EngineCtx,
    kind: Intrinsic,
    state: Value,
) -> Result<Value, ExecError> {
    let addr = match state {
        Value::Ptr(p) => p,
        _ => return Err(ExecError::Type("PRNG state must be a pointer".into())),
    };
    let state_bits = ctx
        .load_slot(addr)?
        .as_i64()
        .ok_or_else(|| ExecError::Type("PRNG state must be an integer".into()))?;
    let mut rng = SplitMix64::new(state_bits as u64);
    let out = match kind {
        Intrinsic::RandUniform => rng.uniform(),
        Intrinsic::RandNormal => rng.normal(),
        _ => unreachable!(),
    };
    ctx.store_slot(addr, Value::I64(rng.state as i64))?;
    Ok(Value::F64(out))
}

/// Resolve a folded GEP address: base pointer, constant offset, dynamic
/// steps. Shared by the plain and the fused GEP forms on every tier.
pub(crate) fn gep_addr(
    ctx: &EngineCtx,
    base: &Operand,
    const_offset: u32,
    dyn_steps: &[(Operand, u32)],
    regs: &Frame,
) -> Result<usize, ExecError> {
    let addr = match read_operand(base, regs)? {
        Value::Ptr(p) => p,
        other => return Err(ExecError::Type(format!("gep on non-pointer {other:?}"))),
    };
    let mut offset = const_offset as usize;
    for (idx, stride) in dyn_steps.iter() {
        let i = read_operand(idx, regs)?
            .as_i64()
            .ok_or_else(|| ExecError::Type("gep index".into()))?;
        if i < 0 {
            return Err(ExecError::OutOfBounds {
                addr,
                size: ctx.memory.len(),
            });
        }
        offset += i as usize * *stride as usize;
    }
    Ok(addr + offset)
}

/// Read a pre-resolved operand against the current frame.
#[inline]
pub(crate) fn read_operand(op: &Operand, regs: &[Option<Value>]) -> Result<Value, ExecError> {
    match op {
        Operand::Imm(v) => Ok(*v),
        Operand::Reg(i) => regs[*i as usize]
            .ok_or_else(|| ExecError::Undef(format!("value %{i} used before definition"))),
        Operand::Undef(i) => Err(ExecError::Undef(format!("%{i}"))),
    }
}

/// Read a frame register directly (the specialized register fields of the
/// fused `BinRI`/`BinIR` forms).
#[inline]
pub(crate) fn read_reg(regs: &[Option<Value>], i: u32) -> Result<Value, ExecError> {
    regs[i as usize]
        .ok_or_else(|| ExecError::Undef(format!("value %{i} used before definition")))
}

/// Charge one extra unit of fuel for an instruction a superinstruction
/// absorbed, so fused pair forms consume the same fuel as their decoded
/// expansion.
#[inline]
pub(crate) fn charge_fuel(fuel: &mut u64) -> Result<(), ExecError> {
    if *fuel == 0 {
        return Err(ExecError::FuelExhausted);
    }
    *fuel -= 1;
    Ok(())
}

pub(crate) fn exec_bin(op: BinOp, a: Value, b: Value) -> Result<Value, ExecError> {
    if op.is_float() {
        let (x, y) = (
            a.as_f64().ok_or_else(|| ExecError::Type("float op".into()))?,
            b.as_f64().ok_or_else(|| ExecError::Type("float op".into()))?,
        );
        let r = match op {
            BinOp::FAdd => x + y,
            BinOp::FSub => x - y,
            BinOp::FMul => x * y,
            BinOp::FDiv => x / y,
            BinOp::FRem => x % y,
            _ => unreachable!(),
        };
        Ok(Value::F64(r))
    } else {
        let (x, y) = (
            a.as_i64().ok_or_else(|| ExecError::Type("int op".into()))?,
            b.as_i64().ok_or_else(|| ExecError::Type("int op".into()))?,
        );
        let r = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::SDiv => {
                if y == 0 {
                    return Err(ExecError::DivisionByZero);
                }
                x.wrapping_div(y)
            }
            BinOp::SRem => {
                if y == 0 {
                    return Err(ExecError::DivisionByZero);
                }
                x.wrapping_rem(y)
            }
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32),
            BinOp::LShr => ((x as u64).wrapping_shr(y as u32)) as i64,
            BinOp::AShr => x.wrapping_shr(y as u32),
            _ => unreachable!(),
        };
        Ok(Value::I64(r))
    }
}

pub(crate) fn exec_cmp(pred: CmpPred, a: Value, b: Value) -> Result<Value, ExecError> {
    let r = if pred.is_float() {
        let (x, y) = (
            a.as_f64().ok_or_else(|| ExecError::Type("fcmp".into()))?,
            b.as_f64().ok_or_else(|| ExecError::Type("fcmp".into()))?,
        );
        match pred {
            CmpPred::FEq => x == y,
            CmpPred::FNe => x != y,
            CmpPred::FLt => x < y,
            CmpPred::FLe => x <= y,
            CmpPred::FGt => x > y,
            CmpPred::FGe => x >= y,
            _ => unreachable!(),
        }
    } else {
        let (x, y) = (
            a.as_i64().ok_or_else(|| ExecError::Type("icmp".into()))?,
            b.as_i64().ok_or_else(|| ExecError::Type("icmp".into()))?,
        );
        match pred {
            CmpPred::IEq => x == y,
            CmpPred::INe => x != y,
            CmpPred::ILt => x < y,
            CmpPred::ILe => x <= y,
            CmpPred::IGt => x > y,
            CmpPred::IGe => x >= y,
            _ => unreachable!(),
        }
    };
    Ok(Value::Bool(r))
}

pub(crate) fn exec_math(kind: Intrinsic, args: &[f64]) -> f64 {
    match kind {
        Intrinsic::Exp => args[0].exp(),
        Intrinsic::Log => args[0].ln(),
        Intrinsic::Sqrt => args[0].sqrt(),
        Intrinsic::Sin => args[0].sin(),
        Intrinsic::Cos => args[0].cos(),
        Intrinsic::Tanh => args[0].tanh(),
        Intrinsic::Pow => args[0].powf(args[1]),
        Intrinsic::FAbs => args[0].abs(),
        Intrinsic::Floor => args[0].floor(),
        Intrinsic::Ceil => args[0].ceil(),
        Intrinsic::FMin => args[0].min(args[1]),
        Intrinsic::FMax => args[0].max(args[1]),
        Intrinsic::RandUniform | Intrinsic::RandNormal => unreachable!(),
    }
}
