//! Pluggable execution tiers.
//!
//! The engine runs the same module at four specialization levels, each one a
//! [`ExecTier`] implementation over its own prepared form of the code:
//!
//! | tier                      | prepared form                    | dispatch            |
//! |---------------------------|----------------------------------|---------------------|
//! | [`Tier::Reference`]       | the IR itself                    | IR walk (oracle)    |
//! | [`Tier::Decoded`]         | predecoded arrays                | `match` interpreter |
//! | [`Tier::Fused`]           | predecoded + superinstructions   | `match` interpreter |
//! | [`Tier::Threaded`]        | per-block `(handler, op)` arrays | indirect call       |
//!
//! Which tier a call runs on is a [`TierPolicy`]: `Fixed(tier)` pins every
//! function, `Adaptive { hot_call_threshold }` starts every function at the
//! decoded tier and promotes it to the direct-threaded tier once its call
//! count crosses the threshold (promotions are counted in
//! `EngineStats::tier_promotions`). All tiers are pinned bit-identical to the
//! reference oracle by the registry-driven differential suites.
//!
//! # Adding a tier
//!
//! 1. Define a prepared-code type and a tier struct owning it behind `Arc`
//!    (clones of the engine share prepared code; only mutable state is
//!    copied). Build it in a `prepare` constructor — tiers may build on each
//!    other's forms, e.g. [`ThreadedTier`] threads the fused stream.
//! 2. Implement [`ExecTier`]: `call` executes one function against the
//!    mutable [`EngineCtx`] (memory, statistics, frame pool) and must match
//!    the reference tier bit-for-bit on verifier-clean IR; `code_stats`
//!    reports the static shape of the prepared code.
//! 3. Add a [`Tier`] variant, store the tier struct in `Engine`, route it in
//!    `Engine::call_tier`, and extend the `DISTILL_TIER` parser.
//! 4. Register the differentials: the workload-registry suites in
//!    `tests/interp_differential.rs` iterate every tier, so a new variant is
//!    picked up by adding it to `ALL_TIERS` there.
//!
//! The seam is deliberately wide enough for a native template-JIT tier: its
//! `prepare` would emit machine code per block and `call` would jump into it,
//! with the same `EngineCtx` contract for memory and statistics.

pub mod interp;
pub mod reference;
pub mod threaded;

use crate::decode::DecodedFunction;
use crate::engine::{EngineCtx, ExecError, Value};
use crate::fuse::FuseSummary;
use distill_ir::{FuncId, Module};
use std::fmt;
use std::sync::Arc;

pub use threaded::ThreadedFunction;

/// One execution tier, in increasing order of specialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// The retained IR-walking interpreter — the behavioural oracle.
    Reference,
    /// The predecoded interpreter core (flat per-block arrays, pooled
    /// frames).
    Decoded,
    /// The predecoded form after superinstruction fusion and frame
    /// compaction.
    Fused,
    /// Direct-threaded dispatch over the fused stream: per-block arrays of
    /// `(handler fn-pointer, packed operands)`, one indirect call per op.
    Threaded,
}

impl Tier {
    /// The tier's registry/JSON label (also the `DISTILL_TIER` spelling).
    pub fn label(&self) -> &'static str {
        match self {
            Tier::Reference => "reference",
            Tier::Decoded => "decoded",
            Tier::Fused => "fused",
            Tier::Threaded => "threaded",
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How the engine picks a tier per call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierPolicy {
    /// Every function runs on the given tier.
    Fixed(Tier),
    /// Profile-guided tier-up: every function starts at [`Tier::Decoded`]
    /// and is promoted to [`Tier::Threaded`] once the engine has dispatched
    /// it `hot_call_threshold` times (counted per function across the
    /// engine's lifetime; each promotion bumps
    /// `EngineStats::tier_promotions`).
    Adaptive {
        /// Calls to a function before it is promoted.
        hot_call_threshold: u64,
    },
}

impl TierPolicy {
    /// Default promotion threshold of the `DISTILL_TIER=adaptive` spelling.
    pub const DEFAULT_HOT_CALL_THRESHOLD: u64 = 32;

    /// The adaptive policy with the default threshold.
    pub fn adaptive() -> TierPolicy {
        TierPolicy::Adaptive {
            hot_call_threshold: TierPolicy::DEFAULT_HOT_CALL_THRESHOLD,
        }
    }

    /// Interpret a `DISTILL_TIER` environment value as an explicit policy
    /// request. Accepts the five tier spellings (any casing). Empty and
    /// unrecognized values count as unset, so a typo degrades to the default
    /// rather than silently changing semantics per call site. Returns `None`
    /// when the value requests nothing.
    pub fn from_env_values(tier: Option<&str>) -> Option<TierPolicy> {
        match tier?.trim().to_ascii_lowercase().as_str() {
            "reference" => Some(TierPolicy::Fixed(Tier::Reference)),
            "decoded" => Some(TierPolicy::Fixed(Tier::Decoded)),
            "fused" => Some(TierPolicy::Fixed(Tier::Fused)),
            "threaded" => Some(TierPolicy::Fixed(Tier::Threaded)),
            "adaptive" => Some(TierPolicy::adaptive()),
            _ => None,
        }
    }

    /// Read [`TierPolicy::from_env_values`] from the process environment.
    pub fn from_env() -> Option<TierPolicy> {
        TierPolicy::from_env_values(std::env::var("DISTILL_TIER").ok().as_deref())
    }

    /// Whether this policy needs the fusion pass to run at engine
    /// construction (everything above the decoded tier executes the fused
    /// stream).
    pub(crate) fn wants_fusion(&self) -> bool {
        !matches!(
            self,
            TierPolicy::Fixed(Tier::Reference) | TierPolicy::Fixed(Tier::Decoded)
        )
    }
}

impl fmt::Display for TierPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TierPolicy::Fixed(t) => f.write_str(t.label()),
            TierPolicy::Adaptive { hot_call_threshold } => {
                write!(f, "adaptive({hot_call_threshold})")
            }
        }
    }
}

impl Default for TierPolicy {
    /// The fused interpreter — today's best always-safe default (the
    /// threaded tier is opt-in per policy until it has soaked).
    fn default() -> TierPolicy {
        TierPolicy::Fixed(Tier::Fused)
    }
}

/// Static shape of a tier's prepared code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierCodeStats {
    /// Functions with a prepared body.
    pub functions: usize,
    /// Static instructions across all prepared bodies.
    pub static_ops: u64,
    /// Register-frame slots across all prepared bodies.
    pub frame_slots: u64,
}

/// One execution tier: prepared code plus the dispatch loop that runs it.
///
/// `call` executes a function against the engine's mutable state; every
/// implementation must be bit-identical to [`ReferenceTier`] on
/// verifier-clean IR (enforced by the differential suites). `prepare` builds
/// the tier's prepared form standalone; the engine itself chains the
/// construction (decode → fuse → thread) so tiers share intermediate forms.
pub trait ExecTier {
    /// The tier's stable label (matches [`Tier::label`]).
    fn name(&self) -> &'static str;

    /// Execute `func` with `args` against `ctx`, drawing from `fuel`.
    ///
    /// # Errors
    /// [`ExecError`] on type errors, memory violations, division by zero,
    /// depth or fuel exhaustion.
    fn call(
        &self,
        ctx: &mut EngineCtx,
        func: FuncId,
        args: &[Value],
        fuel: &mut u64,
    ) -> Result<Value, ExecError>;

    /// Static shape of the prepared code.
    fn code_stats(&self) -> TierCodeStats;

    /// Build the tier's prepared code for a module from scratch.
    fn prepare(module: Arc<Module>, global_base: &[usize]) -> Self
    where
        Self: Sized;
}

/// [`Tier::Reference`]: the retained IR-walking oracle.
#[derive(Debug, Clone)]
pub struct ReferenceTier {
    pub(crate) module: Arc<Module>,
}

impl ExecTier for ReferenceTier {
    fn name(&self) -> &'static str {
        Tier::Reference.label()
    }

    fn call(
        &self,
        ctx: &mut EngineCtx,
        func: FuncId,
        args: &[Value],
        fuel: &mut u64,
    ) -> Result<Value, ExecError> {
        reference::call_in(ctx, &self.module, func, args, fuel, 0)
    }

    fn code_stats(&self) -> TierCodeStats {
        let mut stats = TierCodeStats::default();
        for f in &self.module.functions {
            if f.is_declaration {
                continue;
            }
            stats.functions += 1;
            stats.frame_slots += f.values.len() as u64;
            stats.static_ops += f
                .layout
                .iter()
                .map(|b| f.block(*b).insts.len() as u64)
                .sum::<u64>();
        }
        stats
    }

    fn prepare(module: Arc<Module>, _global_base: &[usize]) -> ReferenceTier {
        ReferenceTier { module }
    }
}

fn decoded_code_stats(code: &[DecodedFunction]) -> TierCodeStats {
    let mut stats = TierCodeStats::default();
    for f in code.iter().filter(|f| f.entry.is_some()) {
        stats.functions += 1;
        stats.frame_slots += f.num_values as u64;
        stats.static_ops += f.blocks.iter().map(|b| b.code.len() as u64).sum::<u64>();
    }
    stats
}

/// [`Tier::Decoded`]: the predecoded interpreter core.
#[derive(Debug, Clone)]
pub struct DecodedTier {
    pub(crate) code: Arc<Vec<DecodedFunction>>,
}

impl ExecTier for DecodedTier {
    fn name(&self) -> &'static str {
        Tier::Decoded.label()
    }

    fn call(
        &self,
        ctx: &mut EngineCtx,
        func: FuncId,
        args: &[Value],
        fuel: &mut u64,
    ) -> Result<Value, ExecError> {
        interp::call_in(ctx, &self.code, func.index(), args, fuel, 0)
    }

    fn code_stats(&self) -> TierCodeStats {
        decoded_code_stats(&self.code)
    }

    fn prepare(module: Arc<Module>, global_base: &[usize]) -> DecodedTier {
        DecodedTier {
            code: Arc::new(crate::decode::decode_module(&module, global_base)),
        }
    }
}

/// [`Tier::Fused`]: the superinstruction stream, same dispatch loop as
/// [`DecodedTier`].
#[derive(Debug, Clone)]
pub struct FusedTier {
    pub(crate) code: Arc<Vec<DecodedFunction>>,
    pub(crate) summary: FuseSummary,
}

impl ExecTier for FusedTier {
    fn name(&self) -> &'static str {
        Tier::Fused.label()
    }

    fn call(
        &self,
        ctx: &mut EngineCtx,
        func: FuncId,
        args: &[Value],
        fuel: &mut u64,
    ) -> Result<Value, ExecError> {
        interp::call_in(ctx, &self.code, func.index(), args, fuel, 0)
    }

    fn code_stats(&self) -> TierCodeStats {
        decoded_code_stats(&self.code)
    }

    fn prepare(module: Arc<Module>, global_base: &[usize]) -> FusedTier {
        let decoded = crate::decode::decode_module(&module, global_base);
        let (fused, summary) = crate::fuse::fuse_module(&decoded);
        FusedTier {
            code: Arc::new(fused),
            summary,
        }
    }
}

/// [`Tier::Threaded`]: direct-threaded dispatch over the fused stream.
#[derive(Debug, Clone)]
pub struct ThreadedTier {
    pub(crate) code: Arc<Vec<ThreadedFunction>>,
}

impl ExecTier for ThreadedTier {
    fn name(&self) -> &'static str {
        Tier::Threaded.label()
    }

    fn call(
        &self,
        ctx: &mut EngineCtx,
        func: FuncId,
        args: &[Value],
        fuel: &mut u64,
    ) -> Result<Value, ExecError> {
        threaded::call_in(ctx, &self.code, func.index(), args, fuel, 0)
    }

    fn code_stats(&self) -> TierCodeStats {
        let mut stats = TierCodeStats::default();
        for f in self.code.iter().filter(|f| f.entry.is_some()) {
            stats.functions += 1;
            stats.frame_slots += f.num_values as u64;
            stats.static_ops += f.blocks.iter().map(|b| b.code.len() as u64).sum::<u64>();
        }
        stats
    }

    fn prepare(module: Arc<Module>, global_base: &[usize]) -> ThreadedTier {
        let fused = FusedTier::prepare(module, global_base);
        ThreadedTier {
            code: Arc::new(threaded::thread_module(&fused.code)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_env_values_parse_to_fixed_policies() {
        for (spelling, tier) in [
            ("reference", Tier::Reference),
            ("decoded", Tier::Decoded),
            ("fused", Tier::Fused),
            ("threaded", Tier::Threaded),
            ("THREADED", Tier::Threaded),
            (" fused ", Tier::Fused),
        ] {
            assert_eq!(
                TierPolicy::from_env_values(Some(spelling)),
                Some(TierPolicy::Fixed(tier)),
                "{spelling}"
            );
        }
        assert_eq!(
            TierPolicy::from_env_values(Some("adaptive")),
            Some(TierPolicy::adaptive())
        );
    }

    #[test]
    fn unset_empty_and_unknown_tier_values_request_nothing() {
        assert_eq!(TierPolicy::from_env_values(None), None);
        assert_eq!(TierPolicy::from_env_values(Some("")), None);
        assert_eq!(TierPolicy::from_env_values(Some("bogus")), None);
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(TierPolicy::Fixed(Tier::Threaded).to_string(), "threaded");
        assert_eq!(
            TierPolicy::Adaptive {
                hot_call_threshold: 8
            }
            .to_string(),
            "adaptive(8)"
        );
        assert_eq!(TierPolicy::default(), TierPolicy::Fixed(Tier::Fused));
    }
}
