//! The reference tier: the original pre-predecode IR-walking interpreter,
//! retained verbatim as the behavioural oracle. It deep-clones the callee
//! per call and resolves operands against the value arena on every read —
//! deliberately unoptimized, because every other tier is differentially
//! pinned against it.

use super::interp::{exec_bin, exec_cast, exec_cmp, exec_math, exec_un, exec_rand};
use crate::engine::{EngineCtx, ExecError, Value};
use distill_ir::inst::GepIndex;
use distill_ir::{FuncId, Function, Inst, Module, Terminator, Ty, ValueId, ValueKind};

/// Call a function through the IR walker.
pub(crate) fn call_in(
    ctx: &mut EngineCtx,
    module: &Module,
    func_id: FuncId,
    args: &[Value],
    fuel: &mut u64,
    depth: usize,
) -> Result<Value, ExecError> {
    ctx.stats.calls += 1;
    if depth > 256 {
        return Err(ExecError::DepthExceeded);
    }
    let func: Function = module.function(func_id).clone();
    if func.layout.is_empty() {
        return Err(ExecError::MissingBody(func.name.clone()));
    }
    let frame_base = ctx.memory.len();
    let mut regs: Vec<Option<Value>> = vec![None; func.values.len()];
    for (i, a) in args.iter().enumerate() {
        regs[i] = Some(*a);
    }

    let mut block = func.entry_block().expect("function has entry block");
    let mut prev_block: Option<distill_ir::BlockId> = None;
    let result = 'outer: loop {
        // Phi nodes are evaluated together against the incoming edge.
        let blk = func.block(block);
        let mut phi_updates: Vec<(ValueId, Value)> = Vec::new();
        for &v in &blk.insts {
            if let Some(Inst::Phi { incoming, .. }) = func.as_inst(v) {
                if let Some(pb) = prev_block {
                    let Some((_, src)) = incoming.iter().find(|(b, _)| *b == pb) else {
                        break 'outer Err(ExecError::Type(format!(
                            "phi {v} has no edge from {pb}"
                        )));
                    };
                    let val = operand(&func, &regs, *src)?;
                    phi_updates.push((v, val));
                } else {
                    break 'outer Err(ExecError::Undef(format!(
                        "phi {v} evaluated in entry block"
                    )));
                }
            }
        }
        for (v, val) in phi_updates {
            regs[v.index()] = Some(val);
        }

        for &v in &blk.insts {
            let inst = func.as_inst(v).expect("scheduled value is an instruction");
            if inst.is_phi() {
                continue;
            }
            if *fuel == 0 {
                break 'outer Err(ExecError::FuelExhausted);
            }
            *fuel -= 1;
            ctx.stats.instructions += 1;
            let val = exec_inst(ctx, module, &func, &mut regs, inst, fuel, depth)?;
            regs[v.index()] = Some(val);
        }

        match blk.term.clone().expect("block has terminator") {
            Terminator::Br(next) => {
                prev_block = Some(block);
                block = next;
            }
            Terminator::CondBr {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = operand(&func, &regs, cond)?
                    .as_bool()
                    .ok_or_else(|| ExecError::Type("branch on non-bool".into()))?;
                prev_block = Some(block);
                block = if c { then_blk } else { else_blk };
            }
            Terminator::Ret(val) => {
                let out = match val {
                    Some(v) => operand(&func, &regs, v)?,
                    None => Value::Unit,
                };
                break Ok(out);
            }
            Terminator::Unreachable => {
                break Err(ExecError::Type("reached unreachable".into()));
            }
        }
    };
    // Pop this frame's allocas.
    ctx.truncate_stack(frame_base);
    result
}

fn operand(func: &Function, regs: &[Option<Value>], v: ValueId) -> Result<Value, ExecError> {
    match &func.value(v).kind {
        ValueKind::Const(c) => Ok(match c {
            distill_ir::Constant::F64(x) => Value::F64(*x),
            distill_ir::Constant::F32(x) => Value::F64(*x as f64),
            distill_ir::Constant::I64(x) => Value::I64(*x),
            distill_ir::Constant::Bool(b) => Value::Bool(*b),
            distill_ir::Constant::Undef => return Err(ExecError::Undef(format!("{v}"))),
        }),
        _ => regs[v.index()]
            .ok_or_else(|| ExecError::Undef(format!("value {v} used before definition"))),
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_inst(
    ctx: &mut EngineCtx,
    module: &Module,
    func: &Function,
    regs: &mut [Option<Value>],
    inst: &Inst,
    fuel: &mut u64,
    depth: usize,
) -> Result<Value, ExecError> {
    let op = |regs: &[Option<Value>], v: ValueId| operand(func, regs, v);
    match inst {
        Inst::Bin { op: o, lhs, rhs } => {
            let a = op(regs, *lhs)?;
            let b = op(regs, *rhs)?;
            exec_bin(*o, a, b)
        }
        Inst::Un { op: o, val } => exec_un(*o, op(regs, *val)?),
        Inst::Cmp { pred, lhs, rhs } => {
            let a = op(regs, *lhs)?;
            let b = op(regs, *rhs)?;
            exec_cmp(*pred, a, b)
        }
        Inst::Select {
            cond,
            then_val,
            else_val,
        } => {
            let c = op(regs, *cond)?
                .as_bool()
                .ok_or_else(|| ExecError::Type("select condition".into()))?;
            if c {
                op(regs, *then_val)
            } else {
                op(regs, *else_val)
            }
        }
        Inst::Call { callee, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(op(regs, *a)?);
            }
            call_in(ctx, module, *callee, &vals, fuel, depth + 1)
        }
        Inst::IntrinsicCall { kind, args } => {
            if kind.has_side_effects() {
                let state = op(regs, args[0])?;
                exec_rand(ctx, *kind, state)
            } else {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(
                        op(regs, *a)?
                            .as_f64()
                            .ok_or_else(|| ExecError::Type("intrinsic arg".into()))?,
                    );
                }
                Ok(Value::F64(exec_math(*kind, &vals)))
            }
        }
        Inst::Alloca { ty } => Ok(Value::Ptr(ctx.alloca(ty.slot_count()))),
        Inst::Load { ptr } => {
            ctx.stats.loads += 1;
            let addr = match op(regs, *ptr)? {
                Value::Ptr(p) => p,
                other => return Err(ExecError::Type(format!("load from non-pointer {other:?}"))),
            };
            ctx.load_slot(addr)
        }
        Inst::Store { ptr, value } => {
            ctx.stats.stores += 1;
            let addr = match op(regs, *ptr)? {
                Value::Ptr(p) => p,
                other => return Err(ExecError::Type(format!("store to non-pointer {other:?}"))),
            };
            let v = op(regs, *value)?;
            ctx.store_slot(addr, v)?;
            Ok(Value::Unit)
        }
        Inst::Gep { base, indices } => {
            let addr = match op(regs, *base)? {
                Value::Ptr(p) => p,
                other => return Err(ExecError::Type(format!("gep on non-pointer {other:?}"))),
            };
            let mut ty = func.ty(*base).pointee().clone();
            let mut offset = 0usize;
            for idx in indices {
                match (&ty, idx) {
                    (Ty::Array(elem, _), GepIndex::Const(i)) => {
                        offset += i * elem.slot_count();
                        ty = (**elem).clone();
                    }
                    (Ty::Array(elem, _), GepIndex::Dyn(v)) => {
                        let i = op(regs, *v)?
                            .as_i64()
                            .ok_or_else(|| ExecError::Type("gep index".into()))?;
                        if i < 0 {
                            return Err(ExecError::OutOfBounds {
                                addr,
                                size: ctx.memory.len(),
                            });
                        }
                        offset += i as usize * elem.slot_count();
                        ty = (**elem).clone();
                    }
                    // Out-of-range field indices are the same typed error
                    // the decoded path's poison form raises (the one
                    // deviation from the pre-predecode code, which panicked
                    // here).
                    (Ty::Struct(fields), GepIndex::Const(i)) if *i < fields.len() => {
                        offset += ty.field_offset(*i);
                        ty = fields[*i].clone();
                    }
                    _ => return Err(ExecError::Type("invalid gep".into())),
                }
            }
            Ok(Value::Ptr(addr + offset))
        }
        Inst::Phi { .. } => unreachable!("phis handled at block entry"),
        Inst::Cast { kind, val, .. } => exec_cast(*kind, op(regs, *val)?),
        Inst::GlobalAddr { global } => Ok(Value::Ptr(ctx.global_base[global.index()])),
    }
}
