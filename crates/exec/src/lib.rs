//! `distill-exec` — execution engines for compiled Distill IR.
//!
//! The paper executes the generated LLVM IR natively (JIT on the host CPU,
//! NVPTX on the GPU). Without LLVM we execute the same IR with a fast
//! register-based engine over flat, statically laid out memory — the point
//! of comparison with the dynamic baseline is preserved: no boxing, no
//! string-keyed lookups, no interpreter/scheduler ping-pong, whole-model
//! optimization applied before execution.
//!
//! Three backends:
//!
//! * [`engine::Engine`] — single-thread execution of any IR function over
//!   the module's globals, behind four pluggable specialization tiers
//!   (see [`backend`]): the IR-walking reference oracle, the predecoded
//!   interpreter, the fused superinstruction stream, and direct-threaded
//!   dispatch — selected per call by a [`TierPolicy`].
//! * [`mcpu`] — the multicore grid-search backend of §3.6: the evaluation
//!   space is split across OS threads, each thread works on its own copy of
//!   the read-write state (here: its own copy of the engine memory), and the
//!   per-thread argmin reservoirs are merged at the end.
//! * [`gpu`] — a simulated SIMT GPU (§6.3, Fig. 6): it executes the same
//!   kernel per grid point and reports a modelled execution time from an
//!   occupancy/register/local-memory cost model calibrated to the paper's
//!   GTX 1060 observations (see DESIGN.md for the substitution rationale).

pub mod backend;
pub mod decode;
pub mod engine;
pub mod fuse;
pub mod gpu;
pub mod mcpu;
pub(crate) mod probes;
pub mod shard;

pub use backend::{ExecTier, Tier, TierCodeStats, TierPolicy};
pub use engine::{Engine, EngineCtx, EngineStats, ExecConfig, ExecError, Value};
pub use fuse::FuseSummary;
pub use gpu::{GpuConfig, GpuRunReport};
pub use mcpu::{
    parallel_argmin, parallel_argmin_static, serial_argmin, EvalContext, ParallelResult,
};
pub use shard::{panic_message, ChunkQueue, GrabCount};
