//! Superinstruction fusion over the predecoded form — the peephole layer
//! between [`crate::decode`] and the execution loop.
//!
//! PR 3's predecode pass removed per-call IR walking, but
//! [`Engine::call`](crate::engine::Engine::call) still pays one dispatch —
//! a fuel check, a statistics bump, one big match, operand resolution, a
//! frame write — per *decoded instruction*. For the
//! compiled cognitive-model kernels that dispatch tax dominates: the hot
//! blocks are long chains of `global_addr → gep → load/store` addressing,
//! compare-and-branch loop headers and immediate-operand arithmetic, each
//! step tiny compared to its dispatch envelope.
//!
//! [`fuse_module`] rewrites each [`DecodedBlock`]'s flat instruction array
//! so the common chains execute as one dispatch:
//!
//! * **absolute addressing** — `global_addr` results and constant GEPs over
//!   them are folded to `Operand::Imm(Value::Ptr(_))` at fuse time
//!   (function-level constant propagation; the address of a global never
//!   depends on runtime state), the now-dead address ops are dropped, and
//!   loads/stores through a constant pointer become [`DecodedInst::LoadAbs`]
//!   / [`DecodedInst::StoreAbs`];
//! * **GEP + memory access** — a single-use dynamic `gep` feeding a `load`
//!   or `store` fuses into [`DecodedInst::GepLoad`] /
//!   [`DecodedInst::GepStore`];
//! * **arithmetic** — binops with one immediate operand specialize to
//!   [`DecodedInst::BinRI`] / [`DecodedInst::BinIR`]; a single-use `load`
//!   feeding a binop fuses to [`DecodedInst::LoadBin`], a single-use binop
//!   feeding a `store` to [`DecodedInst::BinStore`];
//! * **compare + branch** — a single-use `cmp` that is the block's last
//!   instruction and feeds its conditional terminator fuses into the
//!   terminator itself ([`DecodedTerm::CmpBr`]); when the fused compare is
//!   in turn fed by a block-final immediate-specialized binop (the
//!   `i += 1; i < n` shape of every counted loop), the chain collapses
//!   further into [`DecodedTerm::BinRICmpBr`] — increment, compare and
//!   branch in one dispatch, with the increment's register still written
//!   for the phis that read it.
//!
//! After fusion a **per-block register-liveness pass** compacts the frame:
//! the decoded frame has one slot per SSA *value* (constants and dead
//! values included), while the fused frame keeps dedicated slots only for
//! parameters, phi registers and values live across block boundaries, and
//! lets block-local temporaries share slots via a linear scan. Pooled
//! frames in [`crate::engine`] shrink accordingly and stay cache-resident.
//!
//! # Semantics
//!
//! For verifier-clean IR (every use dominated by its definition — true of
//! everything codegen emits) the fused form is **bit-identical** to the
//! decoded form in results, memory image and error *variants*; the
//! registry-driven differential suite enforces this for every workload
//! family. Accepted, documented deviations: fused `Undef` messages print
//! compacted slot numbers rather than value ids;
//! [`EngineStats::instructions`](crate::engine::EngineStats) counts
//! *dispatches*, so a fused run reports fewer instructions for the same
//! work (the `fused_ops` counter says how many dispatches were
//! superinstructions); and while pair superinstructions and fused
//! terminators charge the same fuel as their decoded expansion, folded
//! addressing chains genuinely execute fewer instructions, so a run
//! brushing its `fuel_limit` can exhaust fuel at a different point than
//! the decoded path would.

use crate::decode::{
    DecodedBlock, DecodedFunction, DecodedInst, DecodedOp, DecodedTerm, Operand, PhiEdge,
};
use crate::engine::Value;
use std::collections::HashMap;

/// Static accounting of what fusion did to a module, reported by
/// [`Engine::fuse_summary`](crate::engine::Engine::fuse_summary) and the
/// `figures --fused` benchmark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuseSummary {
    /// Decoded instructions before fusion (sum over all functions).
    pub decoded_ops: u64,
    /// Instructions after fusion (each superinstruction counts once).
    pub fused_ops: u64,
    /// Ops that absorbed at least one neighbouring instruction or a folded
    /// addressing chain (fused terminators included).
    pub superinstructions: u64,
    /// Frame slots before compaction (sum of per-function register files).
    pub decoded_frame_slots: u64,
    /// Frame slots after liveness compaction.
    pub fused_frame_slots: u64,
}

/// Fuse every function of a decoded module. Returns the rewritten functions
/// and the before/after accounting.
pub fn fuse_module(decoded: &[DecodedFunction]) -> (Vec<DecodedFunction>, FuseSummary) {
    let mut summary = FuseSummary::default();
    let fused = decoded
        .iter()
        .map(|f| fuse_function(f, &mut summary))
        .collect();
    (fused, summary)
}

/// Visit every operand an instruction reads, in evaluation order.
fn visit_operands<'a>(inst: &'a DecodedInst, f: &mut impl FnMut(&'a Operand)) {
    match inst {
        DecodedInst::Bin { lhs, rhs, .. } | DecodedInst::Cmp { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        DecodedInst::Un { val, .. } | DecodedInst::Cast { val, .. } => f(val),
        DecodedInst::Select {
            cond,
            then_val,
            else_val,
        } => {
            f(cond);
            f(then_val);
            f(else_val);
        }
        DecodedInst::Call { args, .. } | DecodedInst::MathCall { args, .. } => {
            for a in args.iter() {
                f(a);
            }
        }
        DecodedInst::RandCall { state, .. } => f(state),
        DecodedInst::Alloca { .. }
        | DecodedInst::GlobalAddr { .. }
        | DecodedInst::LoadAbs { .. } => {}
        DecodedInst::Load { ptr } => f(ptr),
        DecodedInst::Store { ptr, value } => {
            f(ptr);
            f(value);
        }
        DecodedInst::Gep {
            base, dyn_steps, ..
        } => {
            f(base);
            for (idx, _) in dyn_steps.iter() {
                f(idx);
            }
        }
        DecodedInst::InvalidGep { base } => f(base),
        DecodedInst::StoreAbs { value, .. } => f(value),
        DecodedInst::GepLoad {
            base, dyn_steps, ..
        } => {
            f(base);
            for (idx, _) in dyn_steps.iter() {
                f(idx);
            }
        }
        DecodedInst::GepStore {
            base,
            dyn_steps,
            value,
            ..
        } => {
            f(base);
            for (idx, _) in dyn_steps.iter() {
                f(idx);
            }
            f(value);
        }
        DecodedInst::BinRI { .. } | DecodedInst::BinIR { .. } => {}
        DecodedInst::LoadBin { ptr, other, .. } => {
            f(ptr);
            f(other);
        }
        DecodedInst::BinStore { lhs, rhs, ptr, .. } => {
            f(lhs);
            f(rhs);
            f(ptr);
        }
    }
}

/// Mutably visit every operand an instruction reads.
fn map_operands(inst: &mut DecodedInst, f: &mut impl FnMut(&mut Operand)) {
    match inst {
        DecodedInst::Bin { lhs, rhs, .. } | DecodedInst::Cmp { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        DecodedInst::Un { val, .. } | DecodedInst::Cast { val, .. } => f(val),
        DecodedInst::Select {
            cond,
            then_val,
            else_val,
        } => {
            f(cond);
            f(then_val);
            f(else_val);
        }
        DecodedInst::Call { args, .. } | DecodedInst::MathCall { args, .. } => {
            for a in args.iter_mut() {
                f(a);
            }
        }
        DecodedInst::RandCall { state, .. } => f(state),
        DecodedInst::Alloca { .. }
        | DecodedInst::GlobalAddr { .. }
        | DecodedInst::LoadAbs { .. } => {}
        DecodedInst::Load { ptr } => f(ptr),
        DecodedInst::Store { ptr, value } => {
            f(ptr);
            f(value);
        }
        DecodedInst::Gep {
            base, dyn_steps, ..
        } => {
            f(base);
            for (idx, _) in dyn_steps.iter_mut() {
                f(idx);
            }
        }
        DecodedInst::InvalidGep { base } => f(base),
        DecodedInst::StoreAbs { value, .. } => f(value),
        DecodedInst::GepLoad {
            base, dyn_steps, ..
        } => {
            f(base);
            for (idx, _) in dyn_steps.iter_mut() {
                f(idx);
            }
        }
        DecodedInst::GepStore {
            base,
            dyn_steps,
            value,
            ..
        } => {
            f(base);
            for (idx, _) in dyn_steps.iter_mut() {
                f(idx);
            }
            f(value);
        }
        DecodedInst::BinRI { .. } | DecodedInst::BinIR { .. } => {}
        DecodedInst::LoadBin { ptr, other, .. } => {
            f(ptr);
            f(other);
        }
        DecodedInst::BinStore { lhs, rhs, ptr, .. } => {
            f(lhs);
            f(rhs);
            f(ptr);
        }
    }
}

/// Visit every operand a terminator reads.
fn visit_term_operands<'a>(term: &'a DecodedTerm, f: &mut impl FnMut(&'a Operand)) {
    match term {
        DecodedTerm::CondBr { cond, .. } => f(cond),
        DecodedTerm::Ret(Some(v)) => f(v),
        DecodedTerm::CmpBr { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        DecodedTerm::BinRICmpBr { other, .. } => f(other),
        _ => {}
    }
}

fn map_term_operands(term: &mut DecodedTerm, f: &mut impl FnMut(&mut Operand)) {
    match term {
        DecodedTerm::CondBr { cond, .. } => f(cond),
        DecodedTerm::Ret(Some(v)) => f(v),
        DecodedTerm::CmpBr { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        DecodedTerm::BinRICmpBr { other, .. } => f(other),
        _ => {}
    }
}

/// Registers a terminator reads, including the bare `src` register field of
/// `BinRICmpBr` (the register-level analogue of [`inst_read_regs`] — the
/// operand visitors above by design do not see bare `u32` fields).
fn term_read_regs(term: &DecodedTerm, out: &mut Vec<u32>) {
    out.clear();
    visit_term_operands(term, &mut |o| {
        if let Operand::Reg(r) = o {
            out.push(*r);
        }
    });
    if let DecodedTerm::BinRICmpBr { src, .. } = term {
        out.push(*src);
    }
}

/// Successor block indices of a terminator.
fn successors(term: &DecodedTerm) -> Vec<u32> {
    match term {
        DecodedTerm::Br(b) => vec![*b],
        DecodedTerm::CondBr {
            then_blk, else_blk, ..
        }
        | DecodedTerm::CmpBr {
            then_blk, else_blk, ..
        }
        | DecodedTerm::BinRICmpBr {
            then_blk, else_blk, ..
        } => vec![*then_blk, *else_blk],
        _ => Vec::new(),
    }
}

/// Count how many times each register is read anywhere in the function
/// (instruction operands, phi-copy sources, terminator operands).
fn use_counts(blocks: &[DecodedBlock], num_values: usize) -> Vec<u32> {
    let mut counts = vec![0u32; num_values];
    let mut regs = Vec::new();
    for blk in blocks {
        for op in blk.code.iter() {
            inst_read_regs(&op.inst, &mut regs);
            for &r in &regs {
                counts[r as usize] += 1;
            }
        }
        for (_, edge) in blk.phi_edges.iter() {
            if let PhiEdge::Copies(copies) = edge {
                for (_, src) in copies.iter() {
                    if let Operand::Reg(r) = src {
                        counts[*r as usize] += 1;
                    }
                }
            }
        }
        term_read_regs(&blk.term, &mut regs);
        for &r in &regs {
            counts[r as usize] += 1;
        }
    }
    counts
}

/// An instruction whose removal (when its result is unused) cannot change
/// behaviour: no side effects and no possible runtime error.
fn pure_and_infallible(inst: &DecodedInst) -> bool {
    match inst {
        DecodedInst::GlobalAddr { .. } => true,
        // A GEP over a constant base with a fully folded index path is a
        // compile-time address; with dynamic steps it can still fail on a
        // negative index, so it must stay.
        DecodedInst::Gep {
            base: Operand::Imm(Value::Ptr(_)),
            dyn_steps,
            ..
        } => dyn_steps.is_empty(),
        _ => false,
    }
}

fn fuse_function(df: &DecodedFunction, summary: &mut FuseSummary) -> DecodedFunction {
    let num_values = df.num_values as usize;
    let mut blocks: Vec<DecodedBlock> = df.blocks.to_vec();
    summary.decoded_ops += blocks.iter().map(|b| b.code.len() as u64).sum::<u64>();
    summary.decoded_frame_slots += df.num_values as u64;

    // -- Pass 1: absolute-address constant propagation ----------------------
    // `global_addr` produces the same Ptr on every execution, and a constant
    // GEP over a constant pointer folds to another constant pointer. Iterate
    // to a fixpoint so chains (global_addr → field gep → element gep) fold
    // completely regardless of block order (LICM hoists the roots into
    // dominating blocks).
    let mut abs: HashMap<u32, usize> = HashMap::new();
    loop {
        let mut changed = false;
        for blk in &blocks {
            for op in blk.code.iter() {
                let addr = match &op.inst {
                    DecodedInst::GlobalAddr { addr } => Some(*addr),
                    DecodedInst::Gep {
                        base: Operand::Imm(Value::Ptr(p)),
                        const_offset,
                        dyn_steps,
                    } if dyn_steps.is_empty() => Some(p + *const_offset as usize),
                    _ => None,
                };
                if let Some(a) = addr {
                    if abs.insert(op.dst, a) != Some(a) {
                        changed = true;
                    }
                }
            }
        }
        let mut rewrite = |o: &mut Operand| {
            if let Operand::Reg(r) = o {
                if let Some(a) = abs.get(r) {
                    *o = Operand::Imm(Value::Ptr(*a));
                    changed = true;
                }
            }
        };
        for blk in &mut blocks {
            for op in blk.code.iter_mut() {
                map_operands(&mut op.inst, &mut rewrite);
            }
            // Phi copies and terminators read registers too; a hoisted
            // global_addr can legitimately flow into either.
            let mut edges = std::mem::take(&mut blk.phi_edges).into_vec();
            for (_, edge) in &mut edges {
                if let PhiEdge::Copies(copies) = edge {
                    let mut c = std::mem::take(copies).into_vec();
                    for (_, src) in &mut c {
                        rewrite(src);
                    }
                    *copies = c.into();
                }
            }
            blk.phi_edges = edges.into();
            map_term_operands(&mut blk.term, &mut rewrite);
        }
        if !changed {
            break;
        }
    }

    // -- Pass 2: drop dead address computations -----------------------------
    // Propagation rewrote every read of a constant-address register into an
    // immediate, so the producing ops are typically unread; removing the
    // pure, infallible ones keeps the executed stream dense. Loop because a
    // dropped GEP can make the `global_addr` feeding it dead in turn.
    loop {
        let counts = use_counts(&blocks, num_values);
        let mut dropped = false;
        for blk in &mut blocks {
            let before = blk.code.len();
            let kept: Vec<DecodedOp> = blk
                .code
                .iter()
                .filter(|op| !(counts[op.dst as usize] == 0 && pure_and_infallible(&op.inst)))
                .cloned()
                .collect();
            if kept.len() != before {
                dropped = true;
                blk.code = kept.into();
            }
        }
        if !dropped {
            break;
        }
    }

    // -- Pass 3: peephole pair fusion + operand specialization --------------
    let counts = use_counts(&blocks, num_values);
    let single_use = |dst: u32| counts[dst as usize] == 1;
    let reads_reg = |op: &DecodedInst, reg: u32| {
        let mut found = false;
        visit_operands(op, &mut |o| {
            if *o == Operand::Reg(reg) {
                found = true;
            }
        });
        found
    };
    for blk in &mut blocks {
        let code = std::mem::take(&mut blk.code).into_vec();
        let mut out: Vec<DecodedOp> = Vec::with_capacity(code.len());
        let mut i = 0;
        while i < code.len() {
            let cur = &code[i];
            if i + 1 < code.len() && single_use(cur.dst) {
                let next = &code[i + 1];
                let fused = match (&cur.inst, &next.inst) {
                    (
                        DecodedInst::Gep {
                            base,
                            const_offset,
                            dyn_steps,
                        },
                        DecodedInst::Load { ptr },
                    ) if *ptr == Operand::Reg(cur.dst) => Some(DecodedInst::GepLoad {
                        base: *base,
                        const_offset: *const_offset,
                        dyn_steps: dyn_steps.clone(),
                    }),
                    (
                        DecodedInst::Gep {
                            base,
                            const_offset,
                            dyn_steps,
                        },
                        DecodedInst::Store { ptr, value },
                    ) if *ptr == Operand::Reg(cur.dst) && *value != Operand::Reg(cur.dst) => {
                        Some(DecodedInst::GepStore {
                            base: *base,
                            const_offset: *const_offset,
                            dyn_steps: dyn_steps.clone(),
                            value: *value,
                        })
                    }
                    (DecodedInst::Load { ptr }, DecodedInst::Bin { op, lhs, rhs })
                        if *lhs == Operand::Reg(cur.dst) || *rhs == Operand::Reg(cur.dst) =>
                    {
                        // Single use guarantees exactly one side is the load.
                        let load_lhs = *lhs == Operand::Reg(cur.dst);
                        Some(DecodedInst::LoadBin {
                            op: *op,
                            ptr: *ptr,
                            other: if load_lhs { *rhs } else { *lhs },
                            load_lhs,
                        })
                    }
                    (DecodedInst::Bin { op, lhs, rhs }, DecodedInst::Store { ptr, value })
                        if *value == Operand::Reg(cur.dst) && *ptr != Operand::Reg(cur.dst) =>
                    {
                        Some(DecodedInst::BinStore {
                            op: *op,
                            lhs: *lhs,
                            rhs: *rhs,
                            ptr: *ptr,
                        })
                    }
                    _ => None,
                };
                if let Some(inst) = fused {
                    out.push(DecodedOp {
                        dst: next.dst,
                        inst,
                    });
                    summary.superinstructions += 1;
                    i += 2;
                    continue;
                }
            }
            // Single-instruction specializations.
            let spec = match &cur.inst {
                DecodedInst::Load {
                    ptr: Operand::Imm(Value::Ptr(p)),
                } => {
                    summary.superinstructions += 1;
                    Some(DecodedInst::LoadAbs { addr: *p })
                }
                DecodedInst::Store {
                    ptr: Operand::Imm(Value::Ptr(p)),
                    value,
                } => {
                    summary.superinstructions += 1;
                    Some(DecodedInst::StoreAbs {
                        addr: *p,
                        value: *value,
                    })
                }
                DecodedInst::Bin {
                    op,
                    lhs: Operand::Reg(r),
                    rhs: Operand::Imm(v),
                } => Some(DecodedInst::BinRI {
                    op: *op,
                    reg: *r,
                    imm: *v,
                }),
                DecodedInst::Bin {
                    op,
                    lhs: Operand::Imm(v),
                    rhs: Operand::Reg(r),
                } => Some(DecodedInst::BinIR {
                    op: *op,
                    imm: *v,
                    reg: *r,
                }),
                _ => None,
            };
            out.push(DecodedOp {
                dst: cur.dst,
                inst: spec.unwrap_or_else(|| cur.inst.clone()),
            });
            i += 1;
        }

        // -- Pass 4: fuse a trailing cmp into the conditional terminator ----
        if let DecodedTerm::CondBr {
            cond: Operand::Reg(c),
            then_blk,
            else_blk,
        } = blk.term
        {
            if let Some(last) = out.last() {
                if last.dst == c && single_use(c) && !reads_reg(&last.inst, c) {
                    if let DecodedInst::Cmp { pred, lhs, rhs } = last.inst {
                        blk.term = DecodedTerm::CmpBr {
                            pred,
                            lhs,
                            rhs,
                            then_blk,
                            else_blk,
                        };
                        out.pop();
                        summary.superinstructions += 1;
                    }
                }
            }
        }

        // -- Pass 4b: chain a block-final immediate-specialized binop into
        // the fused compare it feeds (`i += 1; i < n; br` — the back edge of
        // every counted loop — becomes one dispatch). The terminator keeps
        // writing the binop's destination register, so no use-count
        // restriction applies: the loop phis read the same register they
        // always did. Execution order inside the terminator matches the
        // unfused sequence (read src, write dst, read the other compare
        // operand), so `src == dst` and `other == dst` both stay exact.
        if let DecodedTerm::CmpBr {
            pred,
            lhs,
            rhs,
            then_blk,
            else_blk,
        } = blk.term
        {
            if let Some(last) = out.last() {
                if let DecodedInst::BinRI { op, reg, imm } = last.inst {
                    let bin_is_lhs = lhs == Operand::Reg(last.dst);
                    if bin_is_lhs || rhs == Operand::Reg(last.dst) {
                        blk.term = DecodedTerm::BinRICmpBr {
                            op,
                            src: reg,
                            imm,
                            dst: last.dst,
                            pred,
                            other: if bin_is_lhs { rhs } else { lhs },
                            bin_is_lhs,
                            then_blk,
                            else_blk,
                        };
                        out.pop();
                        summary.superinstructions += 1;
                    }
                }
            }
        }
        blk.code = out.into();
    }

    summary.fused_ops += blocks.iter().map(|b| b.code.len() as u64).sum::<u64>();

    // -- Pass 5: liveness-based frame compaction ----------------------------
    let num_slots = compact_frame(&mut blocks, num_values, df.num_params as usize);
    summary.fused_frame_slots += num_slots as u64;

    DecodedFunction {
        name: df.name.clone(),
        entry: df.entry,
        num_values: num_slots as u32,
        num_params: df.num_params,
        blocks: blocks.into(),
    }
}

/// Registers an instruction reads, including the specialized register fields
/// of `BinRI`/`BinIR`. With [`map_regs`], this is the canonical
/// register-level view of an instruction: passes that reason about frame
/// registers must use these two rather than the operand visitors (which by
/// design do not see the bare `u32` register fields).
fn inst_read_regs(inst: &DecodedInst, out: &mut Vec<u32>) {
    out.clear();
    visit_operands(inst, &mut |o| {
        if let Operand::Reg(r) = o {
            out.push(*r);
        }
    });
    match inst {
        DecodedInst::BinRI { reg, .. } | DecodedInst::BinIR { reg, .. } => out.push(*reg),
        _ => {}
    }
}

/// Mutably visit every frame register an instruction reads — `Operand::Reg`
/// operands *and* the bare register fields of `BinRI`/`BinIR` — so a
/// register-renumbering pass cannot silently miss the specialized forms.
fn map_regs(inst: &mut DecodedInst, f: &mut impl FnMut(&mut u32)) {
    map_operands(inst, &mut |o| {
        if let Operand::Reg(r) = o {
            f(r);
        }
    });
    match inst {
        DecodedInst::BinRI { reg, .. } | DecodedInst::BinIR { reg, .. } => f(reg),
        _ => {}
    }
}

/// Compute per-block liveness over frame registers and renumber them into a
/// compact slot space: parameters keep slots `0..num_params`, registers live
/// across any block boundary (plus every phi register) get dedicated slots,
/// and block-local temporaries share slots via a per-block linear scan.
/// Returns the compacted frame size and rewrites every register reference in
/// `blocks` in place.
fn compact_frame(blocks: &mut [DecodedBlock], num_values: usize, num_params: usize) -> usize {
    let words = num_values.div_ceil(64).max(1);
    let idx = |r: u32| (r as usize / 64, 1u64 << (r as usize % 64));
    let mut scratch = Vec::new();

    // Upward-exposed uses and definitions per block. Phi destinations are
    // definitions at block entry; phi *sources* are edge-specific and belong
    // to the predecessor's live-out, handled in the dataflow below.
    let nblocks = blocks.len();
    let mut ue = vec![vec![0u64; words]; nblocks];
    let mut def = vec![vec![0u64; words]; nblocks];
    let mut phi_regs = vec![0u64; words];
    let mut term_defs = vec![0u64; words];
    for (b, blk) in blocks.iter().enumerate() {
        for (_, edge) in blk.phi_edges.iter() {
            if let PhiEdge::Copies(copies) = edge {
                for (dst, src) in copies.iter() {
                    let (w, m) = idx(*dst);
                    def[b][w] |= m;
                    phi_regs[w] |= m;
                    if let Operand::Reg(r) = src {
                        let (w, m) = idx(*r);
                        phi_regs[w] |= m;
                    }
                }
            }
        }
        for op in blk.code.iter() {
            inst_read_regs(&op.inst, &mut scratch);
            for &r in &scratch {
                let (w, m) = idx(r);
                if def[b][w] & m == 0 {
                    ue[b][w] |= m;
                }
            }
            let (w, m) = idx(op.dst);
            def[b][w] |= m;
        }
        // Terminator accesses in execution order: `BinRICmpBr` reads its bare
        // `src` register, *then* writes `dst`, then reads the other compare
        // operand — so comparing against the just-written register is not an
        // upward-exposed use. The written register is forced into the global
        // slot set below: it may never be read (the loop phis can bypass it),
        // and a local that is only ever defined would otherwise stay
        // unmapped.
        if let DecodedTerm::BinRICmpBr { src, dst, .. } = &blk.term {
            let (w, m) = idx(*src);
            if def[b][w] & m == 0 {
                ue[b][w] |= m;
            }
            let (w, m) = idx(*dst);
            def[b][w] |= m;
            term_defs[w] |= m;
        }
        visit_term_operands(&blk.term, &mut |o| {
            if let Operand::Reg(r) = o {
                let (w, m) = idx(*r);
                if def[b][w] & m == 0 {
                    ue[b][w] |= m;
                }
            }
        });
    }

    // Backwards dataflow to a fixpoint:
    //   live_out[b] = ∪_{s ∈ succ(b)} (live_in[s] ∪ phi_sources(s, edge b))
    //   live_in[b]  = ue[b] ∪ (live_out[b] − def[b])
    let succs: Vec<Vec<u32>> = blocks.iter().map(|b| successors(&b.term)).collect();
    let mut phi_src_on_edge: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
    for (s, blk) in blocks.iter().enumerate() {
        for (pred, edge) in blk.phi_edges.iter() {
            if let PhiEdge::Copies(copies) = edge {
                let regs: Vec<u32> = copies
                    .iter()
                    .filter_map(|(_, src)| match src {
                        Operand::Reg(r) => Some(*r),
                        _ => None,
                    })
                    .collect();
                if !regs.is_empty() {
                    phi_src_on_edge.insert((*pred, s as u32), regs);
                }
            }
        }
    }
    let mut live_in = vec![vec![0u64; words]; nblocks];
    let mut live_out = vec![vec![0u64; words]; nblocks];
    loop {
        let mut changed = false;
        for b in (0..nblocks).rev() {
            let mut out = vec![0u64; words];
            for &s in &succs[b] {
                let s = s as usize;
                for w in 0..words {
                    out[w] |= live_in[s][w];
                }
                if let Some(regs) = phi_src_on_edge.get(&(b as u32, s as u32)) {
                    for &r in regs {
                        let (w, m) = idx(r);
                        out[w] |= m;
                    }
                }
            }
            if out != live_out[b] {
                live_out[b] = out;
                changed = true;
            }
            let mut inn = vec![0u64; words];
            for w in 0..words {
                inn[w] = ue[b][w] | (live_out[b][w] & !def[b][w]);
            }
            if inn != live_in[b] {
                live_in[b] = inn;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Global registers: parameters, phi registers, anything live into a
    // block. Everything else is block-local and may share slots.
    let mut global = vec![0u64; words];
    for (w, g) in global.iter_mut().enumerate() {
        *g |= phi_regs[w] | term_defs[w];
        for b in live_in.iter().take(nblocks) {
            *g |= b[w];
        }
    }
    const UNMAPPED: u32 = u32::MAX;
    let mut slot = vec![UNMAPPED; num_values];
    let mut next = 0u32;
    for s in slot.iter_mut().take(num_params.min(num_values)) {
        *s = next;
        next += 1;
    }
    for (r, s) in slot.iter_mut().enumerate() {
        let (w, m) = idx(r as u32);
        if global[w] & m != 0 && *s == UNMAPPED {
            *s = next;
            next += 1;
        }
    }
    let global_count = next;

    // Per-block linear scan for the locals. A local is always defined before
    // any use within its block (anything else would be upward-exposed and
    // therefore global), so slots free up at each register's last in-block
    // use and can be handed to the next definition.
    let mut max_slots = global_count;
    for blk in blocks.iter_mut() {
        let len = blk.code.len();
        let mut last_use: HashMap<u32, usize> = HashMap::new();
        for (i, op) in blk.code.iter().enumerate() {
            inst_read_regs(&op.inst, &mut scratch);
            for &r in &scratch {
                if slot[r as usize] == UNMAPPED || last_use.contains_key(&r) {
                    last_use.insert(r, i);
                }
            }
        }
        term_read_regs(&blk.term, &mut scratch);
        for &r in &scratch {
            last_use.insert(r, len);
        }
        let mut free: Vec<u32> = Vec::new();
        let mut local_next = global_count;
        for (i, op) in blk.code.iter().enumerate() {
            inst_read_regs(&op.inst, &mut scratch);
            scratch.sort_unstable();
            scratch.dedup();
            for &r in &scratch {
                let (w, m) = idx(r);
                if global[w] & m == 0 && last_use.get(&r) == Some(&i) {
                    // Final in-block read of a local: its slot is reusable by
                    // the very next definition (the executor reads all
                    // operands before writing any destination).
                    if slot[r as usize] != UNMAPPED {
                        free.push(slot[r as usize]);
                    }
                }
            }
            let d = op.dst as usize;
            let (w, m) = idx(op.dst);
            if global[w] & m == 0 {
                slot[d] = free.pop().unwrap_or_else(|| {
                    local_next += 1;
                    local_next - 1
                });
                if !last_use.contains_key(&op.dst) {
                    // Result never read: the slot is written and immediately
                    // reusable.
                    free.push(slot[d]);
                }
            }
        }
        max_slots = max_slots.max(local_next);
    }

    // Rewrite every register reference through the slot map. References to
    // registers that are never defined anywhere (malformed dead-block code)
    // were collected as upward-exposed, so the map covers them.
    let remap = |r: u32| -> u32 {
        debug_assert_ne!(slot[r as usize], UNMAPPED, "register {r} left unmapped");
        slot[r as usize]
    };
    for blk in blocks.iter_mut() {
        for op in blk.code.iter_mut() {
            op.dst = remap(op.dst);
            map_regs(&mut op.inst, &mut |r| *r = remap(*r));
        }
        let mut edges = std::mem::take(&mut blk.phi_edges).into_vec();
        for (_, edge) in &mut edges {
            if let PhiEdge::Copies(copies) = edge {
                let mut c = std::mem::take(copies).into_vec();
                for (dst, src) in &mut c {
                    *dst = remap(*dst);
                    if let Operand::Reg(r) = src {
                        *src = Operand::Reg(remap(*r));
                    }
                }
                *copies = c.into();
            }
        }
        blk.phi_edges = edges.into();
        if let DecodedTerm::BinRICmpBr { src, dst, .. } = &mut blk.term {
            *src = remap(*src);
            *dst = remap(*dst);
        }
        map_term_operands(&mut blk.term, &mut |o| {
            if let Operand::Reg(r) = o {
                *o = Operand::Reg(remap(*r));
            }
        });
    }
    max_slots as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode_function;
    use distill_ir::{BinOp, CmpPred, FunctionBuilder, Module, Ty};

    fn fuse_one(m: &Module, fid: distill_ir::FuncId, global_base: &[usize]) -> (DecodedFunction, FuseSummary) {
        let d = decode_function(m.function(fid), global_base);
        let mut s = FuseSummary::default();
        let f = fuse_function(&d, &mut s);
        (f, s)
    }

    #[test]
    fn global_addressing_chains_fold_to_absolute_ops() {
        // global_addr → const gep → load / store becomes LoadAbs / StoreAbs
        // and the addressing ops disappear.
        let mut m = Module::new("m");
        let g = m.add_zeroed_global("buf", Ty::array(Ty::F64, 4), true);
        let tys: Vec<Ty> = m.globals.iter().map(|g| g.ty.clone()).collect();
        let fid = m.declare_function("bump", vec![Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f).with_global_types(tys);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let inc = b.param(0);
            let base = b.global_addr(g);
            let p = b.const_elem_addr(base, 2);
            let old = b.load(p);
            let new = b.fadd(old, inc);
            b.store(p, new);
            b.ret(Some(new));
        }
        let (f, s) = fuse_one(&m, fid, &[10]);
        let code = &f.blocks[0].code;
        // global_addr + gep dropped; load+fadd fuse; store becomes absolute.
        assert!(
            code.iter().any(|op| matches!(
                op.inst,
                DecodedInst::LoadBin { ptr: Operand::Imm(Value::Ptr(12)), .. }
            )),
            "expected fused absolute load+add: {code:?}"
        );
        assert!(
            code.iter()
                .any(|op| matches!(op.inst, DecodedInst::StoreAbs { addr: 12, .. })),
            "expected absolute store: {code:?}"
        );
        assert!(
            !code
                .iter()
                .any(|op| matches!(op.inst, DecodedInst::GlobalAddr { .. } | DecodedInst::Gep { .. })),
            "addressing ops must be folded away: {code:?}"
        );
        assert!(s.fused_ops < s.decoded_ops);
        assert!(s.superinstructions >= 2);
    }

    #[test]
    fn dynamic_gep_load_fuses_and_cmp_feeds_the_terminator() {
        let mut m = Module::new("m");
        let g = m.add_zeroed_global("buf", Ty::array(Ty::F64, 8), true);
        let tys: Vec<Ty> = m.globals.iter().map(|g| g.ty.clone()).collect();
        let fid = m.declare_function("sum", vec![Ty::I64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f).with_global_types(tys);
            let entry = b.create_block("entry");
            let header = b.create_block("header");
            let body = b.create_block("body");
            let exit = b.create_block("exit");
            b.switch_to_block(entry);
            let n = b.param(0);
            let zero = b.const_i64(0);
            let zf = b.const_f64(0.0);
            b.br(header);
            b.switch_to_block(header);
            let i = b.empty_phi(Ty::I64);
            let acc = b.empty_phi(Ty::F64);
            b.add_phi_incoming(i, entry, zero);
            b.add_phi_incoming(acc, entry, zf);
            let c = b.cmp(CmpPred::ILt, i, n);
            b.cond_br(c, body, exit);
            b.switch_to_block(body);
            let base = b.global_addr(g);
            let p = b.elem_addr(base, i);
            let v = b.load(p);
            let acc2 = b.fadd(acc, v);
            let one = b.const_i64(1);
            let i2 = b.iadd(i, one);
            b.add_phi_incoming(i, body, i2);
            b.add_phi_incoming(acc, body, acc2);
            b.br(header);
            b.switch_to_block(exit);
            b.ret(Some(acc));
        }
        let (f, _) = fuse_one(&m, fid, &[0]);
        // Header: the cmp fused into the terminator.
        assert!(f.blocks[1].code.is_empty(), "{:?}", f.blocks[1].code);
        assert!(matches!(f.blocks[1].term, DecodedTerm::CmpBr { .. }));
        // Body: gep (constant base after propagation) + load fused; the
        // increment specialized to a reg-imm add.
        let body = &f.blocks[2].code;
        assert!(
            body.iter()
                .any(|op| matches!(op.inst, DecodedInst::GepLoad { base: Operand::Imm(_), .. })),
            "{body:?}"
        );
        assert!(
            body.iter().any(|op| matches!(op.inst, DecodedInst::BinRI { .. })),
            "{body:?}"
        );
    }

    #[test]
    fn block_final_binri_chains_into_the_fused_compare() {
        // A do-while loop back edge: `i2 = iadd i, 1; c = cmp i2 < n;
        // cond_br c, body, exit`. Pass 4 fuses the cmp into the terminator,
        // pass 4b then chains the immediate-specialized increment into it —
        // the whole back edge is a single `BinRICmpBr` dispatch. The
        // increment's destination register survives (the loop phi reads it).
        let mut m = Module::new("m");
        let g = m.add_zeroed_global("buf", Ty::array(Ty::F64, 8), true);
        let tys: Vec<Ty> = m.globals.iter().map(|g| g.ty.clone()).collect();
        let fid = m.declare_function("sum_dw", vec![Ty::I64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f).with_global_types(tys);
            let entry = b.create_block("entry");
            let body = b.create_block("body");
            let exit = b.create_block("exit");
            b.switch_to_block(entry);
            let n = b.param(0);
            let zero = b.const_i64(0);
            let zf = b.const_f64(0.0);
            b.br(body);
            b.switch_to_block(body);
            let i = b.empty_phi(Ty::I64);
            let acc = b.empty_phi(Ty::F64);
            b.add_phi_incoming(i, entry, zero);
            b.add_phi_incoming(acc, entry, zf);
            let base = b.global_addr(g);
            let p = b.elem_addr(base, i);
            let v = b.load(p);
            let acc2 = b.fadd(acc, v);
            let one = b.const_i64(1);
            let i2 = b.iadd(i, one);
            let c = b.cmp(CmpPred::ILt, i2, n);
            b.add_phi_incoming(i, body, i2);
            b.add_phi_incoming(acc, body, acc2);
            b.cond_br(c, body, exit);
            b.switch_to_block(exit);
            b.ret(Some(acc));
        }
        let (f, s) = fuse_one(&m, fid, &[0]);
        let body = &f.blocks[1];
        assert!(
            matches!(
                body.term,
                DecodedTerm::BinRICmpBr {
                    op: BinOp::Add,
                    imm: Value::I64(1),
                    bin_is_lhs: true,
                    ..
                }
            ),
            "back edge must be a single chained dispatch: {:?}",
            body.term
        );
        assert!(
            !body
                .code
                .iter()
                .any(|op| matches!(op.inst, DecodedInst::BinRI { .. } | DecodedInst::Cmp { .. })),
            "increment and compare must both leave the block body: {:?}",
            body.code
        );
        // Both folded instructions still count toward the executed-op
        // bookkeeping (the terminator charges and tallies them itself).
        assert!(s.superinstructions >= 2, "{s:?}");
    }

    #[test]
    fn frame_compaction_shrinks_and_keeps_params_in_place() {
        let mut m = Module::new("m");
        let fid = m.declare_function("f", vec![Ty::F64, Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let y = b.param(1);
            // A chain of temporaries, each dead after one use: locals must
            // share slots instead of each taking its own.
            let mut acc = b.fadd(x, y);
            for _ in 0..10 {
                let c = b.const_f64(1.5);
                acc = b.fmul(acc, c);
            }
            b.ret(Some(acc));
        }
        let d = decode_function(m.function(fid), &[]);
        let mut s = FuseSummary::default();
        let f = fuse_function(&d, &mut s);
        assert_eq!(f.num_params, 2);
        assert!(
            f.num_values < d.num_values,
            "frame must shrink: {} -> {}",
            d.num_values,
            f.num_values
        );
        // Params keep identity slots; the chain shares one or two locals.
        assert!(f.num_values <= 4, "locals must share slots: {}", f.num_values);
        assert_eq!(s.decoded_frame_slots, d.num_values as u64);
        assert_eq!(s.fused_frame_slots, f.num_values as u64);
    }

    #[test]
    fn multi_use_results_are_not_fused_away() {
        // The gep result feeds both a load and a store: it must survive as a
        // standalone op (fusing it into the load would recompute or lose it).
        let mut m = Module::new("m");
        let g = m.add_zeroed_global("buf", Ty::array(Ty::F64, 8), true);
        let tys: Vec<Ty> = m.globals.iter().map(|g| g.ty.clone()).collect();
        let fid = m.declare_function("f", vec![Ty::I64, Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f).with_global_types(tys);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let i = b.param(0);
            let v = b.param(1);
            let base = b.global_addr(g);
            let p = b.elem_addr(base, i);
            let old = b.load(p);
            b.store(p, v);
            let r = b.fadd(old, v);
            b.ret(Some(r));
        }
        let (f, _) = fuse_one(&m, fid, &[0]);
        let code = &f.blocks[0].code;
        assert!(
            code.iter().any(|op| matches!(op.inst, DecodedInst::Gep { .. })),
            "multi-use gep must survive: {code:?}"
        );
        assert!(
            !code.iter().any(|op| matches!(op.inst, DecodedInst::GepLoad { .. })),
            "multi-use gep must not fuse: {code:?}"
        );
    }
}
