//! Predecoded execution form: the bridge between the IR and the hot loop.
//!
//! The reference interpreter walks the IR directly: it deep-clones the callee
//! [`Function`] on every call, re-matches `ValueKind::Const` on every operand
//! read, and clones each block terminator per block visit. For the workloads
//! the paper cares about — a tiny evaluation kernel executed millions of
//! times — that constant re-interpretation of *static* structure dominates
//! the run time.
//!
//! [`decode_function`] lowers a [`Function`] once, at engine construction,
//! into a [`DecodedFunction`]:
//!
//! * every instruction operand is pre-resolved to an [`Operand`]: a register
//!   index into the call frame, or an inlined immediate [`Value`] for
//!   constants (so the hot loop never looks at the value arena again);
//! * phi nodes are split out of the instruction stream into per-edge copy
//!   tables keyed by predecessor block ([`PhiEdge`]), evaluated as one
//!   parallel copy at block entry;
//! * GEP index paths are folded into a constant slot offset plus a list of
//!   `(dynamic index, element stride)` steps;
//! * global addresses are resolved to absolute slot addresses (the engine's
//!   global layout is fixed at construction);
//! * terminators are stored by value as [`DecodedTerm`] — nothing is cloned
//!   per block visit.
//!
//! Error behaviour is preserved: malformed edges (a phi without an incoming
//! value for a taken edge, an `undef` operand, an invalid GEP shape) decode
//! into poison entries that reproduce the reference interpreter's
//! [`ExecError`](crate::engine::ExecError) when — and only when — they are
//! actually executed.

use crate::engine::Value;
use distill_ir::inst::GepIndex;
use distill_ir::{
    BinOp, CastKind, CmpPred, Constant, Function, Inst, Intrinsic, Module, Terminator, Ty,
    UnOp, ValueKind,
};

/// A pre-resolved instruction operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// Read the call frame register with this index.
    Reg(u32),
    /// An immediate value inlined at decode time (IR constants).
    Imm(Value),
    /// `Constant::Undef` — reading it is an error carrying the value id,
    /// exactly like the reference interpreter.
    Undef(u32),
}

/// One decoded instruction plus the frame register its result lands in.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedOp {
    /// Destination register (the defining value's arena index).
    pub dst: u32,
    /// The operation.
    pub inst: DecodedInst,
}

/// A non-phi instruction with operands pre-resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodedInst {
    /// Binary arithmetic.
    Bin {
        /// The operation.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Unary arithmetic.
    Un {
        /// The operation.
        op: UnOp,
        /// Operand.
        val: Operand,
    },
    /// Comparison.
    Cmp {
        /// The predicate.
        pred: CmpPred,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Branch-free conditional.
    Select {
        /// Condition.
        cond: Operand,
        /// Value when true.
        then_val: Operand,
        /// Value when false.
        else_val: Operand,
    },
    /// Call to another function in the module (by arena index).
    Call {
        /// Callee function index.
        callee: u32,
        /// Pre-resolved arguments.
        args: Box<[Operand]>,
    },
    /// Pure math intrinsic (1 or 2 arguments).
    MathCall {
        /// Which intrinsic.
        kind: Intrinsic,
        /// Pre-resolved arguments.
        args: Box<[Operand]>,
    },
    /// PRNG intrinsic reading and writing in-memory generator state.
    RandCall {
        /// `RandUniform` or `RandNormal`.
        kind: Intrinsic,
        /// Pointer to the generator state.
        state: Operand,
    },
    /// Stack allocation with the slot count precomputed.
    Alloca {
        /// Slots to reserve.
        slots: u32,
    },
    /// Load through a pointer.
    Load {
        /// Pointer operand.
        ptr: Operand,
    },
    /// Store through a pointer.
    Store {
        /// Pointer operand.
        ptr: Operand,
        /// Value to store.
        value: Operand,
    },
    /// Address computation with the constant part of the index path folded.
    Gep {
        /// Base pointer operand.
        base: Operand,
        /// Sum of all constant index contributions, in slots.
        const_offset: u32,
        /// Remaining dynamic steps: `(index operand, element stride)`.
        dyn_steps: Box<[(Operand, u32)]>,
    },
    /// A GEP whose index path does not match the pointee type; executing it
    /// reproduces the reference interpreter's type error.
    InvalidGep {
        /// Base pointer operand (evaluated for the error message).
        base: Operand,
    },
    /// Scalar cast.
    Cast {
        /// Cast kind.
        kind: CastKind,
        /// Operand.
        val: Operand,
    },
    /// The absolute slot address of a module global.
    GlobalAddr {
        /// Pre-resolved base slot address.
        addr: usize,
    },

    // -- Fused superinstructions ------------------------------------------
    // The variants below are never produced by `decode_function`; they are
    // emitted by the peephole/fusion pass in [`crate::fuse`], which rewrites
    // decoded blocks so that common instruction pairs execute as a single
    // dispatch. The executor handles both dialects with one loop.
    /// Load from a fully-resolved absolute slot address (a
    /// `global_addr`/constant-GEP addressing chain folded away).
    LoadAbs {
        /// Absolute slot address.
        addr: usize,
    },
    /// Store to a fully-resolved absolute slot address.
    StoreAbs {
        /// Absolute slot address.
        addr: usize,
        /// Value to store.
        value: Operand,
    },
    /// `gep` + `load` fused: compute the address and read through it in one
    /// dispatch.
    GepLoad {
        /// Base pointer operand.
        base: Operand,
        /// Constant part of the folded index path, in slots.
        const_offset: u32,
        /// Remaining dynamic steps: `(index operand, element stride)`.
        dyn_steps: Box<[(Operand, u32)]>,
    },
    /// `gep` + `store` fused.
    GepStore {
        /// Base pointer operand.
        base: Operand,
        /// Constant part of the folded index path, in slots.
        const_offset: u32,
        /// Remaining dynamic steps: `(index operand, element stride)`.
        dyn_steps: Box<[(Operand, u32)]>,
        /// Value to store.
        value: Operand,
    },
    /// Binary op with a register left operand and an immediate right operand
    /// (`reg OP imm`): skips one operand resolution per execution.
    BinRI {
        /// The operation.
        op: BinOp,
        /// Frame register of the left operand.
        reg: u32,
        /// Immediate right operand.
        imm: Value,
    },
    /// Binary op with an immediate left operand (`imm OP reg`).
    BinIR {
        /// The operation.
        op: BinOp,
        /// Immediate left operand.
        imm: Value,
        /// Frame register of the right operand.
        reg: u32,
    },
    /// `load` + binary op fused: the loaded value feeds one side of the op.
    LoadBin {
        /// The operation.
        op: BinOp,
        /// Pointer operand of the absorbed load.
        ptr: Operand,
        /// The other (non-loaded) operand.
        other: Operand,
        /// Whether the loaded value is the left operand.
        load_lhs: bool,
    },
    /// Binary op + `store` fused: the result goes straight to memory.
    BinStore {
        /// The operation.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
        /// Pointer operand of the absorbed store.
        ptr: Operand,
    },
}

/// The phi copies to perform when entering a block through one predecessor.
#[derive(Debug, Clone, PartialEq)]
pub enum PhiEdge {
    /// `(destination register, source operand)` pairs, applied as a parallel
    /// copy (all sources read before any destination is written).
    Copies(Box<[(u32, Operand)]>),
    /// Some phi lacks an incoming value for this edge; taking it is a type
    /// error naming the phi and the predecessor, like the reference path.
    Missing {
        /// Value id of the offending phi.
        phi: u32,
        /// Arena index of the predecessor block.
        pred: u32,
    },
}

/// A decoded terminator, stored by value.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodedTerm {
    /// Unconditional branch to a block arena index.
    Br(u32),
    /// Two-way conditional branch.
    CondBr {
        /// Pre-resolved condition.
        cond: Operand,
        /// Successor when true.
        then_blk: u32,
        /// Successor when false.
        else_blk: u32,
    },
    /// Return, with a pre-resolved operand unless the function is `Void`.
    Ret(Option<Operand>),
    /// Control must never reach the end of this block.
    Unreachable,
    /// The source block had no terminator (only possible for dead blocks of
    /// a function under construction); executing it panics like the
    /// reference interpreter's `expect`.
    Missing,
    /// A `cmp` fused into the conditional branch it fed (emitted only by
    /// [`crate::fuse`]): predicate evaluation and the two-way branch execute
    /// as one dispatch, with no intermediate register write.
    CmpBr {
        /// The comparison predicate.
        pred: CmpPred,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
        /// Successor when true.
        then_blk: u32,
        /// Successor when false.
        else_blk: u32,
    },
    /// An immediate-specialized binop chained into the fused
    /// compare-and-branch that consumes it (emitted only by [`crate::fuse`]):
    /// `dst = src <op> imm; branch on (cmp dst, other)` in one dispatch. The
    /// binop's destination register is still written, because phis and later
    /// blocks may read it.
    BinRICmpBr {
        /// The binop's operator.
        op: BinOp,
        /// The binop's register operand.
        src: u32,
        /// The binop's inline immediate.
        imm: Value,
        /// The binop's destination register (written before the compare).
        dst: u32,
        /// The comparison predicate.
        pred: CmpPred,
        /// The compare operand that is *not* the binop result.
        other: Operand,
        /// Whether the binop result is the compare's left operand.
        bin_is_lhs: bool,
        /// Successor when true.
        then_blk: u32,
        /// Successor when false.
        else_blk: u32,
    },
}

/// A decoded basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedBlock {
    /// Whether the block schedules any phi node.
    pub has_phis: bool,
    /// Value id of the first phi (entry-through-no-edge error message).
    pub first_phi: u32,
    /// One copy table per static predecessor, keyed by block arena index.
    pub phi_edges: Box<[(u32, PhiEdge)]>,
    /// Non-phi instructions in execution order.
    pub code: Box<[DecodedOp]>,
    /// The terminator.
    pub term: DecodedTerm,
}

/// A function lowered to its predecoded execution form.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedFunction {
    /// Function name (for `MissingBody` diagnostics).
    pub name: String,
    /// Entry block arena index, `None` for declarations / empty bodies.
    pub entry: Option<u32>,
    /// Register file size: the value arena size as decoded, or the compacted
    /// slot count after [`crate::fuse`] renumbers the frame.
    pub num_values: u32,
    /// Number of parameters (always the first `num_params` registers, on
    /// both the decoded and the fused form).
    pub num_params: u32,
    /// Blocks indexed by arena index (branch targets are arena ids).
    pub blocks: Box<[DecodedBlock]>,
}

/// Decode every function of a module. `global_base` maps global arena
/// indices to absolute slot addresses (the engine computes it from the
/// module's global declarations before decoding).
pub fn decode_module(module: &Module, global_base: &[usize]) -> Vec<DecodedFunction> {
    module
        .functions
        .iter()
        .map(|f| decode_function(f, global_base))
        .collect()
}

/// Decode one function. See the module docs for what is precomputed.
pub fn decode_function(func: &Function, global_base: &[usize]) -> DecodedFunction {
    let blocks = func
        .blocks
        .iter()
        .enumerate()
        .map(|(i, _)| decode_block(func, i, global_base))
        .collect();
    DecodedFunction {
        name: func.name.clone(),
        entry: func.entry_block().map(|b| b.index() as u32),
        num_values: func.value_count() as u32,
        num_params: func.param_count() as u32,
        blocks,
    }
}

fn operand(func: &Function, v: distill_ir::ValueId) -> Operand {
    match &func.value(v).kind {
        ValueKind::Const(c) => match c {
            Constant::F64(x) => Operand::Imm(Value::F64(*x)),
            Constant::F32(x) => Operand::Imm(Value::F64(*x as f64)),
            Constant::I64(x) => Operand::Imm(Value::I64(*x)),
            Constant::Bool(b) => Operand::Imm(Value::Bool(*b)),
            Constant::Undef => Operand::Undef(v.index() as u32),
        },
        _ => Operand::Reg(v.index() as u32),
    }
}

fn decode_block(func: &Function, index: usize, global_base: &[usize]) -> DecodedBlock {
    let id = distill_ir::BlockId::from_index(index);
    let blk = func.block(id);

    // Split phis out of the instruction stream.
    let mut phis: Vec<(u32, &[(distill_ir::BlockId, distill_ir::ValueId)])> = Vec::new();
    let mut code = Vec::new();
    for &v in &blk.insts {
        let inst = func.as_inst(v).expect("scheduled value is an instruction");
        if let Inst::Phi { incoming, .. } = inst {
            phis.push((v.index() as u32, incoming.as_slice()));
        } else {
            code.push(DecodedOp {
                dst: v.index() as u32,
                inst: decode_inst(func, inst, global_base),
            });
        }
    }

    // One parallel-copy table per static predecessor.
    let phi_edges: Vec<(u32, PhiEdge)> = if phis.is_empty() {
        Vec::new()
    } else {
        func.static_predecessors(id)
            .into_iter()
            .map(|pred| {
                let mut copies = Vec::with_capacity(phis.len());
                for (phi, incoming) in &phis {
                    match incoming.iter().find(|(b, _)| *b == pred) {
                        Some((_, src)) => copies.push((*phi, operand(func, *src))),
                        None => {
                            return (
                                pred.index() as u32,
                                PhiEdge::Missing {
                                    phi: *phi,
                                    pred: pred.index() as u32,
                                },
                            )
                        }
                    }
                }
                (pred.index() as u32, PhiEdge::Copies(copies.into()))
            })
            .collect()
    };

    let term = match &blk.term {
        Some(Terminator::Br(b)) => DecodedTerm::Br(b.index() as u32),
        Some(Terminator::CondBr {
            cond,
            then_blk,
            else_blk,
        }) => DecodedTerm::CondBr {
            cond: operand(func, *cond),
            then_blk: then_blk.index() as u32,
            else_blk: else_blk.index() as u32,
        },
        Some(Terminator::Ret(v)) => DecodedTerm::Ret(v.map(|v| operand(func, v))),
        Some(Terminator::Unreachable) => DecodedTerm::Unreachable,
        None => DecodedTerm::Missing,
    };

    DecodedBlock {
        has_phis: !phis.is_empty(),
        first_phi: phis.first().map(|(v, _)| *v).unwrap_or(0),
        phi_edges: phi_edges.into(),
        code: code.into(),
        term,
    }
}

fn decode_inst(func: &Function, inst: &Inst, global_base: &[usize]) -> DecodedInst {
    let op = |v: &distill_ir::ValueId| operand(func, *v);
    match inst {
        Inst::Bin { op: o, lhs, rhs } => DecodedInst::Bin {
            op: *o,
            lhs: op(lhs),
            rhs: op(rhs),
        },
        Inst::Un { op: o, val } => DecodedInst::Un {
            op: *o,
            val: op(val),
        },
        Inst::Cmp { pred, lhs, rhs } => DecodedInst::Cmp {
            pred: *pred,
            lhs: op(lhs),
            rhs: op(rhs),
        },
        Inst::Select {
            cond,
            then_val,
            else_val,
        } => DecodedInst::Select {
            cond: op(cond),
            then_val: op(then_val),
            else_val: op(else_val),
        },
        Inst::Call { callee, args } => DecodedInst::Call {
            callee: callee.index() as u32,
            args: args.iter().map(|a| operand(func, *a)).collect(),
        },
        Inst::IntrinsicCall { kind, args } => {
            if kind.has_side_effects() {
                DecodedInst::RandCall {
                    kind: *kind,
                    state: op(&args[0]),
                }
            } else {
                DecodedInst::MathCall {
                    kind: *kind,
                    args: args.iter().map(|a| operand(func, *a)).collect(),
                }
            }
        }
        Inst::Alloca { ty } => DecodedInst::Alloca {
            slots: ty.slot_count() as u32,
        },
        Inst::Load { ptr } => DecodedInst::Load { ptr: op(ptr) },
        Inst::Store { ptr, value } => DecodedInst::Store {
            ptr: op(ptr),
            value: op(value),
        },
        Inst::Gep { base, indices } => decode_gep(func, base, indices),
        Inst::Phi { .. } => unreachable!("phis are split out at block decode"),
        Inst::Cast { kind, val, .. } => DecodedInst::Cast {
            kind: *kind,
            val: op(val),
        },
        Inst::GlobalAddr { global } => DecodedInst::GlobalAddr {
            addr: global_base[global.index()],
        },
    }
}

fn decode_gep(
    func: &Function,
    base: &distill_ir::ValueId,
    indices: &[GepIndex],
) -> DecodedInst {
    let base_op = operand(func, *base);
    let Ty::Ptr(pointee) = func.ty(*base) else {
        // The reference path would evaluate the base and fail on its runtime
        // value; the poison form reproduces that.
        return DecodedInst::InvalidGep { base: base_op };
    };
    let mut ty: &Ty = pointee;
    let mut const_offset = 0usize;
    let mut dyn_steps = Vec::new();
    for idx in indices {
        match (ty, idx) {
            (Ty::Array(elem, _), GepIndex::Const(i)) => {
                const_offset += i * elem.slot_count();
                ty = elem;
            }
            (Ty::Array(elem, _), GepIndex::Dyn(v)) => {
                dyn_steps.push((operand(func, *v), elem.slot_count() as u32));
                ty = elem;
            }
            // An out-of-range field index is poison like any other invalid
            // shape — it must not panic at decode time (the reference path
            // only fails if the instruction actually executes).
            (Ty::Struct(fields), GepIndex::Const(i)) if *i < fields.len() => {
                const_offset += ty.field_offset(*i);
                ty = &fields[*i];
            }
            _ => return DecodedInst::InvalidGep { base: base_op },
        }
    }
    DecodedInst::Gep {
        base: base_op,
        const_offset: const_offset as u32,
        dyn_steps: dyn_steps.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_ir::{FunctionBuilder, Module, Ty};

    #[test]
    fn out_of_range_struct_index_decodes_to_poison_not_panic() {
        // The builder rejects this shape, so assemble it through the raw
        // arenas: a gep with Const(5) into a two-field struct, sitting in a
        // dead block. Decoding must not panic; only execution may fail.
        use distill_ir::{BlockData, Inst, Terminator, ValueData, ValueKind};
        let mut m = Module::new("m");
        let fid = m.declare_function("f", vec![Ty::ptr(Ty::Struct(vec![Ty::F64, Ty::I64]))], Ty::I64);
        {
            let f = m.function_mut(fid);
            let base = f.param_value(0);
            let bad = f.add_value(ValueData {
                kind: ValueKind::Inst(Inst::Gep {
                    base,
                    indices: vec![GepIndex::Const(5)],
                }),
                ty: Ty::ptr(Ty::I64),
                name: None,
            });
            let k = f.add_constant(distill_ir::Constant::I64(3));
            let entry = f.add_block("entry");
            f.block_mut(entry).term = Some(Terminator::Ret(Some(k)));
            // Dead block scheduling the malformed gep; nothing branches here.
            f.blocks.push(BlockData {
                name: "dead".into(),
                insts: vec![bad],
                term: Some(Terminator::Ret(Some(bad))),
            });
        }
        let d = decode_function(m.function(fid), &[]);
        assert!(matches!(
            d.blocks[1].code[0].inst,
            DecodedInst::InvalidGep { .. }
        ));
        assert_eq!(d.entry, Some(0));
    }

    #[test]
    fn constants_become_immediates() {
        let mut m = Module::new("m");
        let fid = m.declare_function("f", vec![Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let c = b.const_f64(2.5);
            let r = b.fmul(x, c);
            b.ret(Some(r));
        }
        let d = decode_function(m.function(fid), &[]);
        assert_eq!(d.entry, Some(0));
        let code = &d.blocks[0].code;
        assert_eq!(code.len(), 1);
        match &code[0].inst {
            DecodedInst::Bin { lhs, rhs, .. } => {
                assert_eq!(*lhs, Operand::Reg(0));
                assert_eq!(*rhs, Operand::Imm(Value::F64(2.5)));
            }
            other => panic!("expected Bin, got {other:?}"),
        }
    }

    #[test]
    fn phis_become_per_edge_copy_tables() {
        let mut m = Module::new("m");
        let fid = m.declare_function("f", vec![Ty::I64], Ty::I64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let entry = b.create_block("entry");
            let header = b.create_block("header");
            let body = b.create_block("body");
            let exit = b.create_block("exit");
            b.switch_to_block(entry);
            let n = b.param(0);
            let zero = b.const_i64(0);
            b.br(header);
            b.switch_to_block(header);
            let i = b.empty_phi(Ty::I64);
            b.add_phi_incoming(i, entry, zero);
            let c = b.cmp(distill_ir::CmpPred::ILt, i, n);
            b.cond_br(c, body, exit);
            b.switch_to_block(body);
            let one = b.const_i64(1);
            let i2 = b.iadd(i, one);
            b.add_phi_incoming(i, body, i2);
            b.br(header);
            b.switch_to_block(exit);
            b.ret(Some(i));
        }
        let d = decode_function(m.function(fid), &[]);
        let header = &d.blocks[1];
        assert!(header.has_phis);
        assert_eq!(header.phi_edges.len(), 2, "entry edge + back edge");
        for (_, edge) in header.phi_edges.iter() {
            match edge {
                PhiEdge::Copies(copies) => assert_eq!(copies.len(), 1),
                PhiEdge::Missing { .. } => panic!("all edges have incoming values"),
            }
        }
        // No phi appears in the linear instruction stream.
        assert!(header
            .code
            .iter()
            .all(|op| !matches!(op.inst, DecodedInst::Call { .. })));
    }

    #[test]
    fn gep_paths_fold_constant_offsets() {
        let mut m = Module::new("m");
        let g = m.add_zeroed_global(
            "buf",
            Ty::Struct(vec![Ty::F64, Ty::array(Ty::F64, 4)]),
            true,
        );
        let tys: Vec<Ty> = m.globals.iter().map(|g| g.ty.clone()).collect();
        let fid = m.declare_function("f", vec![Ty::I64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f).with_global_types(tys);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let idx = b.param(0);
            let base = b.global_addr(g);
            let arr = b.field_addr(base, 1);
            let p = b.elem_addr(arr, idx);
            let v = b.load(p);
            b.ret(Some(v));
        }
        let d = decode_function(m.function(fid), &[7]);
        let code = &d.blocks[0].code;
        // global_addr resolves to the absolute base slot address.
        assert!(code
            .iter()
            .any(|op| matches!(op.inst, DecodedInst::GlobalAddr { addr: 7 })));
        // The struct-field step folds into a constant offset; the dynamic
        // element step stays a (operand, stride) pair.
        let gep_shapes: Vec<(u32, usize)> = code
            .iter()
            .filter_map(|op| match &op.inst {
                DecodedInst::Gep {
                    const_offset,
                    dyn_steps,
                    ..
                } => Some((*const_offset, dyn_steps.len())),
                _ => None,
            })
            .collect();
        assert!(gep_shapes.contains(&(1, 0)), "field step folded: {gep_shapes:?}");
        assert!(gep_shapes.contains(&(0, 1)), "dynamic step kept: {gep_shapes:?}");
    }
}
