//! Telemetry probes for the execution engine.
//!
//! The engine's hot path is a per-call tier dispatch, so instrumentation
//! happens exactly once per [`crate::engine::Engine::call_tier`] entry:
//! one dispatch-latency sample and a mirror of the call's
//! [`crate::engine::EngineStats`] delta into the global registry. Nothing
//! probes per instruction — a trial executing millions of ops pays the
//! same fixed per-call cost — and the whole block sits behind
//! [`distill_telemetry::enabled`], so `DISTILL_TELEMETRY=0` reduces it to
//! one relaxed load.
//!
//! Metric names (see the README's Observability catalog):
//!
//! * `engine.tier.<tier>.calls` / `engine.tier.<tier>.dispatch_ns` — calls
//!   entering each tier and their wall-clock dispatch latency.
//! * `engine.instructions`, `engine.fused_ops`, `engine.frame_pool_hits`,
//!   `engine.frame_slots` — mirrors of the same-named `EngineStats`
//!   counters, accumulated process-wide across every engine instance.
//! * `engine.tier_promotions` (+ the `engine.tier_promotion` instant
//!   event) — adaptive tier-up decisions as they happen.

use crate::backend::Tier;
use crate::engine::EngineStats;
use distill_telemetry::{self as telemetry, ArgValue, Counter, Histogram};
use std::sync::OnceLock;

/// Per-tier instruments, indexed by [`tier_index`].
pub(crate) struct TierProbes {
    pub calls: &'static Counter,
    pub dispatch_ns: &'static Histogram,
}

/// All engine-side instruments, registered once and cached for the life of
/// the process.
pub(crate) struct EngineProbes {
    pub tiers: [TierProbes; 4],
    pub instructions: &'static Counter,
    pub fused_ops: &'static Counter,
    pub frame_pool_hits: &'static Counter,
    pub frame_slots: &'static Counter,
    pub tier_promotions: &'static Counter,
}

pub(crate) fn tier_index(tier: Tier) -> usize {
    match tier {
        Tier::Reference => 0,
        Tier::Decoded => 1,
        Tier::Fused => 2,
        Tier::Threaded => 3,
    }
}

pub(crate) fn engine_probes() -> &'static EngineProbes {
    static PROBES: OnceLock<EngineProbes> = OnceLock::new();
    PROBES.get_or_init(|| {
        let reg = telemetry::registry();
        let tier = |t: Tier| TierProbes {
            calls: reg.counter(&format!("engine.tier.{}.calls", t.label())),
            dispatch_ns: reg.histogram(&format!("engine.tier.{}.dispatch_ns", t.label())),
        };
        EngineProbes {
            tiers: [
                tier(Tier::Reference),
                tier(Tier::Decoded),
                tier(Tier::Fused),
                tier(Tier::Threaded),
            ],
            instructions: reg.counter("engine.instructions"),
            fused_ops: reg.counter("engine.fused_ops"),
            frame_pool_hits: reg.counter("engine.frame_pool_hits"),
            frame_slots: reg.counter("engine.frame_slots"),
            tier_promotions: reg.counter("engine.tier_promotions"),
        }
    })
}

/// Record one instrumented `call_tier` dispatch: its latency and the
/// engine-counter deltas it produced.
pub(crate) fn record_dispatch(
    tier: Tier,
    elapsed: std::time::Duration,
    before: &EngineStats,
    after: &EngineStats,
) {
    let p = engine_probes();
    let t = &p.tiers[tier_index(tier)];
    t.calls.inc();
    t.dispatch_ns.record_duration(elapsed);
    p.instructions.add(after.instructions - before.instructions);
    p.fused_ops.add(after.fused_ops - before.fused_ops);
    p.frame_pool_hits
        .add(after.frame_pool_hits - before.frame_pool_hits);
    p.frame_slots.add(after.frame_slots - before.frame_slots);
}

/// Record an adaptive tier-up decision as a counter bump plus a
/// chrome-trace instant event carrying the promoted function's index.
pub(crate) fn record_promotion(func_index: usize, threshold: u64) {
    engine_probes().tier_promotions.inc();
    telemetry::instant(
        "engine.tier_promotion",
        vec![
            ("func", ArgValue::I64(func_index as i64)),
            ("threshold", ArgValue::I64(threshold as i64)),
        ],
    );
}
