//! `distill-sweep` — sweep orchestration over the workload registry.
//!
//! The paper's headline results come from parameter sweeps: grid searches
//! over control signals, run across model families and hardware targets.
//! This crate is the layer that drives those sweeps declaratively instead of
//! with hand-rolled per-figure loops:
//!
//! * [`distill_models::registry`] says *what* to run — each
//!   [`WorkloadSpec`] is a model family with scale presets, a target matrix
//!   and a throughput trial count;
//! * a [`SweepConfig`] says *how* — scale, worker threads, trials per
//!   compiled batch;
//! * [`run_sweep`] / [`sweep_workload`] compile each family **once**, then
//!   execute the trial space twice through the `Session`/`Runner` contract —
//!   serially, and sharded across workers in `trials_batch`-sized chunks
//!   ([`distill::RunSpec::with_shards`]) — plus once per registered target
//!   kind, and report timings, steal counts and bit-identity verdicts.
//!
//! Sharding composes the batched entry point with the work-stealing chunk
//! queue: workers pull `batch`-sized chunks of trials, each runs them inside
//! compiled code on its own engine copy, and because per-trial PRNG streams
//! are derived from the trial index, the stitched outputs are bit-identical
//! to the serial run at any thread count — which every sweep verifies on
//! every workload rather than assuming.

use distill::{
    compile, CompileConfig, CompiledModel, DistillError, ExecMode, GpuConfig, RunResult, RunSpec,
    Session, Target,
};
use distill_models::{registry, Scale, Tag, TargetKind, Workload, WorkloadSpec};
use std::time::Instant;

pub mod coordinator;
pub(crate) mod probes;
pub mod proto;
pub mod worker;

pub use coordinator::{dsweep_family, find_worker_bin, DsweepConfig, DsweepReport, WorkerMode};
pub use proto::{worker_faults, FaultPlan, WorkerFaults};

/// How a sweep executes its workloads.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Workload scale preset.
    pub scale: Scale,
    /// Worker threads for the sharded trial run (and the multicore grid
    /// target's thread count).
    pub threads: usize,
    /// Trials per compiled batch on the sharded run.
    pub batch: usize,
    /// Override of the registry's per-scale throughput trial count.
    pub trials: Option<usize>,
    /// Compile-time knobs, applied to every family.
    pub compile: CompileConfig,
}

/// The default worker-thread count: the host's available parallelism.
/// The single definition of this policy — the sweep config, the `figures`
/// binary and the bench harness all consult it.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            scale: Scale::Reduced,
            threads: default_threads(),
            batch: 32,
            trials: None,
            compile: CompileConfig::default(),
        }
    }
}

/// One cell of a workload's target matrix: the figure workload timed on one
/// registered execution target.
#[derive(Debug, Clone)]
pub struct TargetCell {
    /// The registry target kind (`baseline`, `single-core`, …).
    pub kind: String,
    /// The backend's own label (e.g. `multi-core:4`).
    pub label: String,
    /// Wall-clock seconds for the probe run, or the failure annotation.
    pub result: Result<f64, String>,
    /// Whether the cell's outputs *and* pass counts matched the single-core
    /// reference bit-for-bit (compiled parallel targets only; `None` where
    /// not applicable).
    pub matches_serial: Option<bool>,
    /// Grid-scheduler steals (multicore cells).
    pub steals: Option<u64>,
    /// Modelled occupancy (GPU cells).
    pub occupancy: Option<f64>,
    /// Modelled register demand before throttling (GPU cells).
    pub registers_wanted: Option<usize>,
}

/// One workload family's sweep result.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Registry key.
    pub name: String,
    /// Built model name (includes the scale-dependent suffix).
    pub model: String,
    /// Trials the serial/sharded throughput comparison executed.
    pub trials: usize,
    /// Worker threads the sharded run actually used (the driver clamps to
    /// the chunk count; `1` when the family fell back to serial).
    pub threads: usize,
    /// Trials per chunk the sharded run actually used.
    pub batch: usize,
    /// Serial wall-clock seconds (per-trial engine re-entry).
    pub serial_s: f64,
    /// Sharded + batched wall-clock seconds.
    pub sharded_s: f64,
    /// `serial_s / sharded_s`.
    pub speedup: f64,
    /// Chunks the trial space was split into.
    pub chunks: usize,
    /// Chunk grabs beyond each worker's first.
    pub steals: u64,
    /// Whether sharded outputs and pass counts were bit-identical to serial.
    pub identical: bool,
    /// Engine counters of the sharded run (per-run delta, worker threads
    /// included) — attributes instructions, fusion rate and frame-pool
    /// traffic to this family's trial space.
    pub run_stats: distill::EngineStats,
    /// The target matrix cells.
    pub targets: Vec<TargetCell>,
}

/// A whole sweep: one [`WorkloadReport`] per swept family.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Scale the sweep ran at.
    pub scale: Scale,
    /// Worker threads used.
    pub threads: usize,
    /// Trials per compiled batch.
    pub batch: usize,
    /// Label of the execution tier policy every family ran on (e.g.
    /// `fused`, `threaded`, `adaptive(32)`) — archived so sweep records
    /// from different tiers are never compared as like-for-like.
    pub tier: String,
    /// Per-family results, in registry order.
    pub workloads: Vec<WorkloadReport>,
}

impl SweepReport {
    /// Whether every family's sharded run was bit-identical to its serial
    /// run — the property the orchestrator exists to preserve.
    pub fn all_identical(&self) -> bool {
        self.workloads.iter().all(|w| w.identical)
    }
}

/// Bit-level equality of per-trial output sets: the identity verdicts the
/// sweep reports (and CI gates) must match the determinism suite's
/// definition — `to_bits` comparison, so NaNs compare equal to themselves
/// and `+0.0` vs `-0.0` counts as divergence. Public because the
/// distributed sweep's callers (figures, CI smoke, determinism tests) gate
/// on exactly this predicate.
pub fn outputs_bits_equal(a: &[Vec<f64>], b: &[Vec<f64>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.len() == y.len()
                && x.iter().zip(y).all(|(u, v)| u.to_bits() == v.to_bits())
        })
}

/// Map a registry target kind onto a concrete session target. The
/// configured thread count is used as-is, so every arm of a comparison
/// (sharded, grid-parallel, and the report describing them) runs at the
/// same configured parallelism.
fn concrete_target(kind: TargetKind, threads: usize) -> Target {
    match kind {
        TargetKind::Baseline => Target::Baseline(ExecMode::CPython),
        TargetKind::SingleCore => Target::SingleCore,
        TargetKind::MultiCore => Target::MultiCore { threads },
        TargetKind::Gpu => Target::Gpu(GpuConfig::default()),
    }
}

fn kind_label(kind: TargetKind) -> &'static str {
    match kind {
        TargetKind::Baseline => "baseline",
        TargetKind::SingleCore => "single-core",
        TargetKind::MultiCore => "multi-core",
        TargetKind::Gpu => "gpu",
    }
}

fn timed_run(
    session: Session,
    artifact: &CompiledModel,
    spec: &RunSpec,
) -> Result<(f64, RunResult, String), DistillError> {
    let mut runner = session.build_with(artifact.clone())?;
    let label = runner.target_label();
    let start = Instant::now();
    let result = runner.run(spec)?;
    Ok((start.elapsed().as_secs_f64(), result, label))
}

/// Sweep one registered family: compile once, time the serial vs the
/// sharded-batched trial space, then probe every registered target with the
/// family's figure workload.
///
/// # Errors
/// Compilation failures and compiled-backend run failures are hard errors
/// (the sweep's subject is broken); per-target probe failures are *recorded*
/// in the cell instead, since baseline environments legitimately fail on
/// some families (Fig. 4's annotations).
pub fn sweep_workload(
    spec: &WorkloadSpec,
    cfg: &SweepConfig,
) -> Result<WorkloadReport, DistillError> {
    let w: Workload = spec.build(cfg.scale);
    let trials = cfg.trials.unwrap_or_else(|| spec.sweep_trials(cfg.scale));
    let artifact = compile(&w.model, cfg.compile)?;

    // --- serial vs sharded-batched trial throughput ------------------------
    let serial_spec = RunSpec::new(w.inputs.clone(), trials);
    let (serial_s, serial, _) =
        timed_run(Session::new(&w.model).compile_config(cfg.compile), &artifact, &serial_spec)?;
    let sharded_spec = serial_spec
        .clone()
        .with_batch(cfg.batch)
        .with_shards(cfg.threads);
    let (sharded_s, sharded, _) =
        timed_run(Session::new(&w.model).compile_config(cfg.compile), &artifact, &sharded_spec)?;
    let identical =
        outputs_bits_equal(&serial.outputs, &sharded.outputs) && serial.passes == sharded.passes;
    let shard_stats = sharded.shards;
    let run_stats = sharded.stats;

    // --- target matrix ------------------------------------------------------
    let probe_spec = RunSpec::new(w.inputs.clone(), w.trials);
    // One single-core probe, run up-front: it provides both the
    // `single-core` cell's timing and the reference outputs for the
    // parallel cells' bit-identity verdicts — so neither the target order
    // in the spec nor a failed probe cell can silently drop a verdict, and
    // the probe workload runs exactly once.
    let needs_single_core = spec.targets.iter().any(|k| {
        matches!(
            k,
            TargetKind::SingleCore | TargetKind::MultiCore | TargetKind::Gpu
        )
    });
    let single_core: Option<(f64, RunResult, String)> = if needs_single_core {
        Some(timed_run(
            Session::new(&w.model).compile_config(cfg.compile),
            &artifact,
            &probe_spec,
        )?)
    } else {
        None
    };
    let reference = single_core.as_ref().map(|(_, r, _)| r);
    let mut targets = Vec::new();
    for &kind in spec.targets {
        let mut cell = TargetCell {
            kind: kind_label(kind).into(),
            label: String::new(),
            result: Err("did not run".into()),
            matches_serial: None,
            steals: None,
            occupancy: None,
            registers_wanted: None,
        };
        let probe = match (kind, &single_core) {
            (TargetKind::SingleCore, Some((seconds, result, label))) => {
                Ok((*seconds, result.clone(), label.clone()))
            }
            _ => {
                let mut session = Session::new(&w.model)
                    .compile_config(cfg.compile)
                    .target(concrete_target(kind, cfg.threads));
                if kind == TargetKind::Baseline {
                    // Fig. 4 semantics: a baseline that cannot finish is a
                    // recorded "did not finish" cell, not a stalled sweep.
                    session = session.eval_budget(PROBE_EVAL_BUDGET);
                }
                timed_run(session, &artifact, &probe_spec)
            }
        };
        match probe {
            Ok((seconds, result, label)) => {
                cell.label = label;
                cell.result = Ok(seconds);
                if matches!(kind, TargetKind::MultiCore | TargetKind::Gpu) {
                    cell.matches_serial = reference.map(|r| {
                        outputs_bits_equal(&r.outputs, &result.outputs)
                            && r.passes == result.passes
                    });
                }
                if let Some(grid) = &result.grid {
                    cell.steals = Some(grid.steals);
                }
                if let Some(gpu) = &result.gpu {
                    cell.occupancy = Some(gpu.occupancy);
                    cell.registers_wanted = Some(gpu.registers_wanted);
                }
            }
            Err(e) => cell.result = Err(e.to_string()),
        }
        targets.push(cell);
    }

    Ok(WorkloadReport {
        name: spec.name.into(),
        model: w.model.name.clone(),
        trials,
        // Report what actually executed: the driver clamps workers to the
        // chunk count (and stateful models fall back to a 1-worker serial
        // run), so the config's requested values would overstate small runs.
        threads: shard_stats.map(|s| s.threads).unwrap_or(1),
        batch: shard_stats.map(|s| s.batch).unwrap_or(cfg.batch),
        serial_s,
        sharded_s,
        speedup: serial_s / sharded_s.max(1e-12),
        chunks: shard_stats.map(|s| s.chunks).unwrap_or(0),
        steals: shard_stats.map(|s| s.steals).unwrap_or(0),
        identical,
        run_stats,
        targets,
    })
}

/// Run the default sweep: every registry family tagged [`Tag::Sweep`].
///
/// # Errors
/// Propagates the first hard failure (see [`sweep_workload`]).
pub fn run_sweep(cfg: &SweepConfig) -> Result<SweepReport, DistillError> {
    let mut workloads = Vec::new();
    for spec in registry::by_tag(Tag::Sweep) {
        workloads.push(sweep_workload(spec, cfg)?);
    }
    Ok(SweepReport {
        scale: cfg.scale,
        threads: cfg.threads,
        batch: cfg.batch,
        tier: cfg.compile.tier.to_string(),
        workloads,
    })
}

/// The serial / grid-parallel / sharded-batched comparison on the Fig. 2
/// model family (predator-prey attention) — the anchor measurement of the
/// sweep subsystem's figure.
#[derive(Debug, Clone)]
pub struct AnchorReport {
    /// Model name.
    pub model: String,
    /// Trials per sample.
    pub trials: usize,
    /// Worker threads of the sharded and grid-parallel runs.
    pub threads: usize,
    /// Trials per compiled batch of the sharded run.
    pub batch: usize,
    /// Timed samples per configuration.
    pub samples: usize,
    /// Median seconds, serial per-trial whole-model execution.
    pub serial_median_s: f64,
    /// Median seconds, per-trial execution with the grid search split
    /// across threads (`Target::MultiCore` — PR 3's grid-level parallelism).
    pub grid_mcpu_median_s: f64,
    /// Median seconds, sharded + batched trial execution (this PR's
    /// trial-level parallelism).
    pub sharded_median_s: f64,
    /// `serial_median_s / sharded_median_s`.
    pub speedup_vs_serial: f64,
    /// `grid_mcpu_median_s / sharded_median_s` — the figure's gate: the
    /// sharded-batched sweep must beat per-trial multicore grid search.
    pub speedup_vs_grid: f64,
    /// Steals of the sharded run's chunk queue (last sample).
    pub steals: u64,
    /// Chunks of the sharded run (last sample).
    pub chunks: usize,
    /// Whether all three configurations produced bit-identical outputs in
    /// every sample.
    pub outputs_match: bool,
}

// A local median on purpose: the workspace's other median lives in the
// bench-harness crate (`stats::median_sorted`), which sits outside this
// crate's dependency cone — pulling the whole harness in for one fold is
// not worth the coupling.
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    match samples.len() {
        0 => 0.0,
        n if n % 2 == 1 => samples[n / 2],
        n => 0.5 * (samples[n / 2 - 1] + samples[n / 2]),
    }
}

/// Registry key of the anchor family (the Fig. 2 model, predator-prey S).
pub const ANCHOR_FAMILY: &str = "predator_prey_2";

/// Expression-evaluation budget for baseline target probes, standing in for
/// the paper's 24-hour cutoff exactly like the Fig. 4 harness's DNF budget:
/// a baseline that exceeds it becomes a recorded failure cell.
pub const PROBE_EVAL_BUDGET: u64 = 200_000_000;

/// Time the anchor comparison over `samples` rounds and report medians.
///
/// # Errors
/// Propagates compile and run failures — the anchor family must run on
/// every configuration.
pub fn anchor_comparison(
    cfg: &SweepConfig,
    trials: usize,
    samples: usize,
) -> Result<AnchorReport, DistillError> {
    let spec = registry::by_name(ANCHOR_FAMILY).ok_or_else(|| {
        DistillError::Driver(format!("anchor family '{ANCHOR_FAMILY}' is not registered"))
    })?;
    let w = spec.build(cfg.scale);
    let artifact = compile(&w.model, cfg.compile)?;
    let samples = samples.max(1);

    let serial_spec = RunSpec::new(w.inputs.clone(), trials);
    let sharded_spec = serial_spec
        .clone()
        .with_batch(cfg.batch)
        .with_shards(cfg.threads);

    let mut serial_t = Vec::with_capacity(samples);
    let mut grid_t = Vec::with_capacity(samples);
    let mut sharded_t = Vec::with_capacity(samples);
    let mut outputs_match = true;
    let mut steals = 0;
    let mut chunks = 0;
    for _ in 0..samples {
        let (ts, serial, _) =
            timed_run(Session::new(&w.model).compile_config(cfg.compile), &artifact, &serial_spec)?;
        let (tg, grid, _) = timed_run(
            Session::new(&w.model)
                .compile_config(cfg.compile)
                .target(Target::MultiCore {
                    threads: cfg.threads,
                }),
            &artifact,
            &serial_spec,
        )?;
        let (tb, sharded, _) = timed_run(
            Session::new(&w.model).compile_config(cfg.compile),
            &artifact,
            &sharded_spec,
        )?;
        outputs_match &= outputs_bits_equal(&serial.outputs, &sharded.outputs)
            && serial.passes == sharded.passes
            && outputs_bits_equal(&serial.outputs, &grid.outputs)
            && serial.passes == grid.passes;
        if let Some(s) = sharded.shards {
            steals = s.steals;
            chunks = s.chunks;
        }
        serial_t.push(ts);
        grid_t.push(tg);
        sharded_t.push(tb);
    }
    let serial_median_s = median(&mut serial_t);
    let grid_mcpu_median_s = median(&mut grid_t);
    let sharded_median_s = median(&mut sharded_t);
    Ok(AnchorReport {
        model: w.model.name.clone(),
        trials,
        threads: cfg.threads,
        batch: cfg.batch,
        samples,
        serial_median_s,
        grid_mcpu_median_s,
        sharded_median_s,
        speedup_vs_serial: serial_median_s / sharded_median_s.max(1e-12),
        speedup_vs_grid: grid_mcpu_median_s / sharded_median_s.max(1e-12),
        steals,
        chunks,
        outputs_match,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SweepConfig {
        SweepConfig {
            threads: 4,
            batch: 4,
            trials: Some(9),
            ..SweepConfig::default()
        }
    }

    #[test]
    fn sweep_covers_every_tagged_family_and_stays_identical() {
        let report = run_sweep(&tiny_cfg()).expect("sweep runs");
        assert_eq!(
            report.workloads.len(),
            registry::by_tag(Tag::Sweep).len(),
            "one report per swept family"
        );
        assert!(report.all_identical(), "sharded must equal serial: {report:?}");
        for w in &report.workloads {
            assert!(w.serial_s > 0.0 && w.sharded_s > 0.0);
            assert_eq!(w.trials, 9);
            assert!(!w.targets.is_empty());
        }
    }

    #[test]
    fn skewed_family_reports_multicore_cell_matching_serial() {
        let spec = registry::by_name("predator_prey_skewed").unwrap();
        let report = sweep_workload(spec, &tiny_cfg()).expect("sweep runs");
        assert!(report.identical);
        let mcpu = report
            .targets
            .iter()
            .find(|c| c.kind == "multi-core")
            .expect("skewed family probes the multicore target");
        assert!(mcpu.result.is_ok(), "{:?}", mcpu.result);
        assert_eq!(mcpu.matches_serial, Some(true));
        assert!(mcpu.steals.is_some());
    }

    #[test]
    fn gpu_stress_cell_reports_high_register_demand() {
        let spec = registry::by_name("gpu_stress").unwrap();
        let report = sweep_workload(spec, &tiny_cfg()).expect("sweep runs");
        let gpu = report
            .targets
            .iter()
            .find(|c| c.kind == "gpu")
            .expect("gpu stress family probes the gpu target");
        let regs = gpu.registers_wanted.expect("gpu cell reports registers");
        // The point of the family: the kernel's register demand saturates
        // the ISA cap, which is where the Fig. 6 throttle trade-off lives.
        assert!(regs >= 200, "expected a register-heavy kernel, got {regs}");
        assert!(gpu.occupancy.unwrap() > 0.0);
        assert_eq!(gpu.matches_serial, Some(true), "gpu grid diverged from single-core");
    }

    #[test]
    fn anchor_comparison_is_bit_identical() {
        let cfg = tiny_cfg();
        let r = anchor_comparison(&cfg, 30, 2).expect("anchor runs");
        assert!(r.outputs_match, "{r:?}");
        assert!(r.serial_median_s > 0.0 && r.sharded_median_s > 0.0);
        assert!(r.grid_mcpu_median_s > 0.0);
        assert!(r.chunks > 0);
    }
}
