//! Wire protocol of the distributed sweep: length-prefixed, checksummed
//! frames over a local stream socket.
//!
//! # Framing
//!
//! Every message is one frame:
//!
//! ```text
//! +----------------+----------------------+------------------+
//! | len: u32 LE    | checksum: u64 LE     | payload: len B   |
//! +----------------+----------------------+------------------+
//! ```
//!
//! `len` counts payload bytes only and is bounded by [`MAX_FRAME`] so a
//! garbled length cannot drive an absurd allocation. `checksum` is FNV-1a
//! (64-bit) over the payload; a mismatch means the frame was corrupted in
//! flight (or deliberately garbled by the fault injector) and surfaces as
//! [`ProtoError::Corrupt`] — the coordinator treats a corrupting connection
//! as a dead worker and re-issues its leases, never trusting partial bytes.
//!
//! # Payload encoding
//!
//! The payload is a tag byte followed by the message fields in the manual
//! little-endian encoding of the artifact codec: `u32`/`u64` LE, `f64` as
//! raw IEEE bits (bit-identity survives the wire by construction), strings
//! and byte blobs length-prefixed. Decoding is bounds-checked everywhere;
//! malformed input yields a typed error, never a panic or partial state.
//!
//! # Messages
//!
//! * [`Msg::Hello`] — worker → coordinator, once per connection: identifies
//!   the worker slot (assigned by the spawner) and its pid.
//! * [`Msg::Job`] — coordinator → worker: the model family + scale to
//!   rebuild from the registry, the serialized artifact (compiled once by
//!   the coordinator), per-worker execution knobs, and the worker's slice
//!   of the fault plan.
//! * [`Msg::Lease`] — coordinator → worker: run trials
//!   `[start, start + count)` of the global trial space under `epoch`.
//! * [`Msg::LeaseResult`] — worker → coordinator: the lease's per-trial
//!   outputs/passes plus its [`distill::ShardStats`]. Results whose epoch
//!   does not match the lease's current epoch are *fenced* (dropped) by the
//!   coordinator: a lease that timed out and was re-issued bumps the epoch,
//!   so a straggler's late answer can never race the re-issue.
//! * [`Msg::Heartbeat`] — worker → coordinator liveness signal.
//! * [`Msg::Shutdown`] — coordinator → worker: drain and exit.

use distill::{EngineStats, ShardStats};
use std::io::{self, Read, Write};

/// Upper bound on a frame's payload size (64 MiB): large enough for any
/// realistic lease result, small enough that a corrupt length prefix cannot
/// ask for an absurd allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Interval at which a healthy worker emits [`Msg::Heartbeat`].
pub const HEARTBEAT_INTERVAL_MS: u64 = 25;

/// Errors of the framed protocol.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The peer closed the stream at a frame boundary (normal for a worker
    /// that exited).
    Eof,
    /// The frame or payload failed validation (bad checksum, oversized
    /// length, truncated payload, unknown tag, …).
    Corrupt(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "socket error: {e}"),
            ProtoError::Eof => write!(f, "peer closed the stream"),
            ProtoError::Corrupt(m) => write!(f, "corrupt frame: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// FNV-1a over `bytes` — the frame checksum. Not cryptographic; it detects
/// accidental corruption and the fault injector's deliberate garbling.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// The work order a worker receives once per connection.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Registry key of the model family; the worker rebuilds the model and
    /// its trial inputs deterministically from the registry rather than
    /// shipping the composition over the wire.
    pub family: String,
    /// Whether to build the paper-scale (`true`) or reduced workload.
    pub scale_full: bool,
    /// Trials per compiled batch for lease execution.
    pub batch: u64,
    /// Worker-local shard threads per lease.
    pub threads: u64,
    /// The serialized compiled artifact ([`distill::serialize_artifact`]),
    /// produced once by the coordinator and deserialized by every worker —
    /// workers never compile.
    pub artifact: Vec<u8>,
    /// This worker's slice of the fault plan (inert in production).
    pub faults: WorkerFaults,
}

/// A completed lease's payload.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseResult {
    /// First absolute trial index of the lease.
    pub start: u64,
    /// Trials the lease covered.
    pub count: u64,
    /// Epoch the lease was issued under; the coordinator fences results
    /// whose epoch is stale.
    pub epoch: u32,
    /// Per-trial outputs, bit-exact (shipped as raw IEEE bits).
    pub outputs: Vec<Vec<f64>>,
    /// Per-trial scheduler pass counts.
    pub passes: Vec<u64>,
    /// Shard statistics of the lease's local run.
    pub shards: ShardStats,
}

/// A protocol message. See the module docs for the conversation flow.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Worker → coordinator: identify this connection.
    Hello {
        /// Worker slot assigned by the spawner.
        worker: u32,
        /// Worker process id (coordinator logs / diagnostics).
        pid: u64,
    },
    /// Coordinator → worker: the job description.
    Job(Job),
    /// Coordinator → worker: run `[start, start + count)` under `epoch`.
    Lease {
        /// First absolute trial index.
        start: u64,
        /// Trial count.
        count: u64,
        /// Issue epoch (fencing token).
        epoch: u32,
    },
    /// Worker → coordinator: a completed lease.
    LeaseResult(LeaseResult),
    /// Worker → coordinator: liveness.
    Heartbeat {
        /// Worker slot.
        worker: u32,
    },
    /// Coordinator → worker: drain and exit.
    Shutdown,
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// One worker's slice of a [`FaultPlan`]. All fields count *completed
/// leases* on that worker; `u64::MAX`-as-`None` is encoded explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkerFaults {
    /// Die (process exit / connection drop) after completing this many
    /// leases.
    pub kill_after: Option<u64>,
    /// Compute but never send the result of the lease at this index, once.
    pub drop_after: Option<u64>,
    /// Garble the frame of the result at this index (checksum mismatch at
    /// the receiver), once.
    pub garble_after: Option<u64>,
    /// Extra delay added to every heartbeat, to drive the staleness path.
    pub heartbeat_delay_ms: u64,
}

impl WorkerFaults {
    /// Whether this slice injects nothing.
    pub fn is_inert(&self) -> bool {
        *self == WorkerFaults::default()
    }
}

/// The dsweep fault schedule is the unified chaos plan from
/// [`distill::chaos`]: the dsweep fields (`kill`, `drop`, `garble`,
/// `heartbeat_delay_ms`, `seed`) are consumed here, sliced per worker by
/// [`worker_faults`]; the rest of the plan (trial panics, build panics,
/// read corruption, delays) drives the process-global chaos hooks. The
/// old `FaultPlan` name remains the public surface of this crate.
pub use distill::chaos::ChaosPlan as FaultPlan;

/// The deprecated environment variable historically read by
/// `FaultPlan::from_env`; still honored as a compatibility alias when
/// [`distill::chaos::CHAOS_ENV`] (`DISTILL_CHAOS`) is unset.
pub const FAULTS_ENV: &str = distill::chaos::DSWEEP_FAULTS_ENV;

/// Slice `plan` down to the faults worker `worker` must self-inject.
pub fn worker_faults(plan: &FaultPlan, worker: u32) -> WorkerFaults {
    let pick = |f: Option<(u32, u64)>| f.filter(|(w, _)| *w == worker).map(|(_, k)| k);
    WorkerFaults {
        kill_after: pick(plan.kill),
        drop_after: pick(plan.drop),
        garble_after: pick(plan.garble),
        heartbeat_delay_ms: plan.heartbeat_delay_ms,
    }
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

const TAG_HELLO: u8 = 1;
const TAG_JOB: u8 = 2;
const TAG_LEASE: u8 = 3;
const TAG_LEASE_RESULT: u8 = 4;
const TAG_HEARTBEAT: u8 = 5;
const TAG_SHUTDOWN: u8 = 6;

#[derive(Default)]
struct Enc {
    bytes: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(n) => {
                self.u8(1);
                self.u64(n);
            }
            None => self.u8(0),
        }
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes.extend_from_slice(s.as_bytes());
    }
    fn blob(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.bytes.extend_from_slice(b);
    }
    fn stats(&mut self, s: &EngineStats) {
        self.u64(s.instructions);
        self.u64(s.calls);
        self.u64(s.loads);
        self.u64(s.stores);
        self.u64(s.frame_pool_hits);
        self.u64(s.steals);
        self.u64(s.fused_ops);
        self.u64(s.frame_slots);
        self.u64(s.tier_promotions);
    }
    fn shards(&mut self, s: &ShardStats) {
        self.u64(s.threads as u64);
        self.u64(s.chunks as u64);
        self.u64(s.batch as u64);
        self.u64(s.steals);
        self.stats(&s.stats);
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.pos + n > self.bytes.len() {
            return Err(ProtoError::Corrupt(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, ProtoError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => Err(ProtoError::Corrupt(format!("bad option tag {t}"))),
        }
    }
    /// A length that must still be representable in the remaining payload
    /// (each element needs at least one byte), so a garbled count cannot
    /// drive an absurd reservation.
    fn len(&mut self, per_item: usize) -> Result<usize, ProtoError> {
        let n = self.u32()? as usize;
        let remaining = self.bytes.len() - self.pos;
        if n.saturating_mul(per_item.max(1)) > remaining {
            return Err(ProtoError::Corrupt(format!(
                "implausible element count {n} with {remaining} bytes left"
            )));
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String, ProtoError> {
        let n = self.len(1)?;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| ProtoError::Corrupt("string is not UTF-8".into()))
    }
    fn blob(&mut self) -> Result<Vec<u8>, ProtoError> {
        let n = self.len(1)?;
        Ok(self.take(n)?.to_vec())
    }
    fn stats(&mut self) -> Result<EngineStats, ProtoError> {
        Ok(EngineStats {
            instructions: self.u64()?,
            calls: self.u64()?,
            loads: self.u64()?,
            stores: self.u64()?,
            frame_pool_hits: self.u64()?,
            steals: self.u64()?,
            fused_ops: self.u64()?,
            frame_slots: self.u64()?,
            tier_promotions: self.u64()?,
        })
    }
    fn shards(&mut self) -> Result<ShardStats, ProtoError> {
        Ok(ShardStats {
            threads: self.u64()? as usize,
            chunks: self.u64()? as usize,
            batch: self.u64()? as usize,
            steals: self.u64()?,
            stats: self.stats()?,
        })
    }
    fn done(&self) -> Result<(), ProtoError> {
        if self.pos != self.bytes.len() {
            return Err(ProtoError::Corrupt(format!(
                "{} trailing bytes after message",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Encode a message's payload (tag + fields, no frame header).
pub fn encode_msg(msg: &Msg) -> Vec<u8> {
    let mut e = Enc::default();
    match msg {
        Msg::Hello { worker, pid } => {
            e.u8(TAG_HELLO);
            e.u32(*worker);
            e.u64(*pid);
        }
        Msg::Job(job) => {
            e.u8(TAG_JOB);
            e.str(&job.family);
            e.u8(job.scale_full as u8);
            e.u64(job.batch);
            e.u64(job.threads);
            e.blob(&job.artifact);
            e.opt_u64(job.faults.kill_after);
            e.opt_u64(job.faults.drop_after);
            e.opt_u64(job.faults.garble_after);
            e.u64(job.faults.heartbeat_delay_ms);
        }
        Msg::Lease {
            start,
            count,
            epoch,
        } => {
            e.u8(TAG_LEASE);
            e.u64(*start);
            e.u64(*count);
            e.u32(*epoch);
        }
        Msg::LeaseResult(r) => {
            e.u8(TAG_LEASE_RESULT);
            e.u64(r.start);
            e.u64(r.count);
            e.u32(r.epoch);
            e.u32(r.outputs.len() as u32);
            for out in &r.outputs {
                e.u32(out.len() as u32);
                for &v in out {
                    e.f64(v);
                }
            }
            e.u32(r.passes.len() as u32);
            for &p in &r.passes {
                e.u64(p);
            }
            e.shards(&r.shards);
        }
        Msg::Heartbeat { worker } => {
            e.u8(TAG_HEARTBEAT);
            e.u32(*worker);
        }
        Msg::Shutdown => e.u8(TAG_SHUTDOWN),
    }
    e.bytes
}

/// Decode a message payload (the inverse of [`encode_msg`]).
pub fn decode_msg(payload: &[u8]) -> Result<Msg, ProtoError> {
    let mut d = Dec {
        bytes: payload,
        pos: 0,
    };
    let msg = match d.u8()? {
        TAG_HELLO => Msg::Hello {
            worker: d.u32()?,
            pid: d.u64()?,
        },
        TAG_JOB => Msg::Job(Job {
            family: d.str()?,
            scale_full: d.u8()? != 0,
            batch: d.u64()?,
            threads: d.u64()?,
            artifact: d.blob()?,
            faults: WorkerFaults {
                kill_after: d.opt_u64()?,
                drop_after: d.opt_u64()?,
                garble_after: d.opt_u64()?,
                heartbeat_delay_ms: d.u64()?,
            },
        }),
        TAG_LEASE => Msg::Lease {
            start: d.u64()?,
            count: d.u64()?,
            epoch: d.u32()?,
        },
        TAG_LEASE_RESULT => {
            let start = d.u64()?;
            let count = d.u64()?;
            let epoch = d.u32()?;
            let n_out = d.len(4)?;
            let mut outputs = Vec::with_capacity(n_out);
            for _ in 0..n_out {
                let n = d.len(8)?;
                let mut row = Vec::with_capacity(n);
                for _ in 0..n {
                    row.push(d.f64()?);
                }
                outputs.push(row);
            }
            let n_passes = d.len(8)?;
            let mut passes = Vec::with_capacity(n_passes);
            for _ in 0..n_passes {
                passes.push(d.u64()?);
            }
            Msg::LeaseResult(LeaseResult {
                start,
                count,
                epoch,
                outputs,
                passes,
                shards: d.shards()?,
            })
        }
        TAG_HEARTBEAT => Msg::Heartbeat { worker: d.u32()? },
        TAG_SHUTDOWN => Msg::Shutdown,
        t => return Err(ProtoError::Corrupt(format!("unknown message tag {t}"))),
    };
    d.done()?;
    Ok(msg)
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one framed message. The frame is assembled in memory and written
/// with a single `write_all`, so concurrent writers serialized by a mutex
/// can never interleave partial frames.
pub fn write_msg(w: &mut impl Write, msg: &Msg) -> Result<(), ProtoError> {
    write_frame(w, &encode_msg(msg), false)
}

/// Write one framed message with the payload deliberately garbled *after*
/// the checksum was computed — the fault injector's frame-corruption path.
/// The receiver must detect it as [`ProtoError::Corrupt`].
pub fn write_msg_garbled(w: &mut impl Write, msg: &Msg) -> Result<(), ProtoError> {
    write_frame(w, &encode_msg(msg), true)
}

fn write_frame(w: &mut impl Write, payload: &[u8], garble: bool) -> Result<(), ProtoError> {
    let mut frame = Vec::with_capacity(12 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    if garble && !payload.is_empty() {
        // Flip a bit mid-payload; the checksum above describes the clean
        // bytes, so the receiver's verification must fail.
        let idx = 12 + payload.len() / 2;
        frame[idx] ^= 0x40;
    }
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read one framed message. EOF *at a frame boundary* is [`ProtoError::Eof`]
/// (the peer exited); EOF inside a frame is [`ProtoError::Corrupt`].
pub fn read_msg(r: &mut impl Read) -> Result<Msg, ProtoError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(ProtoError::Eof),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(ProtoError::Corrupt(format!(
            "frame length {len} exceeds the {MAX_FRAME}-byte bound"
        )));
    }
    let mut sum_buf = [0u8; 8];
    r.read_exact(&mut sum_buf)
        .map_err(|e| truncated_frame(&e))?;
    let want = u64::from_le_bytes(sum_buf);
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| truncated_frame(&e))?;
    if fnv1a(&payload) != want {
        return Err(ProtoError::Corrupt("frame checksum mismatch".into()));
    }
    decode_msg(&payload)
}

fn truncated_frame(e: &io::Error) -> ProtoError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        ProtoError::Corrupt("stream ended inside a frame".into())
    } else {
        ProtoError::Io(io::Error::new(e.kind(), e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> Msg {
        Msg::LeaseResult(LeaseResult {
            start: 40,
            count: 3,
            epoch: 2,
            outputs: vec![vec![1.5, -0.0, f64::NAN], vec![], vec![42.0]],
            passes: vec![7, 9, 11],
            shards: ShardStats {
                threads: 2,
                chunks: 3,
                batch: 4,
                steals: 1,
                stats: EngineStats {
                    instructions: 1000,
                    calls: 10,
                    loads: 20,
                    stores: 30,
                    frame_pool_hits: 5,
                    steals: 1,
                    fused_ops: 600,
                    frame_slots: 40,
                    tier_promotions: 0,
                },
            },
        })
    }

    fn round_trip(msg: &Msg) -> Msg {
        let mut buf = Vec::new();
        write_msg(&mut buf, msg).unwrap();
        read_msg(&mut &buf[..]).unwrap()
    }

    #[test]
    fn every_message_round_trips() {
        let msgs = [
            Msg::Hello { worker: 3, pid: 12345 },
            Msg::Job(Job {
                family: "predator_prey_2".into(),
                scale_full: false,
                batch: 8,
                threads: 2,
                artifact: vec![1, 2, 3, 250],
                faults: WorkerFaults {
                    kill_after: Some(1),
                    drop_after: None,
                    garble_after: Some(0),
                    heartbeat_delay_ms: 50,
                },
            }),
            Msg::Lease {
                start: 128,
                count: 16,
                epoch: 4,
            },
            sample_result(),
            Msg::Heartbeat { worker: 1 },
            Msg::Shutdown,
        ];
        for msg in &msgs {
            // Debug-compare: `sample_result` carries a NaN, which IEEE
            // equality would reject even on a perfect round trip (bit
            // exactness is pinned by `floats_survive_the_wire_bit_exactly`).
            assert_eq!(
                format!("{:?}", round_trip(msg)),
                format!("{msg:?}"),
                "round trip altered the message"
            );
        }
    }

    #[test]
    fn floats_survive_the_wire_bit_exactly() {
        let Msg::LeaseResult(r) = round_trip(&sample_result()) else {
            panic!("wrong decode");
        };
        assert_eq!(r.outputs[0][0].to_bits(), 1.5f64.to_bits());
        assert_eq!(r.outputs[0][1].to_bits(), (-0.0f64).to_bits());
        assert!(r.outputs[0][2].is_nan());
        assert_eq!(r.outputs[0][2].to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn garbled_frames_are_detected() {
        let mut buf = Vec::new();
        write_msg_garbled(&mut buf, &sample_result()).unwrap();
        assert!(matches!(read_msg(&mut &buf[..]), Err(ProtoError::Corrupt(_))));
    }

    #[test]
    fn truncated_and_bit_flipped_frames_never_panic() {
        let mut clean = Vec::new();
        write_msg(&mut clean, &sample_result()).unwrap();
        for cut in 0..clean.len() {
            let r = read_msg(&mut &clean[..cut]);
            assert!(r.is_err(), "truncation at {cut} must not decode");
        }
        for i in (0..clean.len()).step_by(7) {
            let mut bad = clean.clone();
            bad[i] ^= 0x10;
            // Any outcome but a panic or a silently wrong decode is fine;
            // a flip in the length prefix may shift framing, but the
            // checksum guards the payload.
            let _ = read_msg(&mut &bad[..]);
        }
    }

    #[test]
    fn eof_at_boundary_is_distinguished_from_mid_frame() {
        assert!(matches!(read_msg(&mut &[][..]), Err(ProtoError::Eof)));
        let mut buf = Vec::new();
        write_msg(&mut buf, &Msg::Shutdown).unwrap();
        buf.truncate(6);
        assert!(matches!(read_msg(&mut &buf[..]), Err(ProtoError::Corrupt(_))));
    }

    #[test]
    fn fault_plan_parses_and_slices_per_worker() {
        let plan = FaultPlan::parse("kill=1@2, drop=0@1, hbdelay=40, seed=9").unwrap();
        assert_eq!(plan.kill, Some((1, 2)));
        assert_eq!(plan.drop, Some((0, 1)));
        assert_eq!(plan.heartbeat_delay_ms, 40);
        assert_eq!(plan.seed, 9);
        let w1 = worker_faults(&plan, 1);
        assert_eq!(w1.kill_after, Some(2));
        assert_eq!(w1.drop_after, None);
        let w0 = worker_faults(&plan, 0);
        assert_eq!(w0.kill_after, None);
        assert_eq!(w0.drop_after, Some(1));
        assert!(FaultPlan::parse("kill=oops").is_err());
        assert!(FaultPlan::parse("explode=1@1").is_err());
        assert!(FaultPlan::parse("").unwrap().is_inert());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        for seed in 0..32u64 {
            let a = FaultPlan::seeded(seed, 4);
            let b = FaultPlan::seeded(seed, 4);
            assert_eq!(a, b);
            let (victim, after) = a.kill.unwrap();
            assert!(victim < 4, "victim {victim} out of range");
            assert_eq!(after, 0, "seeded kills land on the first lease grab");
        }
    }
}
