//! `distill-sweep-worker` — one worker process of the distributed sweep.
//!
//! Spawned by the coordinator (`distill_sweep::dsweep_family`) with the
//! coordinator's socket path and this worker's slot index:
//!
//! ```text
//! distill-sweep-worker <socket-path> <worker-index>
//! ```
//!
//! The worker connects, identifies itself, receives the job (registry key +
//! serialized artifact) and then executes trial leases until shutdown. It
//! holds no configuration of its own — everything comes over the wire — so
//! it can be pointed at any coordinator, including one on another host via
//! a forwarded socket.

use distill_sweep::worker::{worker_main, WorkerCtx};
use std::os::unix::net::UnixStream;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: distill-sweep-worker <socket-path> <worker-index>");
        std::process::exit(2);
    }
    let worker: u32 = match args[2].parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("distill-sweep-worker: bad worker index '{}'", args[2]);
            std::process::exit(2);
        }
    };
    let stream = match UnixStream::connect(&args[1]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("distill-sweep-worker: connecting {}: {e}", args[1]);
            std::process::exit(1);
        }
    };
    let ctx = WorkerCtx {
        worker,
        hard_exit: true,
    };
    if let Err(e) = worker_main(stream, ctx) {
        eprintln!("distill-sweep-worker[{worker}]: {e}");
        std::process::exit(1);
    }
}
