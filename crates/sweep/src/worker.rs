//! The distributed sweep worker: connect, receive a job, execute leases.
//!
//! A worker never compiles and never decides what to run: the coordinator
//! ships the serialized artifact and the registry key, the worker rebuilds
//! the model + trial inputs deterministically from the registry (both sides
//! share the same build), deserializes the artifact, and executes each
//! lease `[start, start + count)` through the ordinary `Session`/`Runner`
//! contract with [`distill::RunSpec::with_offset`] — so a lease's outputs
//! are bitwise the same slice a serial run would produce, no matter which
//! worker runs it, how many threads it shards across, or how many times the
//! lease was re-issued before landing here.
//!
//! The same `worker_main` body serves both deployment shapes: the
//! `distill-sweep-worker` binary (process isolation, hard exit on the kill
//! fault) and an in-process thread the coordinator falls back to when no
//! binary can be spawned (same protocol over the same socket, soft exit).

use crate::proto::{
    self, Msg, ProtoError, WorkerFaults, HEARTBEAT_INTERVAL_MS,
};
use distill::{deserialize_artifact, RunSpec, Runner, Session, ShardStats};
use distill_models::{registry, Scale};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How a worker was deployed — decides what "die" means for the kill fault.
#[derive(Debug, Clone, Copy)]
pub struct WorkerCtx {
    /// Worker slot assigned by the spawner (echoed in `Hello`/`Heartbeat`).
    pub worker: u32,
    /// `true` in the worker *process* (kill fault = `process::exit`);
    /// `false` for an in-process worker thread (kill fault = drop the
    /// connection and return, so a test process is never taken down).
    pub hard_exit: bool,
}

fn die(ctx: &WorkerCtx) -> Result<(), String> {
    if ctx.hard_exit {
        // Abrupt by design: no shutdown handshake, no flush — the
        // coordinator must recover from exactly this.
        std::process::exit(3);
    }
    Ok(())
}

/// Run the worker protocol over `stream` until shutdown, disconnect, or an
/// injected death. Errors are returned as strings for the binary to print;
/// the coordinator only ever observes them as a closed connection.
pub fn worker_main(stream: UnixStream, ctx: WorkerCtx) -> Result<(), String> {
    let mut reader = stream;
    let writer = Arc::new(Mutex::new(
        reader.try_clone().map_err(|e| e.to_string())?,
    ));
    send(&writer, &Msg::Hello {
        worker: ctx.worker,
        pid: std::process::id() as u64,
    })?;

    // The job arrives first; heartbeats only start once we know the fault
    // plan's heartbeat delay.
    let job = match proto::read_msg(&mut reader) {
        Ok(Msg::Job(job)) => job,
        Ok(other) => return Err(format!("expected Job, got {other:?}")),
        Err(e) => return Err(format!("reading job: {e}")),
    };

    let spec = registry::by_name(&job.family)
        .ok_or_else(|| format!("unknown model family '{}'", job.family))?;
    let scale = if job.scale_full { Scale::Full } else { Scale::Reduced };
    let w = spec.build(scale);
    let artifact = deserialize_artifact(&job.artifact)
        .map_err(|e| format!("artifact rejected: {e}"))?;
    let mut runner: Box<dyn Runner> = Session::new(&w.model)
        .build_with(artifact)
        .map_err(|e| format!("building runner: {e}"))?;

    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = spawn_heartbeat(&writer, &stop, ctx.worker, &job.faults);

    let faults = job.faults;
    let mut completed: u64 = 0;
    let mut dropped = false;
    let mut garbled = false;
    let outcome = loop {
        match proto::read_msg(&mut reader) {
            Ok(Msg::Lease { start, count, epoch }) => {
                if faults.kill_after.is_some_and(|k| completed >= k) {
                    die(&ctx)?;
                    break Ok(());
                }
                let lease_spec = RunSpec::new(w.inputs.clone(), count as usize)
                    .with_batch(job.batch.max(1) as usize)
                    .with_shards(job.threads.max(1) as usize)
                    .with_offset(start as usize);
                let mut lease_span = distill_telemetry::span("dsweep.worker_lease");
                lease_span.arg_i64("worker", ctx.worker as i64);
                lease_span.arg_i64("start", start as i64);
                lease_span.arg_i64("count", count as i64);
                lease_span.arg_i64("epoch", epoch as i64);
                let result = match runner.run(&lease_spec) {
                    Ok(r) => r,
                    Err(e) => break Err(format!("lease [{start}, +{count}) failed: {e}")),
                };
                drop(lease_span);
                let mut shards = result.shards.unwrap_or(ShardStats {
                    threads: 1,
                    chunks: 1,
                    batch: job.batch.max(1) as usize,
                    steals: 0,
                    stats: Default::default(),
                });
                // Ship the full per-run counter delta (the serial fallback
                // path has no worker threads, but its work still counts).
                shards.stats = result.stats;
                let msg = Msg::LeaseResult(proto::LeaseResult {
                    start,
                    count,
                    epoch,
                    outputs: result.outputs,
                    passes: result.passes,
                    shards,
                });
                if faults.drop_after == Some(completed) && !dropped {
                    // Computed but never sent: the coordinator's lease
                    // deadline must expire and re-issue.
                    dropped = true;
                } else if faults.garble_after == Some(completed) && !garbled {
                    garbled = true;
                    if send_garbled(&writer, &msg).is_err() {
                        break Ok(());
                    }
                } else if send(&writer, &msg).is_err() {
                    break Ok(());
                }
                completed += 1;
            }
            Ok(Msg::Shutdown) => break Ok(()),
            Ok(other) => break Err(format!("unexpected message: {other:?}")),
            Err(ProtoError::Eof) => break Ok(()),
            Err(e) => break Err(format!("reading lease: {e}")),
        }
    };

    stop.store(true, Ordering::SeqCst);
    let _ = heartbeat.join();
    outcome
}

fn spawn_heartbeat(
    writer: &Arc<Mutex<UnixStream>>,
    stop: &Arc<AtomicBool>,
    worker: u32,
    faults: &WorkerFaults,
) -> std::thread::JoinHandle<()> {
    let writer = Arc::clone(writer);
    let stop = Arc::clone(stop);
    let delay = faults.heartbeat_delay_ms;
    std::thread::spawn(move || {
        while !stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(HEARTBEAT_INTERVAL_MS + delay));
            let mut w = writer.lock().expect("heartbeat writer lock");
            if proto::write_msg(&mut *w, &Msg::Heartbeat { worker }).is_err() {
                // Coordinator gone; the main loop will observe EOF too.
                return;
            }
        }
    })
}

fn send(writer: &Arc<Mutex<UnixStream>>, msg: &Msg) -> Result<(), String> {
    let mut w = writer.lock().expect("writer lock");
    proto::write_msg(&mut *w, msg).map_err(|e| e.to_string())
}

fn send_garbled(writer: &Arc<Mutex<UnixStream>>, msg: &Msg) -> Result<(), String> {
    let mut w = writer.lock().expect("writer lock");
    proto::write_msg_garbled(&mut *w, msg).map_err(|e| e.to_string())
}
