//! Telemetry probes for the distributed sweep.
//!
//! The coordinator's unit of work is the **lease**, and its lifecycle is
//! what the probes narrate: `dsweep.leases_issued` / `dsweep.lease` spans
//! when a window goes out, `dsweep.leases_completed` when its result is
//! accepted, and — on the recovery paths — `dsweep.leases_reissued`,
//! `dsweep.epoch_bumps`, `dsweep.fenced_stale` and `dsweep.worker_deaths`
//! counters with matching instant events (`dsweep.lease_reissued`,
//! `dsweep.worker_death`, `dsweep.fenced_result`). `dsweep.heartbeats`
//! counts liveness traffic. Worker-side lease execution records
//! `dsweep.worker_lease` spans (visible in-process for thread-mode
//! workers; process-mode workers trace into their own process).
//!
//! A completed lease's span stretches from the moment its `Msg::Lease`
//! frame was written to the moment the coordinator accepted the result —
//! so a chrome trace shows every lease in flight, with re-issues appearing
//! as instant markers between attempts.

use distill_telemetry::{self as telemetry, Counter};
use std::sync::OnceLock;

pub(crate) struct DsweepProbes {
    pub leases_issued: &'static Counter,
    pub leases_completed: &'static Counter,
    pub leases_reissued: &'static Counter,
    pub epoch_bumps: &'static Counter,
    pub fenced_stale: &'static Counter,
    pub worker_deaths: &'static Counter,
    pub heartbeats: &'static Counter,
}

pub(crate) fn dsweep_probes() -> &'static DsweepProbes {
    static PROBES: OnceLock<DsweepProbes> = OnceLock::new();
    PROBES.get_or_init(|| {
        let reg = telemetry::registry();
        DsweepProbes {
            leases_issued: reg.counter("dsweep.leases_issued"),
            leases_completed: reg.counter("dsweep.leases_completed"),
            leases_reissued: reg.counter("dsweep.leases_reissued"),
            epoch_bumps: reg.counter("dsweep.epoch_bumps"),
            fenced_stale: reg.counter("dsweep.fenced_stale"),
            worker_deaths: reg.counter("dsweep.worker_deaths"),
            heartbeats: reg.counter("dsweep.heartbeats"),
        }
    })
}

/// Record a lease re-issue (deadline expiry or worker death): counters
/// plus the instant event that marks the bump in the chrome trace.
pub(crate) fn record_reissue(start: usize, count: usize, new_epoch: u32, attempts: u32) {
    let p = dsweep_probes();
    p.leases_reissued.inc();
    p.epoch_bumps.inc();
    telemetry::instant(
        "dsweep.lease_reissued",
        vec![
            ("start", telemetry::ArgValue::I64(start as i64)),
            ("count", telemetry::ArgValue::I64(count as i64)),
            ("epoch", telemetry::ArgValue::I64(new_epoch as i64)),
            ("attempts", telemetry::ArgValue::I64(attempts as i64)),
        ],
    );
}
