//! The distributed sweep coordinator: compile once, lease the trial space,
//! survive the workers.
//!
//! ```text
//!                    ┌────────────────────────────┐
//!                    │        coordinator         │
//!                    │  compile → serialize once  │
//!                    │  leases: (start,count,epoch)│
//!                    └───┬──────────┬──────────┬──┘
//!            unix socket │          │          │  frames: len|fnv64|payload
//!                 ┌──────┴───┐ ┌────┴─────┐ ┌──┴───────┐
//!                 │ worker 0 │ │ worker 1 │ │ worker N │   (process or thread)
//!                 │ threads×T│ │ threads×T│ │ threads×T│
//!                 └──────────┘ └──────────┘ └──────────┘
//! ```
//!
//! The trial space `[0, trials)` is carved into fixed lease windows. Each
//! lease is issued to one worker under an **epoch**; a worker death (EOF,
//! stale heartbeat) or a lease deadline bumps the epoch and re-queues the
//! window with exponential backoff, and any result carrying a stale epoch is
//! **fenced** — dropped without inspection — so a straggler can never race
//! its own replacement. Because trials are location-independent (PRNG
//! streams and input cycling key off the absolute trial index, shipped via
//! [`distill::RunSpec::with_offset`]), the stitched outputs are bitwise
//! identical to a serial run **at any topology and under any fault
//! schedule** — re-running a lease is always safe, which is what makes the
//! recovery story this simple.
//!
//! When no worker can be spawned (or every worker dies), the coordinator
//! degrades to the in-process path: remaining leases run locally through
//! the same offset-windowed `RunSpec`, so a missing binary or a hostile
//! fault plan degrades throughput, never correctness.

use crate::probes::{dsweep_probes, record_reissue};
use crate::proto::{self, FaultPlan, Job, Msg, ProtoError};
use crate::worker::{worker_main, WorkerCtx};
use distill_telemetry::{self as telemetry, ArgValue};
use distill::{
    compile, serialize_artifact, CompileConfig, DistillError, RunSpec, Runner, Session,
    ShardStats,
};
use distill::ChunkQueue;
use distill_models::{registry, Scale};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How workers are deployed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerMode {
    /// Spawn `distill-sweep-worker` processes when the binary can be found,
    /// fall back to in-process worker threads otherwise (the default: test
    /// harnesses that never build dependency binaries still exercise the
    /// full protocol).
    Auto,
    /// Require worker processes; zero spawned processes degrades straight
    /// to the local in-process path.
    Process,
    /// In-process worker threads speaking the same socket protocol.
    Thread,
}

/// Configuration of a distributed sweep.
#[derive(Debug, Clone)]
pub struct DsweepConfig {
    /// Worker count (processes or threads, by `mode`).
    pub workers: usize,
    /// Shard threads *inside* each worker.
    pub threads: usize,
    /// Trials per compiled batch within a lease.
    pub batch: usize,
    /// Trials per lease window.
    pub lease_trials: usize,
    /// Workload scale preset.
    pub scale: Scale,
    /// Override of the registry's per-scale sweep trial count.
    pub trials: Option<usize>,
    /// Compile-time knobs (the artifact is compiled once, here).
    pub compile: CompileConfig,
    /// Deployment shape.
    pub mode: WorkerMode,
    /// Deterministic fault schedule (inert by default).
    pub faults: FaultPlan,
    /// Re-issue a lease whose result has not arrived within this deadline.
    pub lease_timeout: Duration,
    /// Declare a worker dead when no heartbeat arrived within this window.
    pub heartbeat_timeout: Duration,
}

impl Default for DsweepConfig {
    fn default() -> Self {
        DsweepConfig {
            workers: 2,
            threads: 2,
            batch: 8,
            lease_trials: 16,
            scale: Scale::Reduced,
            trials: None,
            compile: CompileConfig::default(),
            mode: WorkerMode::Auto,
            faults: FaultPlan::default(),
            lease_timeout: Duration::from_secs(5),
            heartbeat_timeout: Duration::from_secs(2),
        }
    }
}

/// What a distributed sweep did and produced.
#[derive(Debug, Clone)]
pub struct DsweepReport {
    /// Registry key of the swept family.
    pub family: String,
    /// Built model name.
    pub model: String,
    /// Trials executed.
    pub trials: usize,
    /// Workers requested by the config.
    pub workers_requested: usize,
    /// Workers that actually connected.
    pub workers_connected: usize,
    /// Deployment label: `process`, `thread`, or `in-process`, with
    /// `+fallback` appended when leases finished on the local path.
    pub mode: String,
    /// Lease windows the trial space was carved into.
    pub leases: usize,
    /// Leases re-issued after a death or deadline (also folded into the
    /// merged [`ShardStats::steals`] — a re-issue *is* redistribution).
    pub reissued: u64,
    /// Results dropped because their epoch was stale.
    pub fenced_stale: u64,
    /// Workers that died (EOF, stale heartbeat, corrupt frame).
    pub worker_deaths: u64,
    /// Highest epoch any lease reached (0 = no recovery needed).
    pub max_epoch: u32,
    /// Leases that completed on the local in-process fallback path.
    pub fallback_leases: usize,
    /// Per-lease [`ShardStats`] merged across the whole sweep.
    pub shards: ShardStats,
    /// Wall-clock seconds for the lease phase (compilation excluded).
    pub elapsed_s: f64,
    /// Stitched per-trial outputs, in absolute trial order.
    pub outputs: Vec<Vec<f64>>,
    /// Stitched per-trial pass counts.
    pub passes: Vec<u64>,
}

/// Environment override for the worker binary path (tests, packaging).
pub const WORKER_BIN_ENV: &str = "DISTILL_SWEEP_WORKER";

/// Locate the `distill-sweep-worker` binary: the [`WORKER_BIN_ENV`]
/// override, then next to the current executable, then one directory up
/// (examples and test binaries live in subdirectories of the target
/// profile directory that holds the bins).
pub fn find_worker_bin() -> Option<PathBuf> {
    if let Ok(p) = std::env::var(WORKER_BIN_ENV) {
        let p = PathBuf::from(p);
        return p.is_file().then_some(p);
    }
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    for base in [Some(dir), dir.parent()].into_iter().flatten() {
        let candidate = base.join("distill-sweep-worker");
        if candidate.is_file() {
            return Some(candidate);
        }
    }
    None
}

// -- internal state ---------------------------------------------------------

/// What a completed lease contributes to the stitch: its window's outputs
/// and pass counters, in trial order.
type LeaseOutput = (Vec<Vec<f64>>, Vec<u64>);

struct LeaseState {
    start: usize,
    count: usize,
    epoch: u32,
    attempts: u32,
    done: bool,
    issued_to: Option<usize>,
    deadline: Option<Instant>,
    ready_at: Instant,
    /// Trace timestamp of the current issue ([`telemetry::now_us`]); the
    /// accepted result closes a `dsweep.lease` span started here.
    issued_us: u64,
}

struct WorkerSlot {
    write: Option<UnixStream>,
    alive: bool,
    last_heartbeat: Instant,
    busy_with: Option<usize>,
}

enum Event {
    Hello(usize, UnixStream),
    Msg(usize, Msg),
    Gone(usize),
}

fn backoff(attempts: u32) -> Duration {
    Duration::from_millis((10u64 << attempts.min(5)).min(320))
}

/// Attempts after which a lease is declared undeliverable — ten rounds of
/// re-issue with backoff means something is structurally broken, not flaky.
const MAX_LEASE_ATTEMPTS: u32 = 10;

static SOCKET_SEQ: AtomicU64 = AtomicU64::new(0);

fn socket_path() -> PathBuf {
    std::env::temp_dir().join(format!(
        "distill-dsweep-{}-{}.sock",
        std::process::id(),
        SOCKET_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn driver_err(m: impl Into<String>) -> DistillError {
    DistillError::Driver(m.into())
}

/// Run one family's trial space across the distributed topology.
///
/// # Errors
/// Unknown family, compilation failure, an undeliverable lease
/// (`MAX_LEASE_ATTEMPTS` exceeded), or a local-fallback run failure.
/// Worker deaths and timeouts are *not* errors — recovering from them is
/// the point.
pub fn dsweep_family(family: &str, cfg: &DsweepConfig) -> Result<DsweepReport, DistillError> {
    let spec = registry::by_name(family)
        .ok_or_else(|| driver_err(format!("unknown model family '{family}'")))?;
    let w = spec.build(cfg.scale);
    let trials = cfg.trials.unwrap_or_else(|| spec.sweep_trials(cfg.scale));
    let artifact = compile(&w.model, cfg.compile)?;
    // Serialized exactly once; every worker deserializes this buffer.
    let artifact_bytes = serialize_artifact(&artifact);

    // Carve the trial space into lease windows through the same range-queue
    // substrate the in-process shard path schedules with.
    let carve = ChunkQueue::over(0..trials, cfg.lease_trials.max(1));
    let now = Instant::now();
    let mut leases: Vec<LeaseState> = std::iter::from_fn(|| carve.grab())
        .map(|r| LeaseState {
            start: r.start,
            count: r.len(),
            epoch: 0,
            attempts: 0,
            done: false,
            issued_to: None,
            deadline: None,
            ready_at: now,
            issued_us: 0,
        })
        .collect();
    let mut results: Vec<Option<LeaseOutput>> = (0..leases.len()).map(|_| None).collect();

    let started = Instant::now();
    let mut report = DsweepReport {
        family: family.to_string(),
        model: w.model.name.clone(),
        trials,
        workers_requested: cfg.workers,
        workers_connected: 0,
        mode: String::new(),
        leases: leases.len(),
        reissued: 0,
        fenced_stale: 0,
        worker_deaths: 0,
        max_epoch: 0,
        fallback_leases: 0,
        shards: ShardStats {
            threads: 0,
            chunks: 0,
            batch: 0,
            steals: 0,
            stats: Default::default(),
        },
        elapsed_s: 0.0,
        outputs: Vec::with_capacity(trials),
        passes: Vec::with_capacity(trials),
    };

    // ---- spawn the topology ------------------------------------------------
    let path = socket_path();
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path)
        .map_err(|e| driver_err(format!("binding {}: {e}", path.display())))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| driver_err(e.to_string()))?;

    let (tx, rx) = mpsc::channel::<Event>();
    let stop = Arc::new(AtomicBool::new(false));
    let acceptor = spawn_acceptor(listener, tx.clone(), Arc::clone(&stop));

    let workers = cfg.workers.max(1);
    let mut children: Vec<std::process::Child> = Vec::new();
    let mut threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let use_process = match cfg.mode {
        WorkerMode::Process => true,
        WorkerMode::Thread => false,
        WorkerMode::Auto => find_worker_bin().is_some(),
    };
    let mut spawned = 0usize;
    if use_process {
        if let Some(bin) = find_worker_bin() {
            for idx in 0..workers {
                match std::process::Command::new(&bin)
                    .arg(&path)
                    .arg(idx.to_string())
                    .spawn()
                {
                    Ok(child) => {
                        children.push(child);
                        spawned += 1;
                    }
                    Err(_) => break,
                }
            }
        }
        report.mode = "process".into();
    } else {
        for idx in 0..workers {
            let path = path.clone();
            threads.push(std::thread::spawn(move || {
                let ctx = WorkerCtx {
                    worker: idx as u32,
                    hard_exit: false,
                };
                if let Ok(stream) = UnixStream::connect(&path) {
                    let _ = worker_main(stream, ctx);
                }
            }));
            spawned += 1;
        }
        report.mode = "thread".into();
    }

    // ---- lease loop --------------------------------------------------------
    let mut slots: Vec<WorkerSlot> = (0..workers)
        .map(|_| WorkerSlot {
            write: None,
            alive: false,
            busy_with: None,
            last_heartbeat: Instant::now(),
        })
        .collect();
    let hello_grace = Duration::from_secs(3);
    let assign_grace = Duration::from_secs(1);
    let mut undeliverable: Option<String> = None;

    'drive: loop {
        if spawned == 0 || leases.iter().all(|l| l.done) {
            break;
        }
        let now = Instant::now();

        // Deadline scan: an outstanding lease past its deadline is fenced
        // (epoch bump) and re-queued; the worker keeps crunching, but its
        // eventual answer carries the old epoch and is dropped.
        for lease in leases.iter_mut() {
            if lease.done || lease.issued_to.is_none() {
                continue;
            }
            if lease.deadline.is_some_and(|d| now >= d) {
                if let Some(slot) = lease.issued_to.take() {
                    slots[slot].busy_with = None;
                }
                lease.deadline = None;
                lease.epoch += 1;
                lease.attempts += 1;
                lease.ready_at = now + backoff(lease.attempts);
                report.reissued += 1;
                report.max_epoch = report.max_epoch.max(lease.epoch);
                if telemetry::enabled() {
                    record_reissue(lease.start, lease.count, lease.epoch, lease.attempts);
                }
                if lease.attempts > MAX_LEASE_ATTEMPTS {
                    undeliverable = Some(format!(
                        "lease [{}, +{}) exceeded {MAX_LEASE_ATTEMPTS} attempts",
                        lease.start, lease.count
                    ));
                    break 'drive;
                }
            }
        }

        // Heartbeat scan.
        for slot_idx in 0..slots.len() {
            if slots[slot_idx].alive
                && now.duration_since(slots[slot_idx].last_heartbeat) > cfg.heartbeat_timeout
            {
                bury_worker(slot_idx, &mut slots, &mut leases, &mut report, now);
            }
        }

        // Assignment: one lease per idle live worker. Held back until every
        // spawned worker has said Hello (or the grace expires): with at
        // least `workers` leases this guarantees each worker receives a
        // first lease, so a fast sibling cannot starve a slow-connecting
        // worker out of the sweep — which also makes seeded fault
        // schedules (armed on the victim's first lease grab) land
        // deterministically under any host load.
        let assignment_open =
            report.workers_connected >= spawned || started.elapsed() > assign_grace;
        for slot_idx in 0..slots.len() {
            if !assignment_open {
                break;
            }
            if !slots[slot_idx].alive || slots[slot_idx].busy_with.is_some() {
                continue;
            }
            let Some(li) = leases
                .iter()
                .position(|l| !l.done && l.issued_to.is_none() && l.ready_at <= now)
            else {
                break;
            };
            let msg = Msg::Lease {
                start: leases[li].start as u64,
                count: leases[li].count as u64,
                epoch: leases[li].epoch,
            };
            let sent = slots[slot_idx]
                .write
                .as_mut()
                .map(|w| proto::write_msg(w, &msg).is_ok())
                .unwrap_or(false);
            if sent {
                leases[li].issued_to = Some(slot_idx);
                leases[li].deadline = Some(now + cfg.lease_timeout);
                slots[slot_idx].busy_with = Some(li);
                if telemetry::enabled() {
                    leases[li].issued_us = telemetry::now_us();
                    dsweep_probes().leases_issued.inc();
                }
            } else {
                bury_worker(slot_idx, &mut slots, &mut leases, &mut report, now);
            }
        }

        // If nobody is alive and nobody can still connect, degrade.
        let alive = slots.iter().filter(|s| s.alive).count();
        if alive == 0
            && (report.workers_connected >= spawned || started.elapsed() > hello_grace)
        {
            break;
        }

        match rx.recv_timeout(Duration::from_millis(15)) {
            Ok(Event::Hello(slot, write)) => {
                if slot < slots.len() && slots[slot].write.is_none() {
                    report.workers_connected += 1;
                    let job = Msg::Job(Job {
                        family: family.to_string(),
                        scale_full: cfg.scale == Scale::Full,
                        batch: cfg.batch.max(1) as u64,
                        threads: cfg.threads.max(1) as u64,
                        artifact: artifact_bytes.clone(),
                        faults: proto::worker_faults(&cfg.faults, slot as u32),
                    });
                    let mut write = write;
                    if proto::write_msg(&mut write, &job).is_ok() {
                        slots[slot].write = Some(write);
                        slots[slot].alive = true;
                        slots[slot].last_heartbeat = Instant::now();
                    }
                }
            }
            Ok(Event::Msg(slot, Msg::Heartbeat { .. })) => {
                if slot < slots.len() {
                    slots[slot].last_heartbeat = Instant::now();
                }
                if telemetry::enabled() {
                    dsweep_probes().heartbeats.inc();
                }
            }
            Ok(Event::Msg(slot, Msg::LeaseResult(r))) => {
                if slot < slots.len() {
                    slots[slot].last_heartbeat = Instant::now();
                }
                let Some(li) = leases.iter().position(|l| l.start == r.start as usize) else {
                    report.fenced_stale += 1;
                    record_fence(r.start as usize, r.epoch, "unknown-start");
                    continue;
                };
                // The sender is idle again either way.
                if slots.get(slot).is_some_and(|s| s.busy_with == Some(li)) {
                    slots[slot].busy_with = None;
                }
                let lease = &mut leases[li];
                if lease.done || r.epoch != lease.epoch {
                    report.fenced_stale += 1;
                    record_fence(lease.start, r.epoch, "stale-epoch");
                    continue;
                }
                if r.outputs.len() != lease.count || r.passes.len() != lease.count {
                    // A malformed result is a lying worker: bury it and
                    // re-issue.
                    bury_worker(slot, &mut slots, &mut leases, &mut report, Instant::now());
                    continue;
                }
                lease.done = true;
                lease.issued_to = None;
                lease.deadline = None;
                if telemetry::enabled() {
                    dsweep_probes().leases_completed.inc();
                    telemetry::complete_span_at(
                        "dsweep.lease",
                        lease.issued_us,
                        vec![
                            ("start", ArgValue::I64(lease.start as i64)),
                            ("count", ArgValue::I64(lease.count as i64)),
                            ("epoch", ArgValue::I64(lease.epoch as i64)),
                            ("worker", ArgValue::I64(slot as i64)),
                        ],
                    );
                }
                results[li] = Some((r.outputs, r.passes));
                report.shards.merge(&r.shards);
            }
            Ok(Event::Msg(_, _)) => {}
            Ok(Event::Gone(slot)) => {
                bury_worker(slot, &mut slots, &mut leases, &mut report, Instant::now());
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    // ---- shutdown the topology --------------------------------------------
    for slot in &mut slots {
        if let Some(w) = slot.write.as_mut() {
            let _ = proto::write_msg(w, &Msg::Shutdown);
        }
    }
    stop.store(true, Ordering::SeqCst);
    let _ = acceptor.join();
    for mut child in children {
        // Reap: normal exits already happened, killed workers are the test
        // plan, stragglers must not outlive the sweep.
        let _ = child.kill();
        let _ = child.wait();
    }
    for t in threads {
        let _ = t.join();
    }
    let _ = std::fs::remove_file(&path);

    if let Some(m) = undeliverable {
        return Err(driver_err(m));
    }

    // ---- in-process fallback for whatever is left --------------------------
    let remaining: Vec<usize> = leases
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.done)
        .map(|(i, _)| i)
        .collect();
    if !remaining.is_empty() {
        let mut runner: Box<dyn Runner> =
            Session::new(&w.model).build_with(artifact.clone())?;
        for li in remaining {
            let lease = &leases[li];
            let spec = RunSpec::new(w.inputs.clone(), lease.count)
                .with_batch(cfg.batch)
                .with_shards(cfg.threads)
                .with_offset(lease.start);
            let r = runner.run(&spec)?;
            let mut shards = r.shards.unwrap_or(ShardStats {
                threads: 1,
                chunks: 1,
                batch: cfg.batch,
                steals: 0,
                stats: Default::default(),
            });
            shards.stats = r.stats;
            report.shards.merge(&shards);
            results[li] = Some((r.outputs, r.passes));
            report.fallback_leases += 1;
        }
        report.mode.push_str("+fallback");
    }
    if report.workers_connected == 0 && report.fallback_leases == report.leases {
        report.mode = "in-process".into();
    }

    // ---- stitch ------------------------------------------------------------
    for (li, slot) in results.into_iter().enumerate() {
        let (outs, passes) = slot.ok_or_else(|| {
            driver_err(format!("lease {li} produced no result (coordinator bug)"))
        })?;
        report.outputs.extend(outs);
        report.passes.extend(passes);
    }
    // A re-issued lease is work redistributed across workers — the same
    // measure the in-process queue reports as a steal — so recovery is
    // visible in the merged ShardStats, not only in the side counters.
    report.shards.steals += report.reissued;
    report.elapsed_s = started.elapsed().as_secs_f64();
    Ok(report)
}

/// Declare a worker dead: close its stream, re-queue its outstanding lease
/// under a bumped epoch with backoff.
fn bury_worker(
    slot_idx: usize,
    slots: &mut [WorkerSlot],
    leases: &mut [LeaseState],
    report: &mut DsweepReport,
    now: Instant,
) {
    let Some(slot) = slots.get_mut(slot_idx) else {
        return;
    };
    if !slot.alive {
        return;
    }
    slot.alive = false;
    slot.write = None;
    report.worker_deaths += 1;
    if telemetry::enabled() {
        dsweep_probes().worker_deaths.inc();
        telemetry::instant(
            "dsweep.worker_death",
            vec![("worker", ArgValue::I64(slot_idx as i64))],
        );
    }
    if let Some(li) = slot.busy_with.take() {
        let lease = &mut leases[li];
        if !lease.done {
            lease.issued_to = None;
            lease.deadline = None;
            lease.epoch += 1;
            lease.attempts += 1;
            lease.ready_at = now + backoff(lease.attempts);
            report.reissued += 1;
            report.max_epoch = report.max_epoch.max(lease.epoch);
            if telemetry::enabled() {
                record_reissue(lease.start, lease.count, lease.epoch, lease.attempts);
            }
        }
    }
}

/// Mirror a fenced (dropped) result into the telemetry layer.
fn record_fence(start: usize, epoch: u32, reason: &'static str) {
    if !telemetry::enabled() {
        return;
    }
    dsweep_probes().fenced_stale.inc();
    telemetry::instant(
        "dsweep.fenced_result",
        vec![
            ("start", ArgValue::I64(start as i64)),
            ("epoch", ArgValue::I64(epoch as i64)),
            ("reason", ArgValue::Str(reason.into())),
        ],
    );
}

fn spawn_acceptor(
    listener: UnixListener,
    tx: mpsc::Sender<Event>,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut readers = Vec::new();
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let tx = tx.clone();
                    readers.push(std::thread::spawn(move || reader_loop(stream, tx)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
        drop(listener);
        for r in readers {
            let _ = r.join();
        }
    })
}

/// Per-connection reader: the first message must be `Hello` (identifying
/// the worker slot); everything after is forwarded to the event loop. Any
/// protocol error — including a garbled frame — ends the connection, which
/// the coordinator treats as a death.
fn reader_loop(stream: UnixStream, tx: mpsc::Sender<Event>) {
    let mut read = stream;
    let write = match read.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let slot = match proto::read_msg(&mut read) {
        Ok(Msg::Hello { worker, .. }) => worker as usize,
        _ => return,
    };
    if tx.send(Event::Hello(slot, write)).is_err() {
        return;
    }
    loop {
        match proto::read_msg(&mut read) {
            Ok(msg) => {
                if tx.send(Event::Msg(slot, msg)).is_err() {
                    return;
                }
            }
            Err(ProtoError::Eof) | Err(ProtoError::Io(_)) | Err(ProtoError::Corrupt(_)) => {
                let _ = tx.send(Event::Gone(slot));
                return;
            }
        }
    }
}
