//! Distributed-sweep smoke: 2 workers, one injected kill, bitwise check.
//!
//! Run after a workspace build so the `distill-sweep-worker` binary exists
//! (the coordinator degrades to in-process worker threads otherwise, which
//! still exercises the full lease protocol):
//!
//! ```text
//! cargo run --release -p distill-sweep --example dsweep_smoke
//! ```
//!
//! The smoke runs the anchor family serially, then distributed across two
//! workers with a seeded fault plan that kills one worker mid-sweep, and
//! exits non-zero unless the recovered distributed outputs are bitwise
//! identical to serial with at least one re-issued lease. An explicit
//! schedule can be injected via `DISTILL_DSWEEP_FAULTS` (see
//! `distill_sweep::proto`).
//!
//! It also exports the coordinator's chrome://tracing view of the sweep to
//! `bench_results/trace_dsweep.json` and re-parses it with the in-repo JSON
//! parser, failing unless the trace is well-formed and shows completed
//! `dsweep.lease` spans.

use criterion::json::Json;
use distill::{RunSpec, Session};
use distill_sweep::{
    dsweep_family, outputs_bits_equal, DsweepConfig, FaultPlan, ANCHOR_FAMILY,
};
use distill_models::registry;

/// Parse a chrome trace export and require well-formed events plus at least
/// one event per `required` name. Panics (non-zero exit) on any violation.
fn validate_trace(path: &str, required: &[&str]) -> usize {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let root = Json::parse(&text).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"));
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("trace has a traceEvents array");
    assert!(!events.is_empty(), "{path}: traceEvents is empty");
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("event has ph");
        assert!(ph == "X" || ph == "i", "unexpected phase {ph:?}");
        assert!(ev.get("name").and_then(Json::as_str).is_some(), "event has name");
        assert!(ev.get("ts").and_then(Json::as_f64).is_some(), "event has ts");
        assert!(ev.get("pid").and_then(Json::as_f64).is_some(), "event has pid");
        assert!(ev.get("tid").and_then(Json::as_f64).is_some(), "event has tid");
        if ph == "X" {
            assert!(ev.get("dur").and_then(Json::as_f64).is_some(), "span has dur");
        }
    }
    for name in required {
        assert!(
            events
                .iter()
                .any(|ev| ev.get("name").and_then(Json::as_str) == Some(name)),
            "{path}: no {name:?} event in the trace"
        );
    }
    events.len()
}

fn main() {
    let trials = 48;
    let cfg = DsweepConfig {
        workers: 2,
        threads: 2,
        batch: 4,
        lease_trials: 6,
        trials: Some(trials),
        faults: match FaultPlan::from_env() {
            Ok(p) if !p.is_inert() => p,
            Ok(_) => FaultPlan::seeded(0xD5EE9, 2),
            Err(e) => {
                eprintln!("dsweep_smoke: bad fault plan: {e}");
                std::process::exit(2);
            }
        },
        ..DsweepConfig::default()
    };

    // Serial reference through the ordinary session path.
    let spec = registry::by_name(ANCHOR_FAMILY).expect("anchor family registered");
    let w = spec.build(cfg.scale);
    let serial = Session::new(&w.model)
        .compile_config(cfg.compile)
        .build()
        .expect("serial build")
        .run(&RunSpec::new(w.inputs.clone(), trials))
        .expect("serial run");

    let report = dsweep_family(ANCHOR_FAMILY, &cfg).expect("distributed sweep");
    let identical = outputs_bits_equal(&serial.outputs, &report.outputs)
        && serial.passes == report.passes;

    println!(
        "dsweep_smoke: family={} mode={} workers={}/{} leases={} reissued={} \
         deaths={} fenced={} max_epoch={} fallback={} merged_steals={} identical={}",
        report.family,
        report.mode,
        report.workers_connected,
        report.workers_requested,
        report.leases,
        report.reissued,
        report.worker_deaths,
        report.fenced_stale,
        report.max_epoch,
        report.fallback_leases,
        report.shards.steals,
        identical,
    );

    // Recovery summary: the one-line digest of how the sweep survived its
    // faults, with the merged ShardStats counters that absorb the re-issues.
    println!(
        "dsweep_smoke recovery: {} lease(s) re-issued, {} stale result(s) fenced, \
         {} worker death(s), max epoch {}, merged shards: {} thread(s), {} chunk(s), \
         {} steal(s), {} instruction(s)",
        report.reissued,
        report.fenced_stale,
        report.worker_deaths,
        report.max_epoch,
        report.shards.threads,
        report.shards.chunks,
        report.shards.steals,
        report.shards.stats.instructions,
    );

    if !identical {
        eprintln!("dsweep_smoke: FAIL — distributed outputs diverged from serial");
        std::process::exit(1);
    }
    if report.faults_expected_recovery() && report.reissued == 0 {
        eprintln!("dsweep_smoke: FAIL — kill fault injected but no lease was re-issued");
        std::process::exit(1);
    }

    // Trace export: the coordinator thread observed every lease lifecycle,
    // and worker threads (thread mode) flushed their buffers on exit.
    if distill_telemetry::enabled() {
        let path = "bench_results/trace_dsweep.json";
        let mut required = vec!["dsweep.lease"];
        if report.reissued > 0 {
            required.push("dsweep.lease_reissued");
        }
        if report.workers_connected == 0 {
            // Full in-process fallback: no lease was ever issued over the
            // socket, so only the fallback runs' spans exist.
            required = vec!["run"];
        }
        let events = distill_telemetry::write_chrome_trace(path).expect("trace export");
        let parsed = validate_trace(path, &required);
        assert_eq!(parsed, events, "export and re-parse disagree on event count");
        println!("dsweep_smoke trace: {events} event(s) -> {path} (valid trace_event JSON)");
    }
    println!("dsweep_smoke: PASS");
}

/// Local helper trait so the check reads naturally above.
trait ExpectedRecovery {
    fn faults_expected_recovery(&self) -> bool;
}

impl ExpectedRecovery for distill_sweep::DsweepReport {
    fn faults_expected_recovery(&self) -> bool {
        // A kill plan always forces at least one re-issue as long as any
        // worker actually connected; with zero workers the whole run fell
        // back in-process and there is nothing to recover.
        self.workers_connected > 0
    }
}
