//! Distributed-sweep smoke: 2 workers, one injected kill, bitwise check.
//!
//! Run after a workspace build so the `distill-sweep-worker` binary exists
//! (the coordinator degrades to in-process worker threads otherwise, which
//! still exercises the full lease protocol):
//!
//! ```text
//! cargo run --release -p distill-sweep --example dsweep_smoke
//! ```
//!
//! The smoke runs the anchor family serially, then distributed across two
//! workers with a seeded fault plan that kills one worker mid-sweep, and
//! exits non-zero unless the recovered distributed outputs are bitwise
//! identical to serial with at least one re-issued lease. An explicit
//! schedule can be injected via `DISTILL_DSWEEP_FAULTS` (see
//! `distill_sweep::proto`).

use distill::{RunSpec, Session};
use distill_sweep::{
    dsweep_family, outputs_bits_equal, DsweepConfig, FaultPlan, ANCHOR_FAMILY,
};
use distill_models::registry;

fn main() {
    let trials = 48;
    let cfg = DsweepConfig {
        workers: 2,
        threads: 2,
        batch: 4,
        lease_trials: 6,
        trials: Some(trials),
        faults: match FaultPlan::from_env() {
            Ok(p) if !p.is_inert() => p,
            Ok(_) => FaultPlan::seeded(0xD5EE9, 2),
            Err(e) => {
                eprintln!("dsweep_smoke: bad fault plan: {e}");
                std::process::exit(2);
            }
        },
        ..DsweepConfig::default()
    };

    // Serial reference through the ordinary session path.
    let spec = registry::by_name(ANCHOR_FAMILY).expect("anchor family registered");
    let w = spec.build(cfg.scale);
    let serial = Session::new(&w.model)
        .compile_config(cfg.compile)
        .build()
        .expect("serial build")
        .run(&RunSpec::new(w.inputs.clone(), trials))
        .expect("serial run");

    let report = dsweep_family(ANCHOR_FAMILY, &cfg).expect("distributed sweep");
    let identical = outputs_bits_equal(&serial.outputs, &report.outputs)
        && serial.passes == report.passes;

    println!(
        "dsweep_smoke: family={} mode={} workers={}/{} leases={} reissued={} \
         deaths={} fenced={} max_epoch={} fallback={} merged_steals={} identical={}",
        report.family,
        report.mode,
        report.workers_connected,
        report.workers_requested,
        report.leases,
        report.reissued,
        report.worker_deaths,
        report.fenced_stale,
        report.max_epoch,
        report.fallback_leases,
        report.shards.steals,
        identical,
    );

    if !identical {
        eprintln!("dsweep_smoke: FAIL — distributed outputs diverged from serial");
        std::process::exit(1);
    }
    if report.faults_expected_recovery() && report.reissued == 0 {
        eprintln!("dsweep_smoke: FAIL — kill fault injected but no lease was re-issued");
        std::process::exit(1);
    }
    println!("dsweep_smoke: PASS");
}

/// Local helper trait so the check reads naturally above.
trait ExpectedRecovery {
    fn faults_expected_recovery(&self) -> bool;
}

impl ExpectedRecovery for distill_sweep::DsweepReport {
    fn faults_expected_recovery(&self) -> bool {
        // A kill plan always forces at least one re-issue as long as any
        // worker actually connected; with zero workers the whole run fell
        // back in-process and there is nothing to recover.
        self.workers_connected > 0
    }
}
