//! Open-loop traffic generation against a [`Server`].
//!
//! Open-loop means arrivals follow a fixed schedule regardless of how fast
//! the server answers: request `i` is submitted at `t0 + i * interval`,
//! never gated on request `i - 1` completing. This is the honest way to
//! measure a serving system — a closed loop (submit, wait, submit) lets a
//! slow server throttle its own offered load and hide queueing delay,
//! which is exactly the regime where cross-request coalescing matters.
//!
//! Reported latency is end-to-end from the *scheduled* arrival time: any
//! submit-side slip (the generator falling behind its own schedule) is
//! charged to the request on top of the server-side queue + execution
//! time, so an overloaded run shows up as latency growth rather than being
//! silently re-timed.
//!
//! # Retry
//!
//! The generator is also the reference client for the server's resilience
//! surface. A submission shed with [`ServeError::Overloaded`] is retried
//! up to [`TrafficConfig::max_attempts`] times after the server's
//! `retry_after_hint` (or the seeded exponential backoff, whichever is
//! longer); a ticket that fails with [`ServeError::WorkerPanicked`] is
//! resubmitted for the *same* absolute trial range, so the retried
//! response is bit-identical to what the failed attempt would have
//! returned. Backoff jitter is seeded ([`TrafficConfig::retry_seed`]) —
//! the same config replays the same pauses. Requests that exhaust their
//! attempts (or hit a non-retryable error such as
//! [`ServeError::DeadlineExceeded`]) are reported per request in
//! [`TrafficReport::failed`] instead of aborting the run.

use std::time::{Duration, Instant};

use crate::server::{Server, Ticket, TrialRequest};
use crate::ServeError;

/// Open-loop load description.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Families requests cycle through (round-robin by request index).
    pub families: Vec<String>,
    /// Total requests to submit.
    pub requests: usize,
    /// Trials per request.
    pub trials_per_request: usize,
    /// Concurrent client sessions; request `i` goes to client
    /// `i % clients`.
    pub clients: usize,
    /// Scheduled gap between consecutive arrivals (across all clients).
    pub arrival_interval: Duration,
    /// Optional per-request latency budget, forwarded to the server (see
    /// [`TrialRequest::deadline`]).
    pub deadline: Option<Duration>,
    /// Attempts per request (submission or wait), 1 = no retry.
    pub max_attempts: u32,
    /// Base pause before the first retry; doubles per attempt, with seeded
    /// jitter on top.
    pub retry_base: Duration,
    /// Seed for the retry-jitter stream: the same `(seed, request,
    /// attempt)` always produces the same pause.
    pub retry_seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> TrafficConfig {
        TrafficConfig {
            families: vec!["necker_cube_3".to_string()],
            requests: 32,
            trials_per_request: 8,
            clients: 4,
            arrival_interval: Duration::from_micros(200),
            deadline: None,
            max_attempts: 3,
            retry_base: Duration::from_micros(200),
            retry_seed: 0xC0FF_EE00,
        }
    }
}

/// One request's outcome.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Family the request ran.
    pub family: String,
    /// Absolute start index the server allocated.
    pub start: usize,
    /// Trials requested.
    pub trials: usize,
    /// End-to-end latency in seconds, from scheduled arrival to demux
    /// (including any retry pauses).
    pub latency_s: f64,
    /// Whether the request shared a span with another request.
    pub coalesced: bool,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
}

/// A request that did not complete: it exhausted its attempts or hit a
/// non-retryable error.
#[derive(Debug, Clone)]
pub struct FailedRequest {
    /// Submission index of the request.
    pub index: usize,
    /// Family it targeted.
    pub family: String,
    /// The final error.
    pub error: ServeError,
    /// Attempts consumed before giving up.
    pub attempts: u32,
}

/// Aggregated open-loop run results.
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// Requests completed.
    pub requests: usize,
    /// Trials completed.
    pub trials: usize,
    /// Wall-clock seconds from first scheduled arrival to last response.
    pub elapsed_s: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Completed trials per second.
    pub throughput_tps: f64,
    /// Per-request latencies in seconds, sorted ascending (feed to
    /// `distill_bench_harness::percentile_sorted` for p50/p95/p99);
    /// completed requests only.
    pub latencies_s: Vec<f64>,
    /// Requests whose response was coalesced with another request's.
    pub coalesced_requests: usize,
    /// Per-request outcomes in submission order (completed requests).
    pub records: Vec<RequestRecord>,
    /// Requests that did not complete, in submission order — per-request
    /// failures are reported here rather than aborting the whole run.
    pub failed: Vec<FailedRequest>,
    /// Total retry attempts across all requests (shed resubmissions plus
    /// panic-recovery resubmissions).
    pub retries: u64,
}

/// Seeded exponential backoff with jitter: `base * 2^(attempt-1)`,
/// stretched by a deterministic factor in `[1, 2)` drawn from
/// `(seed, request, attempt)`.
fn backoff(config: &TrafficConfig, request: usize, attempt: u32) -> Duration {
    let mut s = config
        .retry_seed
        .wrapping_add((request as u64) << 24)
        .wrapping_add(attempt as u64);
    let jitter = 1.0 + (distill::chaos::splitmix64(&mut s) % 1024) as f64 / 1024.0;
    let base = config.retry_base.max(Duration::from_micros(1));
    base.saturating_mul(1u32 << (attempt - 1).min(16)).mul_f64(jitter)
}

/// What one client thread produced: completed records (tagged with their
/// submission index), per-request failures, and its retry count.
type ClientOutcome = (Vec<(usize, RequestRecord)>, Vec<FailedRequest>, u64);

/// Drive `server` with the configured open-loop load and collect the
/// report. Blocks until every submitted request completes or conclusively
/// fails; per-request errors land in [`TrafficReport::failed`].
///
/// # Errors
/// Only config-level preflight failures (an unknown family); request-level
/// errors never abort the run.
pub fn run_open_loop(server: &Server, config: &TrafficConfig) -> Result<TrafficReport, ServeError> {
    assert!(!config.families.is_empty(), "traffic needs at least one family");
    assert!(config.clients > 0, "traffic needs at least one client");
    assert!(config.max_attempts > 0, "traffic needs at least one attempt");
    // Compile every lane up front so the measurement is steady-state
    // serving, not first-request compilation.
    for family in &config.families {
        server.run_solo(family, 0, 1)?;
    }

    let clients = config.clients.min(config.requests.max(1));
    let t0 = Instant::now();
    let results: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let session = server.client();
                let config = &*config;
                scope.spawn(move || run_client(&session, config, clients, c, t0))
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(c, h)| match h.join() {
                Ok(outcome) => outcome,
                Err(payload) => {
                    // A panicked client thread loses its bookkeeping; charge
                    // each request it owned as failed rather than aborting
                    // the whole generator.
                    let msg = distill_exec::panic_message(payload.as_ref());
                    let failed = (c..config.requests)
                        .step_by(clients)
                        .map(|i| FailedRequest {
                            index: i,
                            family: config.families[i % config.families.len()].clone(),
                            error: ServeError::WorkerPanicked(format!(
                                "traffic client panicked: {msg}"
                            )),
                            attempts: 0,
                        })
                        .collect();
                    (Vec::new(), failed, 0)
                }
            })
            .collect()
    });
    let elapsed_s = t0.elapsed().as_secs_f64();

    let mut records_by_index = Vec::new();
    let mut failed = Vec::new();
    let mut retries = 0u64;
    for (r, f, n) in results {
        records_by_index.extend(r);
        failed.extend(f);
        retries += n;
    }
    records_by_index.sort_by_key(|(i, _)| *i);
    failed.sort_by_key(|f| f.index);
    let records: Vec<RequestRecord> = records_by_index.into_iter().map(|(_, r)| r).collect();
    let trials: usize = records.iter().map(|r| r.trials).sum();
    let coalesced_requests = records.iter().filter(|r| r.coalesced).count();
    let mut latencies_s: Vec<f64> = records.iter().map(|r| r.latency_s).collect();
    latencies_s.sort_by(|a, b| a.total_cmp(b));
    Ok(TrafficReport {
        requests: records.len(),
        trials,
        elapsed_s,
        throughput_rps: records.len() as f64 / elapsed_s.max(1e-12),
        throughput_tps: trials as f64 / elapsed_s.max(1e-12),
        latencies_s,
        coalesced_requests,
        records,
        failed,
        retries,
    })
}

/// One client thread: submit its slice of the schedule (with shed-retry),
/// then redeem every ticket (with panic-retry).
fn run_client(
    session: &crate::server::ClientSession,
    config: &TrafficConfig,
    clients: usize,
    c: usize,
    t0: Instant,
) -> ClientOutcome {
    let mut tickets: Vec<(usize, Duration, u32, Ticket)> = Vec::new();
    let mut failed = Vec::new();
    let mut retries = 0u64;
    for i in (c..config.requests).step_by(clients) {
        let scheduled = t0 + config.arrival_interval * i as u32;
        while Instant::now() < scheduled {
            std::thread::sleep(scheduled.saturating_duration_since(Instant::now()));
        }
        let slip = scheduled.elapsed();
        let family = &config.families[i % config.families.len()];
        let mut attempt = 1u32;
        loop {
            let mut request = TrialRequest::new(family, config.trials_per_request);
            request.deadline = config.deadline;
            match session.submit(request) {
                Ok(t) => {
                    tickets.push((i, slip, attempt, t));
                    break;
                }
                Err(ServeError::Overloaded { retry_after_hint })
                    if attempt < config.max_attempts =>
                {
                    retries += 1;
                    std::thread::sleep(retry_after_hint.max(backoff(config, i, attempt)));
                    attempt += 1;
                }
                Err(error) => {
                    failed.push(FailedRequest {
                        index: i,
                        family: family.clone(),
                        error,
                        attempts: attempt,
                    });
                    break;
                }
            }
        }
    }
    // Open loop: wait only after the client's whole schedule is submitted.
    let mut records = Vec::with_capacity(tickets.len());
    for (i, slip, first_attempts, ticket) in tickets {
        let family = config.families[i % config.families.len()].clone();
        let mut attempt = first_attempts;
        let mut current = ticket;
        loop {
            let (start, trials) = (current.start(), current.trials());
            match current.wait() {
                Ok(response) => {
                    records.push((
                        i,
                        RequestRecord {
                            family: response.family.clone(),
                            start: response.start,
                            trials: response.outputs.len(),
                            latency_s: (slip + response.latency).as_secs_f64(),
                            coalesced: response.coalesced,
                            attempts: attempt,
                        },
                    ));
                    break;
                }
                Err(ServeError::WorkerPanicked(_)) if attempt < config.max_attempts => {
                    // Transient by construction (the panicked worker is
                    // quarantined): resubmit the *same* absolute range so
                    // the retried response is bit-identical to a solo run
                    // of the original allocation.
                    retries += 1;
                    std::thread::sleep(backoff(config, i, attempt));
                    attempt += 1;
                    let request = TrialRequest {
                        family: family.clone(),
                        trials,
                        start: Some(start),
                        deadline: config.deadline,
                    };
                    match session.submit(request) {
                        Ok(t) => current = t,
                        Err(error) => {
                            failed.push(FailedRequest {
                                index: i,
                                family,
                                error,
                                attempts: attempt,
                            });
                            break;
                        }
                    }
                }
                Err(error) => {
                    failed.push(FailedRequest {
                        index: i,
                        family,
                        error,
                        attempts: attempt,
                    });
                    break;
                }
            }
        }
    }
    (records, failed, retries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;

    #[test]
    fn open_loop_completes_and_aggregates() {
        let server = Server::start(ServeConfig {
            workers: 2,
            batch: 4,
            ..ServeConfig::default()
        });
        let config = TrafficConfig {
            families: vec!["necker_cube_3".into(), "necker_cube_8".into()],
            requests: 10,
            trials_per_request: 3,
            clients: 3,
            arrival_interval: Duration::from_micros(50),
            ..TrafficConfig::default()
        };
        let report = run_open_loop(&server, &config).unwrap();
        assert_eq!(report.requests, 10);
        assert_eq!(report.trials, 30);
        assert!(report.failed.is_empty(), "{:?}", report.failed);
        assert_eq!(report.retries, 0, "clean run needs no retries");
        assert_eq!(report.latencies_s.len(), 10);
        assert!(report.throughput_rps > 0.0);
        assert!(report.latencies_s.windows(2).all(|w| w[0] <= w[1]));
        assert!(report.records.iter().all(|r| r.attempts == 1));
        // Every record is bit-identical to its solo rerun.
        for r in &report.records {
            let solo = server.run_solo(&r.family, r.start, r.trials).unwrap();
            assert_eq!(solo.outputs.len(), r.trials);
        }
    }

    #[test]
    fn backoff_is_seeded_and_monotone_in_attempts() {
        let config = TrafficConfig::default();
        assert_eq!(backoff(&config, 3, 1), backoff(&config, 3, 1));
        assert_ne!(backoff(&config, 3, 1), backoff(&config, 4, 1), "jitter varies by request");
        // Exponential envelope: attempt k+2 always exceeds attempt k
        // (jitter spans [1, 2), the base doubles).
        for k in 1..6u32 {
            assert!(backoff(&config, 0, k + 2) > backoff(&config, 0, k));
        }
    }
}
