//! Open-loop traffic generation against a [`Server`].
//!
//! Open-loop means arrivals follow a fixed schedule regardless of how fast
//! the server answers: request `i` is submitted at `t0 + i * interval`,
//! never gated on request `i - 1` completing. This is the honest way to
//! measure a serving system — a closed loop (submit, wait, submit) lets a
//! slow server throttle its own offered load and hide queueing delay,
//! which is exactly the regime where cross-request coalescing matters.
//!
//! Reported latency is end-to-end from the *scheduled* arrival time: any
//! submit-side slip (the generator falling behind its own schedule) is
//! charged to the request on top of the server-side queue + execution
//! time, so an overloaded run shows up as latency growth rather than being
//! silently re-timed.

use std::time::{Duration, Instant};

use crate::server::{Server, TrialRequest};
use crate::ServeError;

/// Open-loop load description.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Families requests cycle through (round-robin by request index).
    pub families: Vec<String>,
    /// Total requests to submit.
    pub requests: usize,
    /// Trials per request.
    pub trials_per_request: usize,
    /// Concurrent client sessions; request `i` goes to client
    /// `i % clients`.
    pub clients: usize,
    /// Scheduled gap between consecutive arrivals (across all clients).
    pub arrival_interval: Duration,
}

impl Default for TrafficConfig {
    fn default() -> TrafficConfig {
        TrafficConfig {
            families: vec!["necker_cube_3".to_string()],
            requests: 32,
            trials_per_request: 8,
            clients: 4,
            arrival_interval: Duration::from_micros(200),
        }
    }
}

/// One request's outcome.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Family the request ran.
    pub family: String,
    /// Absolute start index the server allocated.
    pub start: usize,
    /// Trials requested.
    pub trials: usize,
    /// End-to-end latency in seconds, from scheduled arrival to demux.
    pub latency_s: f64,
    /// Whether the request shared a span with another request.
    pub coalesced: bool,
}

/// Aggregated open-loop run results.
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// Requests completed.
    pub requests: usize,
    /// Trials completed.
    pub trials: usize,
    /// Wall-clock seconds from first scheduled arrival to last response.
    pub elapsed_s: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Completed trials per second.
    pub throughput_tps: f64,
    /// Per-request latencies in seconds, sorted ascending (feed to
    /// `distill_bench_harness::percentile_sorted` for p50/p95/p99).
    pub latencies_s: Vec<f64>,
    /// Requests whose response was coalesced with another request's.
    pub coalesced_requests: usize,
    /// Per-request outcomes in submission order.
    pub records: Vec<RequestRecord>,
}

/// Drive `server` with the configured open-loop load and collect the
/// report. Blocks until every submitted request completes.
///
/// # Errors
/// The first [`ServeError`] any request hits (submission or execution).
pub fn run_open_loop(server: &Server, config: &TrafficConfig) -> Result<TrafficReport, ServeError> {
    assert!(!config.families.is_empty(), "traffic needs at least one family");
    assert!(config.clients > 0, "traffic needs at least one client");
    // Compile every lane up front so the measurement is steady-state
    // serving, not first-request compilation.
    for family in &config.families {
        server.run_solo(family, 0, 1)?;
    }

    let clients = config.clients.min(config.requests.max(1));
    let t0 = Instant::now();
    let results: Vec<Result<Vec<(usize, RequestRecord)>, ServeError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let session = server.client();
                    let config = &*config;
                    scope.spawn(move || {
                        let mut tickets = Vec::new();
                        for i in (c..config.requests).step_by(clients) {
                            let scheduled = t0 + config.arrival_interval * i as u32;
                            while Instant::now() < scheduled {
                                std::thread::sleep(
                                    scheduled.saturating_duration_since(Instant::now()),
                                );
                            }
                            let slip = scheduled.elapsed();
                            let family = &config.families[i % config.families.len()];
                            let ticket = session
                                .submit(TrialRequest::new(family, config.trials_per_request))?;
                            tickets.push((i, slip, ticket));
                        }
                        // Open loop: wait only after the client's whole
                        // schedule is submitted.
                        let mut records = Vec::with_capacity(tickets.len());
                        for (i, slip, ticket) in tickets {
                            let response = ticket.wait()?;
                            records.push((
                                i,
                                RequestRecord {
                                    family: response.family.clone(),
                                    start: response.start,
                                    trials: response.outputs.len(),
                                    latency_s: (slip + response.latency).as_secs_f64(),
                                    coalesced: response.coalesced,
                                },
                            ));
                        }
                        Ok(records)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("traffic client panicked"))
                .collect()
        });
    let elapsed_s = t0.elapsed().as_secs_f64();

    let mut records_by_index = Vec::new();
    for r in results {
        records_by_index.extend(r?);
    }
    records_by_index.sort_by_key(|(i, _)| *i);
    let records: Vec<RequestRecord> = records_by_index.into_iter().map(|(_, r)| r).collect();
    let trials: usize = records.iter().map(|r| r.trials).sum();
    let coalesced_requests = records.iter().filter(|r| r.coalesced).count();
    let mut latencies_s: Vec<f64> = records.iter().map(|r| r.latency_s).collect();
    latencies_s.sort_by(|a, b| a.total_cmp(b));
    Ok(TrafficReport {
        requests: records.len(),
        trials,
        elapsed_s,
        throughput_rps: records.len() as f64 / elapsed_s.max(1e-12),
        throughput_tps: trials as f64 / elapsed_s.max(1e-12),
        latencies_s,
        coalesced_requests,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;

    #[test]
    fn open_loop_completes_and_aggregates() {
        let server = Server::start(ServeConfig {
            workers: 2,
            batch: 4,
            ..ServeConfig::default()
        });
        let config = TrafficConfig {
            families: vec!["necker_cube_3".into(), "necker_cube_8".into()],
            requests: 10,
            trials_per_request: 3,
            clients: 3,
            arrival_interval: Duration::from_micros(50),
        };
        let report = run_open_loop(&server, &config).unwrap();
        assert_eq!(report.requests, 10);
        assert_eq!(report.trials, 30);
        assert_eq!(report.latencies_s.len(), 10);
        assert!(report.throughput_rps > 0.0);
        assert!(report.latencies_s.windows(2).all(|w| w[0] <= w[1]));
        // Every record is bit-identical to its solo rerun.
        for r in &report.records {
            let solo = server.run_solo(&r.family, r.start, r.trials).unwrap();
            assert_eq!(solo.outputs.len(), r.trials);
        }
    }
}
