//! The serving daemon: concurrent client sessions over shared artifacts,
//! with cross-request batch coalescing.
//!
//! # Scheduling model
//!
//! Each model family a client touches gets a **lane**: the family's cached
//! artifact, its flattened per-trial inputs, a template [`Engine`] and a
//! FIFO of pending request segments. Requests allocate *contiguous ranges
//! of the lane's shared trial space* — request `i` asking for `n` trials
//! gets `[cursor, cursor + n)` and advances the cursor — so two back-to-back
//! requests to the same family are, by construction, one contiguous range of
//! trial indices. Per-trial inputs are the family's registered workload
//! inputs cycled by **absolute** trial index, exactly the offline runner's
//! convention, which is what makes carving the trial space across clients
//! invisible to any individual trial.
//!
//! Workers pull work in spans. A **span** is one contiguous range packed
//! from a lane's pending FIFO — possibly covering segments of several
//! requests (that is the coalescing), possibly a slice of one oversized
//! request (spans are capped at [`ServeConfig::span_cap`] trials). The span
//! owns a work-stealing `ChunkQueue` over its range, the same substrate the
//! offline sharded runner uses, so several workers can execute one span's
//! chunks concurrently through the artifact's `trials_batch(start, count)`
//! entry point. When a span's last chunk completes, the finishing worker
//! demuxes the span's per-trial outputs back to each originating request.
//!
//! **Packing is lazy**: there is no scheduler thread and no batching timer.
//! A worker packs the next span only when no already-packed span has
//! grabbable chunks left. While all workers are busy executing, newly
//! submitted requests accumulate in the lane FIFOs and the *next* pack
//! sweeps them into one span — under load, coalescing emerges from
//! backpressure rather than from a latency-costing delay, and on an idle
//! server a lone request is packed (and starts executing) immediately.
//!
//! # Fairness
//!
//! Two rules bound starvation. Across lanes, the packer round-robins: each
//! pack starts scanning at the lane after the previously packed one, so a
//! chatty family cannot freeze out a quiet one. Within a lane the FIFO is
//! strict — segments coalesce only in arrival order, and a span never
//! reaches past a gap in the trial space (an explicitly placed
//! [`TrialRequest::start`]) to grab later work. A request is never held
//! back waiting for a coalescing partner to arrive.
//!
//! # Bit-transparency
//!
//! Coalescing is semantically invisible: every response is bitwise
//! identical to the same trial range running alone ([`Server::run_solo`]).
//! This holds because trials are independent (per-trial PRNG streams are
//! derived from the absolute trial index; lanes require whole-model
//! artifacts, whose trial prologue resets state), because staged inputs are
//! cycled by absolute index, and because chunk execution here is the same
//! sequence of engine operations the offline driver performs — the
//! serial/sharded bit-identity the core runner guarantees extends to the
//! serving path.
//!
//! # Resilience
//!
//! Three failure seams are typed rather than fatal, and all three preserve
//! bit-transparency for every request they do not reject:
//!
//! * **Deadlines** — a request may carry a latency budget
//!   ([`TrialRequest::deadline`]). Budgets are checked at pack time:
//!   a segment still queued past its deadline is rejected with
//!   [`ServeError::DeadlineExceeded`] and never packed, so an expired
//!   request is refused loudly instead of being served late.
//! * **Admission control** — [`ServeConfig::lane_capacity`] bounds each
//!   lane's queued trials; a submission past the high-watermark is shed
//!   with [`ServeError::Overloaded`], whose `retry_after_hint` is derived
//!   from the lane's observed per-trial service time.
//! * **Worker-panic quarantine** — a chunk that panics (engine bug or an
//!   armed [`distill::chaos`] plan) is caught at the span boundary on the
//!   worker. The panicking worker drops its engine/staging clones for the
//!   lane, the requests overlapping the lost chunk get
//!   [`ServeError::WorkerPanicked`], and every *other* segment of the span
//!   is requeued at the front of its lane and re-served — bit-identically,
//!   because segments carry absolute trial indices and re-execution is the
//!   same deterministic chunk sequence. The server itself never unwinds.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use distill::{global_names as gn, Engine, ExecConfig, TierPolicy, Value};
use distill_codegen::{CompileConfig, CompiledModel, StagingBuffer};
use distill_exec::ChunkQueue;
use distill_ir::FuncId;
use distill_models::Scale;

use crate::cache::{ArtifactCache, CacheStats};
use crate::probes::{lane_depth_gauge, serve_probes};
use crate::ServeError;
use distill_telemetry as telemetry;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Executor threads (default 2).
    pub workers: usize,
    /// Trials per engine entry: chunk size for the batched entry point
    /// (clamped to the artifact's `batch_capacity`); `1` disables batched
    /// execution (default 32).
    pub batch: usize,
    /// Most trials one span may cover; oversized requests split across
    /// spans. `0` (the default) resolves to `batch * 32`.
    pub span_cap: usize,
    /// In-memory artifact-cache capacity (default 8).
    pub cache_capacity: usize,
    /// Artifact directory for the disk-backed cache; `None` keeps the cache
    /// memory-only.
    pub disk_dir: Option<std::path::PathBuf>,
    /// Compile configuration for artifacts built on behalf of clients.
    /// Must keep [`distill::CompileMode::WholeModel`]: lanes need the
    /// whole-trial entry point.
    pub compile: CompileConfig,
    /// Workload scale used when resolving a family from the registry.
    pub scale: Scale,
    /// Admission high-watermark per lane, in queued (submitted-but-not-yet
    /// packed) trials: a submission that would push a lane past it is shed
    /// with [`ServeError::Overloaded`]. `0` (the default) disables
    /// shedding, preserving the unbounded-queue behavior.
    pub lane_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            batch: 32,
            span_cap: 0,
            cache_capacity: 8,
            disk_dir: None,
            compile: CompileConfig::default(),
            scale: Scale::Reduced,
            lane_capacity: 0,
        }
    }
}

/// One client request: run `trials` trials of a registered family.
#[derive(Debug, Clone)]
pub struct TrialRequest {
    /// Registry name of the model family.
    pub family: String,
    /// Number of trials to run.
    pub trials: usize,
    /// Absolute start index in the family's trial space; `None` (the
    /// common case) lets the server allocate the next contiguous range,
    /// which is what makes back-to-back requests coalescible.
    pub start: Option<usize>,
    /// Optional latency budget, measured from submission. A request still
    /// queued when the budget expires is rejected with
    /// [`ServeError::DeadlineExceeded`] at the next pack instead of being
    /// served late; `None` (the default) never expires.
    pub deadline: Option<Duration>,
}

impl TrialRequest {
    /// A request for `trials` trials at a server-allocated start index.
    pub fn new(family: impl Into<String>, trials: usize) -> TrialRequest {
        TrialRequest {
            family: family.into(),
            trials,
            start: None,
            deadline: None,
        }
    }

    /// Attach a latency budget (see [`TrialRequest::deadline`]).
    pub fn with_deadline(mut self, budget: Duration) -> TrialRequest {
        self.deadline = Some(budget);
        self
    }
}

/// A completed request: per-trial outputs in request order.
#[derive(Debug, Clone)]
pub struct TrialResponse {
    /// The family that ran.
    pub family: String,
    /// Absolute trial index of the request's first trial.
    pub start: usize,
    /// One output vector per trial.
    pub outputs: Vec<Vec<f64>>,
    /// Scheduler passes per trial.
    pub passes: Vec<u64>,
    /// Queue + execution time, submit to demux (max over the request's
    /// spans when it split).
    pub latency: Duration,
    /// Whether any span serving this request also carried trials from
    /// another request.
    pub coalesced: bool,
}

/// Aggregate serving counters (plus a cache-stats snapshot).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Requests accepted.
    pub requests: u64,
    /// Trials requested.
    pub trials: u64,
    /// Spans packed.
    pub spans: u64,
    /// Spans that coalesced trials from more than one request.
    pub coalesced_spans: u64,
    /// Batched engine entries (`trials_batch` calls).
    pub batch_calls: u64,
    /// Submissions shed by admission control ([`ServeError::Overloaded`]).
    pub shed: u64,
    /// Request segments rejected for an expired deadline
    /// ([`ServeError::DeadlineExceeded`]).
    pub expired: u64,
    /// Span chunks lost to a caught worker panic.
    pub worker_panics: u64,
    /// Trials requeued (and re-served bit-identically) after sharing a
    /// span with a panicked chunk.
    pub requeued_trials: u64,
    /// Artifact-cache counters.
    pub cache: CacheStats,
}

/// One demuxed slice of a request, sent back over the ticket channel.
enum Part {
    Ok {
        /// Offset of this slice within the request.
        offset: usize,
        outputs: Vec<Vec<f64>>,
        passes: Vec<u64>,
        latency: Duration,
        coalesced: bool,
    },
    Err(ServeError),
}

/// Handle for one submitted request; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    family: String,
    start: usize,
    trials: usize,
    rx: Receiver<Part>,
}

impl Ticket {
    /// Absolute trial index the server allocated for the request.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of trials the ticket is waiting on (clients retrying a
    /// failed ticket resubmit the same `(start, trials)` range).
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Block until every trial of the request completes, reassembling
    /// split requests from their span parts.
    ///
    /// # Errors
    /// [`ServeError::Exec`] if a span serving the request failed;
    /// [`ServeError::Disconnected`] if the server dropped mid-flight.
    pub fn wait(self) -> Result<TrialResponse, ServeError> {
        let mut outputs = vec![Vec::new(); self.trials];
        let mut passes = vec![0u64; self.trials];
        let mut got = 0usize;
        let mut latency = Duration::ZERO;
        let mut coalesced = false;
        while got < self.trials {
            match self.rx.recv() {
                Ok(Part::Ok {
                    offset,
                    outputs: o,
                    passes: p,
                    latency: l,
                    coalesced: c,
                }) => {
                    got += o.len();
                    for (k, out) in o.into_iter().enumerate() {
                        outputs[offset + k] = out;
                    }
                    passes[offset..offset + p.len()].copy_from_slice(&p);
                    latency = latency.max(l);
                    coalesced |= c;
                }
                Ok(Part::Err(e)) => return Err(e),
                Err(_) => return Err(ServeError::Disconnected),
            }
        }
        Ok(TrialResponse {
            family: self.family,
            start: self.start,
            outputs,
            passes,
            latency,
            coalesced,
        })
    }
}

/// Everything a worker needs to execute a lane's trials: shared by the
/// lane, every in-flight span and [`Server::run_solo`].
struct LaneExec {
    artifact: Arc<CompiledModel>,
    /// Flattened per-trial inputs, cycled by absolute trial index.
    flats: Vec<Vec<f64>>,
    /// The batched entry point, resolved iff batching is usable for this
    /// lane (`config.batch > 1` and the artifact has batch capacity).
    batch_fn: Option<FuncId>,
    trial_fn: FuncId,
    /// Trials per engine entry for this lane's spans.
    chunk: usize,
    /// Cloned per worker; cloning shares code, copies memory.
    template: Engine,
    /// EWMA of observed per-trial service time, updated per completed
    /// chunk; feeds the [`ServeError::Overloaded`] retry hint. `0` until
    /// the lane's first chunk completes.
    ns_per_trial: AtomicU64,
}

/// A pending request segment queued on a lane.
struct PendingSeg {
    start: usize,
    trials: usize,
    offset_in_req: usize,
    tx: Sender<Part>,
    submitted: Instant,
    /// Absolute expiry instant (submission + budget), if the request
    /// carried one.
    deadline: Option<Instant>,
}

/// One model family's serving state.
struct Lane {
    name: String,
    exec: Arc<LaneExec>,
    /// Next unallocated trial index.
    cursor: usize,
    pending: VecDeque<PendingSeg>,
    /// Trials currently queued (sum of `pending` segment sizes); the
    /// admission-control level [`ServeConfig::lane_capacity`] bounds.
    queued: usize,
    /// Telemetry gauge tracking this lane's submitted-but-unpacked trials.
    depth: &'static telemetry::Gauge,
}

/// A segment of a packed span, remembered for demux.
struct Segment {
    offset_in_req: usize,
    start: usize,
    trials: usize,
    tx: Sender<Part>,
    submitted: Instant,
    /// Carried through packing so a requeued segment keeps its original
    /// expiry.
    deadline: Option<Instant>,
    /// When the segment was packed into this span; `submitted → packed` is
    /// the telemetry wait time, `packed → demux` the service time.
    packed: Instant,
}

/// Mutable portion of a span: its segments and accumulating results.
struct SpanWork {
    segments: Vec<Segment>,
    outs: Vec<Vec<f64>>,
    passes: Vec<u64>,
    completed: usize,
    failed: Option<ServeError>,
    /// Span-relative chunk ranges lost to a caught worker panic, with the
    /// panic message; non-empty turns span completion into quarantine +
    /// requeue instead of a plain demux.
    panicked: Vec<(std::ops::Range<usize>, String)>,
}

/// A packed unit of execution: one contiguous trial range of one lane,
/// chunked over a work-stealing queue.
struct SpanJob {
    exec: Arc<LaneExec>,
    /// Lane index, used to key worker-local engine/staging reuse.
    lane: usize,
    /// Absolute trial index of the span's first trial.
    lo: usize,
    trials: usize,
    queue: ChunkQueue,
    coalesced: bool,
    work: Mutex<SpanWork>,
}

#[derive(Default)]
struct State {
    lanes: Vec<Lane>,
    /// Spans with grabbable chunks; drained spans drop off lazily.
    spans: Vec<Arc<SpanJob>>,
    /// Lane index the next pack starts scanning *after* (round-robin).
    rr_cursor: usize,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    trials: AtomicU64,
    spans: AtomicU64,
    coalesced_spans: AtomicU64,
    batch_calls: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    worker_panics: AtomicU64,
    requeued_trials: AtomicU64,
}

struct Inner {
    state: Mutex<State>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
    cache: Mutex<ArtifactCache>,
    config: ServeConfig,
}

/// The serving daemon. Dropping the server drains all queued work, then
/// stops the workers.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

/// A cheap cloneable client handle onto a [`Server`].
#[derive(Clone)]
pub struct ClientSession {
    inner: Arc<Inner>,
}

impl Server {
    /// Start a server with the given configuration. Infallible: artifacts
    /// compile lazily on first use of each family.
    ///
    /// Arms the process-global chaos injector from `DISTILL_CHAOS` when
    /// that variable is set (see [`distill::chaos`]), so a daemon under
    /// test can have faults scheduled from the outside; a malformed spec
    /// is reported on stderr rather than silently running fault-free.
    pub fn start(config: ServeConfig) -> Server {
        if let Err(e) = distill::chaos::install_from_env() {
            eprintln!("distill-serve: bad {} spec: {e}", distill::chaos::CHAOS_ENV);
        }
        let mut config = config;
        config.workers = config.workers.max(1);
        config.batch = config.batch.max(1);
        if config.span_cap == 0 {
            config.span_cap = config.batch * 32;
        }
        let cache = match &config.disk_dir {
            Some(dir) => ArtifactCache::with_disk(config.cache_capacity, dir.clone()),
            None => ArtifactCache::new(config.cache_capacity),
        };
        let inner = Arc::new(Inner {
            state: Mutex::new(State::default()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            cache: Mutex::new(cache),
            config,
        });
        let workers = (0..inner.config.workers)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { inner, workers }
    }

    /// Open a client session.
    pub fn client(&self) -> ClientSession {
        ClientSession {
            inner: self.inner.clone(),
        }
    }

    /// Submit a request directly (equivalent to a one-off client session).
    pub fn submit(&self, request: TrialRequest) -> Result<Ticket, ServeError> {
        self.inner.submit(request)
    }

    /// Run `trials` trials of `family` starting at absolute index `start`
    /// as if the request were alone on an idle server: a fresh engine,
    /// trial-by-trial, bypassing the scheduler entirely. This is the
    /// identity baseline coalesced responses are compared against, and the
    /// sequential-throughput baseline of the serving figure.
    pub fn run_solo(
        &self,
        family: &str,
        start: usize,
        trials: usize,
    ) -> Result<TrialResponse, ServeError> {
        self.inner.run_solo(family, start, trials)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServeStats {
        let c = &self.inner.counters;
        ServeStats {
            requests: c.requests.load(Ordering::Relaxed),
            trials: c.trials.load(Ordering::Relaxed),
            spans: c.spans.load(Ordering::Relaxed),
            coalesced_spans: c.coalesced_spans.load(Ordering::Relaxed),
            batch_calls: c.batch_calls.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            expired: c.expired.load(Ordering::Relaxed),
            worker_panics: c.worker_panics.load(Ordering::Relaxed),
            requeued_trials: c.requeued_trials.load(Ordering::Relaxed),
            cache: self.inner.cache.lock().unwrap().stats(),
        }
    }

    /// The live-introspection call: freeze the process-wide telemetry
    /// registry — queue depths, wait/service quantiles, cache and engine
    /// counters — without stopping (or even pausing) the daemon. Render it
    /// with [`distill_telemetry::TelemetrySnapshot::to_json`] for
    /// dashboards; [`ClientSession::telemetry`] exposes the same surface to
    /// connected clients.
    pub fn telemetry(&self) -> telemetry::TelemetrySnapshot {
        telemetry::snapshot()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        {
            // Take the state lock so no worker is between its work check
            // and its condvar wait when the flag flips.
            let _st = self.inner.state.lock().unwrap();
            self.inner.shutdown.store(true, Ordering::Release);
            self.inner.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl ClientSession {
    /// Submit a request; returns immediately with a [`Ticket`].
    pub fn submit(&self, request: TrialRequest) -> Result<Ticket, ServeError> {
        self.inner.submit(request)
    }

    /// Query the serving daemon's telemetry without restarting it (see
    /// [`Server::telemetry`]).
    pub fn telemetry(&self) -> telemetry::TelemetrySnapshot {
        telemetry::snapshot()
    }
}

impl Inner {
    fn submit(&self, req: TrialRequest) -> Result<Ticket, ServeError> {
        if req.trials == 0 {
            return Err(ServeError::EmptyRequest);
        }
        if self.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::Disconnected);
        }
        let lane_idx = self.ensure_lane(&req.family)?;
        let (tx, rx) = mpsc::channel();
        let start = {
            let mut st = self.state.lock().unwrap();
            let lane = &mut st.lanes[lane_idx];
            let cap = self.config.lane_capacity;
            if cap > 0 && lane.queued + req.trials > cap {
                // Shed at the door: nothing is queued, the cursor does not
                // move, and the client gets a drain-time estimate from the
                // lane's observed service rate.
                let per = lane.exec.ns_per_trial.load(Ordering::Relaxed).max(50_000);
                let hint = Duration::from_nanos(lane.queued.max(1) as u64 * per);
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
                if telemetry::enabled() {
                    serve_probes().shed.inc();
                }
                return Err(ServeError::Overloaded {
                    retry_after_hint: hint,
                });
            }
            let submitted = Instant::now();
            let start = req.start.unwrap_or(lane.cursor);
            lane.cursor = lane.cursor.max(start + req.trials);
            lane.queued += req.trials;
            lane.pending.push_back(PendingSeg {
                start,
                trials: req.trials,
                offset_in_req: 0,
                tx,
                submitted,
                deadline: req.deadline.map(|budget| submitted + budget),
            });
            if telemetry::enabled() {
                lane.depth.add(req.trials as i64);
            }
            start
        };
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters
            .trials
            .fetch_add(req.trials as u64, Ordering::Relaxed);
        if telemetry::enabled() {
            let p = serve_probes();
            p.requests.inc();
            p.trials.add(req.trials as u64);
            p.queue_depth.add(req.trials as i64);
        }
        self.work_cv.notify_all();
        Ok(Ticket {
            family: req.family,
            start,
            trials: req.trials,
            rx,
        })
    }

    /// Find or create the lane for `family`, compiling (or cache-loading)
    /// its artifact outside the scheduler lock.
    fn ensure_lane(&self, family: &str) -> Result<usize, ServeError> {
        if let Some(i) = self.lane_index(family) {
            return Ok(i);
        }
        let spec = distill_models::by_name(family)
            .ok_or_else(|| ServeError::UnknownFamily(family.to_string()))?;
        let workload = spec.build(self.config.scale);
        let artifact = {
            let mut cache = self.cache.lock().unwrap();
            // Catch a compiler panic *inside* the guard so the cache mutex
            // is never poisoned by a failed build: the panic becomes a
            // typed Build error and the next lookup recompiles cleanly
            // (the cache inserts only after a successful compile).
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                cache.get_or_compile(family, &workload.model, self.config.compile)
            }))
            .unwrap_or_else(|payload| {
                Err(ServeError::Build(format!(
                    "artifact build panicked: {}",
                    distill_exec::panic_message(payload.as_ref())
                )))
            })?
        };
        let trial_fn = artifact.trial_func.ok_or_else(|| {
            ServeError::Build(format!(
                "family `{family}` compiled without a whole-model entry point \
                 (serving requires CompileMode::WholeModel)"
            ))
        })?;
        let mut flats: Vec<Vec<f64>> = workload
            .inputs
            .iter()
            .map(|input| artifact.layout.flatten_input(&workload.model.input_nodes, input))
            .collect();
        if flats.is_empty() {
            // No registered inputs: every trial reads a zeroed input image,
            // matching the batched staging path's zero-fill.
            flats.push(vec![0.0; artifact.layout.ext_len]);
        }
        let policy = TierPolicy::from_env().unwrap_or(artifact.config.tier);
        let template = Engine::with_config(artifact.module.clone(), ExecConfig { policy });
        let batch_usable =
            self.config.batch > 1 && artifact.batch_capacity > 0 && artifact.batch_func.is_some();
        let chunk = if batch_usable {
            self.config.batch.min(artifact.batch_capacity)
        } else {
            self.config.batch
        };
        let exec = Arc::new(LaneExec {
            batch_fn: if batch_usable { artifact.batch_func } else { None },
            trial_fn,
            chunk,
            flats,
            template,
            artifact,
            ns_per_trial: AtomicU64::new(0),
        });
        let mut st = self.state.lock().unwrap();
        // Another client may have raced us through the compile; keep theirs.
        if let Some(i) = st.lanes.iter().position(|l| l.name == family) {
            return Ok(i);
        }
        st.lanes.push(Lane {
            name: family.to_string(),
            exec,
            cursor: 0,
            pending: VecDeque::new(),
            queued: 0,
            depth: lane_depth_gauge(family),
        });
        Ok(st.lanes.len() - 1)
    }

    fn lane_index(&self, family: &str) -> Option<usize> {
        let st = self.state.lock().unwrap();
        st.lanes.iter().position(|l| l.name == family)
    }

    fn run_solo(
        &self,
        family: &str,
        start: usize,
        trials: usize,
    ) -> Result<TrialResponse, ServeError> {
        if trials == 0 {
            return Err(ServeError::EmptyRequest);
        }
        let lane_idx = self.ensure_lane(family)?;
        let exec = self.state.lock().unwrap().lanes[lane_idx].exec.clone();
        let t0 = Instant::now();
        let mut engine = exec.template.clone();
        let out_len = exec.artifact.layout.trial_output_len;
        let mut outputs = Vec::with_capacity(trials);
        let mut passes = Vec::with_capacity(trials);
        for t in start..start + trials {
            engine
                .write_global_f64(gn::EXT_INPUT, &exec.flats[t % exec.flats.len()])
                .map_err(exec_err)?;
            engine
                .call(exec.trial_fn, &[Value::I64(t as i64)])
                .map_err(exec_err)?;
            let out = engine.read_global_f64(gn::TRIAL_OUTPUT).map_err(exec_err)?;
            outputs.push(out[..out_len].to_vec());
            passes.push(engine.read_global_i64(gn::PASSES, 0).map_err(exec_err)? as u64);
        }
        Ok(TrialResponse {
            family: family.to_string(),
            start,
            outputs,
            passes,
            latency: t0.elapsed(),
            coalesced: false,
        })
    }
}

fn exec_err(e: distill::ExecError) -> ServeError {
    ServeError::Exec(e.to_string())
}

/// Pull a grabbable chunk from the active spans, lazily dropping drained
/// spans (their in-flight chunks are owned by the workers running them).
fn grab_chunk(st: &mut State) -> Option<(Arc<SpanJob>, std::ops::Range<usize>)> {
    while !st.spans.is_empty() {
        if let Some(range) = st.spans[0].queue.grab() {
            return Some((st.spans[0].clone(), range));
        }
        st.spans.swap_remove(0);
    }
    None
}

/// Pack the next span from the lane FIFOs, round-robining across lanes.
/// Returns whether a span was packed.
fn pack_next_span(st: &mut State, inner: &Inner) -> bool {
    if st.lanes.is_empty() {
        return false;
    }
    let n = st.lanes.len();
    for i in 0..n {
        let li = (st.rr_cursor + i) % n;
        expire_lane(&mut st.lanes[li], inner);
        if st.lanes[li].pending.is_empty() {
            continue;
        }
        st.rr_cursor = (li + 1) % n;
        let span = pack_lane_span(&mut st.lanes[li], li, inner.config.span_cap);
        inner.counters.spans.fetch_add(1, Ordering::Relaxed);
        if span.coalesced {
            inner.counters.coalesced_spans.fetch_add(1, Ordering::Relaxed);
        }
        if telemetry::enabled() {
            let p = serve_probes();
            p.spans.inc();
            if span.coalesced {
                p.coalesced_spans.inc();
            }
            p.span_trials.record(span.trials as u64);
            p.queue_depth.add(-(span.trials as i64));
            st.lanes[li].depth.add(-(span.trials as i64));
        }
        st.spans.push(span);
        return true;
    }
    false
}

/// Reject every queued segment whose deadline has passed with a typed
/// [`ServeError::DeadlineExceeded`]. Runs under the state lock at pack
/// time — the last gate before execution — so an expired request is never
/// packed into a span, wherever it sits in the FIFO.
fn expire_lane(lane: &mut Lane, inner: &Inner) {
    if lane.pending.iter().all(|p| p.deadline.is_none()) {
        return;
    }
    let now = Instant::now();
    let before = lane.pending.len();
    let mut expired_trials = 0usize;
    lane.pending.retain(|p| {
        let expired = p.deadline.is_some_and(|d| d <= now);
        if expired {
            expired_trials += p.trials;
            let _ = p.tx.send(Part::Err(ServeError::DeadlineExceeded));
        }
        !expired
    });
    let expired_segs = before - lane.pending.len();
    if expired_segs == 0 {
        return;
    }
    lane.queued -= expired_trials;
    inner
        .counters
        .expired
        .fetch_add(expired_segs as u64, Ordering::Relaxed);
    if telemetry::enabled() {
        serve_probes().expired.add(expired_segs as u64);
        serve_probes().queue_depth.add(-(expired_trials as i64));
        lane.depth.add(-(expired_trials as i64));
    }
}

/// Pack one span from the front of a lane's FIFO: contiguous segments in
/// arrival order, up to `span_cap` trials, splitting an oversized front
/// segment rather than leaving capacity idle.
fn pack_lane_span(lane: &mut Lane, lane_idx: usize, span_cap: usize) -> Arc<SpanJob> {
    let lo = lane.pending.front().expect("pack on empty lane").start;
    let mut next = lo;
    let mut total = 0usize;
    let mut segments = Vec::new();
    while total < span_cap {
        let Some(p) = lane.pending.front_mut() else {
            break;
        };
        if p.start != next {
            // A gap in the trial space (explicitly placed request): the
            // span stays contiguous; the rest waits for the next pack.
            break;
        }
        let take = p.trials.min(span_cap - total);
        let packed = Instant::now();
        if telemetry::enabled() {
            serve_probes()
                .wait_ns
                .record_duration(packed.duration_since(p.submitted));
        }
        segments.push(Segment {
            offset_in_req: p.offset_in_req,
            start: p.start,
            trials: take,
            tx: p.tx.clone(),
            submitted: p.submitted,
            deadline: p.deadline,
            packed,
        });
        p.start += take;
        p.trials -= take;
        p.offset_in_req += take;
        next += take;
        total += take;
        if p.trials == 0 {
            lane.pending.pop_front();
        }
    }
    lane.queued -= total;
    let coalesced = segments.len() > 1;
    let chunk = lane.exec.chunk.min(total).max(1);
    Arc::new(SpanJob {
        exec: lane.exec.clone(),
        lane: lane_idx,
        lo,
        trials: total,
        queue: ChunkQueue::new(total, chunk),
        coalesced,
        work: Mutex::new(SpanWork {
            segments,
            outs: vec![Vec::new(); total],
            passes: vec![0; total],
            completed: 0,
            failed: None,
            panicked: Vec::new(),
        }),
    })
}

/// Executor thread: grab chunks while any span has them, pack new spans
/// when none do, sleep when the lanes are idle. Exits once shutdown is
/// flagged *and* every queued trial has been packed and grabbed — drop
/// drains, it does not abandon.
fn worker_loop(inner: &Arc<Inner>) {
    // Worker-local engine and staging-buffer reuse, keyed by lane: cloning
    // the template engine copies globals, so it happens once per
    // (worker, lane), not per chunk.
    let mut engines: HashMap<usize, Engine> = HashMap::new();
    let mut stagings: HashMap<usize, StagingBuffer> = HashMap::new();
    loop {
        let grabbed = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if let Some(g) = grab_chunk(&mut st) {
                    break Some(g);
                }
                if pack_next_span(&mut st, inner) {
                    continue;
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                st = inner.work_cv.wait(st).unwrap();
            }
        };
        let Some((span, range)) = grabbed else {
            return;
        };
        run_span_chunk(inner, &span, range, &mut engines, &mut stagings);
    }
}

/// Execute one chunk of a span and record it; the worker that completes
/// the span's last trial demuxes the results to the requesters.
///
/// The engine-operation sequence here mirrors the offline driver's
/// trial-chunk execution exactly (stage → `trials_batch(lo, n)` → read
/// back, or the trial-by-trial path for unbatched lanes) — with the one
/// serving twist that inputs go through a worker-local double-buffered
/// [`StagingBuffer`], whose published image is byte-identical to the
/// offline `stage_batch` allocation.
fn run_span_chunk(
    inner: &Inner,
    span: &SpanJob,
    range: std::ops::Range<usize>,
    engines: &mut HashMap<usize, Engine>,
    stagings: &mut HashMap<usize, StagingBuffer>,
) {
    let exec = &span.exec;
    let layout = &exec.artifact.layout;
    let out_len = layout.trial_output_len;
    let n = range.len();
    let lo = span.lo + range.start;
    let t0 = Instant::now();
    let result = {
        let engine = engines
            .entry(span.lane)
            .or_insert_with(|| exec.template.clone());
        let mut chunk_span = telemetry::span("serve.chunk");
        chunk_span.arg_i64("lane", span.lane as i64);
        chunk_span.arg_i64("lo", lo as i64);
        chunk_span.arg_i64("trials", n as i64);
        // The chunk body runs under catch_unwind: a panic (an engine bug,
        // or an armed chaos plan) must quarantine this chunk, not unwind
        // the worker thread and strand the span.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
            || -> Result<(Vec<Vec<f64>>, Vec<u64>), ServeError> {
                distill::chaos::chunk_delay();
                distill::chaos::check_panic_trial(lo, n);
                let mut outs = Vec::with_capacity(n);
                let mut passes = Vec::with_capacity(n);
                match exec.batch_fn {
                    Some(bf) => {
                        if layout.ext_len > 0 {
                            let staging = stagings
                                .entry(span.lane)
                                .or_insert_with(|| layout.staging_buffer(exec.chunk));
                            staging.stage(&exec.flats, lo, n);
                            engine
                                .write_global_f64(gn::BATCH_EXT, staging.publish())
                                .map_err(exec_err)?;
                        }
                        engine
                            .call(bf, &[Value::I64(lo as i64), Value::I64(n as i64)])
                            .map_err(exec_err)?;
                        inner.counters.batch_calls.fetch_add(1, Ordering::Relaxed);
                        if telemetry::enabled() {
                            serve_probes().batch_calls.inc();
                        }
                        let o = engine
                            .read_global_f64_prefix(gn::BATCH_OUT, n * out_len)
                            .map_err(exec_err)?;
                        let p = engine
                            .read_global_f64_prefix(gn::BATCH_PASSES, n)
                            .map_err(exec_err)?;
                        for k in 0..n {
                            outs.push(o[k * out_len..(k + 1) * out_len].to_vec());
                            passes.push(p[k] as u64);
                        }
                    }
                    None => {
                        for t in lo..lo + n {
                            engine
                                .write_global_f64(gn::EXT_INPUT, &exec.flats[t % exec.flats.len()])
                                .map_err(exec_err)?;
                            engine
                                .call(exec.trial_fn, &[Value::I64(t as i64)])
                                .map_err(exec_err)?;
                            let out =
                                engine.read_global_f64(gn::TRIAL_OUTPUT).map_err(exec_err)?;
                            outs.push(out[..out_len].to_vec());
                            passes.push(
                                engine.read_global_i64(gn::PASSES, 0).map_err(exec_err)? as u64
                            );
                        }
                    }
                }
                Ok((outs, passes))
            },
        ));
        drop(chunk_span);
        result
    };

    let mut work = span.work.lock().unwrap();
    match result {
        Ok(Ok((outs, passes))) => {
            // Feed the admission controller's retry hint with an EWMA of
            // observed per-trial service time (racy updates are fine for a
            // hint).
            let per = (t0.elapsed().as_nanos() as u64) / n.max(1) as u64;
            let old = exec.ns_per_trial.load(Ordering::Relaxed);
            let ewma = if old == 0 { per } else { (3 * old + per) / 4 };
            exec.ns_per_trial.store(ewma.max(1), Ordering::Relaxed);
            for (k, (o, p)) in outs.into_iter().zip(passes).enumerate() {
                work.outs[range.start + k] = o;
                work.passes[range.start + k] = p;
            }
        }
        Ok(Err(e)) => work.failed = Some(e),
        Err(payload) => {
            // Quarantine: the worker's engine (and staging buffer) for
            // this lane may be mid-trial; drop both so the next chunk
            // starts from a fresh template clone. Other workers' clones
            // and the shared template are unaffected.
            engines.remove(&span.lane);
            stagings.remove(&span.lane);
            let msg = distill_exec::panic_message(payload.as_ref());
            inner.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
            if telemetry::enabled() {
                serve_probes().worker_panics.inc();
            }
            work.panicked.push((range.clone(), msg));
        }
    }
    work.completed += n;
    if work.completed == span.trials {
        finish_span(inner, span, &mut work);
    }
}

/// Complete a span. The clean path demuxes results to the requesters; a
/// span that lost chunks to a worker panic instead fails exactly the
/// segments overlapping the lost ranges with a typed
/// [`ServeError::WorkerPanicked`] and requeues every other segment at the
/// front of its lane, where the next pack re-serves it — bit-identically,
/// because segments carry absolute trial indices and chunk execution is
/// deterministic in them.
fn finish_span(inner: &Inner, span: &SpanJob, work: &mut MutexGuard<'_, SpanWork>) {
    if work.panicked.is_empty() {
        demux_span(span, work);
        return;
    }
    let panicked = std::mem::take(&mut work.panicked);
    let segments = std::mem::take(&mut work.segments);
    let mut requeue = Vec::new();
    for seg in segments {
        let rel = seg.start - span.lo;
        let hit = panicked
            .iter()
            .find(|(r, _)| rel < r.end && r.start < rel + seg.trials);
        match hit {
            Some((_, msg)) => {
                let _ = seg.tx.send(Part::Err(ServeError::WorkerPanicked(msg.clone())));
            }
            None => requeue.push(seg),
        }
    }
    if requeue.is_empty() {
        return;
    }
    let total: usize = requeue.iter().map(|s| s.trials).sum();
    inner
        .counters
        .requeued_trials
        .fetch_add(total as u64, Ordering::Relaxed);
    // Taking the state lock while holding the span's work lock is safe:
    // no path acquires them in the opposite order (pack and grab touch
    // only the state lock; the span queue is lock-free).
    let mut st = inner.state.lock().unwrap();
    let lane = &mut st.lanes[span.lane];
    lane.queued += total;
    if telemetry::enabled() {
        serve_probes().requeued.add(total as u64);
        serve_probes().queue_depth.add(total as i64);
        lane.depth.add(total as i64);
    }
    // Reverse push_front keeps the requeued segments in ascending start
    // order at the front of the FIFO, ahead of newer arrivals.
    for seg in requeue.into_iter().rev() {
        lane.pending.push_front(PendingSeg {
            start: seg.start,
            trials: seg.trials,
            offset_in_req: seg.offset_in_req,
            tx: seg.tx,
            submitted: seg.submitted,
            deadline: seg.deadline,
        });
    }
    drop(st);
    inner.work_cv.notify_all();
}

/// Send each segment of a completed span its slice of the results.
fn demux_span(span: &SpanJob, work: &mut MutexGuard<'_, SpanWork>) {
    let segments = std::mem::take(&mut work.segments);
    let probes_on = telemetry::enabled();
    for seg in segments {
        if probes_on {
            serve_probes()
                .service_ns
                .record_duration(seg.packed.elapsed());
        }
        let part = match &work.failed {
            Some(e) => Part::Err(e.clone()),
            None => {
                let rel = seg.start - span.lo;
                Part::Ok {
                    offset: seg.offset_in_req,
                    outputs: work.outs[rel..rel + seg.trials].to_vec(),
                    passes: work.passes[rel..rel + seg.trials].to_vec(),
                    latency: seg.submitted.elapsed(),
                    coalesced: span.coalesced,
                }
            }
        };
        // A requester that dropped its ticket is not an error.
        let _ = seg.tx.send(part);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(workers: usize, batch: usize) -> Server {
        Server::start(ServeConfig {
            workers,
            batch,
            ..ServeConfig::default()
        })
    }

    #[test]
    fn unknown_family_and_empty_request_are_rejected() {
        let srv = server(1, 4);
        assert_eq!(
            srv.submit(TrialRequest::new("no_such_family", 3)).unwrap_err(),
            ServeError::UnknownFamily("no_such_family".into())
        );
        assert_eq!(
            srv.submit(TrialRequest::new("necker_cube_3", 0)).unwrap_err(),
            ServeError::EmptyRequest
        );
    }

    #[test]
    fn responses_match_solo_runs_bitwise() {
        let srv = server(3, 4);
        // Burst-submit from several clients so spans coalesce, then check
        // every response against the request running alone.
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| {
                let client = srv.client();
                client
                    .submit(TrialRequest::new("necker_cube_3", 3 + (i % 3)))
                    .unwrap()
            })
            .collect();
        for t in tickets {
            let (start, trials) = (t.start(), t.trials);
            let got = t.wait().unwrap();
            let solo = srv.run_solo("necker_cube_3", start, trials).unwrap();
            assert_eq!(got.outputs, solo.outputs);
            assert_eq!(got.passes, solo.passes);
        }
        let stats = srv.stats();
        assert_eq!(stats.requests, 6);
        assert_eq!(stats.trials, 2 * (3 + 4 + 5));
    }

    #[test]
    fn oversized_requests_split_across_spans_and_reassemble() {
        let srv = Server::start(ServeConfig {
            workers: 2,
            batch: 4,
            span_cap: 8,
            ..ServeConfig::default()
        });
        let ticket = srv.submit(TrialRequest::new("necker_cube_3", 21)).unwrap();
        let got = ticket.wait().unwrap();
        assert_eq!(got.outputs.len(), 21);
        let solo = srv.run_solo("necker_cube_3", 0, 21).unwrap();
        assert_eq!(got.outputs, solo.outputs);
        assert_eq!(got.passes, solo.passes);
        assert!(srv.stats().spans >= 3, "21 trials over span_cap 8");
    }

    #[test]
    fn explicit_start_indices_leave_gaps_unserved() {
        let srv = server(2, 4);
        let a = srv
            .submit(TrialRequest {
                family: "necker_cube_3".into(),
                trials: 2,
                start: Some(10),
                deadline: None,
            })
            .unwrap();
        let got = a.wait().unwrap();
        assert_eq!(got.start, 10);
        let solo = srv.run_solo("necker_cube_3", 10, 2).unwrap();
        assert_eq!(got.outputs, solo.outputs);
        // The cursor advanced past the explicit range.
        let b = srv.submit(TrialRequest::new("necker_cube_3", 1)).unwrap();
        assert_eq!(b.start(), 12);
        b.wait().unwrap();
    }

    #[test]
    fn unbatched_lane_matches_batched_lane() {
        let batched = server(2, 8);
        let unbatched = server(2, 1);
        let a = batched
            .submit(TrialRequest::new("botvinick_stroop", 5))
            .unwrap()
            .wait()
            .unwrap();
        let b = unbatched
            .submit(TrialRequest::new("botvinick_stroop", 5))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.passes, b.passes);
        assert_eq!(batched.stats().batch_calls, 1);
        assert_eq!(unbatched.stats().batch_calls, 0);
    }

    #[test]
    fn drop_drains_queued_work() {
        let srv = server(1, 4);
        let tickets: Vec<Ticket> = (0..4)
            .map(|_| srv.submit(TrialRequest::new("necker_cube_3", 4)).unwrap())
            .collect();
        drop(srv);
        for t in tickets {
            assert_eq!(t.wait().unwrap().outputs.len(), 4);
        }
    }
}
