//! `distill-serve` — a long-lived serving daemon over the Distill runtime.
//!
//! The batch harnesses in `distill-bench` compile a model, run one workload
//! and exit. This crate keeps the runtime resident instead, the way a
//! cognitive-model service would deploy it, and adds the three pieces a
//! daemon needs on top of `distill`'s one-shot [`Session`] API:
//!
//! * an **artifact cache** ([`cache::ArtifactCache`]) keyed by
//!   `(family, CompileConfig)`: compiled artifacts are LRU-cached in memory
//!   and optionally persisted with `distill`'s versioned on-disk codec, so a
//!   restarted daemon reloads yesterday's artifacts instead of recompiling —
//!   and rejects artifacts written by an older codec revision;
//! * **concurrent client sessions** ([`server::ClientSession`]): any number
//!   of clients share one `Arc`'d artifact per family and submit
//!   [`server::TrialRequest`]s through a cheap cloneable handle;
//! * a **coalescing scheduler** (see [`server`] module docs): trials from
//!   independent requests to the same family are packed into shared
//!   `trials_batch(start, count)` spans executed over the same
//!   `ChunkQueue` substrate the offline sharded runner uses, then demuxed
//!   back per request. Coalescing is *bit-transparent*: every response is
//!   bitwise identical to the same request running alone on an idle server.
//!
//! The open-loop traffic generator in [`traffic`] drives a server the way
//! the figures binary drives the offline harnesses, reporting throughput
//! and latency percentiles (`figures --serve`).
//!
//! The daemon is instrumented end to end with `distill-telemetry` (metric
//! names are catalogued in the README's Observability section):
//! queue-depth gauges per lane, wait/service-time histograms, span-packing
//! and cache counters, and `serve.chunk` trace spans. [`Server::telemetry`] / [`ClientSession::telemetry`] freeze the
//! registry into a [`TelemetrySnapshot`] so a live daemon can be queried
//! instead of restarted.
//!
//! [`Session`]: distill::Session

pub mod cache;
pub(crate) mod probes;
pub mod server;
pub mod traffic;

pub use cache::{ArtifactCache, CacheStats};
pub use distill_telemetry::TelemetrySnapshot;
pub use server::{
    ClientSession, ServeConfig, ServeStats, Server, Ticket, TrialRequest, TrialResponse,
};
pub use traffic::{run_open_loop, FailedRequest, RequestRecord, TrafficConfig, TrafficReport};

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The requested family is not in the workload registry.
    UnknownFamily(String),
    /// A request asked for zero trials.
    EmptyRequest,
    /// Compiling (or loading) the family's artifact failed, or the artifact
    /// has no whole-model entry point for the scheduler to drive.
    Build(String),
    /// The server shut down while the request was queued or in flight.
    Disconnected,
    /// The execution engine failed while running a span.
    Exec(String),
    /// The request's [`server::TrialRequest::deadline`] expired while it
    /// was still queued; it was never executed.
    DeadlineExceeded,
    /// The lane's queue is past its admission high-watermark
    /// ([`server::ServeConfig::lane_capacity`]); the request was shed
    /// without being queued. The hint estimates when the backlog will have
    /// drained, from the lane's observed per-trial service time.
    Overloaded {
        /// Suggested client-side pause before resubmitting.
        retry_after_hint: std::time::Duration,
    },
    /// A worker thread panicked while executing a span chunk covering this
    /// request. Other requests coalesced into the same span are requeued
    /// and re-served; only the requests overlapping the panicked chunk get
    /// this error. Carries the panic message.
    WorkerPanicked(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownFamily(name) => write!(f, "unknown workload family `{name}`"),
            ServeError::EmptyRequest => write!(f, "request asked for zero trials"),
            ServeError::Build(msg) => write!(f, "artifact build failed: {msg}"),
            ServeError::Disconnected => write!(f, "server shut down"),
            ServeError::Exec(msg) => write!(f, "execution failed: {msg}"),
            ServeError::DeadlineExceeded => {
                write!(f, "request deadline expired before execution")
            }
            ServeError::Overloaded { retry_after_hint } => write!(
                f,
                "lane over its admission watermark; retry after ~{:?}",
                retry_after_hint
            ),
            ServeError::WorkerPanicked(msg) => {
                write!(f, "worker panicked while serving the request: {msg}")
            }
        }
    }
}

impl std::error::Error for ServeError {}
