//! Telemetry probes for the serving daemon.
//!
//! The scheduler's observable lifecycle is submit → pack → execute →
//! demux, and the probes sit exactly on those seams (never inside the
//! engine's hot loop, which carries its own per-tier probes):
//!
//! * `serve.requests`, `serve.trials`, `serve.spans`,
//!   `serve.coalesced_spans`, `serve.batch_calls` — mirrors of the
//!   [`crate::ServeStats`] counters, so a live registry snapshot agrees
//!   with [`crate::Server::stats`].
//! * `serve.queue_depth` — trials submitted but not yet packed into a
//!   span, summed over lanes; `serve.lane.<family>.depth` is the same
//!   level per lane.
//! * `serve.wait_ns` — per segment, submit to pack (queueing delay).
//! * `serve.service_ns` — per segment, pack to demux (execution +
//!   result-assembly delay).
//! * `serve.span_trials` — size histogram of packed spans: how much
//!   coalescing each pack actually achieved.
//! * `serve.lane.shed`, `serve.deadline_expired`, `serve.worker.panics`,
//!   `serve.requeued_trials` — the resilience counters: submissions shed
//!   by admission control, queued segments rejected for expired deadlines,
//!   span chunks lost to a caught worker panic, and trials requeued (and
//!   re-served bit-identically) after sharing a span with a panicked
//!   chunk. Mirrors of the corresponding [`crate::ServeStats`] fields.
//! * `serve.cache.{hits,misses,evictions,disk_hits,disk_stale}` — mirrors
//!   of [`crate::cache::CacheStats`].
//!
//! Spans: each executed chunk records a `serve.chunk` complete event, so a
//! chrome trace of a serving run shows worker lanes interleaving chunk
//! executions, with the per-chunk trial range in the event args.

use distill_telemetry::{self as telemetry, Counter, Gauge, Histogram};
use std::sync::OnceLock;

pub(crate) struct ServeProbes {
    pub requests: &'static Counter,
    pub trials: &'static Counter,
    pub spans: &'static Counter,
    pub coalesced_spans: &'static Counter,
    pub batch_calls: &'static Counter,
    pub queue_depth: &'static Gauge,
    pub shed: &'static Counter,
    pub expired: &'static Counter,
    pub worker_panics: &'static Counter,
    pub requeued: &'static Counter,
    pub wait_ns: &'static Histogram,
    pub service_ns: &'static Histogram,
    pub span_trials: &'static Histogram,
}

pub(crate) fn serve_probes() -> &'static ServeProbes {
    static PROBES: OnceLock<ServeProbes> = OnceLock::new();
    PROBES.get_or_init(|| {
        let reg = telemetry::registry();
        ServeProbes {
            requests: reg.counter("serve.requests"),
            trials: reg.counter("serve.trials"),
            spans: reg.counter("serve.spans"),
            coalesced_spans: reg.counter("serve.coalesced_spans"),
            batch_calls: reg.counter("serve.batch_calls"),
            queue_depth: reg.gauge("serve.queue_depth"),
            shed: reg.counter("serve.lane.shed"),
            expired: reg.counter("serve.deadline_expired"),
            worker_panics: reg.counter("serve.worker.panics"),
            requeued: reg.counter("serve.requeued_trials"),
            wait_ns: reg.histogram("serve.wait_ns"),
            service_ns: reg.histogram("serve.service_ns"),
            span_trials: reg.histogram("serve.span_trials"),
        }
    })
}

/// The per-lane queue-depth gauge for `family`, registered on first use
/// (lane creation).
pub(crate) fn lane_depth_gauge(family: &str) -> &'static Gauge {
    telemetry::registry().gauge(&format!("serve.lane.{family}.depth"))
}

pub(crate) struct CacheProbes {
    pub hits: &'static Counter,
    pub misses: &'static Counter,
    pub evictions: &'static Counter,
    pub disk_hits: &'static Counter,
    pub disk_stale: &'static Counter,
}

pub(crate) fn cache_probes() -> &'static CacheProbes {
    static PROBES: OnceLock<CacheProbes> = OnceLock::new();
    PROBES.get_or_init(|| {
        let reg = telemetry::registry();
        CacheProbes {
            hits: reg.counter("serve.cache.hits"),
            misses: reg.counter("serve.cache.misses"),
            evictions: reg.counter("serve.cache.evictions"),
            disk_hits: reg.counter("serve.cache.disk_hits"),
            disk_stale: reg.counter("serve.cache.disk_stale"),
        }
    })
}
