//! The compiled-artifact cache: LRU in memory, versioned codec on disk.
//!
//! A serving daemon compiles each model family once and then answers
//! requests out of the cached artifact; compilation only re-runs when a
//! client asks for a `(family, CompileConfig)` pair the cache has never
//! seen (or that LRU eviction pushed out). The cache key is
//! [`distill::artifact_key`] — family name plus every compile knob — so two
//! clients that want the same family at different opt levels or seeds get
//! distinct artifacts rather than silently sharing one.
//!
//! With a disk directory configured, every compiled artifact is also
//! persisted with the versioned codec from [`distill::artifact`]. A miss
//! first tries the disk copy: a load succeeds only when the bytes carry the
//! current [`distill::ARTIFACT_VERSION`] *and* the stored
//! [`CompileConfig`] equals the requested one (the key encodes the config,
//! but the config check keeps a renamed or hand-copied file from smuggling
//! in a mismatched artifact). Stale-version files are recompiled and
//! overwritten in place, which is how a daemon upgrades its artifact
//! directory across codec revisions without an explicit migration step.

use std::path::PathBuf;
use std::sync::Arc;

use distill::{artifact_key, compile, read_artifact, write_artifact, ArtifactError, Composition};
use distill_codegen::{CompileConfig, CompiledModel};

use crate::ServeError;

/// Hit/miss/eviction counters for an [`ArtifactCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that had to compile or load from disk.
    pub misses: u64,
    /// Artifacts evicted by the LRU policy.
    pub evictions: u64,
    /// Misses answered by a valid on-disk artifact instead of a compile.
    pub disk_hits: u64,
    /// On-disk artifacts rejected for carrying a stale codec version (each
    /// one is recompiled and the file overwritten).
    pub disk_stale: u64,
}

/// In-memory LRU cache of compiled artifacts, optionally backed by an
/// artifact directory on disk.
///
/// Entries are `Arc`'d so the server's lanes (and any number of in-flight
/// spans) keep using an artifact after the cache evicts it; eviction only
/// drops the cache's own reference. Disk copies are never deleted by
/// eviction — they are the warm-restart story, not part of the LRU budget.
#[derive(Debug)]
pub struct ArtifactCache {
    capacity: usize,
    disk_dir: Option<PathBuf>,
    /// Front = most recently used.
    entries: Vec<(String, Arc<CompiledModel>)>,
    stats: CacheStats,
}

impl ArtifactCache {
    /// A memory-only cache holding at most `capacity` artifacts.
    pub fn new(capacity: usize) -> ArtifactCache {
        ArtifactCache {
            capacity: capacity.max(1),
            disk_dir: None,
            entries: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// A cache that also persists artifacts under `dir` (created on first
    /// write) and serves misses from valid on-disk copies.
    pub fn with_disk(capacity: usize, dir: PathBuf) -> ArtifactCache {
        ArtifactCache {
            disk_dir: Some(dir),
            ..ArtifactCache::new(capacity)
        }
    }

    /// Number of artifacts currently held in memory.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Cache keys from most to least recently used (test/introspection aid).
    pub fn keys(&self) -> Vec<String> {
        self.entries.iter().map(|(k, _)| k.clone()).collect()
    }

    /// Fetch the artifact for `(family, config)`, compiling `model` on a
    /// cold miss. `model` must be the family's composition; the cache trusts
    /// the caller on that pairing (the server resolves both from the
    /// registry).
    ///
    /// # Errors
    /// [`ServeError::Build`] when compilation fails.
    pub fn get_or_compile(
        &mut self,
        family: &str,
        model: &Composition,
        config: CompileConfig,
    ) -> Result<Arc<CompiledModel>, ServeError> {
        let before = self.stats;
        let result = self.get_or_compile_inner(family, model, config);
        if distill_telemetry::enabled() {
            // Mirror this lookup's counter deltas into the global registry,
            // so a live telemetry snapshot agrees with `CacheStats`.
            let p = crate::probes::cache_probes();
            p.hits.add(self.stats.hits - before.hits);
            p.misses.add(self.stats.misses - before.misses);
            p.evictions.add(self.stats.evictions - before.evictions);
            p.disk_hits.add(self.stats.disk_hits - before.disk_hits);
            p.disk_stale.add(self.stats.disk_stale - before.disk_stale);
        }
        result
    }

    fn get_or_compile_inner(
        &mut self,
        family: &str,
        model: &Composition,
        config: CompileConfig,
    ) -> Result<Arc<CompiledModel>, ServeError> {
        let key = artifact_key(family, &config);
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.stats.hits += 1;
            let entry = self.entries.remove(pos);
            let artifact = entry.1.clone();
            self.entries.insert(0, entry);
            return Ok(artifact);
        }
        self.stats.misses += 1;

        let path = self.disk_dir.as_ref().map(|d| d.join(format!("{key}.dstl")));
        let mut refresh_disk = path.is_some();
        let mut loaded = None;
        if let Some(path) = &path {
            match read_artifact(path) {
                Ok(compiled) if compiled.config == config => {
                    self.stats.disk_hits += 1;
                    refresh_disk = false;
                    loaded = Some(compiled);
                }
                // A file that exists but cannot be used — stale codec
                // version, bad magic, truncated or bit-flipped bytes — is a
                // counted miss: the family recompiles and the entry is
                // overwritten in place, same as a codec upgrade.
                Err(
                    ArtifactError::StaleVersion { .. }
                    | ArtifactError::BadMagic
                    | ArtifactError::Corrupt(_),
                ) => self.stats.disk_stale += 1,
                // Missing/unreadable file or a config mismatch under a
                // forged key: fall through to a fresh compile, uncounted.
                Ok(_) | Err(ArtifactError::Io(_)) => {}
            }
        }
        let compiled = match loaded {
            Some(compiled) => compiled,
            None => {
                // Chaos seam: an armed build-panic fires here, before any
                // state is touched — a mid-build panic must leave no
                // half-inserted entry (the insert below only runs after a
                // successful compile).
                distill::chaos::check_panic_build(family);
                compile(model, config).map_err(|e| ServeError::Build(e.to_string()))?
            }
        };
        if refresh_disk {
            if let (Some(dir), Some(path)) = (&self.disk_dir, &path) {
                // Best-effort: a read-only artifact directory degrades the
                // warm-restart path, not request serving.
                let _ = std::fs::create_dir_all(dir);
                let _ = write_artifact(path, &compiled);
            }
        }

        let artifact = Arc::new(compiled);
        self.entries.insert(0, (key, artifact.clone()));
        while self.entries.len() > self.capacity {
            self.entries.pop();
            self.stats.evictions += 1;
        }
        Ok(artifact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill::OptLevel;

    fn family() -> (&'static str, Composition) {
        let spec = distill_models::by_name("necker_cube_3").unwrap();
        ("necker_cube_3", spec.build(distill_models::Scale::Reduced).model)
    }

    fn config(opt: OptLevel) -> CompileConfig {
        CompileConfig {
            opt_level: opt,
            ..CompileConfig::default()
        }
    }

    #[test]
    fn hits_misses_and_mru_order() {
        let (name, model) = family();
        let mut cache = ArtifactCache::new(4);
        let a = cache.get_or_compile(name, &model, config(OptLevel::O0)).unwrap();
        let b = cache.get_or_compile(name, &model, config(OptLevel::O2)).unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 0);

        // A repeat lookup hits, returns the same Arc and moves to the front.
        let a2 = cache.get_or_compile(name, &model, config(OptLevel::O0)).unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hits, 1);
        let keys = cache.keys();
        assert_eq!(keys.len(), 2);
        assert!(keys[0].contains("O0") && keys[1].contains("O2"));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (name, model) = family();
        let mut cache = ArtifactCache::new(2);
        cache.get_or_compile(name, &model, config(OptLevel::O0)).unwrap();
        cache.get_or_compile(name, &model, config(OptLevel::O1)).unwrap();
        // Touch O0 so O1 becomes the LRU entry, then insert a third config.
        cache.get_or_compile(name, &model, config(OptLevel::O0)).unwrap();
        cache.get_or_compile(name, &model, config(OptLevel::O2)).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        let keys = cache.keys();
        assert!(keys[0].contains("O2") && keys[1].contains("O0"), "{keys:?}");
        // The evicted config is a miss again.
        cache.get_or_compile(name, &model, config(OptLevel::O1)).unwrap();
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn disk_round_trip_and_stale_rejection() {
        let (name, model) = family();
        let dir = std::env::temp_dir().join(format!(
            "distill-serve-cache-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let cfg = config(OptLevel::O1);
        let key = artifact_key(name, &cfg);
        let path = dir.join(format!("{key}.dstl"));
        {
            let mut cache = ArtifactCache::with_disk(2, dir.clone());
            cache.get_or_compile(name, &model, cfg).unwrap();
            assert!(path.is_file(), "artifact persisted to {path:?}");
        }
        // A fresh cache (a restarted daemon) loads the disk copy: a miss in
        // memory, answered without recompiling.
        {
            let mut cache = ArtifactCache::with_disk(2, dir.clone());
            let loaded = cache.get_or_compile(name, &model, cfg).unwrap();
            assert_eq!(cache.stats().misses, 1);
            assert_eq!(cache.stats().disk_hits, 1);
            assert_eq!(loaded.config, cfg);
        }
        // Corrupt the version field: the reload is rejected as stale, the
        // family recompiles and the file is rewritten at the current version.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = bytes[8].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        {
            let mut cache = ArtifactCache::with_disk(2, dir.clone());
            cache.get_or_compile(name, &model, cfg).unwrap();
            assert_eq!(cache.stats().disk_hits, 0);
            assert_eq!(cache.stats().disk_stale, 1);
        }
        assert!(distill::read_artifact(&path).is_ok(), "stale file rewritten");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_are_counted_misses_and_overwritten() {
        let (name, model) = family();
        let dir = std::env::temp_dir().join(format!(
            "distill-serve-corrupt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let cfg = config(OptLevel::O1);
        let path = dir.join(format!("{}.dstl", artifact_key(name, &cfg)));
        ArtifactCache::with_disk(2, dir.clone())
            .get_or_compile(name, &model, cfg)
            .unwrap();
        let clean = std::fs::read(&path).unwrap();

        // Bit-flip deep in the body (past magic+version, so it is a payload
        // corruption, not a version skew) and truncate — each must be a
        // counted disk_stale miss that recompiles and overwrites in place.
        let mut flipped = clean.clone();
        let idx = clean.len() / 2;
        flipped[idx] ^= 0x20;
        let truncated = clean[..clean.len() / 3].to_vec();
        for (label, bad) in [("bit-flipped", flipped), ("truncated", truncated)] {
            std::fs::write(&path, &bad).unwrap();
            let mut cache = ArtifactCache::with_disk(2, dir.clone());
            let artifact = cache.get_or_compile(name, &model, cfg).unwrap();
            assert_eq!(artifact.config, cfg, "{label}");
            assert_eq!(cache.stats().disk_hits, 0, "{label}: corrupt file must not hit");
            assert_eq!(cache.stats().disk_stale, 1, "{label}: counted as disk_stale");
            // Overwritten: a fresh cache now disk-hits again.
            let mut fresh = ArtifactCache::with_disk(2, dir.clone());
            fresh.get_or_compile(name, &model, cfg).unwrap();
            assert_eq!(fresh.stats().disk_hits, 1, "{label}: file was rewritten");
        }

        // A missing file stays an uncounted plain miss.
        std::fs::remove_file(&path).unwrap();
        let mut cache = ArtifactCache::with_disk(2, dir.clone());
        cache.get_or_compile(name, &model, cfg).unwrap();
        assert_eq!(cache.stats().disk_stale, 0);
        assert_eq!(cache.stats().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
