//! Bounded open-loop serving smoke: start a daemon, drive the registry's
//! serve mix with concurrent clients, and verify a sample of responses
//! bitwise against solo reruns. Exits non-zero on any mismatch, so CI can
//! gate on it directly.
//!
//! With `DISTILL_CHAOS` set (e.g. `panic=3,seed=7`) the smoke becomes the
//! resilience check: the injected worker panic must be absorbed by the
//! quarantine + client-retry path, every request must still complete, and
//! the surviving responses must stay bit-identical to solo reruns.
//!
//! The smoke doubles as the serving trace-export check: after the run it
//! writes the daemon's chrome://tracing export to
//! `bench_results/trace_serve.json`, re-parses it with the in-repo JSON
//! parser, and fails unless the trace is well-formed and contains the
//! spans the daemon is documented to emit.

use criterion::json::Json;
use std::time::Duration;

use distill_serve::{run_open_loop, ServeConfig, Server, TrafficConfig};

/// Parse a chrome trace export and require well-formed events plus at least
/// one event per `required` name. Panics (non-zero exit) on any violation.
fn validate_trace(path: &str, required: &[&str]) -> usize {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let root = Json::parse(&text).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"));
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("trace has a traceEvents array");
    assert!(!events.is_empty(), "{path}: traceEvents is empty");
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("event has ph");
        assert!(ph == "X" || ph == "i", "unexpected phase {ph:?}");
        assert!(ev.get("name").and_then(Json::as_str).is_some(), "event has name");
        assert!(ev.get("ts").and_then(Json::as_f64).is_some(), "event has ts");
        assert!(ev.get("pid").and_then(Json::as_f64).is_some(), "event has pid");
        assert!(ev.get("tid").and_then(Json::as_f64).is_some(), "event has tid");
        if ph == "X" {
            assert!(ev.get("dur").and_then(Json::as_f64).is_some(), "span has dur");
        }
    }
    for name in required {
        assert!(
            events
                .iter()
                .any(|ev| ev.get("name").and_then(Json::as_str) == Some(name)),
            "{path}: no {name:?} event in the trace"
        );
    }
    events.len()
}

fn main() {
    let families: Vec<String> = distill_models::serve_mix()
        .iter()
        .map(|spec| spec.name.to_string())
        .collect();
    assert!(!families.is_empty(), "registry has no Tag::Serve families");

    // Server::start installs this plan; parse it here too so the smoke
    // knows whether it is exercising the resilience path.
    let chaos = distill::chaos::ChaosPlan::from_env()
        .unwrap_or_else(|e| panic!("bad {} spec: {e}", distill::chaos::CHAOS_ENV));
    let chaos_armed = !chaos.is_inert();

    let server = Server::start(ServeConfig {
        workers: 2,
        batch: 16,
        ..ServeConfig::default()
    });
    let traffic = TrafficConfig {
        families,
        requests: 24,
        trials_per_request: 6,
        clients: 4,
        arrival_interval: Duration::from_micros(100),
        ..TrafficConfig::default()
    };
    let report = run_open_loop(&server, &traffic).expect("open-loop run failed");
    assert!(
        report.failed.is_empty(),
        "requests failed past retry: {:?}",
        report.failed
    );
    assert_eq!(report.requests, traffic.requests, "requests went missing");
    assert_eq!(report.trials, traffic.requests * traffic.trials_per_request);
    if chaos_armed && chaos.panic_trial.is_some() {
        let stats = server.stats();
        assert_eq!(
            stats.worker_panics, 1,
            "armed chaos panic did not fire exactly once"
        );
        assert!(
            report.retries >= 1,
            "quarantined request was not retried by the client"
        );
        println!(
            "serve smoke chaos: absorbed {} worker panic(s), requeued {} trial(s), \
             {} client retry(ies); all responses served",
            stats.worker_panics, stats.requeued_trials, report.retries
        );
    }

    // Identity check: a concurrent burst per family (forcing coalesced
    // spans) must match the same ranges rerun alone, bit for bit.
    let mut checked = 0usize;
    for family in &traffic.families {
        let tickets: Vec<_> = (0..3)
            .map(|_| {
                server
                    .submit(distill_serve::TrialRequest::new(family, 4))
                    .expect("submit failed")
            })
            .collect();
        for ticket in tickets {
            let start = ticket.start();
            let served = ticket.wait().expect("serve failed");
            let solo = server.run_solo(family, start, 4).expect("solo rerun failed");
            assert_eq!(
                served.outputs, solo.outputs,
                "coalesced response diverged from solo run for {family}"
            );
            assert_eq!(served.passes, solo.passes, "pass counts diverged for {family}");
            checked += 1;
        }
    }

    let stats = server.stats();
    println!(
        "serve smoke: {} requests ({} trials) in {:.3}s — {:.0} trials/s, \
         {}/{} coalesced, {} spans ({} coalesced), {} batch calls, {} identity checks",
        report.requests,
        report.trials,
        report.elapsed_s,
        report.throughput_tps,
        report.coalesced_requests,
        report.requests,
        stats.spans,
        stats.coalesced_spans,
        stats.batch_calls,
        checked,
    );

    // Telemetry cross-check: the registry's mirrored counters must agree
    // with the scheduler's own bookkeeping.
    let snap = server.telemetry();
    if snap.enabled {
        assert_eq!(
            snap.counter("serve.spans").unwrap_or(0),
            stats.spans as u64,
            "span counter drifted"
        );
        assert_eq!(
            snap.counter("serve.batch_calls").unwrap_or(0),
            stats.batch_calls as u64,
            "batch-call counter drifted"
        );
        println!(
            "serve smoke telemetry: cache hits={} misses={}, wait p95 {} us",
            snap.counter("serve.cache.hits").unwrap_or(0),
            snap.counter("serve.cache.misses").unwrap_or(0),
            snap.histogram("serve.wait_ns").map_or(0, |h| h.p95 / 1_000),
        );
    }

    // Trace export: drop the server first so its worker threads exit and
    // flush their buffered events into the ring.
    drop(server);
    if snap.enabled {
        let path = "bench_results/trace_serve.json";
        let events = distill_telemetry::write_chrome_trace(path).expect("trace export");
        let parsed = validate_trace(path, &["serve.chunk"]);
        assert_eq!(parsed, events, "export and re-parse disagree on event count");
        println!("serve smoke trace: {events} event(s) -> {path} (valid trace_event JSON)");
    }
}
