//! Bounded open-loop serving smoke: start a daemon, drive the registry's
//! serve mix with concurrent clients, and verify a sample of responses
//! bitwise against solo reruns. Exits non-zero on any mismatch, so CI can
//! gate on it directly.

use std::time::Duration;

use distill_serve::{run_open_loop, ServeConfig, Server, TrafficConfig};

fn main() {
    let families: Vec<String> = distill_models::serve_mix()
        .iter()
        .map(|spec| spec.name.to_string())
        .collect();
    assert!(!families.is_empty(), "registry has no Tag::Serve families");

    let server = Server::start(ServeConfig {
        workers: 2,
        batch: 16,
        ..ServeConfig::default()
    });
    let traffic = TrafficConfig {
        families,
        requests: 24,
        trials_per_request: 6,
        clients: 4,
        arrival_interval: Duration::from_micros(100),
    };
    let report = run_open_loop(&server, &traffic).expect("open-loop run failed");
    assert_eq!(report.requests, traffic.requests, "requests went missing");
    assert_eq!(report.trials, traffic.requests * traffic.trials_per_request);

    // Identity check: a concurrent burst per family (forcing coalesced
    // spans) must match the same ranges rerun alone, bit for bit.
    let mut checked = 0usize;
    for family in &traffic.families {
        let tickets: Vec<_> = (0..3)
            .map(|_| {
                server
                    .submit(distill_serve::TrialRequest::new(family, 4))
                    .expect("submit failed")
            })
            .collect();
        for ticket in tickets {
            let start = ticket.start();
            let served = ticket.wait().expect("serve failed");
            let solo = server.run_solo(family, start, 4).expect("solo rerun failed");
            assert_eq!(
                served.outputs, solo.outputs,
                "coalesced response diverged from solo run for {family}"
            );
            assert_eq!(served.passes, solo.passes, "pass counts diverged for {family}");
            checked += 1;
        }
    }

    let stats = server.stats();
    println!(
        "serve smoke: {} requests ({} trials) in {:.3}s — {:.0} trials/s, \
         {}/{} coalesced, {} spans ({} coalesced), {} batch calls, {} identity checks",
        report.requests,
        report.trials,
        report.elapsed_s,
        report.throughput_tps,
        report.coalesced_requests,
        report.requests,
        stats.spans,
        stats.coalesced_spans,
        stats.batch_calls,
        checked,
    );
}
