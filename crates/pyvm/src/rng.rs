//! The pseudo-random number generator shared by every execution path.
//!
//! §3.6 of the paper: "models that sample from random number generators use
//! independent random number generators for all evaluations. The state of
//! the PRNG is used as a read-write parameter in their evaluation
//! functions". For that replication/restoration scheme to be testable, the
//! baseline interpreter, the compiled single-thread engine, the multicore
//! backend and the simulated GPU must all draw the *same* sequence from the
//! same state. This module is that single definition: a SplitMix64 stream
//! with a Box–Muller transform for normal deviates (no cached second value,
//! so the state is exactly one 64-bit word and replication is trivial).
//!
//! The paper notes that swapping in a GPU-friendly PRNG would change model
//! outputs and was therefore avoided; we keep one generator everywhere for
//! the same reason.

/// A SplitMix64 generator with a single 64-bit word of state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    /// The generator state; copy it to replicate the stream.
    pub state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard normal sample via Box–Muller (two uniforms per call, no
    /// cached second value so that the state is the complete description of
    /// the stream).
    pub fn normal(&mut self) -> f64 {
        let mut u1 = self.uniform();
        if u1 <= f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Derive an independent stream for parallel evaluation `index`, exactly
    /// as the multicore and GPU backends do (§3.6): each evaluation gets its
    /// own replicated state so threads draw identical numbers regardless of
    /// scheduling.
    pub fn stream_for(seed: u64, index: u64) -> SplitMix64 {
        // Mix the index through one SplitMix64 step so streams decorrelate.
        let mut mixer = SplitMix64::new(seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F));
        let s = mixer.next_u64();
        SplitMix64::new(s)
    }

    /// Derive the stream a node draws from during trial `trial`: stream index
    /// `trial * 2^32 + node` (node counts are far below 2^32, so the
    /// packing is collision-free). Deriving node streams *per trial* — rather
    /// than letting one stream run on across the whole trial sequence — makes
    /// trials independent random-access units: any execution order (serial,
    /// batched, or sharded across threads) draws identical numbers for trial
    /// `t`, which is the §3.6 reproducibility requirement extended from grid
    /// evaluations to trials. Trial 0 reduces to `stream_for(seed, node)`,
    /// the pre-trial-indexing initial stream.
    pub fn trial_node_stream(seed: u64, trial: u64, node: u64) -> SplitMix64 {
        SplitMix64::stream_for(seed, (trial << 32).wrapping_add(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut r = SplitMix64::new(12345);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let z = r.normal();
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn replicated_state_replays_the_stream() {
        let mut r = SplitMix64::new(99);
        let _ = r.normal();
        let snapshot = r;
        let mut replay = snapshot;
        let a: Vec<f64> = (0..10).map(|_| r.normal()).collect();
        let b: Vec<f64> = (0..10).map(|_| replay.normal()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_streams_differ() {
        let a: Vec<f64> = {
            let mut s = SplitMix64::stream_for(1, 0);
            (0..5).map(|_| s.uniform()).collect()
        };
        let b: Vec<f64> = {
            let mut s = SplitMix64::stream_for(1, 1);
            (0..5).map(|_| s.uniform()).collect()
        };
        assert_ne!(a, b);
    }
}
