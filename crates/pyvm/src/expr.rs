//! The scalar expression language node computations are written in.
//!
//! A cognitive-model node's `execute` method is, for Distill's purposes, a
//! pure-ish function from its input ports, read-only parameters and
//! read-write state to its output ports (plus state updates). `Expr` is the
//! AST of that function at *scalar element* granularity: vector-valued
//! ports are referenced element-by-element (`Input { port, index }`), which
//! is exactly the monomorphic, shape-specialized form that §3.4.1 of the
//! paper describes ("a separate version of the function for each lexical
//! instance it is invoked").
//!
//! The same AST has two consumers:
//! * the dynamic interpreter in [`crate::interp`] (the baseline), and
//! * the IR lowering in `distill-codegen` (the Distill path),
//!
//! which is what guarantees the two execution paths compute the same model.

use std::fmt;

/// Binary numeric operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumBinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
}

/// Math library calls available to node functions (the numpy subset the
/// paper lowers to LLVM intrinsics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MathFn {
    /// `exp(x)`.
    Exp,
    /// `ln(x)`.
    Log,
    /// `sqrt(x)`.
    Sqrt,
    /// `tanh(x)`.
    Tanh,
    /// `|x|`.
    Abs,
    /// `min(x, y)`.
    Min,
    /// `max(x, y)`.
    Max,
    /// `pow(x, y)`.
    Pow,
    /// `floor(x)`.
    Floor,
}

impl MathFn {
    /// Number of arguments the function takes.
    pub fn arity(&self) -> usize {
        match self {
            MathFn::Min | MathFn::Max | MathFn::Pow => 2,
            _ => 1,
        }
    }

    /// Evaluate the function on concrete arguments.
    pub fn eval(&self, args: &[f64]) -> f64 {
        match self {
            MathFn::Exp => args[0].exp(),
            MathFn::Log => args[0].ln(),
            MathFn::Sqrt => args[0].sqrt(),
            MathFn::Tanh => args[0].tanh(),
            MathFn::Abs => args[0].abs(),
            MathFn::Min => args[0].min(args[1]),
            MathFn::Max => args[0].max(args[1]),
            MathFn::Pow => args[0].powf(args[1]),
            MathFn::Floor => args[0].floor(),
        }
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Const(f64),
    /// Element `index` of input port `port`.
    Input {
        /// Input port index on the mechanism.
        port: usize,
        /// Element within the port's value.
        index: usize,
    },
    /// Element `index` of the read-only parameter `name`.
    Param {
        /// Parameter name (a dictionary key in the baseline).
        name: String,
        /// Element within the parameter's value.
        index: usize,
    },
    /// Element `index` of the read-write state entry `name`.
    State {
        /// State entry name.
        name: String,
        /// Element within the state value.
        index: usize,
    },
    /// Binary arithmetic.
    Bin(NumBinOp, Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
    /// Comparison producing 1.0 / 0.0.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// `if cond != 0 { then } else { otherwise }`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Math library call.
    Call(MathFn, Vec<Expr>),
    /// A standard-normal sample from the node's PRNG.
    RandNormal,
    /// A uniform `[0, 1)` sample from the node's PRNG.
    RandUniform,
}

// `add`/`sub`/`mul`/`div` are two-argument AST constructors, not `self`
// methods — the operator traits don't fit their by-value builder shape.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Bin(NumBinOp::Add, Box::new(a), Box::new(b))
    }

    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Bin(NumBinOp::Sub, Box::new(a), Box::new(b))
    }

    /// `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Bin(NumBinOp::Mul, Box::new(a), Box::new(b))
    }

    /// `a / b`.
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Bin(NumBinOp::Div, Box::new(a), Box::new(b))
    }

    /// A literal.
    pub fn lit(v: f64) -> Expr {
        Expr::Const(v)
    }

    /// Element 0 of input port `p`.
    pub fn input(p: usize) -> Expr {
        Expr::Input { port: p, index: 0 }
    }

    /// Element `i` of input port `p`.
    pub fn input_elem(p: usize, i: usize) -> Expr {
        Expr::Input { port: p, index: i }
    }

    /// Element 0 of parameter `name`.
    pub fn param(name: &str) -> Expr {
        Expr::Param {
            name: name.to_string(),
            index: 0,
        }
    }

    /// Element `i` of parameter `name`.
    pub fn param_elem(name: &str, i: usize) -> Expr {
        Expr::Param {
            name: name.to_string(),
            index: i,
        }
    }

    /// Element 0 of state entry `name`.
    pub fn state(name: &str) -> Expr {
        Expr::State {
            name: name.to_string(),
            index: 0,
        }
    }

    /// Element `i` of state entry `name`.
    pub fn state_elem(name: &str, i: usize) -> Expr {
        Expr::State {
            name: name.to_string(),
            index: i,
        }
    }

    /// Call a unary math function.
    pub fn call1(f: MathFn, a: Expr) -> Expr {
        Expr::Call(f, vec![a])
    }

    /// Call a binary math function.
    pub fn call2(f: MathFn, a: Expr, b: Expr) -> Expr {
        Expr::Call(f, vec![a, b])
    }

    /// The logistic function `1 / (1 + exp(-gain * (x - bias)))` as an
    /// expression template (the paper's running example of a framework
    /// library function, §3.4.1).
    pub fn logistic(x: Expr, gain: Expr, bias: Expr) -> Expr {
        let shifted = Expr::sub(x, bias);
        let scaled = Expr::mul(gain, shifted);
        let e = Expr::call1(MathFn::Exp, Expr::Neg(Box::new(scaled)));
        Expr::div(Expr::lit(1.0), Expr::add(Expr::lit(1.0), e))
    }

    /// Number of AST nodes (used as a code-size proxy by compilation-time
    /// accounting, Fig. 7).
    pub fn size(&self) -> usize {
        1 + match self {
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => a.size() + b.size(),
            Expr::Neg(a) => a.size(),
            Expr::If(c, t, e) => c.size() + t.size() + e.size(),
            Expr::Call(_, args) => args.iter().map(Expr::size).sum(),
            _ => 0,
        }
    }

    /// Whether the expression draws random numbers (such nodes need a PRNG
    /// state slot in the static layout, §3.6).
    pub fn uses_rng(&self) -> bool {
        match self {
            Expr::RandNormal | Expr::RandUniform => true,
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => a.uses_rng() || b.uses_rng(),
            Expr::Neg(a) => a.uses_rng(),
            Expr::If(c, t, e) => c.uses_rng() || t.uses_rng() || e.uses_rng(),
            Expr::Call(_, args) => args.iter().any(Expr::uses_rng),
            _ => false,
        }
    }

    /// The set of `(port, index)` input elements the expression reads.
    pub fn input_refs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Input { port, index } = e {
                if !out.contains(&(*port, *index)) {
                    out.push((*port, *index));
                }
            }
        });
        out
    }

    /// The set of parameter names the expression reads.
    pub fn param_refs(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Param { name, .. } = e {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Neg(a) => a.visit(f),
            Expr::If(c, t, e) => {
                c.visit(f);
                t.visit(f);
                e.visit(f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.visit(f);
                }
            }
            _ => {}
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Input { port, index } => write!(f, "in[{port}][{index}]"),
            Expr::Param { name, index } => write!(f, "p.{name}[{index}]"),
            Expr::State { name, index } => write!(f, "s.{name}[{index}]"),
            Expr::Bin(op, a, b) => {
                let sym = match op {
                    NumBinOp::Add => "+",
                    NumBinOp::Sub => "-",
                    NumBinOp::Mul => "*",
                    NumBinOp::Div => "/",
                };
                write!(f, "({a} {sym} {b})")
            }
            Expr::Neg(a) => write!(f, "(-{a})"),
            Expr::Cmp(op, a, b) => {
                let sym = match op {
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                    CmpOp::Eq => "==",
                    CmpOp::Ne => "!=",
                };
                write!(f, "({a} {sym} {b})")
            }
            Expr::If(c, t, e) => write!(f, "({t} if {c} else {e})"),
            Expr::Call(m, args) => {
                write!(f, "{m:?}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::RandNormal => write!(f, "normal()"),
            Expr::RandUniform => write!(f, "uniform()"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_size() {
        let e = Expr::logistic(Expr::input(0), Expr::param("gain"), Expr::param("bias"));
        assert!(e.size() >= 9);
        assert!(!e.uses_rng());
        assert_eq!(e.input_refs(), vec![(0, 0)]);
        assert_eq!(e.param_refs(), vec!["gain".to_string(), "bias".to_string()]);
    }

    #[test]
    fn rng_detection() {
        let e = Expr::add(Expr::input(0), Expr::mul(Expr::param("noise"), Expr::RandNormal));
        assert!(e.uses_rng());
    }

    #[test]
    fn math_fn_eval() {
        assert!((MathFn::Exp.eval(&[0.0]) - 1.0).abs() < 1e-12);
        assert_eq!(MathFn::Max.eval(&[2.0, 3.0]), 3.0);
        assert_eq!(MathFn::Min.arity(), 2);
        assert_eq!(MathFn::Tanh.arity(), 1);
        assert_eq!(MathFn::Abs.eval(&[-2.0]), 2.0);
    }

    #[test]
    fn display_round_trip_readability() {
        let e = Expr::mul(Expr::param("slope"), Expr::input(0));
        assert_eq!(e.to_string(), "(p.slope[0] * in[0][0])");
    }

    #[test]
    fn input_refs_deduplicate() {
        let e = Expr::add(Expr::input_elem(1, 2), Expr::mul(Expr::input_elem(1, 2), Expr::input(0)));
        assert_eq!(e.input_refs(), vec![(1, 2), (0, 0)]);
    }
}
