//! Dynamically typed values, the baseline's in-memory representation.
//!
//! A `DynValue` is deliberately expensive in the ways CPython objects are
//! expensive: every scalar is boxed inside an enum, lists own boxed
//! elements, and dictionaries are association lists with string keys and
//! linear lookup (CPython dictionaries are hash tables, but for the small
//! dictionaries cognitive models use — a handful of parameters per node —
//! the dominating costs are hashing, boxing and indirection, which the
//! linear scan over heap-allocated `String` keys models faithfully).

use std::fmt;

/// A dynamically typed value.
#[derive(Debug, Clone, PartialEq)]
pub enum DynValue {
    /// A boxed float (the most common leaf).
    Float(f64),
    /// A boxed integer (counters, indices).
    Int(i64),
    /// A boxed boolean.
    Bool(bool),
    /// A heap string (keys, labels).
    Str(String),
    /// A list of boxed values.
    List(Vec<DynValue>),
    /// A string-keyed dictionary stored as an association list.
    Dict(Vec<(String, DynValue)>),
    /// Python's `None`.
    None,
}

impl DynValue {
    /// Build a list of floats.
    pub fn vector(vals: &[f64]) -> DynValue {
        DynValue::List(vals.iter().copied().map(DynValue::Float).collect())
    }

    /// Build a dictionary from `(key, value)` pairs.
    pub fn dict(pairs: Vec<(&str, DynValue)>) -> DynValue {
        DynValue::Dict(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// View as `f64`, coercing ints and bools like Python does.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            DynValue::Float(v) => Some(*v),
            DynValue::Int(v) => Some(*v as f64),
            DynValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// View as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            DynValue::Int(v) => Some(*v),
            DynValue::Bool(b) => Some(*b as i64),
            DynValue::Float(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// View as a list slice.
    pub fn as_list(&self) -> Option<&[DynValue]> {
        match self {
            DynValue::List(l) => Some(l),
            _ => None,
        }
    }

    /// Length of a list, element count of a dict, 1 for scalars.
    pub fn len(&self) -> usize {
        match self {
            DynValue::List(l) => l.len(),
            DynValue::Dict(d) => d.len(),
            DynValue::None => 0,
            _ => 1,
        }
    }

    /// Whether the value is empty (`None` or an empty container).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dictionary lookup by key (linear scan, mirroring boxed-key costs).
    pub fn get(&self, key: &str) -> Option<&DynValue> {
        match self {
            DynValue::Dict(items) => items.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable dictionary lookup by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut DynValue> {
        match self {
            DynValue::Dict(items) => items.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Position of `key` in the association list (the slot the interpreter's
    /// dispatch cache pre-resolves; entries are never removed, so a slot
    /// stays valid for the dictionary's lifetime).
    pub fn dict_slot(&self, key: &str) -> Option<usize> {
        match self {
            DynValue::Dict(items) => items.iter().position(|(k, _)| k == key),
            _ => None,
        }
    }

    /// The `(key, value)` entry at a slot position.
    pub fn dict_entry(&self, slot: usize) -> Option<(&str, &DynValue)> {
        match self {
            DynValue::Dict(items) => items.get(slot).map(|(k, v)| (k.as_str(), v)),
            _ => None,
        }
    }

    /// Insert or replace a dictionary entry.
    ///
    /// # Panics
    /// Panics if the value is not a dictionary.
    pub fn set(&mut self, key: &str, value: DynValue) {
        match self {
            DynValue::Dict(items) => {
                if let Some(slot) = items.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    items.push((key.to_string(), value));
                }
            }
            other => panic!("set() on non-dict value {other:?}"),
        }
    }

    /// List element access.
    pub fn index(&self, i: usize) -> Option<&DynValue> {
        match self {
            DynValue::List(l) => l.get(i),
            _ if i == 0 => Some(self),
            _ => None,
        }
    }

    /// Mutable list element access.
    pub fn index_mut(&mut self, i: usize) -> Option<&mut DynValue> {
        match self {
            DynValue::List(l) => l.get_mut(i),
            _ if i == 0 => Some(self),
            _ => None,
        }
    }

    /// Flatten the value into a vector of floats (the "shape extraction" of
    /// §3.1 uses this to learn sizes from the sanitization run).
    pub fn flatten(&self) -> Vec<f64> {
        match self {
            DynValue::List(l) => l.iter().flat_map(|v| v.flatten()).collect(),
            DynValue::Dict(d) => d.iter().flat_map(|(_, v)| v.flatten()).collect(),
            DynValue::None => Vec::new(),
            other => vec![other.as_f64().unwrap_or(f64::NAN)],
        }
    }

    /// The static shape of the value: number of scalar slots.
    pub fn shape(&self) -> usize {
        self.flatten().len()
    }

    /// Deep size estimate in bytes, used to model the memory footprint of
    /// dynamic structures (the PyPy out-of-memory reproduction counts these).
    pub fn heap_bytes(&self) -> usize {
        match self {
            DynValue::Float(_) | DynValue::Int(_) | DynValue::Bool(_) | DynValue::None => 32,
            DynValue::Str(s) => 56 + s.len(),
            DynValue::List(l) => 64 + l.iter().map(DynValue::heap_bytes).sum::<usize>(),
            DynValue::Dict(d) => {
                104 + d
                    .iter()
                    .map(|(k, v)| 56 + k.len() + v.heap_bytes())
                    .sum::<usize>()
            }
        }
    }
}

impl fmt::Display for DynValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynValue::Float(v) => write!(f, "{v}"),
            DynValue::Int(v) => write!(f, "{v}"),
            DynValue::Bool(b) => write!(f, "{b}"),
            DynValue::Str(s) => write!(f, "{s:?}"),
            DynValue::None => write!(f, "None"),
            DynValue::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            DynValue::Dict(d) => {
                write!(f, "{{")?;
                for (i, (k, v)) in d.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k:?}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<f64> for DynValue {
    fn from(v: f64) -> Self {
        DynValue::Float(v)
    }
}

impl From<i64> for DynValue {
    fn from(v: i64) -> Self {
        DynValue::Int(v)
    }
}

impl From<bool> for DynValue {
    fn from(v: bool) -> Self {
        DynValue::Bool(v)
    }
}

impl From<Vec<f64>> for DynValue {
    fn from(v: Vec<f64>) -> Self {
        DynValue::vector(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_views() {
        assert_eq!(DynValue::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(DynValue::Int(3).as_f64(), Some(3.0));
        assert_eq!(DynValue::Bool(true).as_i64(), Some(1));
        assert_eq!(DynValue::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn dict_get_set() {
        let mut d = DynValue::dict(vec![("gain", DynValue::Float(2.0))]);
        assert_eq!(d.get("gain").and_then(DynValue::as_f64), Some(2.0));
        assert_eq!(d.get("bias"), None);
        d.set("bias", DynValue::Float(0.5));
        d.set("gain", DynValue::Float(3.0));
        assert_eq!(d.get("gain").and_then(DynValue::as_f64), Some(3.0));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn list_indexing_and_flatten() {
        let v = DynValue::vector(&[1.0, 2.0, 3.0]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.index(1).and_then(DynValue::as_f64), Some(2.0));
        assert_eq!(v.flatten(), vec![1.0, 2.0, 3.0]);
        let nested = DynValue::List(vec![v.clone(), DynValue::Float(4.0)]);
        assert_eq!(nested.flatten(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(nested.shape(), 4);
    }

    #[test]
    fn scalars_index_like_singletons() {
        let s = DynValue::Float(7.0);
        assert_eq!(s.index(0).and_then(DynValue::as_f64), Some(7.0));
        assert_eq!(s.index(1), None);
    }

    #[test]
    fn heap_bytes_grow_with_structure() {
        let scalar = DynValue::Float(1.0);
        let list = DynValue::vector(&[1.0; 100]);
        let dict = DynValue::dict(vec![("a", list.clone()), ("b", scalar.clone())]);
        assert!(scalar.heap_bytes() < list.heap_bytes());
        assert!(list.heap_bytes() < dict.heap_bytes());
    }

    #[test]
    fn display_is_python_flavoured() {
        let d = DynValue::dict(vec![("k", DynValue::vector(&[1.0, 2.0]))]);
        assert_eq!(d.to_string(), "{\"k\": [1, 2]}");
    }
}
