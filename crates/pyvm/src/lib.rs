//! `distill-pyvm` — the dynamic-language substrate the paper's baselines run
//! on.
//!
//! The paper's baseline is PsyNeuLink executing on CPython (plus the Pyston
//! and PyPy JITs). We cannot ship CPython, so this crate reproduces the
//! *performance-relevant structure* of that execution model:
//!
//! * [`value::DynValue`] — dynamically typed, heap-boxed values: floats,
//!   lists of boxed values, and string-keyed dictionaries with linear-probe
//!   lookup. Node inputs, outputs and parameters all travel through this
//!   representation in baseline mode, exactly the overhead Distill's
//!   dynamic-to-static conversion (§3.3) removes.
//! * [`expr::Expr`] — the computation language node functions are written
//!   in. It plays the role of the Python bytecode of a node's `execute`
//!   method: the baseline interpreter walks it dynamically, while
//!   `distill-codegen` lowers the same AST to IR.
//! * [`interp`] — a tree-walking interpreter over `DynValue` environments
//!   with four execution modes mirroring the paper's §5 environments:
//!   CPython, Pyston, PyPy and PyPy-nojit. The JIT modes are *simulations*
//!   (see DESIGN.md): they reproduce the qualitative behaviour the paper
//!   reports — Pyston's modest win from method-level caching, PyPy's
//!   slowdown and out-of-memory failures from trace bookkeeping that grows
//!   with model size, and both JITs' inability to run models containing
//!   PyTorch components.

pub mod expr;
pub mod interp;
pub mod rng;
pub mod value;

pub use expr::{CmpOp, Expr, MathFn, NumBinOp};
pub use interp::{EvalContext, ExecMode, Interpreter, PyVmError};
pub use rng::SplitMix64;
pub use value::DynValue;
