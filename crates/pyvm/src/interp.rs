//! The dynamic (baseline) interpreter and its execution modes.
//!
//! Node computations arrive as [`Expr`] trees; parameters, state and inputs
//! arrive as boxed [`DynValue`] structures. Evaluation walks the tree,
//! performing string-keyed dictionary lookups for every parameter access and
//! boxing every intermediate — the costs the paper attributes to CPython
//! execution of PsyNeuLink models.
//!
//! [`ExecMode`] selects one of the paper's four §5 environments. The JIT
//! modes are *simulations* built to reproduce the paper's qualitative
//! findings rather than reimplementations of PyPy/Pyston (see DESIGN.md,
//! substitution table): Pyston caches resolved parameter offsets per call
//! site (a modest win), PyPy additionally records traces whose metadata
//! grows with the number of executed operations and fails with an
//! out-of-memory error once a cap is exceeded, and PyPy-nojit pays the
//! tracing bookkeeping without ever reusing a trace.

use crate::expr::{CmpOp, Expr, NumBinOp};
use crate::rng::SplitMix64;
use crate::value::DynValue;
use std::collections::HashMap;
use std::fmt;

/// The execution environment being simulated (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// Plain CPython-style interpretation (the baseline everything is
    /// normalized to in Fig. 4).
    #[default]
    CPython,
    /// Pyston-style method-at-a-time JIT: parameter lookups are cached per
    /// call site after the first execution, everything else stays dynamic.
    Pyston,
    /// PyPy-style tracing JIT: pays trace recording and guard bookkeeping
    /// that grows with model size; can exhaust its trace memory budget.
    PyPy,
    /// PyPy with the JIT disabled: tracing-interpreter overhead without any
    /// compiled traces.
    PyPyNoJit,
}

impl ExecMode {
    /// All modes in the order Fig. 4 lists them.
    pub fn all() -> [ExecMode; 4] {
        [
            ExecMode::CPython,
            ExecMode::PyPy,
            ExecMode::PyPyNoJit,
            ExecMode::Pyston,
        ]
    }

    /// Whether the mode can execute components imported from PyTorch.
    /// Pyston 2.0 and PyPy cannot (paper Fig. 4 annotations).
    pub fn supports_pytorch(&self) -> bool {
        matches!(self, ExecMode::CPython)
    }

    /// Short label used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            ExecMode::CPython => "CPython",
            ExecMode::Pyston => "Pyston",
            ExecMode::PyPy => "PyPy",
            ExecMode::PyPyNoJit => "PyPy-nojit",
        }
    }
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Errors produced by baseline execution.
#[derive(Debug, Clone, PartialEq)]
pub enum PyVmError {
    /// The simulated tracing JIT exhausted its memory budget (reproduces the
    /// paper's PyPy out-of-memory failures on the Botvinick Stroop and
    /// Predator-Prey XL models).
    OutOfMemory {
        /// Bytes the environment tried to hold.
        needed_bytes: usize,
        /// The configured budget.
        budget_bytes: usize,
    },
    /// The environment cannot run components from this framework (Pyston and
    /// PyPy cannot run PyTorch models).
    UnsupportedFramework(String),
    /// A parameter or state entry was missing from the node's dictionaries.
    MissingName(String),
    /// A value had the wrong dynamic type.
    TypeError(String),
}

impl fmt::Display for PyVmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PyVmError::OutOfMemory {
                needed_bytes,
                budget_bytes,
            } => write!(
                f,
                "out of memory: tracing metadata needs {needed_bytes} bytes, budget is {budget_bytes}"
            ),
            PyVmError::UnsupportedFramework(fw) => {
                write!(f, "execution environment does not support {fw}")
            }
            PyVmError::MissingName(n) => write!(f, "missing parameter or state entry `{n}`"),
            PyVmError::TypeError(m) => write!(f, "type error: {m}"),
        }
    }
}

impl std::error::Error for PyVmError {}

/// Everything a node evaluation needs: boxed inputs, parameter and state
/// dictionaries, a PRNG, and an optional call-site key for the Pyston cache.
#[derive(Debug)]
pub struct EvalContext<'a> {
    /// One boxed value per input port.
    pub inputs: &'a [DynValue],
    /// Read-only parameter dictionary.
    pub params: &'a DynValue,
    /// Read-write state dictionary.
    pub state: &'a mut DynValue,
    /// The node's PRNG.
    pub rng: &'a mut SplitMix64,
    /// Stable identifier of the call site (node id, output element) used by
    /// the Pyston specialization cache. `None` disables caching.
    pub cache_key: Option<(usize, usize)>,
}

/// Cumulative counters describing how much dynamic work an interpreter did;
/// the figure harness uses them to report memory footprints and the OOM
/// reproduction relies on `trace_bytes`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Expression nodes evaluated.
    pub ops: u64,
    /// String-keyed dictionary lookups performed.
    pub dict_lookups: u64,
    /// Boxed temporaries allocated.
    pub boxes_allocated: u64,
    /// Bytes of simulated trace / guard metadata currently held (PyPy modes).
    pub trace_bytes: usize,
    /// Cache hits in the Pyston call-site cache.
    pub cache_hits: u64,
}

/// A tree-walking interpreter configured for one [`ExecMode`].
#[derive(Debug)]
pub struct Interpreter {
    mode: ExecMode,
    /// Budget for simulated trace metadata before the PyPy modes fail with
    /// [`PyVmError::OutOfMemory`]. Scaled stand-in for the paper's 16 GB.
    pub trace_budget_bytes: usize,
    stats: InterpStats,
    /// Pyston call-site cache: resolved parameter values per call site.
    pyston_cache: HashMap<(usize, usize), HashMap<String, Vec<f64>>>,
    /// PyPy trace store: per call site, the recorded trace length.
    pypy_traces: HashMap<(usize, usize), usize>,
    /// Pre-resolved dictionary slots for `Param`/`State` reads, keyed by the
    /// `Expr` node's address (stable for the life of the model being run).
    /// This is *implementation* predecoding, not simulated JIT machinery: it
    /// removes the host-side linear key scan from the dispatch loop in every
    /// mode while the semantic cost counters ([`InterpStats::dict_lookups`],
    /// boxing, trace bytes) keep accumulating exactly as before — so the
    /// measured baseline gets faster without its modelled costs changing.
    /// Every hit is verified against the slot's key, so a stale address
    /// (a dropped model's `Expr` reused by the allocator) can misdirect a
    /// lookup only to a rescan, never to a wrong entry.
    slot_cache: HashMap<usize, usize>,
}

/// Default trace budget: a scaled-down stand-in for the paper's 16 GB host
/// memory, chosen so that the two models the paper reports as OOM (Botvinick
/// Stroop, Predator-Prey XL) exceed it while the small models do not.
pub const DEFAULT_TRACE_BUDGET: usize = 64 * 1024 * 1024;

impl Interpreter {
    /// Create an interpreter for the given mode with the default trace
    /// budget.
    pub fn new(mode: ExecMode) -> Interpreter {
        Interpreter {
            mode,
            trace_budget_bytes: DEFAULT_TRACE_BUDGET,
            stats: InterpStats::default(),
            pyston_cache: HashMap::new(),
            pypy_traces: HashMap::new(),
            slot_cache: HashMap::new(),
        }
    }

    /// The interpreter's execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> InterpStats {
        self.stats
    }

    /// Reset counters and caches (used between benchmark repetitions).
    pub fn reset(&mut self) {
        self.stats = InterpStats::default();
        self.pyston_cache.clear();
        self.pypy_traces.clear();
        self.slot_cache.clear();
    }

    /// Resolve a `Param`/`State` read through the pre-resolved slot cache:
    /// on a verified hit the lookup is one pointer hash plus one key
    /// comparison instead of a linear scan over heap `String` keys; a miss
    /// (first visit, or a dictionary whose layout changed) rescans and
    /// re-caches. `site` is the `Expr` node's address.
    fn resolve_slot<'v>(
        cache: &mut HashMap<usize, usize>,
        site: usize,
        dict: &'v DynValue,
        name: &str,
    ) -> Option<&'v DynValue> {
        if let Some(&slot) = cache.get(&site) {
            if let Some((key, value)) = dict.dict_entry(slot) {
                if key == name {
                    return Some(value);
                }
            }
        }
        let slot = dict.dict_slot(name)?;
        cache.insert(site, slot);
        dict.dict_entry(slot).map(|(_, value)| value)
    }

    /// Evaluate an expression to a float in the given context.
    ///
    /// # Errors
    /// Returns [`PyVmError`] on missing names, type errors, or (in the PyPy
    /// modes) when the simulated trace memory exceeds the budget.
    pub fn eval(&mut self, expr: &Expr, ctx: &mut EvalContext<'_>) -> Result<f64, PyVmError> {
        // Mode-specific pre-work simulating the JIT machinery.
        match self.mode {
            ExecMode::PyPy | ExecMode::PyPyNoJit => {
                // Tracing: every evaluation records per-op guard metadata.
                // Re-tracing happens whenever the scheduler re-enters the
                // call site (cognitive models flip between scheduler and
                // node code constantly, §2.3), so the store only grows.
                let site = ctx.cache_key.unwrap_or((usize::MAX, usize::MAX));
                let growth = 48 * expr.size();
                let entry = self.pypy_traces.entry(site).or_insert(0);
                *entry += growth;
                self.stats.trace_bytes += growth;
                if self.mode == ExecMode::PyPy && self.stats.trace_bytes > self.trace_budget_bytes
                {
                    return Err(PyVmError::OutOfMemory {
                        needed_bytes: self.stats.trace_bytes,
                        budget_bytes: self.trace_budget_bytes,
                    });
                }
            }
            ExecMode::Pyston | ExecMode::CPython => {}
        }

        let use_cache = self.mode == ExecMode::Pyston && ctx.cache_key.is_some();
        if use_cache {
            let key = ctx.cache_key.unwrap();
            if !self.pyston_cache.contains_key(&key) {
                // First execution at this call site: resolve the parameter
                // dictionary once into an offset table.
                let mut resolved = HashMap::new();
                for name in expr.param_refs() {
                    let v = ctx
                        .params
                        .get(&name)
                        .ok_or_else(|| PyVmError::MissingName(name.clone()))?;
                    self.stats.dict_lookups += 1;
                    resolved.insert(name, v.flatten());
                }
                self.pyston_cache.insert(key, resolved);
            } else {
                self.stats.cache_hits += 1;
            }
        }
        self.eval_inner(expr, ctx)
    }

    fn eval_inner(&mut self, expr: &Expr, ctx: &mut EvalContext<'_>) -> Result<f64, PyVmError> {
        self.stats.ops += 1;
        // Every intermediate is heap-boxed, as in CPython: the allocation is
        // real, not just modelled, so the baseline pays the object-churn cost
        // the paper attributes to dynamic execution.
        let boxed: Box<DynValue> = Box::new(match expr {
            Expr::Const(v) => DynValue::Float(*v),
            Expr::Input { port, index } => {
                let port_val = ctx.inputs.get(*port).ok_or_else(|| {
                    PyVmError::TypeError(format!("input port {port} out of range"))
                })?;
                port_val
                    .index(*index)
                    .cloned()
                    .ok_or_else(|| PyVmError::TypeError(format!("input element {index} missing")))?
            }
            Expr::Param { name, index } => {
                let cached = if self.mode == ExecMode::Pyston {
                    ctx.cache_key
                        .and_then(|k| self.pyston_cache.get(&k))
                        .and_then(|tbl| tbl.get(name))
                        .and_then(|v| v.get(*index))
                        .copied()
                } else {
                    None
                };
                match cached {
                    Some(v) => DynValue::Float(v),
                    None => {
                        // The semantic counter still ticks per access — the
                        // baseline *models* a CPython dict lookup here — but
                        // the host-side scan is replaced by the interned
                        // slot (the "pyvm on the same diet" predecoding).
                        self.stats.dict_lookups += 1;
                        let site = std::ptr::from_ref(expr) as usize;
                        let p = Self::resolve_slot(&mut self.slot_cache, site, ctx.params, name)
                            .ok_or_else(|| PyVmError::MissingName(name.clone()))?;
                        p.index(*index)
                            .cloned()
                            .ok_or_else(|| PyVmError::MissingName(format!("{name}[{index}]")))?
                    }
                }
            }
            Expr::State { name, index } => {
                self.stats.dict_lookups += 1;
                let site = std::ptr::from_ref(expr) as usize;
                let s = Self::resolve_slot(&mut self.slot_cache, site, ctx.state, name)
                    .ok_or_else(|| PyVmError::MissingName(name.clone()))?;
                s.index(*index)
                    .cloned()
                    .ok_or_else(|| PyVmError::MissingName(format!("{name}[{index}]")))?
            }
            Expr::Bin(op, a, b) => {
                let x = self.eval_inner(a, ctx)?;
                let y = self.eval_inner(b, ctx)?;
                let r = match op {
                    NumBinOp::Add => x + y,
                    NumBinOp::Sub => x - y,
                    NumBinOp::Mul => x * y,
                    NumBinOp::Div => x / y,
                };
                DynValue::Float(r)
            }
            Expr::Neg(a) => DynValue::Float(-self.eval_inner(a, ctx)?),
            Expr::Cmp(op, a, b) => {
                let x = self.eval_inner(a, ctx)?;
                let y = self.eval_inner(b, ctx)?;
                let r = match op {
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                };
                DynValue::Bool(r)
            }
            Expr::If(c, t, e) => {
                let cond = self.eval_inner(c, ctx)?;
                if cond != 0.0 {
                    DynValue::Float(self.eval_inner(t, ctx)?)
                } else {
                    DynValue::Float(self.eval_inner(e, ctx)?)
                }
            }
            Expr::Call(m, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval_inner(a, ctx)?);
                }
                if vals.len() != m.arity() {
                    return Err(PyVmError::TypeError(format!(
                        "{m:?} expects {} arguments, got {}",
                        m.arity(),
                        vals.len()
                    )));
                }
                DynValue::Float(m.eval(&vals))
            }
            Expr::RandNormal => DynValue::Float(ctx.rng.normal()),
            Expr::RandUniform => DynValue::Float(ctx.rng.uniform()),
        });
        self.stats.boxes_allocated += 1;
        boxed
            .as_f64()
            .ok_or_else(|| PyVmError::TypeError(format!("expected number, got {boxed}")))
    }

    /// Write `value` into element `index` of state entry `name` (used by
    /// node state updates, e.g. the DDM accumulator).
    pub fn store_state(
        &mut self,
        ctx: &mut EvalContext<'_>,
        name: &str,
        index: usize,
        value: f64,
    ) -> Result<(), PyVmError> {
        self.stats.dict_lookups += 1;
        let entry = ctx
            .state
            .get_mut(name)
            .ok_or_else(|| PyVmError::MissingName(name.to_string()))?;
        match entry.index_mut(index) {
            Some(slot) => {
                *slot = DynValue::Float(value);
                Ok(())
            }
            None => {
                if index == 0 {
                    *entry = DynValue::Float(value);
                    Ok(())
                } else {
                    Err(PyVmError::MissingName(format!("{name}[{index}]")))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr as E;

    fn ctx_fixture() -> (Vec<DynValue>, DynValue, DynValue, SplitMix64) {
        let inputs = vec![DynValue::vector(&[0.5, 1.5]), DynValue::Float(2.0)];
        let params = DynValue::dict(vec![
            ("gain", DynValue::Float(3.0)),
            ("bias", DynValue::Float(0.0)),
            ("weights", DynValue::vector(&[0.1, 0.2, 0.3])),
        ]);
        let state = DynValue::dict(vec![("acc", DynValue::Float(0.25))]);
        (inputs, params, state, SplitMix64::new(1))
    }

    fn eval_with(mode: ExecMode, expr: &E) -> Result<f64, PyVmError> {
        let (inputs, params, mut state, mut rng) = ctx_fixture();
        let mut interp = Interpreter::new(mode);
        let mut ctx = EvalContext {
            inputs: &inputs,
            params: &params,
            state: &mut state,
            rng: &mut rng,
            cache_key: Some((0, 0)),
        };
        interp.eval(expr, &mut ctx)
    }

    #[test]
    fn arithmetic_and_lookups() {
        let e = E::add(
            E::mul(E::param("gain"), E::input(0)),
            E::param_elem("weights", 2),
        );
        for mode in ExecMode::all() {
            let r = eval_with(mode, &e).unwrap();
            assert!((r - (3.0 * 0.5 + 0.3)).abs() < 1e-12, "mode {mode}");
        }
    }

    #[test]
    fn state_reads_and_writes() {
        let (inputs, params, mut state, mut rng) = ctx_fixture();
        let mut interp = Interpreter::new(ExecMode::CPython);
        let mut ctx = EvalContext {
            inputs: &inputs,
            params: &params,
            state: &mut state,
            rng: &mut rng,
            cache_key: None,
        };
        let e = E::add(E::state("acc"), E::lit(1.0));
        let v = interp.eval(&e, &mut ctx).unwrap();
        interp.store_state(&mut ctx, "acc", 0, v).unwrap();
        assert_eq!(state.get("acc").and_then(DynValue::as_f64), Some(1.25));
    }

    #[test]
    fn missing_parameter_is_reported() {
        let e = E::param("does_not_exist");
        let err = eval_with(ExecMode::CPython, &e).unwrap_err();
        assert!(matches!(err, PyVmError::MissingName(_)));
    }

    #[test]
    fn conditional_and_comparison() {
        let e = E::If(
            Box::new(E::Cmp(
                CmpOp::Gt,
                Box::new(E::input(1)),
                Box::new(E::lit(1.0)),
            )),
            Box::new(E::lit(10.0)),
            Box::new(E::lit(-10.0)),
        );
        assert_eq!(eval_with(ExecMode::CPython, &e).unwrap(), 10.0);
    }

    #[test]
    fn pyston_caches_parameter_lookups() {
        let (inputs, params, mut state, mut rng) = ctx_fixture();
        let mut interp = Interpreter::new(ExecMode::Pyston);
        let e = E::mul(E::param("gain"), E::input(0));
        for _ in 0..10 {
            let mut ctx = EvalContext {
                inputs: &inputs,
                params: &params,
                state: &mut state,
                rng: &mut rng,
                cache_key: Some((7, 0)),
            };
            interp.eval(&e, &mut ctx).unwrap();
        }
        let stats = interp.stats();
        assert!(stats.cache_hits >= 9);
        // Only the first execution resolves the dictionary.
        assert_eq!(stats.dict_lookups, 1);

        let mut cpython = Interpreter::new(ExecMode::CPython);
        for _ in 0..10 {
            let mut ctx = EvalContext {
                inputs: &inputs,
                params: &params,
                state: &mut state,
                rng: &mut rng,
                cache_key: Some((7, 0)),
            };
            cpython.eval(&e, &mut ctx).unwrap();
        }
        assert_eq!(cpython.stats().dict_lookups, 10);
    }

    #[test]
    fn pypy_trace_memory_grows_and_can_oom() {
        let (inputs, params, mut state, mut rng) = ctx_fixture();
        let mut interp = Interpreter::new(ExecMode::PyPy);
        interp.trace_budget_bytes = 10_000;
        let e = E::logistic(E::input(0), E::param("gain"), E::param("bias"));
        let mut failed = false;
        for i in 0..200 {
            let mut ctx = EvalContext {
                inputs: &inputs,
                params: &params,
                state: &mut state,
                rng: &mut rng,
                cache_key: Some((i % 3, 0)),
            };
            match interp.eval(&e, &mut ctx) {
                Ok(_) => {}
                Err(PyVmError::OutOfMemory { .. }) => {
                    failed = true;
                    break;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(failed, "trace memory should eventually exceed the budget");
        assert!(interp.stats().trace_bytes > 10_000);
    }

    #[test]
    fn pypy_nojit_pays_bookkeeping_but_never_compiles() {
        let (inputs, params, mut state, mut rng) = ctx_fixture();
        let mut interp = Interpreter::new(ExecMode::PyPyNoJit);
        let e = E::mul(E::param("gain"), E::input(0));
        for _ in 0..5 {
            let mut ctx = EvalContext {
                inputs: &inputs,
                params: &params,
                state: &mut state,
                rng: &mut rng,
                cache_key: Some((0, 0)),
            };
            interp.eval(&e, &mut ctx).unwrap();
        }
        assert!(interp.stats().trace_bytes > 0);
        assert_eq!(interp.stats().cache_hits, 0);
        // dict lookups are not cached in this mode.
        assert_eq!(interp.stats().dict_lookups, 5);
    }

    #[test]
    fn slot_cache_resolves_once_and_survives_layout_changes() {
        // One expression evaluated against two dictionaries whose entries
        // sit at *different* slots: the cached slot from the first dict is
        // verified against the key and must fall back to a rescan on the
        // second, never misread an entry.
        let e = E::param("gain");
        let params_a = DynValue::dict(vec![
            ("gain", DynValue::Float(3.0)),
            ("bias", DynValue::Float(0.0)),
        ]);
        let params_b = DynValue::dict(vec![
            ("bias", DynValue::Float(0.0)),
            ("offset", DynValue::Float(1.0)),
            ("gain", DynValue::Float(7.0)),
        ]);
        let inputs: Vec<DynValue> = Vec::new();
        let mut state = DynValue::dict(vec![]);
        let mut rng = SplitMix64::new(1);
        let mut interp = Interpreter::new(ExecMode::CPython);
        for _ in 0..3 {
            let mut ctx = EvalContext {
                inputs: &inputs,
                params: &params_a,
                state: &mut state,
                rng: &mut rng,
                cache_key: None,
            };
            assert_eq!(interp.eval(&e, &mut ctx).unwrap(), 3.0);
        }
        let mut ctx = EvalContext {
            inputs: &inputs,
            params: &params_b,
            state: &mut state,
            rng: &mut rng,
            cache_key: None,
        };
        assert_eq!(interp.eval(&e, &mut ctx).unwrap(), 7.0);
        // The semantic counter still models one dict lookup per access.
        assert_eq!(interp.stats().dict_lookups, 4);
    }

    #[test]
    fn rng_expressions_use_the_context_generator() {
        let (inputs, params, mut state, _) = ctx_fixture();
        let mut interp = Interpreter::new(ExecMode::CPython);
        let mut rng1 = SplitMix64::new(5);
        let mut rng2 = SplitMix64::new(5);
        let e = E::add(E::RandNormal, E::lit(0.0));
        let a = {
            let mut ctx = EvalContext {
                inputs: &inputs,
                params: &params,
                state: &mut state,
                rng: &mut rng1,
                cache_key: None,
            };
            interp.eval(&e, &mut ctx).unwrap()
        };
        let expected = rng2.normal();
        assert_eq!(a, expected);
    }
}
