//! `distill-analysis` — the model-level compiler analyses of §4 of the paper.
//!
//! The paper's second contribution is the observation that, once Python's
//! dynamism has been stripped away, the control/data-flow graph of the
//! generated IR mirrors the cognitive model itself, so classical compiler
//! analyses can answer *model-level* questions without ever running the
//! model. This crate implements the four analyses the paper describes:
//!
//! * [`vrp`] — value range propagation extended from integers to floating
//!   point (§4.1). Besides answering parameter-sensitivity questions, the
//!   ranges prove the absence of NaN/∞ so fast-math style simplifications
//!   can be applied per-operation rather than per-compilation-unit; the
//!   rewrites themselves live in [`fastmath`].
//! * [`scev`] — scalar evolution extended to floating point add-recurrences
//!   with *minimum trip count* computation (§4.2), which is what estimates
//!   convergence times of evidence-accumulation models such as the DDM.
//! * [`mesh`] — adaptive mesh refinement over a parameter sub-space driven
//!   entirely by interval evaluation (§4.3, Fig. 2): the optimal attention
//!   allocation of the predator-prey model is located in a handful of
//!   refinement rounds instead of hundreds of thousands of model runs.
//! * [`clone`] — structural clone detection à la LLVM's `FunctionComparator`
//!   plus aggressive inlining for whole-model equivalence (§4.4, Fig. 3):
//!   detects that an LCA node configured a particular way computes the same
//!   function as a DDM node, and that hand-vectorized models are equivalent
//!   to their original form.

pub mod clone;
pub mod fastmath;
pub mod mesh;
pub mod scev;
pub mod vrp;

pub use clone::{functions_equivalent, models_equivalent, CloneReport};
pub use fastmath::{apply_fast_math, apply_fast_math_module};
pub use mesh::{refine, MeshOptions, MeshResult};
pub use scev::{analyze_loops, AddRec, LoopEvolution};
pub use vrp::{analyze_function, Interval, RangeMap};
