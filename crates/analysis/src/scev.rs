//! Floating-point scalar evolution (§4.2).
//!
//! LLVM's scalar evolution recognises integer add-recurrences of the form
//! `{init, +, step}` and uses them to compute loop trip counts. The paper
//! extends the analysis to floating point so that evidence-accumulation
//! models (drift-diffusion and related integrators) can be asked, *without
//! running them*, "after how many time steps does the accumulated evidence
//! cross the decision threshold?" — the minimum trip count of the
//! accumulation loop.
//!
//! The implementation recognises the canonical loop shape produced by
//! `distill-codegen`: a header phi `x = phi(init from preheader, next from
//! latch)` whose latch value is `x + step` (or `x - step`) with a
//! loop-invariant `step`, and an exit condition comparing an add-recurrence
//! (or the phi directly) against a loop-invariant bound.

use distill_ir::cfg::{find_loops, Cfg, DomTree, Loop};
use distill_ir::{BinOp, CmpPred, Function, Inst, Terminator, ValueId, ValueKind};
use std::collections::HashMap;

/// An add-recurrence `{init, +, step}` attached to a loop header phi.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AddRec {
    /// Value on loop entry.
    pub init: f64,
    /// Amount added on every iteration (negative for down-counting loops).
    pub step: f64,
}

impl AddRec {
    /// The value of the recurrence at the start of iteration `n` (0-based):
    /// `init + n * step`.
    pub fn value_at(&self, n: f64) -> f64 {
        self.init + n * self.step
    }

    /// The smallest non-negative `n` such that `value_at(n)` crosses
    /// `bound` in the direction implied by the step sign, or `None` if the
    /// recurrence never reaches it.
    pub fn iterations_to_reach(&self, bound: f64) -> Option<f64> {
        if self.step == 0.0 {
            return None;
        }
        let n = (bound - self.init) / self.step;
        if n.is_nan() || n < 0.0 {
            None
        } else {
            Some(n.ceil())
        }
    }
}

/// What scalar evolution discovered about one natural loop.
#[derive(Debug, Clone)]
pub struct LoopEvolution {
    /// The loop header block.
    pub header: distill_ir::BlockId,
    /// Add-recurrences per header phi value.
    pub recurrences: HashMap<ValueId, AddRec>,
    /// Minimum number of iterations before the exit condition can become
    /// false (i.e. before the loop can exit), when computable. This is the
    /// quantity the paper uses as the convergence-time estimate.
    pub min_trip_count: Option<u64>,
}

/// Analyze every natural loop of `func` and return its evolutions.
pub fn analyze_loops(func: &Function) -> Vec<LoopEvolution> {
    if func.layout.is_empty() {
        return Vec::new();
    }
    let cfg = Cfg::new(func);
    let dom = DomTree::new(func, &cfg);
    let loops = find_loops(func, &cfg, &dom);
    loops
        .iter()
        .map(|lp| analyze_loop(func, &cfg, lp))
        .collect()
}

fn constant_f64(func: &Function, v: ValueId) -> Option<f64> {
    func.as_constant(v).and_then(|c| c.as_f64())
}

fn analyze_loop(func: &Function, cfg: &Cfg, lp: &Loop) -> LoopEvolution {
    let mut recurrences = HashMap::new();
    let preheader = lp.preheader(cfg);

    // Find header phis of the shape {init, +, step}.
    for &v in &func.block(lp.header).insts {
        let Some(Inst::Phi { incoming, .. }) = func.as_inst(v) else { continue };
        let mut init: Option<f64> = None;
        let mut step: Option<f64> = None;
        for (pred, val) in incoming {
            let from_outside = Some(*pred) == preheader || !lp.contains(*pred);
            if from_outside {
                init = constant_f64(func, *val);
            } else {
                // The latch value must be phi ± constant.
                if let Some(Inst::Bin { op, lhs, rhs }) = func.as_inst(*val) {
                    let s = match op {
                        BinOp::FAdd | BinOp::Add => {
                            if *lhs == v {
                                constant_f64(func, *rhs)
                            } else if *rhs == v {
                                constant_f64(func, *lhs)
                            } else {
                                None
                            }
                        }
                        BinOp::FSub | BinOp::Sub => {
                            if *lhs == v {
                                constant_f64(func, *rhs).map(|s| -s)
                            } else {
                                None
                            }
                        }
                        _ => None,
                    };
                    step = s;
                }
            }
        }
        if let (Some(init), Some(step)) = (init, step) {
            recurrences.insert(v, AddRec { init, step });
        }
    }

    let min_trip_count = min_trip_count(func, cfg, lp, &recurrences);
    LoopEvolution {
        header: lp.header,
        recurrences,
        min_trip_count,
    }
}

/// Derive the minimum trip count from the loop's exit condition when it
/// compares an add-recurrence (possibly through `fabs`) against a
/// loop-invariant constant bound.
fn min_trip_count(
    func: &Function,
    _cfg: &Cfg,
    lp: &Loop,
    recs: &HashMap<ValueId, AddRec>,
) -> Option<u64> {
    // The exiting block is the header (rotated loops also exit from the
    // latch; check both).
    let mut candidates: Vec<distill_ir::BlockId> = vec![lp.header];
    candidates.extend(lp.latches.iter().copied());

    for blk in candidates {
        let Some(Terminator::CondBr {
            cond,
            then_blk,
            else_blk,
        }) = func.block(blk).term.clone()
        else {
            continue;
        };
        let exits_loop = !lp.contains(then_blk) || !lp.contains(else_blk);
        if !exits_loop {
            continue;
        }
        let Some(Inst::Cmp { pred, lhs, rhs }) = func.as_inst(cond) else { continue };
        // Which side is the evolving value and which the bound?
        let (evolving, bound, pred) = if let Some(b) = constant_f64(func, *rhs) {
            (*lhs, b, *pred)
        } else if let Some(b) = constant_f64(func, *lhs) {
            (*rhs, b, pred.swapped())
        } else {
            continue;
        };
        // The evolving side may be the phi itself or |phi|.
        let rec = resolve_recurrence(func, evolving, recs)?;
        // "Loop continues while evolving < bound" style conditions: the loop
        // runs at least until the recurrence reaches the bound.
        let continues_while_less = matches!(
            pred,
            CmpPred::FLt | CmpPred::FLe | CmpPred::ILt | CmpPred::ILe
        ) == lp.contains(then_blk);
        let target = bound;
        let n = if continues_while_less {
            rec.iterations_to_reach(target)
        } else {
            // Loop continues while evolving > bound (down-counting).
            rec.iterations_to_reach(target)
        }?;
        if n.is_finite() && n >= 0.0 {
            return Some(n as u64);
        }
    }
    None
}

/// Resolve `v` to an add-recurrence: either a header phi directly or
/// `fabs(phi)` / `phi op invariant` one level deep.
fn resolve_recurrence(
    func: &Function,
    v: ValueId,
    recs: &HashMap<ValueId, AddRec>,
) -> Option<AddRec> {
    if let Some(r) = recs.get(&v) {
        return Some(*r);
    }
    match &func.value(v).kind {
        ValueKind::Inst(Inst::IntrinsicCall { kind, args })
            if *kind == distill_ir::Intrinsic::FAbs =>
        {
            recs.get(&args[0]).map(|r| AddRec {
                init: r.init.abs(),
                step: r.step.abs(),
            })
        }
        ValueKind::Inst(Inst::Bin { op, lhs, rhs }) => {
            // recurrence + invariant constant, or recurrence that the latch
            // already advanced (e.g. comparing `next` instead of the phi).
            let k_rhs = constant_f64(func, *rhs);
            let k_lhs = constant_f64(func, *lhs);
            match op {
                BinOp::FAdd | BinOp::Add => {
                    if let (Some(r), Some(k)) = (recs.get(lhs), k_rhs) {
                        Some(AddRec {
                            init: r.init + k,
                            step: r.step,
                        })
                    } else if let (Some(r), Some(k)) = (recs.get(rhs), k_lhs) {
                        Some(AddRec {
                            init: r.init + k,
                            step: r.step,
                        })
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Convenience used by the DDM convergence experiment: estimated number of
/// integration steps for a drift-diffusion style accumulator starting at
/// `start`, drifting by `rate * dt` per step, to reach `threshold` (in
/// absolute value). Pure closed form — this is the quantity the compiler
/// derives from the IR via [`analyze_loops`], exposed directly so tests and
/// benches can compare against it.
pub fn ddm_expected_steps(start: f64, rate: f64, dt: f64, threshold: f64) -> Option<u64> {
    let rec = AddRec {
        init: start,
        step: rate * dt,
    };
    let target = if rate >= 0.0 { threshold } else { -threshold };
    rec.iterations_to_reach(target).map(|n| n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_ir::{FunctionBuilder, Module, Ty};

    /// Build the canonical evidence-accumulation loop:
    /// `x = 0; while x < threshold { x += rate * dt; n += 1 } return n`
    /// with `rate * dt` pre-folded into a single constant step.
    fn accumulation_loop(step: f64, threshold: f64) -> (Module, distill_ir::FuncId) {
        let mut m = Module::new("m");
        let fid = m.declare_function("ddm_steps", vec![], Ty::I64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let entry = b.create_block("entry");
            let header = b.create_block("header");
            let body = b.create_block("body");
            let exit = b.create_block("exit");
            b.switch_to_block(entry);
            let zero = b.const_f64(0.0);
            let zero_i = b.const_i64(0);
            let one_i = b.const_i64(1);
            let step_c = b.const_f64(step);
            let thr = b.const_f64(threshold);
            b.br(header);
            b.switch_to_block(header);
            let x = b.empty_phi(Ty::F64);
            let n = b.empty_phi(Ty::I64);
            b.add_phi_incoming(x, entry, zero);
            b.add_phi_incoming(n, entry, zero_i);
            let c = b.cmp(distill_ir::CmpPred::FLt, x, thr);
            b.cond_br(c, body, exit);
            b.switch_to_block(body);
            let x2 = b.fadd(x, step_c);
            let n2 = b.iadd(n, one_i);
            b.add_phi_incoming(x, body, x2);
            b.add_phi_incoming(n, body, n2);
            b.br(header);
            b.switch_to_block(exit);
            b.ret(Some(n));
        }
        (m, fid)
    }

    #[test]
    fn recognizes_fp_add_recurrence() {
        let (m, fid) = accumulation_loop(0.1, 1.0);
        let evs = analyze_loops(m.function(fid));
        assert_eq!(evs.len(), 1);
        let ev = &evs[0];
        // Two recurrences: the float accumulator and the integer counter.
        assert_eq!(ev.recurrences.len(), 2);
        let float_rec = ev
            .recurrences
            .values()
            .find(|r| (r.step - 0.1).abs() < 1e-12)
            .expect("float add-recurrence found");
        assert_eq!(float_rec.init, 0.0);
    }

    #[test]
    fn min_trip_count_matches_closed_form() {
        for (step, thr) in [(0.1, 1.0), (0.05, 2.0), (0.25, 1.0), (0.001, 0.5)] {
            let (m, fid) = accumulation_loop(step, thr);
            let evs = analyze_loops(m.function(fid));
            let got = evs[0].min_trip_count.expect("trip count computable");
            let expected = (thr / step).ceil() as u64;
            assert_eq!(got, expected, "step={step} thr={thr}");
        }
    }

    #[test]
    fn ddm_expected_steps_closed_form() {
        assert_eq!(ddm_expected_steps(0.0, 1.0, 0.01, 1.0), Some(100));
        assert_eq!(ddm_expected_steps(0.0, 2.0, 0.01, 1.0), Some(50));
        assert_eq!(ddm_expected_steps(0.5, 1.0, 0.01, 1.0), Some(50));
        // Negative drift towards the negative threshold.
        assert_eq!(ddm_expected_steps(0.0, -1.0, 0.01, 1.0), Some(100));
        // Zero drift never converges by drift alone.
        assert_eq!(ddm_expected_steps(0.0, 0.0, 0.01, 1.0), None);
    }

    #[test]
    fn value_at_and_iterations_to_reach() {
        let rec = AddRec { init: 0.5, step: 0.25 };
        assert!((rec.value_at(4.0) - 1.5).abs() < 1e-12);
        assert_eq!(rec.iterations_to_reach(1.0), Some(2.0));
        // Already past the bound: not reachable going forward.
        assert_eq!(rec.iterations_to_reach(0.25), None);
        let down = AddRec { init: 1.0, step: -0.1 };
        assert_eq!(down.iterations_to_reach(0.0), Some(10.0));
    }

    #[test]
    fn loops_without_constant_bounds_report_no_trip_count() {
        // Same loop but the threshold is a parameter, not a constant.
        let mut m = Module::new("m");
        let fid = m.declare_function("f", vec![Ty::F64], Ty::I64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let entry = b.create_block("entry");
            let header = b.create_block("header");
            let body = b.create_block("body");
            let exit = b.create_block("exit");
            b.switch_to_block(entry);
            let zero = b.const_f64(0.0);
            let zero_i = b.const_i64(0);
            let one_i = b.const_i64(1);
            let step_c = b.const_f64(0.1);
            b.br(header);
            b.switch_to_block(header);
            let x = b.empty_phi(Ty::F64);
            let n = b.empty_phi(Ty::I64);
            b.add_phi_incoming(x, entry, zero);
            b.add_phi_incoming(n, entry, zero_i);
            let thr = b.param(0);
            let c = b.cmp(distill_ir::CmpPred::FLt, x, thr);
            b.cond_br(c, body, exit);
            b.switch_to_block(body);
            let x2 = b.fadd(x, step_c);
            let n2 = b.iadd(n, one_i);
            b.add_phi_incoming(x, body, x2);
            b.add_phi_incoming(n, body, n2);
            b.br(header);
            b.switch_to_block(exit);
            b.ret(Some(n));
        }
        let evs = analyze_loops(m.function(fid));
        assert_eq!(evs.len(), 1);
        assert!(evs[0].min_trip_count.is_none());
        // The recurrence itself is still recognised.
        assert!(!evs[0].recurrences.is_empty());
    }
}
