//! Floating-point value range propagation (§4.1).
//!
//! LLVM's value range propagation works only on integers; the paper extends
//! it to floating point so that it can reason about cognitive-model
//! quantities (activations, costs, probabilities). This module implements
//! an interval domain `[lo, hi]` with an explicit "may be NaN" flag and a
//! forward dataflow analysis over a function in SSA form. Phi nodes are
//! resolved by interval union with widening after a bounded number of
//! iterations, so the fixpoint always terminates.
//!
//! Two consumers sit on top:
//!
//! * [`can_apply_fast_math`] — an operation whose operands provably exclude
//!   NaN and ±∞ can be rewritten with fast-math style identities without
//!   breaking strict IEEE semantics (the paper's motivation for pushing the
//!   patch upstream).
//! * [`crate::mesh`] — adaptive mesh refinement evaluates the model's cost
//!   function over parameter *intervals* rather than points.

use distill_ir::{BinOp, CmpPred, Constant, Function, Inst, Intrinsic, UnOp, ValueId, ValueKind};
use std::collections::HashMap;

/// A closed floating point interval with NaN tracking.
///
/// The empty interval is represented by `lo > hi` (see [`Interval::empty`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (may be `-inf`).
    pub lo: f64,
    /// Upper bound (may be `+inf`).
    pub hi: f64,
    /// Whether the value may be NaN.
    pub may_be_nan: bool,
}

impl Interval {
    /// The full range: anything, including NaN.
    pub fn top() -> Interval {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            may_be_nan: true,
        }
    }

    /// The empty interval (no possible value).
    pub fn empty() -> Interval {
        Interval {
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
            may_be_nan: false,
        }
    }

    /// A single point.
    pub fn point(v: f64) -> Interval {
        if v.is_nan() {
            Interval {
                lo: f64::INFINITY,
                hi: f64::NEG_INFINITY,
                may_be_nan: true,
            }
        } else {
            Interval {
                lo: v,
                hi: v,
                may_be_nan: false,
            }
        }
    }

    /// The interval `[lo, hi]` without NaN.
    pub fn new(lo: f64, hi: f64) -> Interval {
        assert!(!lo.is_nan() && !hi.is_nan(), "interval bounds must not be NaN");
        Interval {
            lo,
            hi,
            may_be_nan: false,
        }
    }

    /// Whether no non-NaN value is possible.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Whether the interval is a single point and cannot be NaN.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi && !self.may_be_nan
    }

    /// Whether every possible value is finite and not NaN.
    pub fn is_finite(&self) -> bool {
        !self.may_be_nan && self.lo.is_finite() && self.hi.is_finite() && !self.is_empty()
    }

    /// Whether the interval certainly excludes zero.
    pub fn excludes_zero(&self) -> bool {
        !self.is_empty() && (self.lo > 0.0 || self.hi < 0.0)
    }

    /// Whether every possible value is strictly positive.
    pub fn is_positive(&self) -> bool {
        !self.is_empty() && self.lo > 0.0 && !self.may_be_nan
    }

    /// Whether every possible value is non-negative.
    pub fn is_non_negative(&self) -> bool {
        !self.is_empty() && self.lo >= 0.0 && !self.may_be_nan
    }

    /// The width `hi - lo` (zero for points; infinite for unbounded ranges).
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.hi - self.lo
        }
    }

    /// Union (join) of two intervals.
    pub fn union(&self, other: &Interval) -> Interval {
        if self.is_empty() && !other.is_empty() {
            return Interval {
                may_be_nan: self.may_be_nan || other.may_be_nan,
                ..*other
            };
        }
        if other.is_empty() && !self.is_empty() {
            return Interval {
                may_be_nan: self.may_be_nan || other.may_be_nan,
                ..*self
            };
        }
        if self.is_empty() && other.is_empty() {
            return Interval {
                lo: f64::INFINITY,
                hi: f64::NEG_INFINITY,
                may_be_nan: self.may_be_nan || other.may_be_nan,
            };
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            may_be_nan: self.may_be_nan || other.may_be_nan,
        }
    }

    /// Intersection (meet) of two intervals.
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
            may_be_nan: self.may_be_nan && other.may_be_nan,
        }
    }

    /// Whether `v` lies within the interval (NaN is "contained" only when
    /// `may_be_nan` is set).
    pub fn contains(&self, v: f64) -> bool {
        if v.is_nan() {
            return self.may_be_nan;
        }
        !self.is_empty() && self.lo <= v && v <= self.hi
    }

    /// Widening: keep bounds that are stable, push moving bounds to ±∞.
    /// Applied to phi nodes after a few fixpoint iterations to guarantee
    /// termination.
    pub fn widen(&self, newer: &Interval) -> Interval {
        let lo = if newer.lo < self.lo {
            f64::NEG_INFINITY
        } else {
            self.lo
        };
        let hi = if newer.hi > self.hi {
            f64::INFINITY
        } else {
            self.hi
        };
        Interval {
            lo,
            hi,
            may_be_nan: self.may_be_nan || newer.may_be_nan,
        }
    }

    // ---- interval arithmetic ---------------------------------------------

    /// Interval addition.
    pub fn add(&self, rhs: &Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval {
                may_be_nan: self.may_be_nan || rhs.may_be_nan,
                ..Interval::empty()
            };
        }
        // inf + -inf produces NaN.
        let nan = self.may_be_nan
            || rhs.may_be_nan
            || (self.hi == f64::INFINITY && rhs.lo == f64::NEG_INFINITY)
            || (self.lo == f64::NEG_INFINITY && rhs.hi == f64::INFINITY);
        Interval {
            lo: self.lo + rhs.lo,
            hi: self.hi + rhs.hi,
            may_be_nan: nan,
        }
    }

    /// Interval subtraction.
    pub fn sub(&self, rhs: &Interval) -> Interval {
        self.add(&rhs.neg())
    }

    /// Interval negation.
    pub fn neg(&self) -> Interval {
        if self.is_empty() {
            return *self;
        }
        Interval {
            lo: -self.hi,
            hi: -self.lo,
            may_be_nan: self.may_be_nan,
        }
    }

    /// Interval multiplication.
    pub fn mul(&self, rhs: &Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval {
                may_be_nan: self.may_be_nan || rhs.may_be_nan,
                ..Interval::empty()
            };
        }
        let candidates = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        let nan = self.may_be_nan || rhs.may_be_nan || candidates.iter().any(|c| c.is_nan());
        let lo = candidates
            .iter()
            .copied()
            .filter(|c| !c.is_nan())
            .fold(f64::INFINITY, f64::min);
        let hi = candidates
            .iter()
            .copied()
            .filter(|c| !c.is_nan())
            .fold(f64::NEG_INFINITY, f64::max);
        Interval {
            lo,
            hi,
            may_be_nan: nan,
        }
    }

    /// Interval division.
    pub fn div(&self, rhs: &Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval {
                may_be_nan: self.may_be_nan || rhs.may_be_nan,
                ..Interval::empty()
            };
        }
        if rhs.contains(0.0) {
            // Division by an interval containing zero: anything can happen.
            return Interval::top();
        }
        let inv = Interval {
            lo: 1.0 / rhs.hi,
            hi: 1.0 / rhs.lo,
            may_be_nan: rhs.may_be_nan,
        };
        self.mul(&inv)
    }

    /// Apply a monotonically increasing function to both bounds.
    fn map_monotone(&self, f: impl Fn(f64) -> f64) -> Interval {
        if self.is_empty() {
            return *self;
        }
        Interval {
            lo: f(self.lo),
            hi: f(self.hi),
            may_be_nan: self.may_be_nan,
        }
    }

    /// `exp` of the interval (monotone, always positive).
    pub fn exp(&self) -> Interval {
        self.map_monotone(f64::exp)
    }

    /// `tanh` of the interval (monotone, in `[-1, 1]`).
    pub fn tanh(&self) -> Interval {
        self.map_monotone(f64::tanh)
    }

    /// `ln` of the interval; values ≤ 0 introduce NaN/−∞ possibilities.
    pub fn log(&self) -> Interval {
        if self.is_empty() {
            return *self;
        }
        let nan = self.may_be_nan || self.lo < 0.0;
        let lo = if self.lo <= 0.0 {
            f64::NEG_INFINITY
        } else {
            self.lo.ln()
        };
        let hi = if self.hi <= 0.0 {
            f64::NEG_INFINITY
        } else {
            self.hi.ln()
        };
        Interval {
            lo,
            hi,
            may_be_nan: nan,
        }
    }

    /// `sqrt` of the interval; negative parts introduce NaN.
    pub fn sqrt(&self) -> Interval {
        if self.is_empty() {
            return *self;
        }
        let nan = self.may_be_nan || self.lo < 0.0;
        Interval {
            lo: self.lo.max(0.0).sqrt(),
            hi: self.hi.max(0.0).sqrt(),
            may_be_nan: nan,
        }
    }

    /// Absolute value of the interval.
    pub fn abs(&self) -> Interval {
        if self.is_empty() {
            return *self;
        }
        if self.lo >= 0.0 {
            *self
        } else if self.hi <= 0.0 {
            self.neg()
        } else {
            Interval {
                lo: 0.0,
                hi: self.hi.max(-self.lo),
                may_be_nan: self.may_be_nan,
            }
        }
    }

    /// Pointwise minimum.
    pub fn min(&self, rhs: &Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::empty();
        }
        Interval {
            lo: self.lo.min(rhs.lo),
            hi: self.hi.min(rhs.hi),
            // minnum propagates the non-NaN operand, so the result is NaN
            // only if both may be.
            may_be_nan: self.may_be_nan && rhs.may_be_nan,
        }
    }

    /// Pointwise maximum.
    pub fn max(&self, rhs: &Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::empty();
        }
        Interval {
            lo: self.lo.max(rhs.lo),
            hi: self.hi.max(rhs.hi),
            may_be_nan: self.may_be_nan && rhs.may_be_nan,
        }
    }

    /// Bounded sine/cosine result.
    pub fn sin_cos_bound() -> Interval {
        Interval::new(-1.0, 1.0)
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            write!(f, "∅")?;
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)?;
        }
        if self.may_be_nan {
            write!(f, "∪NaN")?;
        }
        Ok(())
    }
}

/// Result of the analysis: an interval per SSA value.
pub type RangeMap = HashMap<ValueId, Interval>;

/// Configuration for [`analyze_function`].
#[derive(Debug, Clone, Default)]
pub struct VrpOptions {
    /// Ranges assumed for the function parameters (by index). Missing
    /// entries default to [`Interval::top`].
    pub param_ranges: HashMap<usize, Interval>,
    /// Range assumed for every `load` result (models what is known about
    /// the parameter structures in memory). Missing: top.
    pub load_ranges: HashMap<ValueId, Interval>,
    /// Number of fixpoint iterations before widening kicks in.
    pub widen_after: usize,
}

/// Run floating-point VRP over a function and return the interval of every
/// float-typed SSA value (integers and booleans are tracked coarsely as
/// intervals too).
pub fn analyze_function(func: &Function, opts: &VrpOptions) -> RangeMap {
    let mut ranges: RangeMap = HashMap::new();
    let widen_after = if opts.widen_after == 0 { 4 } else { opts.widen_after };

    // Seed constants and parameters.
    for (i, vd) in func.values.iter().enumerate() {
        let id = ValueId::from_index(i);
        match &vd.kind {
            ValueKind::Const(c) => {
                if let Some(v) = c.as_f64() {
                    ranges.insert(id, Interval::point(v));
                } else if matches!(c, Constant::Undef) {
                    ranges.insert(id, Interval::top());
                }
            }
            ValueKind::Param(p) => {
                let r = opts
                    .param_ranges
                    .get(p)
                    .copied()
                    .unwrap_or_else(Interval::top);
                ranges.insert(id, r);
            }
            ValueKind::Inst(_) => {}
        }
    }

    if func.layout.is_empty() {
        return ranges;
    }

    // Fixpoint over blocks in layout order.
    let mut iteration = 0usize;
    loop {
        let mut changed = false;
        for b in func.block_order() {
            for &v in &func.block(b).insts {
                let Some(inst) = func.as_inst(v) else { continue };
                let new = transfer(func, inst, v, &ranges, opts);
                let old = ranges.get(&v).copied();
                let merged = match old {
                    None => new,
                    Some(old) => {
                        if inst.is_phi() && iteration >= widen_after {
                            old.widen(&new)
                        } else {
                            // Monotone join with the previous estimate; the
                            // analysis starts from bottom (unknown values are
                            // treated as empty) and grows towards a fixpoint.
                            old.union(&new)
                        }
                    }
                };
                if old.map(|o| o != merged).unwrap_or(true) {
                    ranges.insert(v, merged);
                    changed = true;
                }
            }
        }
        iteration += 1;
        if !changed || iteration > widen_after + 8 {
            break;
        }
    }
    ranges
}

fn get(ranges: &RangeMap, v: ValueId) -> Interval {
    // Unknown (not yet computed) values are bottom; the optimistic fixpoint
    // grows them towards their final range.
    ranges.get(&v).copied().unwrap_or_else(Interval::empty)
}

fn transfer(
    _func: &Function,
    inst: &Inst,
    id: ValueId,
    ranges: &RangeMap,
    opts: &VrpOptions,
) -> Interval {
    match inst {
        Inst::Bin { op, lhs, rhs } => {
            let a = get(ranges, *lhs);
            let b = get(ranges, *rhs);
            match op {
                BinOp::FAdd | BinOp::Add => a.add(&b),
                BinOp::FSub | BinOp::Sub => a.sub(&b),
                BinOp::FMul | BinOp::Mul => a.mul(&b),
                BinOp::FDiv | BinOp::SDiv => a.div(&b),
                _ => Interval::top(),
            }
        }
        Inst::Un { op, val } => match op {
            UnOp::FNeg => get(ranges, *val).neg(),
            UnOp::Not => Interval::new(0.0, 1.0),
        },
        Inst::Cmp { pred, lhs, rhs } => {
            // Booleans live in [0,1]; fold to a point when provable.
            let a = get(ranges, *lhs);
            let b = get(ranges, *rhs);
            match pred {
                CmpPred::FLt | CmpPred::ILt if a.hi < b.lo => Interval::point(1.0),
                CmpPred::FLt | CmpPred::ILt if a.lo >= b.hi => Interval::point(0.0),
                CmpPred::FGt | CmpPred::IGt if a.lo > b.hi => Interval::point(1.0),
                CmpPred::FGt | CmpPred::IGt if a.hi <= b.lo => Interval::point(0.0),
                _ => Interval::new(0.0, 1.0),
            }
        }
        Inst::Select {
            then_val, else_val, ..
        } => get(ranges, *then_val).union(&get(ranges, *else_val)),
        Inst::IntrinsicCall { kind, args } => {
            let a = || get(ranges, args[0]);
            match kind {
                Intrinsic::Exp => a().exp(),
                Intrinsic::Log => a().log(),
                Intrinsic::Sqrt => a().sqrt(),
                Intrinsic::Tanh => a().tanh(),
                Intrinsic::Sin | Intrinsic::Cos => Interval::sin_cos_bound(),
                Intrinsic::FAbs => a().abs(),
                Intrinsic::Floor | Intrinsic::Ceil => a(),
                Intrinsic::Pow => {
                    let base = a();
                    if base.is_positive() {
                        Interval::new(0.0, f64::INFINITY)
                    } else {
                        Interval::top()
                    }
                }
                Intrinsic::FMin => a().min(&get(ranges, args[1])),
                Intrinsic::FMax => a().max(&get(ranges, args[1])),
                Intrinsic::RandUniform => Interval::new(0.0, 1.0),
                Intrinsic::RandNormal => Interval::new(f64::NEG_INFINITY, f64::INFINITY),
            }
        }
        Inst::Load { .. } => opts
            .load_ranges
            .get(&id)
            .copied()
            .unwrap_or_else(Interval::top),
        Inst::Phi { incoming, .. } => {
            let mut r = Interval::empty();
            for (_, v) in incoming {
                r = r.union(&get(ranges, *v));
            }
            if incoming.is_empty() {
                Interval::top()
            } else {
                r
            }
        }
        Inst::Cast { val, .. } => get(ranges, *val),
        Inst::Call { .. } => Interval::top(),
        Inst::Alloca { .. } | Inst::Store { .. } | Inst::Gep { .. } | Inst::GlobalAddr { .. } => {
            Interval::top()
        }
    }
}

/// Whether fast-math style rewrites are safe for an operation whose operand
/// ranges are `operands`: all operands must be finite and NaN-free.
pub fn can_apply_fast_math(operands: &[Interval]) -> bool {
    operands.iter().all(Interval::is_finite)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_ir::{FunctionBuilder, Module};

    #[test]
    fn interval_arithmetic_basics() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(-3.0, 4.0);
        assert_eq!(a.add(&b), Interval::new(-2.0, 6.0));
        assert_eq!(a.neg(), Interval::new(-2.0, -1.0));
        let m = a.mul(&b);
        assert_eq!(m.lo, -6.0);
        assert_eq!(m.hi, 8.0);
        assert!(b.contains(0.0));
        assert!(a.excludes_zero());
        assert_eq!(a.div(&Interval::new(2.0, 4.0)), Interval::new(0.25, 1.0));
        assert_eq!(a.div(&b), Interval::top());
    }

    #[test]
    fn nan_and_infinity_tracking() {
        let inf = Interval::new(0.0, f64::INFINITY);
        let neg_inf = Interval::new(f64::NEG_INFINITY, 0.0);
        let s = inf.add(&neg_inf);
        assert!(s.may_be_nan, "inf + -inf may be NaN");
        assert!(!Interval::new(0.0, 1.0).add(&Interval::new(2.0, 3.0)).may_be_nan);
        assert!(Interval::new(-1.0, 1.0).log().may_be_nan);
        assert!(Interval::new(-1.0, 1.0).sqrt().may_be_nan);
        assert!(Interval::new(0.5, 2.0).log().is_finite());
    }

    #[test]
    fn union_intersect_widen() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(2.0, 3.0);
        assert_eq!(a.union(&b), Interval::new(0.0, 3.0));
        assert!(a.intersect(&b).is_empty());
        let w = a.widen(&Interval::new(-1.0, 0.5));
        assert_eq!(w.lo, f64::NEG_INFINITY);
        assert_eq!(w.hi, 1.0);
    }

    /// The paper's example: a logistic function always lands in (0, 1].
    #[test]
    fn logistic_output_is_bounded_by_vrp() {
        let mut m = Module::new("m");
        let fid = m.declare_function("logistic", vec![Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let neg = b.fneg(x);
            let ex = b.exp(neg);
            let one = b.const_f64(1.0);
            let den = b.fadd(one, ex);
            let r = b.fdiv(one, den);
            b.ret(Some(r));
        }
        let func = m.function(fid);
        let mut opts = VrpOptions::default();
        opts.param_ranges.insert(0, Interval::new(-10.0, 10.0));
        let ranges = analyze_function(func, &opts);
        // Find the returned value.
        let entry = func.entry_block().unwrap();
        let ret = match func.block(entry).term.clone().unwrap() {
            distill_ir::Terminator::Ret(Some(v)) => v,
            _ => unreachable!(),
        };
        let r = ranges[&ret];
        assert!(r.lo > 0.0, "logistic is strictly positive, got {r}");
        assert!(r.hi <= 1.0 + 1e-9, "logistic is at most 1, got {r}");
        assert!(!r.may_be_nan);
    }

    /// exp(x) can only be positive or NaN — and with a finite input range it
    /// is provably not NaN, enabling fast-math (§4.1).
    #[test]
    fn exp_is_positive_and_fast_math_eligible() {
        let x = Interval::new(-50.0, 50.0);
        let e = x.exp();
        assert!(e.is_positive());
        assert!(can_apply_fast_math(&[x, e]));
        let unbounded = Interval::top();
        assert!(!can_apply_fast_math(&[unbounded]));
    }

    #[test]
    fn phi_ranges_join_and_widen_in_loops() {
        // acc starts at 0 and adds a value in [0.1, 0.2] per iteration: the
        // widened range must include arbitrarily large values but stay
        // non-negative with a stable lower bound of 0.
        let mut m = Module::new("m");
        let fid = m.declare_function("accumulate", vec![Ty::I64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let entry = b.create_block("entry");
            let header = b.create_block("header");
            let body = b.create_block("body");
            let exit = b.create_block("exit");
            b.switch_to_block(entry);
            let n = b.param(0);
            let zero_i = b.const_i64(0);
            let one_i = b.const_i64(1);
            let zero = b.const_f64(0.0);
            let step = b.const_f64(0.15);
            b.br(header);
            b.switch_to_block(header);
            let i = b.empty_phi(Ty::I64);
            let acc = b.empty_phi(Ty::F64);
            b.add_phi_incoming(i, entry, zero_i);
            b.add_phi_incoming(acc, entry, zero);
            let c = b.cmp(CmpPred::ILt, i, n);
            b.cond_br(c, body, exit);
            b.switch_to_block(body);
            let acc2 = b.fadd(acc, step);
            let i2 = b.iadd(i, one_i);
            b.add_phi_incoming(acc, body, acc2);
            b.add_phi_incoming(i, body, i2);
            b.br(header);
            b.switch_to_block(exit);
            b.ret(Some(acc));
        }
        let func = m.function(fid);
        let ranges = analyze_function(func, &VrpOptions::default());
        let entry = func.entry_block().unwrap();
        let _ = entry;
        // Find the accumulator phi (f64 phi).
        let acc_phi = func
            .values
            .iter()
            .enumerate()
            .find_map(|(i, vd)| match &vd.kind {
                ValueKind::Inst(Inst::Phi { ty, .. }) if *ty == Ty::F64 => {
                    Some(ValueId::from_index(i))
                }
                _ => None,
            })
            .unwrap();
        let r = ranges[&acc_phi];
        assert!(r.lo >= 0.0, "accumulator never goes negative: {r}");
        assert_eq!(r.hi, f64::INFINITY, "upper bound widened to +inf: {r}");
        assert!(!r.may_be_nan);
    }

    #[test]
    fn comparison_folding_through_ranges() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(2.0, 3.0);
        // a < b is always true; encoded through the transfer function.
        let mut m = Module::new("m");
        let fid = m.declare_function("f", vec![Ty::F64, Ty::F64], Ty::Bool);
        {
            let f = m.function_mut(fid);
            let mut bld = FunctionBuilder::new(f);
            let e = bld.create_block("entry");
            bld.switch_to_block(e);
            let x = bld.param(0);
            let y = bld.param(1);
            let c = bld.cmp(CmpPred::FLt, x, y);
            bld.ret(Some(c));
        }
        let mut opts = VrpOptions::default();
        opts.param_ranges.insert(0, a);
        opts.param_ranges.insert(1, b);
        let func = m.function(fid);
        let ranges = analyze_function(func, &opts);
        let entry = func.entry_block().unwrap();
        let ret = match func.block(entry).term.clone().unwrap() {
            distill_ir::Terminator::Ret(Some(v)) => v,
            _ => unreachable!(),
        };
        assert_eq!(ranges[&ret], Interval::point(1.0));
    }

    use distill_ir::{CmpPred, Ty};

    /// Randomized property tests on top of the external `proptest` crate.
    ///
    /// `proptest` cannot be fetched in the offline build environment, so this
    /// module is gated behind the (off-by-default) `proptest` feature; see
    /// the note in `Cargo.toml` for how to enable it with a vendored copy.
    /// The [`property_deterministic`] module below replays the same
    /// interval-arithmetic invariants with a seeded in-repo generator so the
    /// default `cargo test` keeps the coverage.
    #[cfg(feature = "proptest")]
    mod property {
        use super::*;
        use proptest::prelude::*;

        fn small_interval() -> impl Strategy<Value = Interval> {
            (-100.0f64..100.0, 0.0f64..50.0).prop_map(|(lo, w)| Interval::new(lo, lo + w))
        }

        proptest! {
            /// Soundness of interval addition: the sum of any two contained
            /// points is contained in the interval sum.
            #[test]
            fn add_is_sound(a in small_interval(), b in small_interval(),
                            ta in 0.0f64..1.0, tb in 0.0f64..1.0) {
                let x = a.lo + ta * (a.hi - a.lo);
                let y = b.lo + tb * (b.hi - b.lo);
                let s = a.add(&b);
                prop_assert!(s.contains(x + y));
            }

            #[test]
            fn mul_is_sound(a in small_interval(), b in small_interval(),
                            ta in 0.0f64..1.0, tb in 0.0f64..1.0) {
                let x = a.lo + ta * (a.hi - a.lo);
                let y = b.lo + tb * (b.hi - b.lo);
                let s = a.mul(&b);
                prop_assert!(s.contains(x * y) || (x * y).abs() < 1e-300);
            }

            #[test]
            fn union_contains_both(a in small_interval(), b in small_interval(),
                                   t in 0.0f64..1.0) {
                let u = a.union(&b);
                let x = a.lo + t * (a.hi - a.lo);
                let y = b.lo + t * (b.hi - b.lo);
                prop_assert!(u.contains(x));
                prop_assert!(u.contains(y));
            }

            #[test]
            fn exp_is_sound(a in small_interval(), t in 0.0f64..1.0) {
                let x = a.lo + t * (a.hi - a.lo);
                prop_assert!(a.exp().contains(x.exp()));
            }
        }
    }

    /// Deterministic replacement for the `proptest` module above: the same
    /// four interval-arithmetic soundness invariants, exercised over a fixed
    /// seeded linear-congruential stream so the coverage is identical on
    /// every machine and requires no external crate.
    mod property_deterministic {
        use super::*;

        const CASES: usize = 2_000;

        /// Numerical Recipes LCG over the full 64-bit state; the top 53 bits
        /// feed the unit-interval doubles.
        struct Lcg(u64);

        impl Lcg {
            fn new(seed: u64) -> Lcg {
                Lcg(seed)
            }

            fn next_u64(&mut self) -> u64 {
                self.0 = self
                    .0
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                self.0
            }

            /// Uniform in `[0, 1)`.
            fn unit(&mut self) -> f64 {
                (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
            }

            /// An interval with `lo` in `[-100, 100)` and width in `[0, 50)`,
            /// matching the proptest `small_interval` strategy.
            fn small_interval(&mut self) -> Interval {
                let lo = -100.0 + 200.0 * self.unit();
                let w = 50.0 * self.unit();
                Interval::new(lo, lo + w)
            }

            /// A point inside `iv`.
            fn point_in(&mut self, iv: &Interval) -> f64 {
                iv.lo + self.unit() * (iv.hi - iv.lo)
            }
        }

        #[test]
        fn add_is_sound() {
            let mut rng = Lcg::new(0xD157111_ADD);
            for _ in 0..CASES {
                let a = rng.small_interval();
                let b = rng.small_interval();
                let (x, y) = (rng.point_in(&a), rng.point_in(&b));
                let s = a.add(&b);
                assert!(s.contains(x + y), "{a} + {b} lost {x} + {y} = {}", x + y);
            }
        }

        #[test]
        fn mul_is_sound() {
            let mut rng = Lcg::new(0xD157111_213);
            for _ in 0..CASES {
                let a = rng.small_interval();
                let b = rng.small_interval();
                let (x, y) = (rng.point_in(&a), rng.point_in(&b));
                let s = a.mul(&b);
                assert!(
                    s.contains(x * y) || (x * y).abs() < 1e-300,
                    "{a} * {b} lost {x} * {y} = {}",
                    x * y
                );
            }
        }

        #[test]
        fn union_contains_both() {
            let mut rng = Lcg::new(0xD157111_071);
            for _ in 0..CASES {
                let a = rng.small_interval();
                let b = rng.small_interval();
                let (x, y) = (rng.point_in(&a), rng.point_in(&b));
                let u = a.union(&b);
                assert!(u.contains(x), "{a} ∪ {b} lost {x} from the left operand");
                assert!(u.contains(y), "{a} ∪ {b} lost {y} from the right operand");
            }
        }

        #[test]
        fn exp_is_sound() {
            let mut rng = Lcg::new(0xD157111_3E9);
            for _ in 0..CASES {
                let a = rng.small_interval();
                let x = rng.point_in(&a);
                assert!(a.exp().contains(x.exp()), "exp({a}) lost exp({x})");
            }
        }

        #[test]
        fn lcg_stream_is_reproducible() {
            let mut a = Lcg::new(7);
            let mut b = Lcg::new(7);
            for _ in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
            let u = Lcg::new(7).unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
