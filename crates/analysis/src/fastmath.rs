//! Range-guided fast-math simplification (§4.1).
//!
//! Fast-math identities such as `x * 0.0 → 0.0` are unsound under strict
//! IEEE semantics because `x` might be NaN or ±∞ (in which case the product
//! is NaN) or negative (in which case the product is `-0.0`). LLVM therefore
//! only applies them when the whole compilation unit or function is built
//! with fast-math flags. The paper's floating-point value-range propagation
//! makes a *per-operation* decision possible: when the ranges prove the
//! operands finite (and, where the sign of zero matters, non-negative), the
//! identity preserves the exact result and can be applied even without any
//! fast-math flag. This module implements that user-guided optimization.

use crate::vrp::{analyze_function, Interval, VrpOptions};
use distill_ir::{BinOp, Constant, Function, Inst, Module, ValueId};

/// Apply range-guided fast-math simplifications to one function.
///
/// `opts` provides the parameter/load ranges under which the model is known
/// to operate (typically derived from the sanitization run or supplied by
/// the modeler). Returns the number of simplified instructions.
pub fn apply_fast_math(func: &mut Function, opts: &VrpOptions) -> usize {
    if func.layout.is_empty() {
        return 0;
    }
    let ranges = analyze_function(func, opts);
    let mut changed = 0usize;

    let blocks: Vec<_> = func.block_order().collect();
    for b in blocks {
        let insts = func.block(b).insts.clone();
        for v in insts {
            let Some(Inst::Bin { op, lhs, rhs }) = func.as_inst(v).cloned() else {
                continue;
            };
            let range_of = |x: ValueId| ranges.get(&x).copied().unwrap_or_else(Interval::top);
            let is_zero_const =
                |f: &Function, x: ValueId| matches!(f.as_constant(x), Some(Constant::F64(c)) if c == 0.0 && c.is_sign_positive());
            match op {
                BinOp::FMul => {
                    // x * 0.0 → 0.0 requires x finite and non-negative (to
                    // keep the sign of zero); x finite and possibly negative
                    // is still accepted because downstream cognitive-model
                    // arithmetic never distinguishes -0.0, but we only prove
                    // exactness for the non-negative case — record it as a
                    // fast-math (nsz) rewrite either way when finite.
                    let (zero_side, other) = if is_zero_const(func, lhs) {
                        (Some(lhs), rhs)
                    } else if is_zero_const(func, rhs) {
                        (Some(rhs), lhs)
                    } else {
                        (None, lhs)
                    };
                    if zero_side.is_some() && range_of(other).is_finite() {
                        let zero = func.add_constant(Constant::F64(0.0));
                        func.replace_all_uses(v, zero);
                        func.unschedule(v);
                        changed += 1;
                    }
                }
                BinOp::FDiv
                    // x / x → 1.0 when x is finite and provably non-zero.
                    if lhs == rhs => {
                        let r = range_of(lhs);
                        if r.is_finite() && r.excludes_zero() {
                            let one = func.add_constant(Constant::F64(1.0));
                            func.replace_all_uses(v, one);
                            func.unschedule(v);
                            changed += 1;
                        }
                    }
                BinOp::FSub
                    // x - x → 0.0 when x is finite (NaN - NaN would be NaN).
                    if lhs == rhs && range_of(lhs).is_finite() => {
                        let zero = func.add_constant(Constant::F64(0.0));
                        func.replace_all_uses(v, zero);
                        func.unschedule(v);
                        changed += 1;
                    }
                _ => {}
            }
        }
    }
    changed
}

/// Apply range-guided fast-math to every defined function of a module with
/// the same assumed ranges.
pub fn apply_fast_math_module(module: &mut Module, opts: &VrpOptions) -> usize {
    let mut total = 0;
    for f in &mut module.functions {
        if !f.is_declaration && !f.layout.is_empty() {
            total += apply_fast_math(f, opts);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_ir::{FunctionBuilder, Module, Terminator, Ty};

    fn ret_value(func: &Function) -> ValueId {
        match func
            .block(func.entry_block().unwrap())
            .term
            .clone()
            .unwrap()
        {
            Terminator::Ret(Some(v)) => v,
            other => panic!("unexpected terminator {other:?}"),
        }
    }

    fn bounded_opts(n: usize, lo: f64, hi: f64) -> VrpOptions {
        let mut opts = VrpOptions::default();
        for i in 0..n {
            opts.param_ranges.insert(i, Interval::new(lo, hi));
        }
        opts
    }

    #[test]
    fn multiplication_by_zero_folds_with_bounded_ranges() {
        let mut m = Module::new("m");
        let fid = m.declare_function("f", vec![Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let zero = b.const_f64(0.0);
            let r = b.fmul(x, zero);
            b.ret(Some(r));
        }
        let n = apply_fast_math(m.function_mut(fid), &bounded_opts(1, -10.0, 10.0));
        assert_eq!(n, 1);
        let f = m.function(fid);
        assert_eq!(f.as_constant(ret_value(f)), Some(Constant::F64(0.0)));
    }

    #[test]
    fn multiplication_by_zero_survives_unbounded_ranges() {
        let mut m = Module::new("m");
        let fid = m.declare_function("f", vec![Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let zero = b.const_f64(0.0);
            let r = b.fmul(x, zero);
            b.ret(Some(r));
        }
        // No range information: x may be NaN, so the rewrite is refused.
        let n = apply_fast_math(m.function_mut(fid), &VrpOptions::default());
        assert_eq!(n, 0);
        assert_eq!(m.function(fid).inst_count(), 1);
    }

    #[test]
    fn x_minus_x_and_x_over_x() {
        let mut m = Module::new("m");
        let fid = m.declare_function("f", vec![Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let d = b.fsub(x, x);
            let q = b.fdiv(x, x);
            let r = b.fadd(d, q);
            b.ret(Some(r));
        }
        // x in [1, 2]: finite and nonzero, so both rewrites fire.
        let n = apply_fast_math(m.function_mut(fid), &bounded_opts(1, 1.0, 2.0));
        assert_eq!(n, 2);
        distill_opt::fold::run_function(m.function_mut(fid));
        let f = m.function(fid);
        assert_eq!(f.as_constant(ret_value(f)), Some(Constant::F64(1.0)));
    }

    #[test]
    fn division_rewrite_refused_when_zero_possible() {
        let mut m = Module::new("m");
        let fid = m.declare_function("f", vec![Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let q = b.fdiv(x, x);
            b.ret(Some(q));
        }
        let n = apply_fast_math(m.function_mut(fid), &bounded_opts(1, -1.0, 1.0));
        assert_eq!(n, 0);
    }
}
