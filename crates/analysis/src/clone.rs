//! Clone detection (§4.4, Fig. 3).
//!
//! Reimplements the role LLVM's `FunctionComparator` plays in the paper:
//! a structural, order-aware comparison of two functions in the same module
//! that decides whether they compute the identical function. Two levels are
//! offered:
//!
//! * [`functions_equivalent`] — direct structural comparison of two
//!   functions (after the standard pipeline has canonicalized both). This is
//!   the node-level check that recognises an LCA configured with
//!   `rate = 0, offset = 0, noise = N(0,1)` as identical to a DDM
//!   integrator (Fig. 3).
//! * [`models_equivalent`] — aggressively inlines every call in both
//!   functions, re-runs the cleanup pipeline, and then compares. Because the
//!   comparison happens at the IR level it is independent of how the model
//!   was factored into nodes, which is how the paper shows a hand-vectorized
//!   Necker-cube model equivalent to the original, and Extended Stroop A
//!   equivalent to Extended Stroop B.

use distill_ir::{Constant, FuncId, Function, Inst, Module, Terminator, ValueId, ValueKind};
use distill_opt::{inline, OptLevel, PassManager};
use std::collections::HashMap;

/// Outcome of a clone-detection query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CloneReport {
    /// Whether the two functions were proven structurally equivalent.
    pub equivalent: bool,
    /// Number of instruction pairs matched before success or first mismatch.
    pub matched_instructions: usize,
    /// Human-readable reason when not equivalent.
    pub mismatch: Option<String>,
}

impl CloneReport {
    fn ok(matched: usize) -> CloneReport {
        CloneReport {
            equivalent: true,
            matched_instructions: matched,
            mismatch: None,
        }
    }

    fn fail(matched: usize, why: impl Into<String>) -> CloneReport {
        CloneReport {
            equivalent: false,
            matched_instructions: matched,
            mismatch: Some(why.into()),
        }
    }
}

/// Structurally compare two functions of the same module.
///
/// The comparison walks both functions' blocks in layout order, pairing them
/// up, and requires instruction-for-instruction equality modulo a value
/// renaming that is built incrementally (the same discipline LLVM's
/// `FunctionComparator` uses). Run the optimizer over both functions first:
/// canonicalization is what makes superficially different models comparable.
pub fn functions_equivalent(module: &Module, a: FuncId, b: FuncId) -> CloneReport {
    let fa = module.function(a);
    let fb = module.function(b);
    compare_functions(fa, fb)
}

/// Compare two functions structurally (exposed for testing on detached
/// [`Function`] values).
pub fn compare_functions(fa: &Function, fb: &Function) -> CloneReport {
    let mut matched = 0usize;
    if fa.params.len() != fb.params.len() {
        return CloneReport::fail(matched, "parameter counts differ");
    }
    for (i, (pa, pb)) in fa.params.iter().zip(&fb.params).enumerate() {
        if pa != pb {
            return CloneReport::fail(matched, format!("parameter {i} types differ"));
        }
    }
    if fa.ret_ty != fb.ret_ty {
        return CloneReport::fail(matched, "return types differ");
    }
    if fa.layout.len() != fb.layout.len() {
        return CloneReport::fail(
            matched,
            format!(
                "block counts differ ({} vs {})",
                fa.layout.len(),
                fb.layout.len()
            ),
        );
    }

    // Value correspondence map (a-value -> b-value), seeded with parameters.
    let mut vmap: HashMap<ValueId, ValueId> = HashMap::new();
    for i in 0..fa.params.len() {
        vmap.insert(fa.param_value(i), fb.param_value(i));
    }
    // Block correspondence follows layout order.
    let mut bmap: HashMap<distill_ir::BlockId, distill_ir::BlockId> = HashMap::new();
    for (ba, bb) in fa.layout.iter().zip(&fb.layout) {
        bmap.insert(*ba, *bb);
    }

    for (ba, bb) in fa.layout.iter().zip(&fb.layout) {
        let blk_a = fa.block(*ba);
        let blk_b = fb.block(*bb);
        if blk_a.insts.len() != blk_b.insts.len() {
            return CloneReport::fail(
                matched,
                format!(
                    "block {} instruction counts differ ({} vs {})",
                    blk_a.name,
                    blk_a.insts.len(),
                    blk_b.insts.len()
                ),
            );
        }
        for (&va, &vb) in blk_a.insts.iter().zip(&blk_b.insts) {
            let ia = fa.as_inst(va).expect("scheduled value is an instruction");
            let ib = fb.as_inst(vb).expect("scheduled value is an instruction");
            if !insts_match(fa, fb, ia, ib, &vmap, &bmap) {
                return CloneReport::fail(
                    matched,
                    format!("instructions differ: `{ia:?}` vs `{ib:?}`"),
                );
            }
            if fa.ty(va) != fb.ty(vb) {
                return CloneReport::fail(matched, "instruction result types differ");
            }
            vmap.insert(va, vb);
            matched += 1;
        }
        let ta = blk_a.term.as_ref();
        let tb = blk_b.term.as_ref();
        match (ta, tb) {
            (Some(ta), Some(tb)) => {
                if !terms_match(fa, fb, ta, tb, &vmap, &bmap) {
                    return CloneReport::fail(matched, "terminators differ");
                }
            }
            _ => return CloneReport::fail(matched, "missing terminator"),
        }
    }
    CloneReport::ok(matched)
}

fn values_match(
    fa: &Function,
    fb: &Function,
    va: ValueId,
    vb: ValueId,
    vmap: &HashMap<ValueId, ValueId>,
) -> bool {
    // Constants compare by value; everything else through the mapping.
    match (&fa.value(va).kind, &fb.value(vb).kind) {
        (ValueKind::Const(ca), ValueKind::Const(cb)) => constants_match(ca, cb),
        _ => match vmap.get(&va) {
            Some(mapped) => *mapped == vb,
            // Forward reference (e.g. a loop phi's back-edge value defined in
            // a later block): compare by position, as LLVM's
            // FunctionComparator does; the referenced instructions are still
            // compared structurally when their block is reached.
            None => va == vb,
        },
    }
}

fn constants_match(a: &Constant, b: &Constant) -> bool {
    // Numeric equality rather than bit equality: 1.0 written as f64 in one
    // model and produced by folding in another should still match, but
    // 0.0 vs -0.0 are kept distinct (they behave differently under
    // division).
    match (a, b) {
        (Constant::F64(x), Constant::F64(y)) => x.to_bits() == y.to_bits(),
        (Constant::F32(x), Constant::F32(y)) => x.to_bits() == y.to_bits(),
        (Constant::I64(x), Constant::I64(y)) => x == y,
        (Constant::Bool(x), Constant::Bool(y)) => x == y,
        (Constant::Undef, Constant::Undef) => true,
        _ => false,
    }
}

fn operand_lists_match(
    fa: &Function,
    fb: &Function,
    a: &[ValueId],
    b: &[ValueId],
    vmap: &HashMap<ValueId, ValueId>,
) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| values_match(fa, fb, *x, *y, vmap))
}

fn insts_match(
    fa: &Function,
    fb: &Function,
    ia: &Inst,
    ib: &Inst,
    vmap: &HashMap<ValueId, ValueId>,
    bmap: &HashMap<distill_ir::BlockId, distill_ir::BlockId>,
) -> bool {
    use Inst::*;
    match (ia, ib) {
        (
            Bin {
                op: oa,
                lhs: la,
                rhs: ra,
            },
            Bin {
                op: ob,
                lhs: lb,
                rhs: rb,
            },
        ) => {
            if oa != ob {
                return false;
            }
            if operand_lists_match(fa, fb, &[*la, *ra], &[*lb, *rb], vmap) {
                return true;
            }
            // Commutative operations may have swapped operands.
            oa.is_commutative() && operand_lists_match(fa, fb, &[*la, *ra], &[*rb, *lb], vmap)
        }
        (Un { op: oa, val: va }, Un { op: ob, val: vb }) => {
            oa == ob && values_match(fa, fb, *va, *vb, vmap)
        }
        (
            Cmp {
                pred: pa,
                lhs: la,
                rhs: ra,
            },
            Cmp {
                pred: pb,
                lhs: lb,
                rhs: rb,
            },
        ) => {
            (pa == pb && operand_lists_match(fa, fb, &[*la, *ra], &[*lb, *rb], vmap))
                || (pa.swapped() == *pb
                    && operand_lists_match(fa, fb, &[*la, *ra], &[*rb, *lb], vmap))
        }
        (
            Select {
                cond: ca,
                then_val: ta,
                else_val: ea,
            },
            Select {
                cond: cb,
                then_val: tb,
                else_val: eb,
            },
        ) => operand_lists_match(fa, fb, &[*ca, *ta, *ea], &[*cb, *tb, *eb], vmap),
        (
            Call {
                callee: ca,
                args: aa,
            },
            Call {
                callee: cb,
                args: ab,
            },
        ) => ca == cb && operand_lists_match(fa, fb, aa, ab, vmap),
        (
            IntrinsicCall { kind: ka, args: aa },
            IntrinsicCall { kind: kb, args: ab },
        ) => ka == kb && operand_lists_match(fa, fb, aa, ab, vmap),
        (Alloca { ty: ta }, Alloca { ty: tb }) => ta == tb,
        (Load { ptr: pa }, Load { ptr: pb }) => values_match(fa, fb, *pa, *pb, vmap),
        (
            Store {
                ptr: pa,
                value: va,
            },
            Store {
                ptr: pb,
                value: vb,
            },
        ) => operand_lists_match(fa, fb, &[*pa, *va], &[*pb, *vb], vmap),
        (
            Gep {
                base: ba,
                indices: ia,
            },
            Gep {
                base: bb,
                indices: ib,
            },
        ) => {
            if !values_match(fa, fb, *ba, *bb, vmap) || ia.len() != ib.len() {
                return false;
            }
            ia.iter().zip(ib).all(|(x, y)| match (x, y) {
                (
                    distill_ir::inst::GepIndex::Const(a),
                    distill_ir::inst::GepIndex::Const(b),
                ) => a == b,
                (distill_ir::inst::GepIndex::Dyn(a), distill_ir::inst::GepIndex::Dyn(b)) => {
                    values_match(fa, fb, *a, *b, vmap)
                }
                _ => false,
            })
        }
        (
            Phi {
                ty: ta,
                incoming: ia,
            },
            Phi {
                ty: tb,
                incoming: ib,
            },
        ) => {
            if ta != tb || ia.len() != ib.len() {
                return false;
            }
            // Incoming edges must match under the block mapping, order
            // insensitive.
            ia.iter().all(|(pa, va)| {
                let Some(pb) = bmap.get(pa) else { return false };
                ib.iter()
                    .any(|(qb, vb)| qb == pb && values_match(fa, fb, *va, *vb, vmap))
            })
        }
        (
            Cast {
                kind: ka,
                val: va,
                to: ta,
            },
            Cast {
                kind: kb,
                val: vb,
                to: tb,
            },
        ) => ka == kb && ta == tb && values_match(fa, fb, *va, *vb, vmap),
        (GlobalAddr { global: ga }, GlobalAddr { global: gb }) => ga == gb,
        _ => false,
    }
}

fn terms_match(
    fa: &Function,
    fb: &Function,
    ta: &Terminator,
    tb: &Terminator,
    vmap: &HashMap<ValueId, ValueId>,
    bmap: &HashMap<distill_ir::BlockId, distill_ir::BlockId>,
) -> bool {
    match (ta, tb) {
        (Terminator::Br(a), Terminator::Br(b)) => bmap.get(a) == Some(b),
        (
            Terminator::CondBr {
                cond: ca,
                then_blk: tba,
                else_blk: eba,
            },
            Terminator::CondBr {
                cond: cb,
                then_blk: tbb,
                else_blk: ebb,
            },
        ) => {
            values_match(fa, fb, *ca, *cb, vmap)
                && bmap.get(tba) == Some(tbb)
                && bmap.get(eba) == Some(ebb)
        }
        (Terminator::Ret(Some(a)), Terminator::Ret(Some(b))) => values_match(fa, fb, *a, *b, vmap),
        (Terminator::Ret(None), Terminator::Ret(None)) => true,
        (Terminator::Unreachable, Terminator::Unreachable) => true,
        _ => false,
    }
}

/// Whole-model equivalence: clone the module, aggressively inline every call
/// inside both functions, run the `O2` pipeline to canonicalize, and compare
/// the flattened bodies.
pub fn models_equivalent(module: &Module, a: FuncId, b: FuncId) -> CloneReport {
    let mut work = module.clone();
    let opts = inline::InlineOptions {
        max_callee_insts: usize::MAX / 2,
        max_inlined_calls: 100_000,
    };
    inline::inline_all_calls_in(&mut work, a, opts);
    inline::inline_all_calls_in(&mut work, b, opts);
    PassManager::new(OptLevel::O2).run(&mut work);
    functions_equivalent(&work, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_ir::{FunctionBuilder, Ty};

    /// Build a module containing two integrator step functions:
    /// a DDM step `x + rate*dt*stimulus + noise*sqrt(dt)*z` and an LCA step
    /// `x + dt*(stimulus - leak*x) + noise*sqrt(dt)*z` — with `leak = 0`,
    /// `rate = 1`, identical noise, the LCA collapses to the DDM (Fig. 3).
    fn integrator_module(lca_leak: f64, ddm_rate: f64) -> (Module, FuncId, FuncId) {
        let mut m = Module::new("integrators");
        // Parameters: x (current evidence), stimulus, z (unit normal draw).
        let ddm = m.declare_function("ddm_step", vec![Ty::F64, Ty::F64, Ty::F64], Ty::F64);
        let dt = 0.01;
        let noise = 1.0;
        {
            let f = m.function_mut(ddm);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let stim = b.param(1);
            let z = b.param(2);
            let rate = b.const_f64(ddm_rate);
            let dt_c = b.const_f64(dt);
            let drift = b.fmul(rate, stim);
            let drift_dt = b.fmul(drift, dt_c);
            let noise_c = b.const_f64(noise);
            let sqrt_dt = b.const_f64(dt.sqrt());
            let diff = b.fmul(noise_c, sqrt_dt);
            let shock = b.fmul(diff, z);
            let x1 = b.fadd(x, drift_dt);
            let x2 = b.fadd(x1, shock);
            b.ret(Some(x2));
        }
        let lca = m.declare_function("lca_step", vec![Ty::F64, Ty::F64, Ty::F64], Ty::F64);
        {
            let f = m.function_mut(lca);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let stim = b.param(1);
            let z = b.param(2);
            let leak = b.const_f64(lca_leak);
            let dt_c = b.const_f64(dt);
            // input = stimulus - leak * x
            let leak_x = b.fmul(leak, x);
            let input = b.fsub(stim, leak_x);
            let drift_dt = b.fmul(input, dt_c);
            let noise_c = b.const_f64(noise);
            let sqrt_dt = b.const_f64(dt.sqrt());
            let diff = b.fmul(noise_c, sqrt_dt);
            let shock = b.fmul(diff, z);
            let x1 = b.fadd(x, drift_dt);
            let x2 = b.fadd(x1, shock);
            b.ret(Some(x2));
        }
        (m, ddm, lca)
    }

    #[test]
    fn lca_with_zero_leak_equals_ddm() {
        // rate_DDM = 1, leak_LCA = 0: with bounded evidence/stimulus ranges
        // (proved by the sanitization run), range-guided fast-math removes
        // the `0 * x` leak term and constant folding reduces both bodies to
        // x + stim*dt + noise*sqrt(dt)*z, which the comparator then proves
        // identical (Fig. 3).
        let (mut m, ddm, lca) = integrator_module(0.0, 1.0);
        let mut vrp_opts = crate::vrp::VrpOptions::default();
        for i in 0..3 {
            vrp_opts
                .param_ranges
                .insert(i, crate::vrp::Interval::new(-100.0, 100.0));
        }
        crate::fastmath::apply_fast_math_module(&mut m, &vrp_opts);
        PassManager::new(OptLevel::O2).run(&mut m);
        let report = functions_equivalent(&m, ddm, lca);
        assert!(report.equivalent, "mismatch: {:?}", report.mismatch);
        assert!(report.matched_instructions >= 4);
    }

    #[test]
    fn lca_with_nonzero_leak_differs_from_ddm() {
        let (mut m, ddm, lca) = integrator_module(0.5, 1.0);
        PassManager::new(OptLevel::O2).run(&mut m);
        let report = functions_equivalent(&m, ddm, lca);
        assert!(!report.equivalent);
        assert!(report.mismatch.is_some());
    }

    #[test]
    fn identical_functions_are_clones_without_optimization() {
        let (m, ddm, _) = integrator_module(0.0, 1.0);
        let report = functions_equivalent(&m, ddm, ddm);
        assert!(report.equivalent);
    }

    #[test]
    fn commutative_operand_order_does_not_matter() {
        let mut m = Module::new("m");
        let a = m.declare_function("a", vec![Ty::F64, Ty::F64], Ty::F64);
        {
            let f = m.function_mut(a);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let y = b.param(1);
            let r = b.fadd(x, y);
            b.ret(Some(r));
        }
        let bfun = m.declare_function("b", vec![Ty::F64, Ty::F64], Ty::F64);
        {
            let f = m.function_mut(bfun);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let y = b.param(1);
            let r = b.fadd(y, x);
            b.ret(Some(r));
        }
        assert!(functions_equivalent(&m, a, bfun).equivalent);
    }

    #[test]
    fn whole_model_equivalence_through_inlining() {
        // Model A calls a helper twice; model B writes the same computation
        // out by hand. They are structurally different until inlining.
        let mut m = Module::new("m");
        let helper = m.declare_function("double_it", vec![Ty::F64], Ty::F64);
        {
            let f = m.function_mut(helper);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let two = b.const_f64(2.0);
            let r = b.fmul(x, two);
            b.ret(Some(r));
        }
        let model_a = m.declare_function("model_a", vec![Ty::F64], Ty::F64);
        {
            let sigs: Vec<(Vec<Ty>, Ty)> = m
                .functions
                .iter()
                .map(|f| (f.params.clone(), f.ret_ty.clone()))
                .collect();
            let f = m.function_mut(model_a);
            let mut b = FunctionBuilder::new(f).with_signatures(sigs);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let d1 = b.call(helper, vec![x]);
            let d2 = b.call(helper, vec![d1]);
            b.ret(Some(d2));
        }
        let model_b = m.declare_function("model_b", vec![Ty::F64], Ty::F64);
        {
            let f = m.function_mut(model_b);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let two = b.const_f64(2.0);
            let d1 = b.fmul(x, two);
            let d2 = b.fmul(d1, two);
            b.ret(Some(d2));
        }
        // Direct comparison fails (one has calls, the other arithmetic)...
        assert!(!functions_equivalent(&m, model_a, model_b).equivalent);
        // ...whole-model comparison after inlining succeeds.
        let report = models_equivalent(&m, model_a, model_b);
        assert!(report.equivalent, "mismatch: {:?}", report.mismatch);
    }

    #[test]
    fn different_parameter_counts_are_rejected_early() {
        let mut m = Module::new("m");
        let a = m.declare_function("a", vec![Ty::F64], Ty::F64);
        {
            let f = m.function_mut(a);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            b.ret(Some(x));
        }
        let b2 = m.declare_function("b", vec![Ty::F64, Ty::F64], Ty::F64);
        {
            let f = m.function_mut(b2);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            b.ret(Some(x));
        }
        let r = functions_equivalent(&m, a, b2);
        assert!(!r.equivalent);
        assert_eq!(r.matched_instructions, 0);
    }
}
