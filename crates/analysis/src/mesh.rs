//! Adaptive mesh refinement over a parameter sub-space (§4.3, Fig. 2).
//!
//! The conventional way to find the best attention allocation in the
//! predator-prey model is to grid-search the parameter (e.g. 100 levels) and
//! run the stochastic model many times per level — hundreds of thousands of
//! runs. The paper instead evaluates the model's cost function over
//! parameter *intervals* using the floating-point VRP of [`crate::vrp`] and
//! repeatedly bisects the most promising interval, homing in on the optimum
//! in a handful of rounds with **zero** model executions.
//!
//! The function under analysis is an IR function `cost(param) -> f64`
//! (usually the grid-search evaluation function extracted by
//! `distill-codegen` and pre-optimized so it is a pure expression of its
//! parameter); stochastic terms appear as PRNG intrinsics whose ranges are
//! handled conservatively by the VRP transfer functions.

use crate::vrp::{analyze_function, Interval, VrpOptions};
use distill_ir::{Function, Terminator};

/// Options controlling the refinement.
#[derive(Debug, Clone, Copy)]
pub struct MeshOptions {
    /// Number of bisection rounds to perform.
    pub rounds: usize,
    /// Stop early when the parameter interval is narrower than this.
    pub min_width: f64,
}

impl Default for MeshOptions {
    fn default() -> Self {
        // The paper reports locating the predator-prey optimum in about 7
        // refinement rounds (Fig. 2).
        MeshOptions {
            rounds: 7,
            min_width: 1e-6,
        }
    }
}

/// One refinement step: the interval considered and the cost range the
/// analysis derived for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshStep {
    /// Parameter interval examined in this step.
    pub param: Interval,
    /// Cost interval derived by VRP for that parameter interval.
    pub cost: Interval,
}

/// Result of an adaptive mesh refinement.
#[derive(Debug, Clone)]
pub struct MeshResult {
    /// The final (narrowest) parameter interval containing the estimated
    /// optimum.
    pub best_param: Interval,
    /// Cost range over the final interval.
    pub best_cost: Interval,
    /// Midpoint of the final interval — the point estimate of the optimal
    /// parameter value.
    pub estimate: f64,
    /// Every interval evaluation performed, in order (two per round).
    pub trace: Vec<MeshStep>,
    /// Number of interval evaluations (compiler analyses) performed.
    pub analysis_evaluations: usize,
}

impl MeshResult {
    /// Number of refinement rounds actually performed.
    pub fn rounds(&self) -> usize {
        self.trace.len() / 2
    }
}

/// Evaluate the cost function's range over a parameter interval using VRP.
///
/// `param_index` selects which function parameter is being refined; the
/// remaining parameters are pinned with `fixed_params` (index, interval)
/// pairs — in the predator-prey example these are the attention levels of
/// the predator and the player, held constant while the prey attention is
/// searched.
pub fn cost_range(
    func: &Function,
    param_index: usize,
    param: Interval,
    fixed_params: &[(usize, Interval)],
) -> Interval {
    let mut opts = VrpOptions::default();
    opts.param_ranges.insert(param_index, param);
    for (i, r) in fixed_params {
        opts.param_ranges.insert(*i, *r);
    }
    let ranges = analyze_function(func, &opts);
    // The cost is the function's return value.
    let mut result = Interval::top();
    for b in func.block_order() {
        if let Some(Terminator::Ret(Some(v))) = &func.block(b).term {
            result = ranges
                .get(v)
                .copied()
                .unwrap_or_else(Interval::top);
        }
    }
    result
}

/// Adaptively refine `[lo, hi]` for parameter `param_index` of `func`,
/// minimizing the cost returned by the function.
///
/// The search keeps the half-interval whose cost range has the lower upper
/// bound (ties broken towards the lower bound), which is the bisection
/// strategy illustrated in Fig. 2 of the paper.
pub fn refine(
    func: &Function,
    param_index: usize,
    lo: f64,
    hi: f64,
    fixed_params: &[(usize, Interval)],
    opts: MeshOptions,
) -> MeshResult {
    assert!(lo < hi, "refine: empty parameter interval");
    let mut current = Interval::new(lo, hi);
    let mut trace = Vec::new();
    let mut evaluations = 0usize;

    for _ in 0..opts.rounds {
        if current.width() < opts.min_width {
            break;
        }
        let mid = 0.5 * (current.lo + current.hi);
        let left = Interval::new(current.lo, mid);
        let right = Interval::new(mid, current.hi);
        let cl = cost_range(func, param_index, left, fixed_params);
        let cr = cost_range(func, param_index, right, fixed_params);
        evaluations += 2;
        trace.push(MeshStep {
            param: left,
            cost: cl,
        });
        trace.push(MeshStep {
            param: right,
            cost: cr,
        });
        // Prefer the half whose worst case is better; fall back to the
        // better best case when the worst cases tie.
        current = if cl.hi < cr.hi || (cl.hi == cr.hi && cl.lo <= cr.lo) {
            left
        } else {
            right
        };
    }

    let best_cost = cost_range(func, param_index, current, fixed_params);
    evaluations += 1;
    MeshResult {
        best_param: current,
        best_cost,
        estimate: 0.5 * (current.lo + current.hi),
        trace,
        analysis_evaluations: evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_ir::{FunctionBuilder, Module, Ty};

    /// Build `cost(a) = (a - 4.6)^2 - 390.0`, a smooth surrogate of the
    /// predator-prey attention cost with its optimum near 4.6 (Fig. 2).
    fn quadratic_cost(optimum: f64, offset: f64) -> (Module, distill_ir::FuncId) {
        let mut m = Module::new("m");
        let fid = m.declare_function("cost", vec![Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let a = b.param(0);
            let c = b.const_f64(optimum);
            let d = b.fsub(a, c);
            let sq = b.fmul(d, d);
            let off = b.const_f64(offset);
            let r = b.fadd(sq, off);
            b.ret(Some(r));
        }
        (m, fid)
    }

    #[test]
    fn refinement_converges_to_the_optimum() {
        let (m, fid) = quadratic_cost(4.6, -390.0);
        let result = refine(
            m.function(fid),
            0,
            0.0,
            5.0,
            &[],
            MeshOptions {
                rounds: 12,
                min_width: 1e-9,
            },
        );
        assert!(
            (result.estimate - 4.6).abs() < 0.01,
            "estimate {} should approach 4.6",
            result.estimate
        );
        assert!(result.analysis_evaluations <= 2 * 12 + 1);
    }

    #[test]
    fn seven_rounds_reach_paper_precision() {
        // The paper needs ~7 rounds over [0, 5] to pin the optimum near 4.6;
        // 7 bisections of a width-5 interval give a width of 5/2^7 ≈ 0.04.
        let (m, fid) = quadratic_cost(4.6, -390.0);
        let result = refine(m.function(fid), 0, 0.0, 5.0, &[], MeshOptions::default());
        assert_eq!(result.rounds(), 7);
        assert!(result.best_param.width() <= 5.0 / 128.0 + 1e-12);
        assert!(result.best_param.contains(4.6) || (result.estimate - 4.6).abs() < 0.06);
    }

    #[test]
    fn interval_evaluations_vastly_undercut_grid_runs() {
        // Conventional approach from the paper: 100 attention levels, each
        // run many times (say 1000 samples) = 100_000 model executions. The
        // analysis needs a couple of dozen interval evaluations.
        let (m, fid) = quadratic_cost(4.6, -390.0);
        let result = refine(m.function(fid), 0, 0.0, 5.0, &[], MeshOptions::default());
        let grid_runs = 100 * 1000;
        assert!(result.analysis_evaluations * 1000 < grid_runs);
    }

    #[test]
    fn cost_range_is_sound_for_point_parameters() {
        let (m, fid) = quadratic_cost(2.0, 0.0);
        for a in [0.0, 1.0, 2.0, 3.5, 5.0] {
            let r = cost_range(m.function(fid), 0, Interval::point(a), &[]);
            let exact = (a - 2.0) * (a - 2.0);
            assert!(
                r.contains(exact),
                "range {r} must contain exact cost {exact} at a={a}"
            );
        }
    }

    #[test]
    fn fixed_parameters_are_respected() {
        // cost(a, b) = (a - 1)^2 + b, with b pinned to [2, 2].
        let mut m = Module::new("m");
        let fid = m.declare_function("cost2", vec![Ty::F64, Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut bld = FunctionBuilder::new(f);
            let e = bld.create_block("entry");
            bld.switch_to_block(e);
            let a = bld.param(0);
            let b = bld.param(1);
            let one = bld.const_f64(1.0);
            let d = bld.fsub(a, one);
            let sq = bld.fmul(d, d);
            let r = bld.fadd(sq, b);
            bld.ret(Some(r));
        }
        let result = refine(
            m.function(fid),
            0,
            0.0,
            3.0,
            &[(1, Interval::point(2.0))],
            MeshOptions {
                rounds: 10,
                min_width: 1e-9,
            },
        );
        assert!((result.estimate - 1.0).abs() < 0.05);
        // With b = 2 the minimum cost is 2.
        assert!(result.best_cost.contains(2.0 + (result.estimate - 1.0).powi(2)));
    }
}
