//! Structural and type verification of IR.
//!
//! The verifier checks the invariants the optimizer and the execution engine
//! rely on: every scheduled block has a terminator, operands are type
//! correct, phi nodes list exactly the predecessors of their block, calls
//! match callee signatures, and GEP index paths match the aggregate they
//! traverse. It is run after code generation and after every pass pipeline
//! in debug builds and tests.

use crate::cfg::Cfg;
use crate::function::{Function, Terminator, ValueId, ValueKind};
use crate::inst::{GepIndex, Inst};
use crate::module::Module;
use crate::types::Ty;
use std::fmt;

/// A verification failure, naming the function and describing the violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Name of the offending function.
    pub function: String,
    /// Human-readable description of the violated invariant.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification of `{}` failed: {}", self.function, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verify every function of a module.
///
/// # Errors
/// Returns the first [`VerifyError`] encountered.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for (_, f) in module.iter_functions() {
        if !f.is_declaration {
            verify_function(module, f)?;
        }
    }
    Ok(())
}

/// Verify a single function.
///
/// # Errors
/// Returns the first [`VerifyError`] encountered.
pub fn verify_function(module: &Module, func: &Function) -> Result<(), VerifyError> {
    let err = |msg: String| VerifyError {
        function: func.name.clone(),
        message: msg,
    };

    if func.layout.is_empty() {
        return Err(err("function has no blocks".into()));
    }

    // Each scheduled value must be an instruction, scheduled exactly once.
    let mut scheduled = vec![0usize; func.values.len()];
    for b in func.block_order() {
        let blk = func.block(b);
        if blk.term.is_none() {
            return Err(err(format!("block {} has no terminator", blk.name)));
        }
        let mut seen_non_phi = false;
        for &v in &blk.insts {
            scheduled[v.index()] += 1;
            match &func.value(v).kind {
                ValueKind::Inst(inst) => {
                    if inst.is_phi() {
                        if seen_non_phi {
                            return Err(err(format!(
                                "phi {v} is not at the start of block {}",
                                blk.name
                            )));
                        }
                    } else {
                        seen_non_phi = true;
                    }
                }
                _ => {
                    return Err(err(format!(
                        "block {} schedules non-instruction value {v}",
                        blk.name
                    )))
                }
            }
        }
    }
    for (i, count) in scheduled.iter().enumerate() {
        if *count > 1 {
            return Err(err(format!(
                "value %{i} is scheduled {count} times"
            )));
        }
    }

    let cfg = Cfg::new(func);

    // Type-check instructions and phi structure.
    for b in func.block_order() {
        let blk = func.block(b);
        for &v in &blk.insts {
            let inst = func.as_inst(v).expect("checked above");
            check_inst(module, func, &cfg, b, v, inst).map_err(&err)?;
        }
        match blk.term.as_ref().unwrap() {
            Terminator::CondBr { cond, .. }
                if *func.ty(*cond) != Ty::Bool => {
                    return Err(err(format!(
                        "conditional branch in {} on non-boolean {cond}",
                        blk.name
                    )));
                }
            Terminator::Ret(val) => match (val, &func.ret_ty) {
                (None, Ty::Void) => {}
                (Some(v), ret_ty) => {
                    if func.ty(*v) != ret_ty {
                        return Err(err(format!(
                            "return of {} from function returning {ret_ty}",
                            func.ty(*v)
                        )));
                    }
                }
                (None, ret_ty) => {
                    return Err(err(format!(
                        "missing return value in function returning {ret_ty}"
                    )))
                }
            },
            _ => {}
        }
    }
    Ok(())
}

fn check_inst(
    module: &Module,
    func: &Function,
    cfg: &Cfg,
    block: crate::function::BlockId,
    id: ValueId,
    inst: &Inst,
) -> Result<(), String> {
    // All operands must exist (arena bounds) — guaranteed by construction —
    // and must not be Void-typed.
    for op in inst.operands() {
        if op.index() >= func.values.len() {
            return Err(format!("instruction {id} has out-of-range operand {op}"));
        }
        if *func.ty(op) == Ty::Void && !matches!(inst, Inst::Call { .. }) {
            return Err(format!("instruction {id} uses void value {op}"));
        }
    }

    match inst {
        Inst::Bin { op, lhs, rhs } => {
            let lt = func.ty(*lhs);
            let rt = func.ty(*rhs);
            if lt != rt {
                return Err(format!("binary {id}: operand types {lt} and {rt} differ"));
            }
            if op.is_float() && !lt.is_float() {
                return Err(format!("binary {id}: float op on non-float type {lt}"));
            }
            if !op.is_float() && !lt.is_int() && !lt.is_bool() {
                return Err(format!("binary {id}: integer op on type {lt}"));
            }
        }
        Inst::Cmp { pred, lhs, rhs } => {
            let lt = func.ty(*lhs);
            let rt = func.ty(*rhs);
            if lt != rt {
                return Err(format!("cmp {id}: operand types {lt} and {rt} differ"));
            }
            if pred.is_float() != lt.is_float() {
                return Err(format!("cmp {id}: predicate/type mismatch on {lt}"));
            }
        }
        Inst::Select {
            cond,
            then_val,
            else_val,
        } => {
            if *func.ty(*cond) != Ty::Bool {
                return Err(format!("select {id}: condition is not boolean"));
            }
            if func.ty(*then_val) != func.ty(*else_val) {
                return Err(format!("select {id}: arm types differ"));
            }
        }
        Inst::Call { callee, args } => {
            if callee.index() >= module.functions.len() {
                return Err(format!("call {id}: unknown callee {callee}"));
            }
            let cf = module.function(*callee);
            if cf.params.len() != args.len() {
                return Err(format!(
                    "call {id} to {}: expected {} arguments, got {}",
                    cf.name,
                    cf.params.len(),
                    args.len()
                ));
            }
            for (i, (a, p)) in args.iter().zip(&cf.params).enumerate() {
                if func.ty(*a) != p {
                    return Err(format!(
                        "call {id} to {}: argument {i} has type {} but parameter expects {p}",
                        cf.name,
                        func.ty(*a)
                    ));
                }
            }
        }
        Inst::IntrinsicCall { kind, args } => {
            if args.len() != kind.arity() {
                return Err(format!(
                    "intrinsic {id} {}: expected {} operands, got {}",
                    kind.name(),
                    kind.arity(),
                    args.len()
                ));
            }
            if kind.has_side_effects() {
                if !func.ty(args[0]).is_ptr() {
                    return Err(format!(
                        "intrinsic {id} {}: PRNG state operand must be a pointer",
                        kind.name()
                    ));
                }
            } else {
                for a in args {
                    if !func.ty(*a).is_float() {
                        return Err(format!(
                            "intrinsic {id} {}: operand {a} is not a float",
                            kind.name()
                        ));
                    }
                }
            }
        }
        Inst::Load { ptr } => {
            if !func.ty(*ptr).is_ptr() {
                return Err(format!("load {id}: operand is not a pointer"));
            }
            if !func.ty(*ptr).pointee().is_scalar() {
                return Err(format!("load {id}: loads of aggregates are not allowed"));
            }
        }
        Inst::Store { ptr, value } => {
            if !func.ty(*ptr).is_ptr() {
                return Err(format!("store {id}: destination is not a pointer"));
            }
            let pointee = func.ty(*ptr).pointee();
            if pointee != func.ty(*value) {
                return Err(format!(
                    "store {id}: storing {} into {pointee}",
                    func.ty(*value)
                ));
            }
        }
        Inst::Gep { base, indices } => {
            if !func.ty(*base).is_ptr() {
                return Err(format!("gep {id}: base is not a pointer"));
            }
            let mut cur = func.ty(*base).pointee().clone();
            for idx in indices {
                cur = match (&cur, idx) {
                    (Ty::Array(elem, len), GepIndex::Const(i)) => {
                        if i >= len {
                            return Err(format!(
                                "gep {id}: constant index {i} out of bounds for array of {len}"
                            ));
                        }
                        (**elem).clone()
                    }
                    (Ty::Array(elem, _), GepIndex::Dyn(v)) => {
                        if !func.ty(*v).is_int() {
                            return Err(format!("gep {id}: dynamic index is not an integer"));
                        }
                        (**elem).clone()
                    }
                    (Ty::Struct(fields), GepIndex::Const(i)) => {
                        if *i >= fields.len() {
                            return Err(format!("gep {id}: struct field {i} out of range"));
                        }
                        fields[*i].clone()
                    }
                    (Ty::Struct(_), GepIndex::Dyn(_)) => {
                        return Err(format!("gep {id}: dynamic index into struct"))
                    }
                    (other, _) => {
                        return Err(format!("gep {id}: cannot index into scalar {other}"))
                    }
                };
            }
        }
        Inst::Phi { ty, incoming } => {
            let preds = cfg.preds_of(block);
            if cfg.is_reachable(block) && incoming.len() != preds.len() {
                return Err(format!(
                    "phi {id}: {} incoming edges but block has {} predecessors",
                    incoming.len(),
                    preds.len()
                ));
            }
            for (pred, val) in incoming {
                if cfg.is_reachable(block) && !preds.contains(pred) {
                    return Err(format!(
                        "phi {id}: incoming block {pred} is not a predecessor"
                    ));
                }
                if func.ty(*val) != ty {
                    return Err(format!(
                        "phi {id}: incoming value {val} has type {} but phi is {ty}",
                        func.ty(*val)
                    ));
                }
            }
        }
        Inst::Cast { kind, val, to } => {
            use crate::inst::CastKind::*;
            let from = func.ty(*val);
            let ok = match kind {
                SiToFp => from.is_int() && to.is_float(),
                FpToSi => from.is_float() && to.is_int(),
                FpTrunc => *from == Ty::F64 && *to == Ty::F32,
                FpExt => *from == Ty::F32 && *to == Ty::F64,
                ZExtBool => from.is_bool() && to.is_int(),
                TruncBool => from.is_int() && to.is_bool(),
            };
            if !ok {
                return Err(format!("cast {id}: invalid {kind:?} from {from} to {to}"));
            }
        }
        Inst::GlobalAddr { global } => {
            if global.index() >= module.globals.len() {
                return Err(format!("global_addr {id}: unknown global {global}"));
            }
            let expected = Ty::ptr(module.global(*global).ty.clone());
            if *func.ty(id) != expected {
                return Err(format!(
                    "global_addr {id}: declared type {} but global has {expected}",
                    func.ty(id)
                ));
            }
        }
        Inst::Un { .. } | Inst::Alloca { .. } => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;
    use crate::function::ValueData;
    use crate::types::Ty;

    fn empty_module_with(name: &str, params: Vec<Ty>, ret: Ty) -> (Module, crate::FuncId) {
        let mut m = Module::new("m");
        let fid = m.declare_function(name, params, ret);
        (m, fid)
    }

    #[test]
    fn valid_function_passes() {
        let (mut m, fid) = empty_module_with("f", vec![Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let y = b.fadd(x, x);
            b.ret(Some(y));
        }
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn missing_terminator_is_rejected() {
        let (mut m, fid) = empty_module_with("f", vec![], Ty::Void);
        m.function_mut(fid).add_block("entry");
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("no terminator"), "{e}");
    }

    #[test]
    fn mixed_operand_types_are_rejected() {
        let (mut m, fid) = empty_module_with("f", vec![Ty::F64, Ty::I64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let entry = f.add_block("entry");
            let a = f.param_value(0);
            let b = f.param_value(1);
            let bad = f.add_value(ValueData {
                kind: ValueKind::Inst(Inst::Bin {
                    op: BinOp::FAdd,
                    lhs: a,
                    rhs: b,
                }),
                ty: Ty::F64,
                name: None,
            });
            f.block_mut(entry).insts.push(bad);
            f.block_mut(entry).term = Some(Terminator::Ret(Some(bad)));
        }
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("differ"), "{e}");
    }

    #[test]
    fn wrong_return_type_is_rejected() {
        let (mut m, fid) = empty_module_with("f", vec![Ty::I64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            b.ret(Some(x));
        }
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn call_arity_mismatch_is_rejected() {
        let mut m = Module::new("m");
        let callee = m.declare_function("callee", vec![Ty::F64, Ty::F64], Ty::F64);
        {
            let f = m.function_mut(callee);
            let mut b = FunctionBuilder::new(f);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            b.ret(Some(x));
        }
        let caller = m.declare_function("caller", vec![Ty::F64], Ty::F64);
        {
            let sigs: Vec<(Vec<Ty>, Ty)> = m
                .functions
                .iter()
                .map(|f| (f.params.clone(), f.ret_ty.clone()))
                .collect();
            let f = m.function_mut(caller);
            let mut b = FunctionBuilder::new(f).with_signatures(sigs);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let x = b.param(0);
            let r = b.call(callee, vec![x]);
            b.ret(Some(r));
        }
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("expected 2 arguments"), "{e}");
    }

    #[test]
    fn gep_out_of_bounds_constant_is_rejected() {
        let mut m = Module::new("m");
        let g = m.add_zeroed_global("arr", Ty::array(Ty::F64, 2), true);
        let tys: Vec<Ty> = m.globals.iter().map(|g| g.ty.clone()).collect();
        let fid = m.declare_function("f", vec![], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f).with_global_types(tys);
            let e = b.create_block("entry");
            b.switch_to_block(e);
            let base = b.global_addr(g);
            let p = b.const_elem_addr(base, 5);
            let v = b.load(p);
            b.ret(Some(v));
        }
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("out of bounds"), "{e}");
    }

    #[test]
    fn phi_edge_count_must_match_predecessors() {
        let (mut m, fid) = empty_module_with("f", vec![Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let entry = b.create_block("entry");
            let t = b.create_block("t");
            let u = b.create_block("u");
            let join = b.create_block("join");
            b.switch_to_block(entry);
            let x = b.param(0);
            let zero = b.const_f64(0.0);
            let c = b.cmp(crate::inst::CmpPred::FGt, x, zero);
            b.cond_br(c, t, u);
            b.switch_to_block(t);
            b.br(join);
            b.switch_to_block(u);
            b.br(join);
            b.switch_to_block(join);
            // Only one incoming edge although there are two predecessors.
            let p = b.phi(Ty::F64, vec![(t, x)]);
            b.ret(Some(p));
        }
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("incoming edges"), "{e}");
    }
}
