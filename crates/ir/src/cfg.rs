//! Control-flow graph utilities: successors/predecessors, reverse postorder,
//! dominator tree (Cooper–Harvey–Kennedy), and natural loop detection.
//!
//! These are the building blocks the optimization passes (`distill-opt`) and
//! the analyses (`distill-analysis`, e.g. scalar evolution over loops) rely
//! on, mirroring the role `llvm::DominatorTree` and `llvm::LoopInfo` play in
//! the paper's implementation.

use crate::function::{BlockId, Function};
use std::collections::{HashMap, HashSet};

/// Successor / predecessor maps and a reverse postorder of reachable blocks.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successor lists indexed by block arena index.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessor lists indexed by block arena index.
    pub preds: Vec<Vec<BlockId>>,
    /// Reachable blocks in reverse postorder; entry first.
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo` (`usize::MAX` for unreachable blocks).
    pub rpo_index: Vec<usize>,
}

impl Cfg {
    /// Compute the CFG of a function.
    ///
    /// # Panics
    /// Panics if the function has no entry block.
    pub fn new(func: &Function) -> Cfg {
        let n = func.blocks.len();
        let entry = func.entry_block().expect("function has no entry block");
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for b in func.block_order() {
            if let Some(term) = &func.block(b).term {
                for s in term.successors() {
                    succs[b.index()].push(s);
                    preds[s.index()].push(b);
                }
            }
        }

        // Iterative DFS postorder.
        let mut visited = vec![false; n];
        let mut postorder = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        visited[entry.index()] = true;
        while let Some((blk, child)) = stack.pop() {
            if child < succs[blk.index()].len() {
                stack.push((blk, child + 1));
                let next = succs[blk.index()][child];
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    stack.push((next, 0));
                }
            } else {
                postorder.push(blk);
            }
        }
        let rpo: Vec<BlockId> = postorder.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        Cfg {
            succs,
            preds,
            rpo,
            rpo_index,
        }
    }

    /// Whether `block` is reachable from the entry.
    pub fn is_reachable(&self, block: BlockId) -> bool {
        self.rpo_index[block.index()] != usize::MAX
    }

    /// Predecessors of `block`.
    pub fn preds_of(&self, block: BlockId) -> &[BlockId] {
        &self.preds[block.index()]
    }

    /// Successors of `block`.
    pub fn succs_of(&self, block: BlockId) -> &[BlockId] {
        &self.succs[block.index()]
    }
}

/// Immediate-dominator tree computed with the Cooper–Harvey–Kennedy
/// iterative algorithm over the reverse postorder.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator of each block (`None` for the entry block and for
    /// unreachable blocks).
    pub idom: Vec<Option<BlockId>>,
    /// The entry block.
    pub entry: BlockId,
}

impl DomTree {
    /// Compute the dominator tree of a function given its CFG.
    pub fn new(func: &Function, cfg: &Cfg) -> DomTree {
        let n = func.blocks.len();
        let entry = func.entry_block().expect("function has no entry block");
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                // Pick the first processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds_of(b) {
                    if !cfg.is_reachable(p) {
                        continue;
                    }
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &cfg.rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // The entry's idom is conventionally itself during computation; store
        // None afterwards for a cleaner API.
        idom[entry.index()] = None;
        DomTree { idom, entry }
    }

    /// Whether `a` dominates `b` (every block dominates itself).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(next) if next != cur => cur = next,
                _ => return false,
            }
        }
    }

    /// Immediate dominator of `b`, `None` for the entry block.
    pub fn idom_of(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("intersect walked past entry");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("intersect walked past entry");
        }
    }
    a
}

/// A natural loop: header plus the set of blocks in the loop body.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// All blocks belonging to the loop, including the header.
    pub blocks: HashSet<BlockId>,
    /// Latch blocks (sources of back edges to the header).
    pub latches: Vec<BlockId>,
}

impl Loop {
    /// Whether the loop contains `block`.
    pub fn contains(&self, block: BlockId) -> bool {
        self.blocks.contains(&block)
    }

    /// Blocks outside the loop that are targets of edges leaving the loop.
    pub fn exit_blocks(&self, cfg: &Cfg) -> Vec<BlockId> {
        let mut exits = Vec::new();
        for &b in &self.blocks {
            for &s in cfg.succs_of(b) {
                if !self.blocks.contains(&s) && !exits.contains(&s) {
                    exits.push(s);
                }
            }
        }
        exits.sort();
        exits
    }

    /// The unique block outside the loop that branches into the header, if
    /// there is exactly one (the preheader).
    pub fn preheader(&self, cfg: &Cfg) -> Option<BlockId> {
        let outside: Vec<BlockId> = cfg
            .preds_of(self.header)
            .iter()
            .copied()
            .filter(|p| !self.blocks.contains(p))
            .collect();
        if outside.len() == 1 {
            Some(outside[0])
        } else {
            None
        }
    }
}

/// Detect all natural loops of a function (one per header; back edges to the
/// same header are merged into a single loop).
pub fn find_loops(func: &Function, cfg: &Cfg, dom: &DomTree) -> Vec<Loop> {
    let mut loops: HashMap<BlockId, Loop> = HashMap::new();
    for b in func.block_order() {
        if !cfg.is_reachable(b) {
            continue;
        }
        for &s in cfg.succs_of(b) {
            if dom.dominates(s, b) {
                // b -> s is a back edge; s is a header.
                let entry = loops.entry(s).or_insert_with(|| Loop {
                    header: s,
                    blocks: HashSet::from([s]),
                    latches: Vec::new(),
                });
                entry.latches.push(b);
                // Walk backwards from the latch collecting the loop body.
                let mut stack = vec![b];
                while let Some(x) = stack.pop() {
                    if entry.blocks.insert(x) {
                        for &p in cfg.preds_of(x) {
                            if cfg.is_reachable(p) {
                                stack.push(p);
                            }
                        }
                    }
                }
            }
        }
    }
    let mut out: Vec<Loop> = loops.into_values().collect();
    out.sort_by_key(|l| l.header);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::CmpPred;
    use crate::module::Module;
    use crate::types::Ty;

    /// Build `fn count(n: i64) -> i64 { let mut i = 0; while i < n { i += 1 } i }`.
    fn loop_function() -> Module {
        let mut m = Module::new("m");
        let fid = m.declare_function("count", vec![Ty::I64], Ty::I64);
        let f = m.function_mut(fid);
        let mut b = FunctionBuilder::new(f);
        let entry = b.create_block("entry");
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        b.switch_to_block(entry);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let n = b.param(0);
        b.br(header);
        b.switch_to_block(header);
        let i = b.empty_phi(Ty::I64);
        b.add_phi_incoming(i, entry, zero);
        let cond = b.cmp(CmpPred::ILt, i, n);
        b.cond_br(cond, body, exit);
        b.switch_to_block(body);
        let next = b.iadd(i, one);
        b.add_phi_incoming(i, body, next);
        b.br(header);
        b.switch_to_block(exit);
        b.ret(Some(i));
        m
    }

    #[test]
    fn cfg_edges_and_rpo() {
        let m = loop_function();
        let f = &m.functions[0];
        let cfg = Cfg::new(f);
        assert_eq!(cfg.rpo.len(), 4);
        assert_eq!(cfg.rpo[0], f.entry_block().unwrap());
        let header = BlockId::from_index(1);
        assert_eq!(cfg.preds_of(header).len(), 2);
        assert_eq!(cfg.succs_of(header).len(), 2);
    }

    #[test]
    fn dominator_tree() {
        let m = loop_function();
        let f = &m.functions[0];
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        let entry = BlockId::from_index(0);
        let header = BlockId::from_index(1);
        let body = BlockId::from_index(2);
        let exit = BlockId::from_index(3);
        assert!(dom.dominates(entry, exit));
        assert!(dom.dominates(header, body));
        assert!(dom.dominates(header, exit));
        assert!(!dom.dominates(body, exit));
        assert_eq!(dom.idom_of(entry), None);
        assert_eq!(dom.idom_of(header), Some(entry));
        assert_eq!(dom.idom_of(exit), Some(header));
    }

    #[test]
    fn natural_loop_detection() {
        let m = loop_function();
        let f = &m.functions[0];
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        let loops = find_loops(f, &cfg, &dom);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, BlockId::from_index(1));
        assert!(l.contains(BlockId::from_index(2)));
        assert!(!l.contains(BlockId::from_index(3)));
        assert_eq!(l.preheader(&cfg), Some(BlockId::from_index(0)));
        assert_eq!(l.exit_blocks(&cfg), vec![BlockId::from_index(3)]);
        assert_eq!(l.latches, vec![BlockId::from_index(2)]);
    }

    #[test]
    fn unreachable_blocks_are_excluded() {
        let mut m = Module::new("m");
        let fid = m.declare_function("f", vec![], Ty::Void);
        let f = m.function_mut(fid);
        let mut b = FunctionBuilder::new(f);
        let entry = b.create_block("entry");
        let dead = b.create_block("dead");
        b.switch_to_block(entry);
        b.ret(None);
        b.switch_to_block(dead);
        b.ret(None);
        let cfg = Cfg::new(m.function(fid));
        assert!(cfg.is_reachable(entry));
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.rpo.len(), 1);
    }
}
