//! Modules and global variables.

use crate::constant::Constant;
use crate::function::Function;
use crate::types::Ty;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a function within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(u32);

impl FuncId {
    /// Construct a function id from an arena index.
    pub fn from_index(i: usize) -> FuncId {
        FuncId(u32::try_from(i).expect("function arena overflow"))
    }

    /// The arena index of the function.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@fn{}", self.0)
    }
}

/// Identifier of a global variable within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(u32);

impl GlobalId {
    /// Construct a global id from an arena index.
    pub fn from_index(i: usize) -> GlobalId {
        GlobalId(u32::try_from(i).expect("global arena overflow"))
    }

    /// The arena index of the global.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@g{}", self.0)
    }
}

/// A module-level global variable.
///
/// Distill's dynamic-to-static conversion (§3.3 of the paper) turns node
/// outputs, read-only parameters, read-write parameters and trial
/// inputs/outputs into statically-sized globals; the execution engine
/// materializes them in its memory before running compiled code.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Name of the global, unique within the module.
    pub name: String,
    /// Type of the stored value (not of the pointer).
    pub ty: Ty,
    /// Flat, slot-ordered initializer. Must have exactly `ty.slot_count()`
    /// entries; `Constant::Undef` marks slots initialized at run time.
    pub init: Vec<Constant>,
    /// Whether compiled code may write to the global. Read-only parameter
    /// structures are immutable which lets constant propagation fold loads
    /// from them.
    pub mutable: bool,
}

/// A compilation unit: functions plus global variables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Module name (used only for diagnostics and printing).
    pub name: String,
    /// Function arena.
    pub functions: Vec<Function>,
    /// Global arena.
    pub globals: Vec<Global>,
    func_names: HashMap<String, FuncId>,
    global_names: HashMap<String, GlobalId>,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            ..Module::default()
        }
    }

    /// Declare (and define, initially empty) a function; returns its id.
    ///
    /// # Panics
    /// Panics if a function with the same name already exists.
    pub fn declare_function(
        &mut self,
        name: impl Into<String>,
        params: Vec<Ty>,
        ret_ty: Ty,
    ) -> FuncId {
        let name = name.into();
        assert!(
            !self.func_names.contains_key(&name),
            "duplicate function name {name}"
        );
        let id = FuncId::from_index(self.functions.len());
        self.func_names.insert(name.clone(), id);
        self.functions.push(Function::new(name, params, ret_ty));
        id
    }

    /// Add an already-built function; returns its id.
    ///
    /// # Panics
    /// Panics if a function with the same name already exists.
    pub fn add_function(&mut self, func: Function) -> FuncId {
        assert!(
            !self.func_names.contains_key(&func.name),
            "duplicate function name {}",
            func.name
        );
        let id = FuncId::from_index(self.functions.len());
        self.func_names.insert(func.name.clone(), id);
        self.functions.push(func);
        id
    }

    /// Borrow a function by id.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutably borrow a function by id.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Look up a function id by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.func_names.get(name).copied()
    }

    /// Iterator over `(id, function)` pairs.
    pub fn iter_functions(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId::from_index(i), f))
    }

    /// Define a global variable; returns its id.
    ///
    /// # Panics
    /// Panics if the initializer length does not match the type's slot count
    /// or a global with the same name already exists.
    pub fn add_global(
        &mut self,
        name: impl Into<String>,
        ty: Ty,
        init: Vec<Constant>,
        mutable: bool,
    ) -> GlobalId {
        let name = name.into();
        assert!(
            !self.global_names.contains_key(&name),
            "duplicate global name {name}"
        );
        assert_eq!(
            init.len(),
            ty.slot_count(),
            "global {name}: initializer length {} does not match slot count {}",
            init.len(),
            ty.slot_count()
        );
        let id = GlobalId::from_index(self.globals.len());
        self.global_names.insert(name.clone(), id);
        self.globals.push(Global {
            name,
            ty,
            init,
            mutable,
        });
        id
    }

    /// Define a global of the given type filled with zero-valued slots.
    pub fn add_zeroed_global(&mut self, name: impl Into<String>, ty: Ty, mutable: bool) -> GlobalId {
        let init = zero_initializer(&ty);
        self.add_global(name, ty, init, mutable)
    }

    /// Borrow a global by id.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Mutably borrow a global by id.
    pub fn global_mut(&mut self, id: GlobalId) -> &mut Global {
        &mut self.globals[id.index()]
    }

    /// Look up a global id by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.global_names.get(name).copied()
    }

    /// Iterator over `(id, global)` pairs.
    pub fn iter_globals(&self) -> impl Iterator<Item = (GlobalId, &Global)> {
        self.globals
            .iter()
            .enumerate()
            .map(|(i, g)| (GlobalId::from_index(i), g))
    }

    /// Total instruction count across all functions (code-size proxy).
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(Function::inst_count).sum()
    }
}

/// Produce a flat zero initializer for a type: floats are `0.0`, integers
/// `0`, booleans `false`.
pub fn zero_initializer(ty: &Ty) -> Vec<Constant> {
    fn fill(ty: &Ty, out: &mut Vec<Constant>) {
        match ty {
            Ty::Void => {}
            Ty::F64 => out.push(Constant::F64(0.0)),
            Ty::F32 => out.push(Constant::F32(0.0)),
            Ty::I64 | Ty::Ptr(_) => out.push(Constant::I64(0)),
            Ty::Bool => out.push(Constant::Bool(false)),
            Ty::Array(elem, n) => {
                for _ in 0..*n {
                    fill(elem, out);
                }
            }
            Ty::Struct(fields) => {
                for f in fields {
                    fill(f, out);
                }
            }
        }
    }
    let mut out = Vec::with_capacity(ty.slot_count());
    fill(ty, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup_functions() {
        let mut m = Module::new("m");
        let f = m.declare_function("f", vec![Ty::F64], Ty::F64);
        let g = m.declare_function("g", vec![], Ty::Void);
        assert_eq!(m.function_by_name("f"), Some(f));
        assert_eq!(m.function_by_name("g"), Some(g));
        assert_eq!(m.function_by_name("h"), None);
        assert_eq!(m.function(f).params.len(), 1);
    }

    #[test]
    #[should_panic]
    fn duplicate_function_name_panics() {
        let mut m = Module::new("m");
        m.declare_function("f", vec![], Ty::Void);
        m.declare_function("f", vec![], Ty::Void);
    }

    #[test]
    fn globals_with_zero_init() {
        let mut m = Module::new("m");
        let ty = Ty::Struct(vec![Ty::F64, Ty::array(Ty::I64, 2), Ty::Bool]);
        let g = m.add_zeroed_global("params", ty.clone(), true);
        assert_eq!(m.global(g).init.len(), ty.slot_count());
        assert_eq!(m.global(g).init[0], Constant::F64(0.0));
        assert_eq!(m.global(g).init[1], Constant::I64(0));
        assert_eq!(m.global(g).init[3], Constant::Bool(false));
        assert_eq!(m.global_by_name("params"), Some(g));
    }

    #[test]
    #[should_panic]
    fn mismatched_initializer_panics() {
        let mut m = Module::new("m");
        m.add_global("g", Ty::array(Ty::F64, 3), vec![Constant::F64(0.0)], true);
    }

    #[test]
    fn zero_initializer_shapes() {
        assert_eq!(zero_initializer(&Ty::F64), vec![Constant::F64(0.0)]);
        assert_eq!(zero_initializer(&Ty::array(Ty::Bool, 2)).len(), 2);
        assert_eq!(
            zero_initializer(&Ty::Struct(vec![Ty::F64, Ty::F64, Ty::I64])).len(),
            3
        );
    }
}
