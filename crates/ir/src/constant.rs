//! Compile-time constants.

use crate::types::Ty;
use std::fmt;

/// A scalar compile-time constant.
///
/// Constants are interned per function by the [`FunctionBuilder`]
/// (structurally identical constants share a value id), and also appear as
/// initializers of module [globals](crate::Global), where a flat slot-ordered
/// vector of `Constant` initializes an aggregate.
///
/// [`FunctionBuilder`]: crate::builder::FunctionBuilder
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Constant {
    /// A 64-bit float constant.
    F64(f64),
    /// A 32-bit float constant.
    F32(f32),
    /// A 64-bit signed integer constant.
    I64(i64),
    /// A boolean constant.
    Bool(bool),
    /// An undefined value of the given... no type payload: undef is typed by
    /// its use context. Reading `Undef` in the execution engine is an error,
    /// which catches uninitialized-memory bugs in lowering.
    Undef,
}

impl Constant {
    /// The IR type of the constant. `Undef` reports `Void` since its type is
    /// contextual.
    pub fn ty(&self) -> Ty {
        match self {
            Constant::F64(_) => Ty::F64,
            Constant::F32(_) => Ty::F32,
            Constant::I64(_) => Ty::I64,
            Constant::Bool(_) => Ty::Bool,
            Constant::Undef => Ty::Void,
        }
    }

    /// Interpret the constant as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Constant::F64(v) => Some(*v),
            Constant::F32(v) => Some(*v as f64),
            Constant::I64(v) => Some(*v as f64),
            Constant::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Constant::Undef => None,
        }
    }

    /// Interpret the constant as an `i64` if it is an integer or boolean.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Constant::I64(v) => Some(*v),
            Constant::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Interpret the constant as a boolean if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Constant::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Structural equality suitable for interning: compares float constants
    /// bit-for-bit so that `0.0` and `-0.0` (and different NaN payloads)
    /// remain distinct constants.
    pub fn bit_eq(&self, other: &Constant) -> bool {
        match (self, other) {
            (Constant::F64(a), Constant::F64(b)) => a.to_bits() == b.to_bits(),
            (Constant::F32(a), Constant::F32(b)) => a.to_bits() == b.to_bits(),
            (Constant::I64(a), Constant::I64(b)) => a == b,
            (Constant::Bool(a), Constant::Bool(b)) => a == b,
            (Constant::Undef, Constant::Undef) => true,
            _ => false,
        }
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::F64(v) => write!(f, "{v:?}"),
            Constant::F32(v) => write!(f, "{v:?}f"),
            Constant::I64(v) => write!(f, "{v}"),
            Constant::Bool(b) => write!(f, "{b}"),
            Constant::Undef => write!(f, "undef"),
        }
    }
}

impl From<f64> for Constant {
    fn from(v: f64) -> Self {
        Constant::F64(v)
    }
}

impl From<i64> for Constant {
    fn from(v: i64) -> Self {
        Constant::I64(v)
    }
}

impl From<bool> for Constant {
    fn from(v: bool) -> Self {
        Constant::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_of_constants() {
        assert_eq!(Constant::F64(1.0).ty(), Ty::F64);
        assert_eq!(Constant::I64(3).ty(), Ty::I64);
        assert_eq!(Constant::Bool(true).ty(), Ty::Bool);
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Constant::F64(2.5).as_f64(), Some(2.5));
        assert_eq!(Constant::I64(7).as_f64(), Some(7.0));
        assert_eq!(Constant::Bool(true).as_i64(), Some(1));
        assert_eq!(Constant::Undef.as_f64(), None);
    }

    #[test]
    fn bit_equality_distinguishes_signed_zero() {
        assert!(Constant::F64(0.0).bit_eq(&Constant::F64(0.0)));
        assert!(!Constant::F64(0.0).bit_eq(&Constant::F64(-0.0)));
        assert!(!Constant::F64(1.0).bit_eq(&Constant::I64(1)));
    }

    #[test]
    fn conversions() {
        assert_eq!(Constant::from(1.5), Constant::F64(1.5));
        assert_eq!(Constant::from(4i64), Constant::I64(4));
        assert_eq!(Constant::from(false), Constant::Bool(false));
    }
}
