//! Ergonomic construction of IR functions.
//!
//! [`FunctionBuilder`] borrows a [`Function`] mutably, tracks a current
//! insertion block, infers result types and interns constants. The Distill
//! code generator (`distill-codegen`) is written entirely against this API.

use crate::constant::Constant;
use crate::function::{BlockId, Function, Terminator, ValueData, ValueId, ValueKind};
use crate::inst::{BinOp, CastKind, CmpPred, GepIndex, Inst, Intrinsic, UnOp};
use crate::module::{FuncId, GlobalId};
use crate::types::Ty;

/// Builder over a single function.
///
/// # Example
///
/// ```
/// use distill_ir::{Module, Ty, FunctionBuilder};
///
/// let mut module = Module::new("m");
/// let fid = module.declare_function("double", vec![Ty::F64], Ty::F64);
/// let func = module.function_mut(fid);
/// let mut b = FunctionBuilder::new(func);
/// let entry = b.create_block("entry");
/// b.switch_to_block(entry);
/// let x = b.param(0);
/// let two = b.const_f64(2.0);
/// let r = b.fmul(x, two);
/// b.ret(Some(r));
/// ```
pub struct FunctionBuilder<'f> {
    func: &'f mut Function,
    current: Option<BlockId>,
    /// Type of each global in the containing module, needed to type
    /// `global_addr` results. Provided lazily via [`Self::with_global_types`].
    global_types: Vec<Ty>,
    /// Signature (param types, return type) of each function in the module,
    /// needed to type `call` results. Provided via [`Self::with_signatures`].
    signatures: Vec<(Vec<Ty>, Ty)>,
}

impl<'f> FunctionBuilder<'f> {
    /// Create a builder positioned nowhere (call [`create_block`] +
    /// [`switch_to_block`] first).
    ///
    /// [`create_block`]: Self::create_block
    /// [`switch_to_block`]: Self::switch_to_block
    pub fn new(func: &'f mut Function) -> Self {
        FunctionBuilder {
            func,
            current: None,
            global_types: Vec::new(),
            signatures: Vec::new(),
        }
    }

    /// Provide the global types of the containing module so that
    /// [`global_addr`](Self::global_addr) can type its result.
    pub fn with_global_types(mut self, tys: Vec<Ty>) -> Self {
        self.global_types = tys;
        self
    }

    /// Provide the function signatures of the containing module so that
    /// [`call`](Self::call) can type its result.
    pub fn with_signatures(mut self, sigs: Vec<(Vec<Ty>, Ty)>) -> Self {
        self.signatures = sigs;
        self
    }

    /// Borrow the function being built.
    pub fn func(&self) -> &Function {
        self.func
    }

    /// Mutably borrow the function being built.
    pub fn func_mut(&mut self) -> &mut Function {
        self.func
    }

    /// Create a new basic block.
    pub fn create_block(&mut self, name: impl Into<String>) -> BlockId {
        self.func.add_block(name)
    }

    /// Make `block` the insertion point for subsequent instructions.
    pub fn switch_to_block(&mut self, block: BlockId) {
        self.current = Some(block);
    }

    /// The current insertion block.
    ///
    /// # Panics
    /// Panics if no block has been selected yet.
    pub fn current_block(&self) -> BlockId {
        self.current.expect("no current block selected")
    }

    /// Whether the current block already has a terminator.
    pub fn is_terminated(&self) -> bool {
        self.current
            .map(|b| self.func.block(b).term.is_some())
            .unwrap_or(false)
    }

    /// The value id of the `index`-th parameter.
    pub fn param(&self, index: usize) -> ValueId {
        self.func.param_value(index)
    }

    fn push(&mut self, inst: Inst, ty: Ty) -> ValueId {
        let blk = self.current_block();
        assert!(
            self.func.block(blk).term.is_none(),
            "inserting into terminated block {} of {}",
            self.func.block(blk).name,
            self.func.name
        );
        let id = self.func.add_value(ValueData {
            kind: ValueKind::Inst(inst),
            ty,
            name: None,
        });
        self.func.block_mut(blk).insts.push(id);
        id
    }

    // ---- constants -------------------------------------------------------

    /// Intern an `f64` constant.
    pub fn const_f64(&mut self, v: f64) -> ValueId {
        self.func.add_constant(Constant::F64(v))
    }

    /// Intern an `f32` constant.
    pub fn const_f32(&mut self, v: f32) -> ValueId {
        self.func.add_constant(Constant::F32(v))
    }

    /// Intern an `i64` constant.
    pub fn const_i64(&mut self, v: i64) -> ValueId {
        self.func.add_constant(Constant::I64(v))
    }

    /// Intern a boolean constant.
    pub fn const_bool(&mut self, v: bool) -> ValueId {
        self.func.add_constant(Constant::Bool(v))
    }

    // ---- arithmetic ------------------------------------------------------

    /// Generic binary operation; the result type is the left operand's type
    /// for arithmetic ops.
    pub fn bin(&mut self, op: BinOp, lhs: ValueId, rhs: ValueId) -> ValueId {
        let ty = self.func.ty(lhs).clone();
        self.push(Inst::Bin { op, lhs, rhs }, ty)
    }

    /// Floating point `lhs + rhs`.
    pub fn fadd(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::FAdd, lhs, rhs)
    }

    /// Floating point `lhs - rhs`.
    pub fn fsub(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::FSub, lhs, rhs)
    }

    /// Floating point `lhs * rhs`.
    pub fn fmul(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::FMul, lhs, rhs)
    }

    /// Floating point `lhs / rhs`.
    pub fn fdiv(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::FDiv, lhs, rhs)
    }

    /// Integer `lhs + rhs`.
    pub fn iadd(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::Add, lhs, rhs)
    }

    /// Integer `lhs - rhs`.
    pub fn isub(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::Sub, lhs, rhs)
    }

    /// Integer `lhs * rhs`.
    pub fn imul(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::Mul, lhs, rhs)
    }

    /// Integer signed division.
    pub fn sdiv(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::SDiv, lhs, rhs)
    }

    /// Integer signed remainder.
    pub fn srem(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::SRem, lhs, rhs)
    }

    /// Floating point negation.
    pub fn fneg(&mut self, val: ValueId) -> ValueId {
        let ty = self.func.ty(val).clone();
        self.push(Inst::Un { op: UnOp::FNeg, val }, ty)
    }

    /// Boolean negation.
    pub fn not(&mut self, val: ValueId) -> ValueId {
        let ty = self.func.ty(val).clone();
        self.push(Inst::Un { op: UnOp::Not, val }, ty)
    }

    /// Comparison producing a boolean.
    pub fn cmp(&mut self, pred: CmpPred, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.push(Inst::Cmp { pred, lhs, rhs }, Ty::Bool)
    }

    /// `cond ? t : e`.
    pub fn select(&mut self, cond: ValueId, t: ValueId, e: ValueId) -> ValueId {
        let ty = self.func.ty(t).clone();
        self.push(
            Inst::Select {
                cond,
                then_val: t,
                else_val: e,
            },
            ty,
        )
    }

    /// Call `callee` with `args`; the result type comes from the signatures
    /// supplied via [`with_signatures`](Self::with_signatures) (or `Void` if
    /// unknown).
    pub fn call(&mut self, callee: FuncId, args: Vec<ValueId>) -> ValueId {
        let ret = self
            .signatures
            .get(callee.index())
            .map(|(_, r)| r.clone())
            .unwrap_or(Ty::Void);
        self.push(Inst::Call { callee, args }, ret)
    }

    /// Call a math / PRNG intrinsic.
    pub fn intrinsic(&mut self, kind: Intrinsic, args: Vec<ValueId>) -> ValueId {
        debug_assert_eq!(args.len(), kind.arity(), "intrinsic arity mismatch");
        self.push(Inst::IntrinsicCall { kind, args }, kind.result_ty())
    }

    /// `exp(x)`.
    pub fn exp(&mut self, x: ValueId) -> ValueId {
        self.intrinsic(Intrinsic::Exp, vec![x])
    }

    /// `sqrt(x)`.
    pub fn sqrt(&mut self, x: ValueId) -> ValueId {
        self.intrinsic(Intrinsic::Sqrt, vec![x])
    }

    /// `tanh(x)`.
    pub fn tanh(&mut self, x: ValueId) -> ValueId {
        self.intrinsic(Intrinsic::Tanh, vec![x])
    }

    /// `min(x, y)`.
    pub fn fmin(&mut self, x: ValueId, y: ValueId) -> ValueId {
        self.intrinsic(Intrinsic::FMin, vec![x, y])
    }

    /// `max(x, y)`.
    pub fn fmax(&mut self, x: ValueId, y: ValueId) -> ValueId {
        self.intrinsic(Intrinsic::FMax, vec![x, y])
    }

    /// `|x|`.
    pub fn fabs(&mut self, x: ValueId) -> ValueId {
        self.intrinsic(Intrinsic::FAbs, vec![x])
    }

    /// `pow(x, y)`.
    pub fn pow(&mut self, x: ValueId, y: ValueId) -> ValueId {
        self.intrinsic(Intrinsic::Pow, vec![x, y])
    }

    // ---- memory ----------------------------------------------------------

    /// Allocate one stack slot group of type `ty`; yields a pointer.
    pub fn alloca(&mut self, ty: Ty) -> ValueId {
        let ptr_ty = Ty::ptr(ty.clone());
        self.push(Inst::Alloca { ty }, ptr_ty)
    }

    /// Load a scalar from `ptr`.
    pub fn load(&mut self, ptr: ValueId) -> ValueId {
        let ty = self.func.ty(ptr).pointee().clone();
        self.push(Inst::Load { ptr }, ty)
    }

    /// Store `value` to `ptr`.
    pub fn store(&mut self, ptr: ValueId, value: ValueId) -> ValueId {
        self.push(Inst::Store { ptr, value }, Ty::Void)
    }

    /// Address of a module global.
    ///
    /// Requires the builder to have been given the module's global types via
    /// [`with_global_types`](Self::with_global_types).
    pub fn global_addr(&mut self, global: GlobalId) -> ValueId {
        let ty = self
            .global_types
            .get(global.index())
            .cloned()
            .unwrap_or(Ty::Void);
        self.push(Inst::GlobalAddr { global }, Ty::ptr(ty))
    }

    /// Compute the address of a sub-object of `base` following `indices`.
    ///
    /// # Panics
    /// Panics if an index does not match the aggregate structure (e.g. a
    /// dynamic index into a struct).
    pub fn gep(&mut self, base: ValueId, indices: Vec<GepIndex>) -> ValueId {
        let mut cur = self.func.ty(base).pointee().clone();
        for idx in &indices {
            cur = match (&cur, idx) {
                (Ty::Array(elem, _), _) => (**elem).clone(),
                (Ty::Struct(fields), GepIndex::Const(i)) => fields
                    .get(*i)
                    .unwrap_or_else(|| panic!("gep: struct field {i} out of range"))
                    .clone(),
                (Ty::Struct(_), GepIndex::Dyn(_)) => {
                    panic!("gep: dynamic index into struct")
                }
                (other, _) => panic!("gep: cannot index into scalar type {other}"),
            };
        }
        self.push(Inst::Gep { base, indices }, Ty::ptr(cur))
    }

    /// Convenience: address of field `i` of a struct pointer.
    pub fn field_addr(&mut self, base: ValueId, i: usize) -> ValueId {
        self.gep(base, vec![GepIndex::Const(i)])
    }

    /// Convenience: address of element `idx` (dynamic) of an array pointer.
    pub fn elem_addr(&mut self, base: ValueId, idx: ValueId) -> ValueId {
        self.gep(base, vec![GepIndex::Dyn(idx)])
    }

    /// Convenience: address of element `idx` (constant) of an array pointer.
    pub fn const_elem_addr(&mut self, base: ValueId, idx: usize) -> ValueId {
        self.gep(base, vec![GepIndex::Const(idx)])
    }

    // ---- phi / casts -----------------------------------------------------

    /// Create a phi node of type `ty` with the given incoming edges.
    pub fn phi(&mut self, ty: Ty, incoming: Vec<(BlockId, ValueId)>) -> ValueId {
        self.push(Inst::Phi { ty: ty.clone(), incoming }, ty)
    }

    /// Create an empty phi node whose incoming edges are filled in later via
    /// [`add_phi_incoming`](Self::add_phi_incoming) (needed for loops).
    pub fn empty_phi(&mut self, ty: Ty) -> ValueId {
        self.phi(ty, Vec::new())
    }

    /// Append an incoming edge to an existing phi node.
    ///
    /// # Panics
    /// Panics if `phi` is not a phi node.
    pub fn add_phi_incoming(&mut self, phi: ValueId, block: BlockId, value: ValueId) {
        match self.func.as_inst_mut(phi) {
            Some(Inst::Phi { incoming, .. }) => incoming.push((block, value)),
            _ => panic!("add_phi_incoming on non-phi value"),
        }
    }

    /// Scalar cast.
    pub fn cast(&mut self, kind: CastKind, val: ValueId, to: Ty) -> ValueId {
        self.push(Inst::Cast { kind, val, to: to.clone() }, to)
    }

    /// Integer → float cast.
    pub fn sitofp(&mut self, val: ValueId) -> ValueId {
        self.cast(CastKind::SiToFp, val, Ty::F64)
    }

    /// Float → integer cast (truncating).
    pub fn fptosi(&mut self, val: ValueId) -> ValueId {
        self.cast(CastKind::FpToSi, val, Ty::I64)
    }

    // ---- terminators -----------------------------------------------------

    fn terminate(&mut self, term: Terminator) {
        let blk = self.current_block();
        assert!(
            self.func.block(blk).term.is_none(),
            "block {} already terminated",
            self.func.block(blk).name
        );
        self.func.block_mut(blk).term = Some(term);
    }

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.terminate(Terminator::Br(target));
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, cond: ValueId, then_blk: BlockId, else_blk: BlockId) {
        self.terminate(Terminator::CondBr {
            cond,
            then_blk,
            else_blk,
        });
    }

    /// Return.
    pub fn ret(&mut self, value: Option<ValueId>) {
        self.terminate(Terminator::Ret(value));
    }

    /// Mark the current block as unreachable.
    pub fn unreachable(&mut self) {
        self.terminate(Terminator::Unreachable);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Module;

    #[test]
    fn build_straightline_function() {
        let mut m = Module::new("m");
        let fid = m.declare_function("axpy", vec![Ty::F64, Ty::F64, Ty::F64], Ty::F64);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let entry = b.create_block("entry");
            b.switch_to_block(entry);
            let a = b.param(0);
            let x = b.param(1);
            let y = b.param(2);
            let ax = b.fmul(a, x);
            let r = b.fadd(ax, y);
            b.ret(Some(r));
        }
        let f = m.function(fid);
        assert_eq!(f.inst_count(), 2);
        assert!(f.block(f.entry_block().unwrap()).term.is_some());
    }

    #[test]
    fn build_branchy_function_with_phi() {
        let mut m = Module::new("m");
        let fid = m.declare_function("relu", vec![Ty::F64], Ty::F64);
        let f = m.function_mut(fid);
        let mut b = FunctionBuilder::new(f);
        let entry = b.create_block("entry");
        let pos = b.create_block("pos");
        let neg = b.create_block("neg");
        let join = b.create_block("join");
        b.switch_to_block(entry);
        let x = b.param(0);
        let zero = b.const_f64(0.0);
        let is_pos = b.cmp(CmpPred::FGt, x, zero);
        b.cond_br(is_pos, pos, neg);
        b.switch_to_block(pos);
        b.br(join);
        b.switch_to_block(neg);
        b.br(join);
        b.switch_to_block(join);
        let merged = b.phi(Ty::F64, vec![(pos, x), (neg, zero)]);
        b.ret(Some(merged));
        assert_eq!(m.function(fid).layout.len(), 4);
    }

    #[test]
    fn gep_types_through_nested_aggregates() {
        let mut m = Module::new("m");
        let st = Ty::Struct(vec![Ty::F64, Ty::array(Ty::F64, 4)]);
        let g = m.add_zeroed_global("state", st.clone(), true);
        let global_tys: Vec<Ty> = m.globals.iter().map(|g| g.ty.clone()).collect();
        let fid = m.declare_function("touch", vec![Ty::I64], Ty::F64);
        let f = m.function_mut(fid);
        let mut b = FunctionBuilder::new(f).with_global_types(global_tys);
        let entry = b.create_block("entry");
        b.switch_to_block(entry);
        let base = b.global_addr(g);
        let i = b.param(0);
        let arr = b.field_addr(base, 1);
        assert_eq!(*b.func().ty(arr), Ty::ptr(Ty::array(Ty::F64, 4)));
        let el = b.elem_addr(arr, i);
        assert_eq!(*b.func().ty(el), Ty::ptr(Ty::F64));
        let v = b.load(el);
        b.ret(Some(v));
    }

    #[test]
    #[should_panic]
    fn inserting_into_terminated_block_panics() {
        let mut m = Module::new("m");
        let fid = m.declare_function("f", vec![], Ty::Void);
        let f = m.function_mut(fid);
        let mut b = FunctionBuilder::new(f);
        let entry = b.create_block("entry");
        b.switch_to_block(entry);
        b.ret(None);
        let _ = b.const_f64(1.0); // constants are fine...
        let one = b.const_f64(1.0);
        let _ = b.fadd(one, one); // ...but instructions are not
    }

    #[test]
    fn call_result_type_comes_from_signature() {
        let mut m = Module::new("m");
        let callee = m.declare_function("callee", vec![Ty::F64], Ty::F64);
        let caller = m.declare_function("caller", vec![Ty::F64], Ty::F64);
        let sigs: Vec<(Vec<Ty>, Ty)> = m
            .functions
            .iter()
            .map(|f| (f.params.clone(), f.ret_ty.clone()))
            .collect();
        let f = m.function_mut(caller);
        let mut b = FunctionBuilder::new(f).with_signatures(sigs);
        let entry = b.create_block("entry");
        b.switch_to_block(entry);
        let x = b.param(0);
        let r = b.call(callee, vec![x]);
        assert_eq!(*b.func().ty(r), Ty::F64);
        b.ret(Some(r));
    }
}
