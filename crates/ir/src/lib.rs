//! `distill-ir` — the SSA intermediate representation used by the Distill
//! reproduction.
//!
//! The paper lowers cognitive models to LLVM IR and then reuses LLVM's
//! pass and analysis infrastructure. This crate provides the equivalent
//! substrate implemented from scratch: a small, typed, SSA-form IR with
//!
//! * scalar and aggregate [types](Ty) (floats, integers, booleans, pointers,
//!   arrays and structs),
//! * [instructions](Inst) covering arithmetic, comparisons, memory access
//!   (`alloca`/`load`/`store`/`gep`), calls, a family of math and PRNG
//!   [intrinsics](Intrinsic), phi nodes and casts,
//! * [functions](Function) made of basic [blocks](BlockData) with explicit
//!   [terminators](Terminator),
//! * a [module](Module) container with global variables,
//! * an ergonomic [builder](builder::FunctionBuilder),
//! * CFG utilities (predecessors/successors, dominator tree, natural loop
//!   detection) in [`mod@cfg`],
//! * a structural [verifier](verify::verify_function) and a textual
//!   [printer].
//!
//! Memory is modelled in *slots* rather than bytes: every scalar (including
//! pointers) occupies exactly one slot, an array of `n` elements occupies
//! `n × slots(elem)` and a struct occupies the sum of its field sizes. The
//! execution engine in `distill-exec` and the GEP lowering here agree on this
//! layout, which keeps address arithmetic simple while still exercising the
//! same optimization opportunities (scalar replacement, constant offsets,
//! loop-invariant address computation) that the paper relies on.
//!
//! # Example
//!
//! ```
//! use distill_ir::{Module, Ty, builder::FunctionBuilder};
//!
//! let mut module = Module::new("example");
//! let fid = module.declare_function("axpy", vec![Ty::F64, Ty::F64, Ty::F64], Ty::F64);
//! {
//!     let func = module.function_mut(fid);
//!     let mut b = FunctionBuilder::new(func);
//!     let entry = b.create_block("entry");
//!     b.switch_to_block(entry);
//!     let a = b.param(0);
//!     let x = b.param(1);
//!     let y = b.param(2);
//!     let ax = b.fmul(a, x);
//!     let r = b.fadd(ax, y);
//!     b.ret(Some(r));
//! }
//! distill_ir::verify::verify_module(&module).unwrap();
//! ```

pub mod builder;
pub mod cfg;
pub mod constant;
pub mod function;
pub mod inst;
pub mod module;
pub mod printer;
pub mod types;
pub mod verify;

pub use builder::FunctionBuilder;
pub use constant::Constant;
pub use function::{BlockData, BlockId, Function, Terminator, ValueData, ValueId, ValueKind};
pub use inst::{BinOp, CastKind, CmpPred, GepIndex, Inst, Intrinsic, UnOp};
pub use module::{FuncId, Global, GlobalId, Module};
pub use types::Ty;
