//! Instruction set of the Distill IR.

use crate::function::{BlockId, ValueId};
use crate::module::FuncId;
use crate::types::Ty;
use std::fmt;

/// Binary arithmetic and bitwise operations.
///
/// Floating point operations are prefixed `F`; the remaining operations are
/// 64-bit integer operations. Division by zero on the integer ops is a
/// runtime error in the execution engine, mirroring undefined behaviour in
/// LLVM without miscompiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Floating point addition.
    FAdd,
    /// Floating point subtraction.
    FSub,
    /// Floating point multiplication.
    FMul,
    /// Floating point division.
    FDiv,
    /// Floating point remainder (Rust `%` semantics, i.e. `fmod`).
    FRem,
    /// Integer addition (wrapping).
    Add,
    /// Integer subtraction (wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Integer signed division.
    SDiv,
    /// Integer signed remainder.
    SRem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical (unsigned) shift right.
    LShr,
    /// Arithmetic (signed) shift right.
    AShr,
}

impl BinOp {
    /// Whether the operation is a floating point operation.
    pub fn is_float(&self) -> bool {
        matches!(
            self,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv | BinOp::FRem
        )
    }

    /// Whether the operation is commutative (used by CSE canonicalization).
    pub fn is_commutative(&self) -> bool {
        matches!(
            self,
            BinOp::FAdd
                | BinOp::FMul
                | BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
        )
    }

    /// The mnemonic used by the printer.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
            BinOp::FRem => "frem",
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::SRem => "srem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
        }
    }
}

/// Unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Floating point negation.
    FNeg,
    /// Boolean / bitwise negation.
    Not,
}

impl UnOp {
    /// The mnemonic used by the printer.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            UnOp::FNeg => "fneg",
            UnOp::Not => "not",
        }
    }
}

/// Comparison predicates.
///
/// Float comparisons follow LLVM's *ordered* semantics: they are `false`
/// whenever either operand is NaN (except `FNe`, which is `true` on NaN
/// operands, matching Rust's `!=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpPred {
    /// Float equal (ordered).
    FEq,
    /// Float not-equal.
    FNe,
    /// Float less-than (ordered).
    FLt,
    /// Float less-or-equal (ordered).
    FLe,
    /// Float greater-than (ordered).
    FGt,
    /// Float greater-or-equal (ordered).
    FGe,
    /// Integer equal.
    IEq,
    /// Integer not-equal.
    INe,
    /// Integer signed less-than.
    ILt,
    /// Integer signed less-or-equal.
    ILe,
    /// Integer signed greater-than.
    IGt,
    /// Integer signed greater-or-equal.
    IGe,
}

impl CmpPred {
    /// Whether the predicate compares floats.
    pub fn is_float(&self) -> bool {
        matches!(
            self,
            CmpPred::FEq | CmpPred::FNe | CmpPred::FLt | CmpPred::FLe | CmpPred::FGt | CmpPred::FGe
        )
    }

    /// The predicate with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(&self) -> CmpPred {
        match self {
            CmpPred::FEq => CmpPred::FEq,
            CmpPred::FNe => CmpPred::FNe,
            CmpPred::FLt => CmpPred::FGt,
            CmpPred::FLe => CmpPred::FGe,
            CmpPred::FGt => CmpPred::FLt,
            CmpPred::FGe => CmpPred::FLe,
            CmpPred::IEq => CmpPred::IEq,
            CmpPred::INe => CmpPred::INe,
            CmpPred::ILt => CmpPred::IGt,
            CmpPred::ILe => CmpPred::IGe,
            CmpPred::IGt => CmpPred::ILt,
            CmpPred::IGe => CmpPred::ILe,
        }
    }

    /// The mnemonic used by the printer.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            CmpPred::FEq => "fcmp oeq",
            CmpPred::FNe => "fcmp une",
            CmpPred::FLt => "fcmp olt",
            CmpPred::FLe => "fcmp ole",
            CmpPred::FGt => "fcmp ogt",
            CmpPred::FGe => "fcmp oge",
            CmpPred::IEq => "icmp eq",
            CmpPred::INe => "icmp ne",
            CmpPred::ILt => "icmp slt",
            CmpPred::ILe => "icmp sle",
            CmpPred::IGt => "icmp sgt",
            CmpPred::IGe => "icmp sge",
        }
    }
}

/// Cast operations between scalar types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastKind {
    /// Signed integer → floating point.
    SiToFp,
    /// Floating point → signed integer (truncating toward zero).
    FpToSi,
    /// `f64` → `f32`.
    FpTrunc,
    /// `f32` → `f64`.
    FpExt,
    /// Boolean → integer zero extension.
    ZExtBool,
    /// Integer → boolean (non-zero test is *not* implied; value must be 0/1).
    TruncBool,
}

impl CastKind {
    /// The mnemonic used by the printer.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            CastKind::SiToFp => "sitofp",
            CastKind::FpToSi => "fptosi",
            CastKind::FpTrunc => "fptrunc",
            CastKind::FpExt => "fpext",
            CastKind::ZExtBool => "zext",
            CastKind::TruncBool => "trunc",
        }
    }
}

/// Math, reduction and PRNG intrinsics.
///
/// The PRNG intrinsics take a pointer to an in-memory generator state (an
/// `[i64 x 4]` xoshiro256++ state plus a cached-normal slot); the paper keeps
/// PRNG state as an explicit read-write parameter so that every grid-search
/// evaluation can replicate and restore it (§3.6), and the intrinsic form
/// preserves that structure in the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `exp(x)`.
    Exp,
    /// `ln(x)`.
    Log,
    /// `sqrt(x)`.
    Sqrt,
    /// `sin(x)`.
    Sin,
    /// `cos(x)`.
    Cos,
    /// `tanh(x)`.
    Tanh,
    /// `pow(x, y)`.
    Pow,
    /// `|x|`.
    FAbs,
    /// `floor(x)`.
    Floor,
    /// `ceil(x)`.
    Ceil,
    /// `min(x, y)` (propagates the non-NaN operand like `llvm.minnum`).
    FMin,
    /// `max(x, y)`.
    FMax,
    /// Uniform sample in `[0, 1)` drawn from the PRNG state pointed to by the
    /// single pointer operand.
    RandUniform,
    /// Standard normal sample drawn from the PRNG state pointed to by the
    /// single pointer operand.
    RandNormal,
}

impl Intrinsic {
    /// Number of operands the intrinsic expects.
    pub fn arity(&self) -> usize {
        match self {
            Intrinsic::Pow | Intrinsic::FMin | Intrinsic::FMax => 2,
            _ => 1,
        }
    }

    /// Whether the intrinsic reads and writes PRNG state (and therefore has a
    /// side effect that DCE/CSE/LICM must not remove, duplicate or hoist).
    pub fn has_side_effects(&self) -> bool {
        matches!(self, Intrinsic::RandUniform | Intrinsic::RandNormal)
    }

    /// The result type of the intrinsic given its operand type.
    pub fn result_ty(&self) -> Ty {
        Ty::F64
    }

    /// The name used by the printer.
    pub fn name(&self) -> &'static str {
        match self {
            Intrinsic::Exp => "llvm.exp.f64",
            Intrinsic::Log => "llvm.log.f64",
            Intrinsic::Sqrt => "llvm.sqrt.f64",
            Intrinsic::Sin => "llvm.sin.f64",
            Intrinsic::Cos => "llvm.cos.f64",
            Intrinsic::Tanh => "llvm.tanh.f64",
            Intrinsic::Pow => "llvm.pow.f64",
            Intrinsic::FAbs => "llvm.fabs.f64",
            Intrinsic::Floor => "llvm.floor.f64",
            Intrinsic::Ceil => "llvm.ceil.f64",
            Intrinsic::FMin => "llvm.minnum.f64",
            Intrinsic::FMax => "llvm.maxnum.f64",
            Intrinsic::RandUniform => "distill.rand.uniform",
            Intrinsic::RandNormal => "distill.rand.normal",
        }
    }

    /// All intrinsics, for exhaustive testing.
    pub fn all() -> &'static [Intrinsic] {
        &[
            Intrinsic::Exp,
            Intrinsic::Log,
            Intrinsic::Sqrt,
            Intrinsic::Sin,
            Intrinsic::Cos,
            Intrinsic::Tanh,
            Intrinsic::Pow,
            Intrinsic::FAbs,
            Intrinsic::Floor,
            Intrinsic::Ceil,
            Intrinsic::FMin,
            Intrinsic::FMax,
            Intrinsic::RandUniform,
            Intrinsic::RandNormal,
        ]
    }
}

/// A GEP (address computation) index: either a compile-time field/element
/// index or a dynamically computed element index.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GepIndex {
    /// A constant index, valid for both struct fields and array elements.
    Const(usize),
    /// A dynamic `i64` index, valid only for array elements.
    Dyn(ValueId),
}

/// A non-terminator instruction.
///
/// Instructions live in the value arena of their [`Function`]; the
/// instruction's result *is* the value id under which it is stored.
///
/// [`Function`]: crate::function::Function
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// Binary arithmetic: `op lhs, rhs`.
    Bin {
        /// The operation.
        op: BinOp,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// Unary arithmetic: `op val`.
    Un {
        /// The operation.
        op: UnOp,
        /// Operand.
        val: ValueId,
    },
    /// Comparison producing a `Bool`.
    Cmp {
        /// The predicate.
        pred: CmpPred,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// `cond ? then_val : else_val` without control flow.
    Select {
        /// Boolean condition.
        cond: ValueId,
        /// Value when the condition is true.
        then_val: ValueId,
        /// Value when the condition is false.
        else_val: ValueId,
    },
    /// Direct call to another function in the same module.
    Call {
        /// Callee.
        callee: FuncId,
        /// Argument values, one per callee parameter.
        args: Vec<ValueId>,
    },
    /// Math / PRNG intrinsic call.
    IntrinsicCall {
        /// Which intrinsic.
        kind: Intrinsic,
        /// Operands (`arity()` of them; PRNG intrinsics take one pointer).
        args: Vec<ValueId>,
    },
    /// Stack allocation of one value of `ty` in the current frame; yields a
    /// pointer to it.
    Alloca {
        /// Allocated type.
        ty: Ty,
    },
    /// Load a scalar from the pointer operand.
    Load {
        /// Pointer to load from.
        ptr: ValueId,
    },
    /// Store a scalar to the pointer operand. Produces no value.
    Store {
        /// Pointer to store to.
        ptr: ValueId,
        /// Value to store.
        value: ValueId,
    },
    /// Address computation within an aggregate.
    ///
    /// Starting from the pointee type of `base`, each index either selects a
    /// struct field (constant index) or an array element (constant or
    /// dynamic index). The result is a pointer to the selected sub-object.
    Gep {
        /// Base pointer.
        base: ValueId,
        /// Index path.
        indices: Vec<GepIndex>,
    },
    /// SSA phi node merging values from predecessor blocks.
    Phi {
        /// The value's type.
        ty: Ty,
        /// `(predecessor block, incoming value)` pairs.
        incoming: Vec<(BlockId, ValueId)>,
    },
    /// Scalar cast.
    Cast {
        /// Cast kind.
        kind: CastKind,
        /// Operand.
        val: ValueId,
        /// Destination type.
        to: Ty,
    },
    /// The address of a module global; yields a pointer to the global's type.
    GlobalAddr {
        /// The referenced global.
        global: crate::module::GlobalId,
    },
}

impl Inst {
    /// All value operands of the instruction, in a fixed order.
    pub fn operands(&self) -> Vec<ValueId> {
        match self {
            Inst::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Un { val, .. } => vec![*val],
            Inst::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Select {
                cond,
                then_val,
                else_val,
            } => vec![*cond, *then_val, *else_val],
            Inst::Call { args, .. } => args.clone(),
            Inst::IntrinsicCall { args, .. } => args.clone(),
            Inst::Alloca { .. } => vec![],
            Inst::Load { ptr } => vec![*ptr],
            Inst::Store { ptr, value } => vec![*ptr, *value],
            Inst::Gep { base, indices } => {
                let mut ops = vec![*base];
                for idx in indices {
                    if let GepIndex::Dyn(v) = idx {
                        ops.push(*v);
                    }
                }
                ops
            }
            Inst::Phi { incoming, .. } => incoming.iter().map(|(_, v)| *v).collect(),
            Inst::Cast { val, .. } => vec![*val],
            Inst::GlobalAddr { .. } => vec![],
        }
    }

    /// Rewrite every operand through `f` (used by inlining and by passes that
    /// replace values).
    pub fn map_operands(&mut self, mut f: impl FnMut(ValueId) -> ValueId) {
        match self {
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Inst::Un { val, .. } | Inst::Cast { val, .. } => *val = f(*val),
            Inst::Select {
                cond,
                then_val,
                else_val,
            } => {
                *cond = f(*cond);
                *then_val = f(*then_val);
                *else_val = f(*else_val);
            }
            Inst::Call { args, .. } | Inst::IntrinsicCall { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            Inst::Alloca { .. } => {}
            Inst::Load { ptr } => *ptr = f(*ptr),
            Inst::Store { ptr, value } => {
                *ptr = f(*ptr);
                *value = f(*value);
            }
            Inst::Gep { base, indices } => {
                *base = f(*base);
                for idx in indices {
                    if let GepIndex::Dyn(v) = idx {
                        *v = f(*v);
                    }
                }
            }
            Inst::Phi { incoming, .. } => {
                for (_, v) in incoming {
                    *v = f(*v);
                }
            }
            Inst::GlobalAddr { .. } => {}
        }
    }

    /// Whether the instruction has side effects or reads/writes memory and
    /// therefore must not be removed even if its result is unused.
    pub fn has_side_effects(&self) -> bool {
        match self {
            Inst::Store { .. } | Inst::Call { .. } => true,
            Inst::IntrinsicCall { kind, .. } => kind.has_side_effects(),
            _ => false,
        }
    }

    /// Whether the instruction reads from memory (loads are pure but cannot
    /// be reordered across stores by CSE/LICM without an alias check).
    pub fn reads_memory(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Call { .. })
            || matches!(self, Inst::IntrinsicCall { kind, .. } if kind.has_side_effects())
    }

    /// Whether the instruction writes memory.
    pub fn writes_memory(&self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::Call { .. })
            || matches!(self, Inst::IntrinsicCall { kind, .. } if kind.has_side_effects())
    }

    /// Whether this is a phi node.
    pub fn is_phi(&self) -> bool {
        matches!(self, Inst::Phi { .. })
    }
}

impl fmt::Display for GepIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GepIndex::Const(i) => write!(f, "{i}"),
            GepIndex::Dyn(v) => write!(f, "%{}", v.index()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commutativity() {
        assert!(BinOp::FAdd.is_commutative());
        assert!(BinOp::Mul.is_commutative());
        assert!(!BinOp::FSub.is_commutative());
        assert!(!BinOp::SDiv.is_commutative());
    }

    #[test]
    fn float_classification() {
        assert!(BinOp::FMul.is_float());
        assert!(!BinOp::Add.is_float());
        assert!(CmpPred::FLt.is_float());
        assert!(!CmpPred::IGe.is_float());
    }

    #[test]
    fn swapped_predicates_round_trip() {
        for pred in [
            CmpPred::FEq,
            CmpPred::FNe,
            CmpPred::FLt,
            CmpPred::FLe,
            CmpPred::FGt,
            CmpPred::FGe,
            CmpPred::IEq,
            CmpPred::INe,
            CmpPred::ILt,
            CmpPred::ILe,
            CmpPred::IGt,
            CmpPred::IGe,
        ] {
            assert_eq!(pred.swapped().swapped(), pred);
        }
    }

    #[test]
    fn intrinsic_arities() {
        assert_eq!(Intrinsic::Exp.arity(), 1);
        assert_eq!(Intrinsic::Pow.arity(), 2);
        assert_eq!(Intrinsic::FMax.arity(), 2);
        assert!(Intrinsic::RandNormal.has_side_effects());
        assert!(!Intrinsic::Sqrt.has_side_effects());
    }

    #[test]
    fn operand_lists() {
        let v = |i: u32| ValueId::from_index(i as usize);
        let add = Inst::Bin {
            op: BinOp::FAdd,
            lhs: v(0),
            rhs: v(1),
        };
        assert_eq!(add.operands(), vec![v(0), v(1)]);
        let gep = Inst::Gep {
            base: v(2),
            indices: vec![GepIndex::Const(1), GepIndex::Dyn(v(3))],
        };
        assert_eq!(gep.operands(), vec![v(2), v(3)]);
        let store = Inst::Store {
            ptr: v(4),
            value: v(5),
        };
        assert!(store.has_side_effects());
        assert!(!add.has_side_effects());
    }

    #[test]
    fn map_operands_rewrites() {
        let v = |i: u32| ValueId::from_index(i as usize);
        let mut sel = Inst::Select {
            cond: v(0),
            then_val: v(1),
            else_val: v(2),
        };
        sel.map_operands(|x| ValueId::from_index(x.index() + 10));
        assert_eq!(sel.operands(), vec![v(10), v(11), v(12)]);
    }
}
