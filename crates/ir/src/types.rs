//! Type system for the Distill IR.
//!
//! The type system is deliberately small: the cognitive models the paper
//! targets only ever use floating point scalars, integers (for counters,
//! enum keys and PRNG state), booleans, and statically-shaped aggregates of
//! those. Memory layout is measured in *slots*: every scalar occupies one
//! slot, aggregates are laid out contiguously.

use std::fmt;

/// An IR type.
///
/// Aggregate types own their element types, so `Ty` is a tree. Structs are
/// structural (no names): two structs with the same field types are the same
/// type, which mirrors how Distill's dynamic-to-static conversion produces
/// anonymous parameter and output structures.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 64-bit IEEE-754 floating point. The default numeric type of models.
    F64,
    /// 32-bit IEEE-754 floating point, used by the fp32 GPU kernels (Fig. 6).
    F32,
    /// 64-bit signed integer: loop counters, enum keys, PRNG words.
    I64,
    /// 1-bit boolean produced by comparisons and consumed by branches.
    Bool,
    /// The type of instructions that produce no value (e.g. `store`).
    Void,
    /// A pointer to a value of the pointee type.
    Ptr(Box<Ty>),
    /// A fixed-length array of homogeneous elements.
    Array(Box<Ty>, usize),
    /// A structural record with the given field types.
    Struct(Vec<Ty>),
}

impl Ty {
    /// Construct a pointer type to `pointee`.
    pub fn ptr(pointee: Ty) -> Ty {
        Ty::Ptr(Box::new(pointee))
    }

    /// Construct an array type of `len` elements of type `elem`.
    pub fn array(elem: Ty, len: usize) -> Ty {
        Ty::Array(Box::new(elem), len)
    }

    /// Returns `true` for `F64` and `F32`.
    pub fn is_float(&self) -> bool {
        matches!(self, Ty::F64 | Ty::F32)
    }

    /// Returns `true` for `I64`.
    pub fn is_int(&self) -> bool {
        matches!(self, Ty::I64)
    }

    /// Returns `true` for `Bool`.
    pub fn is_bool(&self) -> bool {
        matches!(self, Ty::Bool)
    }

    /// Returns `true` for any pointer type.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Ty::Ptr(_))
    }

    /// Returns `true` for types that occupy exactly one memory slot.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Ty::F64 | Ty::F32 | Ty::I64 | Ty::Bool | Ty::Ptr(_))
    }

    /// Returns `true` for arrays and structs.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, Ty::Array(..) | Ty::Struct(_))
    }

    /// The pointee type of a pointer.
    ///
    /// # Panics
    /// Panics if `self` is not a pointer type.
    pub fn pointee(&self) -> &Ty {
        match self {
            Ty::Ptr(p) => p,
            other => panic!("pointee() on non-pointer type {other}"),
        }
    }

    /// The element type of an array.
    ///
    /// # Panics
    /// Panics if `self` is not an array type.
    pub fn elem(&self) -> &Ty {
        match self {
            Ty::Array(e, _) => e,
            other => panic!("elem() on non-array type {other}"),
        }
    }

    /// The length of an array type, or `None` for other types.
    pub fn array_len(&self) -> Option<usize> {
        match self {
            Ty::Array(_, n) => Some(*n),
            _ => None,
        }
    }

    /// The field types of a struct, or `None` for other types.
    pub fn struct_fields(&self) -> Option<&[Ty]> {
        match self {
            Ty::Struct(fs) => Some(fs),
            _ => None,
        }
    }

    /// Number of memory slots a value of this type occupies.
    ///
    /// Scalars (including pointers) take one slot, `Void` takes zero,
    /// aggregates are the sum of their parts.
    pub fn slot_count(&self) -> usize {
        match self {
            Ty::Void => 0,
            Ty::F64 | Ty::F32 | Ty::I64 | Ty::Bool | Ty::Ptr(_) => 1,
            Ty::Array(elem, n) => elem.slot_count() * n,
            Ty::Struct(fields) => fields.iter().map(Ty::slot_count).sum(),
        }
    }

    /// Byte size of a value of this type, used only by the GPU register /
    /// local-memory pressure model (Fig. 6). `F32` is 4 bytes, every other
    /// scalar 8 bytes.
    pub fn byte_size(&self) -> usize {
        match self {
            Ty::Void => 0,
            Ty::F32 => 4,
            Ty::Bool => 1,
            Ty::F64 | Ty::I64 | Ty::Ptr(_) => 8,
            Ty::Array(elem, n) => elem.byte_size() * n,
            Ty::Struct(fields) => fields.iter().map(Ty::byte_size).sum(),
        }
    }

    /// Slot offset of struct field `idx` within this struct type.
    ///
    /// # Panics
    /// Panics if `self` is not a struct or `idx` is out of range.
    pub fn field_offset(&self, idx: usize) -> usize {
        match self {
            Ty::Struct(fields) => {
                assert!(idx < fields.len(), "field index {idx} out of range");
                fields[..idx].iter().map(Ty::slot_count).sum()
            }
            other => panic!("field_offset() on non-struct type {other}"),
        }
    }

    /// The type of struct field `idx`.
    ///
    /// # Panics
    /// Panics if `self` is not a struct or `idx` is out of range.
    pub fn field_ty(&self, idx: usize) -> &Ty {
        match self {
            Ty::Struct(fields) => &fields[idx],
            other => panic!("field_ty() on non-struct type {other}"),
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::F64 => write!(f, "f64"),
            Ty::F32 => write!(f, "f32"),
            Ty::I64 => write!(f, "i64"),
            Ty::Bool => write!(f, "i1"),
            Ty::Void => write!(f, "void"),
            Ty::Ptr(p) => write!(f, "{p}*"),
            Ty::Array(e, n) => write!(f, "[{n} x {e}]"),
            Ty::Struct(fields) => {
                write!(f, "{{")?;
                for (i, fld) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{fld}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_slot_counts() {
        assert_eq!(Ty::F64.slot_count(), 1);
        assert_eq!(Ty::F32.slot_count(), 1);
        assert_eq!(Ty::I64.slot_count(), 1);
        assert_eq!(Ty::Bool.slot_count(), 1);
        assert_eq!(Ty::ptr(Ty::F64).slot_count(), 1);
        assert_eq!(Ty::Void.slot_count(), 0);
    }

    #[test]
    fn aggregate_slot_counts() {
        let arr = Ty::array(Ty::F64, 8);
        assert_eq!(arr.slot_count(), 8);
        let st = Ty::Struct(vec![Ty::F64, Ty::array(Ty::F64, 3), Ty::I64]);
        assert_eq!(st.slot_count(), 5);
        let nested = Ty::array(st.clone(), 4);
        assert_eq!(nested.slot_count(), 20);
    }

    #[test]
    fn field_offsets() {
        let st = Ty::Struct(vec![Ty::F64, Ty::array(Ty::F64, 3), Ty::I64, Ty::Bool]);
        assert_eq!(st.field_offset(0), 0);
        assert_eq!(st.field_offset(1), 1);
        assert_eq!(st.field_offset(2), 4);
        assert_eq!(st.field_offset(3), 5);
        assert_eq!(*st.field_ty(2), Ty::I64);
    }

    #[test]
    fn byte_sizes_for_gpu_model() {
        assert_eq!(Ty::F32.byte_size(), 4);
        assert_eq!(Ty::F64.byte_size(), 8);
        assert_eq!(Ty::array(Ty::F32, 16).byte_size(), 64);
        assert_eq!(Ty::Struct(vec![Ty::F64, Ty::F32]).byte_size(), 12);
    }

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(Ty::F64.to_string(), "f64");
        assert_eq!(Ty::ptr(Ty::F64).to_string(), "f64*");
        assert_eq!(Ty::array(Ty::I64, 4).to_string(), "[4 x i64]");
        assert_eq!(
            Ty::Struct(vec![Ty::F64, Ty::Bool]).to_string(),
            "{f64, i1}"
        );
    }

    #[test]
    fn predicates() {
        assert!(Ty::F64.is_float());
        assert!(!Ty::I64.is_float());
        assert!(Ty::I64.is_int());
        assert!(Ty::Bool.is_bool());
        assert!(Ty::ptr(Ty::I64).is_ptr());
        assert!(Ty::array(Ty::F64, 2).is_aggregate());
        assert!(Ty::Struct(vec![]).is_aggregate());
        assert!(Ty::ptr(Ty::Void).is_scalar());
    }

    #[test]
    #[should_panic]
    fn pointee_on_scalar_panics() {
        let _ = Ty::F64.pointee();
    }
}
